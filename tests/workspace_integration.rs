//! Cross-crate integration: drive the public facade exactly as the README
//! and examples do.

use vcount::prelude::*;
use vcount::roadnet::mph_to_mps;

fn grid_scenario(seed: u64) -> Scenario {
    Scenario {
        map: MapSpec::Grid {
            cols: 4,
            rows: 3,
            spacing_m: 180.0,
            lanes: 2,
            speed_mps: mph_to_mps(15.0),
        },
        closed: true,
        sim: SimConfig {
            seed,
            ..Default::default()
        },
        demand: Demand::at_volume(60.0),
        protocol: CheckpointConfig::default(),
        channel: ChannelKind::PAPER,
        seeds: SeedSpec::Random { count: 1 },
        transport: TransportMode::default(),
        patrol: PatrolSpec::default(),
        max_time_s: 2.0 * 3600.0,
    }
}

#[test]
fn facade_quickstart_flow_is_exact() {
    let s = grid_scenario(2014);
    let mut runner = Runner::builder(&s).build();
    let metrics = runner.run(Goal::Collection, s.max_time_s);
    assert!(metrics.exact());
    assert!(metrics.constitution_done_s.unwrap() <= metrics.collection_done_s.unwrap());
}

#[test]
fn distributed_and_collected_counts_agree() {
    let s = grid_scenario(7);
    let mut runner = Runner::builder(&s).build();
    runner.run(Goal::Collection, s.max_time_s);
    assert_eq!(
        Some(runner.distributed_count()),
        runner.collected_count(),
        "tree aggregation must equal the distributed sum"
    );
}

#[test]
fn spanning_tree_is_well_formed_after_convergence() {
    let s = grid_scenario(11);
    let mut runner = Runner::builder(&s).build();
    runner.run(Goal::Collection, s.max_time_s);
    let seed = runner.seeds()[0];
    // Every non-seed checkpoint has a predecessor; following predecessors
    // always terminates at the seed (no cycles).
    for n in runner.net().node_ids() {
        let mut cur = n;
        let mut hops = 0;
        while let Some(p) = runner.checkpoint(cur).pred() {
            cur = p;
            hops += 1;
            assert!(hops <= runner.net().node_count(), "pred cycle at {n}");
        }
        assert_eq!(cur, seed, "pred chain of {n} must end at the seed");
    }
    // Parent/child views agree.
    for n in runner.net().node_ids() {
        for child in runner.checkpoint(n).children() {
            assert_eq!(runner.checkpoint(child).pred(), Some(n));
        }
    }
}

#[test]
fn per_checkpoint_times_are_ordered() {
    let s = grid_scenario(13);
    let mut runner = Runner::builder(&s).build();
    let m = runner.run(Goal::Collection, s.max_time_s);
    for n in runner.net().node_ids() {
        let cp = runner.checkpoint(n);
        let act = cp.activated_at().expect("all activated");
        let stable = cp.stable_at().expect("all stable");
        assert!(act <= stable, "{n}: activation after stabilization");
    }
    let worst_stable = m
        .checkpoint_stable_s
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    assert!((m.constitution_done_s.unwrap() - worst_stable).abs() < 1.0);
}

#[test]
fn volume_scaling_changes_population_linearly() {
    let mut lo = grid_scenario(5);
    lo.demand = Demand::at_volume(20.0);
    let mut hi = grid_scenario(5);
    hi.demand = Demand::at_volume(100.0);
    let lo_pop = Runner::builder(&lo).build().true_population();
    let hi_pop = Runner::builder(&hi).build().true_population();
    let ratio = hi_pop as f64 / lo_pop as f64;
    assert!(
        (ratio - 5.0).abs() < 0.5,
        "population must scale with volume: {lo_pop} -> {hi_pop}"
    );
}

#[test]
fn scenario_serialization_reproduces_runs() {
    let s = grid_scenario(99);
    let json = serde_json::to_string(&s).unwrap();
    let s2: Scenario = serde_json::from_str(&json).unwrap();
    let run = |s: &Scenario| {
        let mut r = Runner::builder(s).build();
        let m = r.run(Goal::Collection, s.max_time_s);
        (m.global_count, m.collection_done_s.map(|t| t as i64))
    };
    assert_eq!(run(&s), run(&s2));
}
