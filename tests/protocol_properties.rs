//! Property-based tests of the full protocol stack: random maps, random
//! traffic, random protocol settings — exactness must hold everywhere
//! (Theorems 1/2 as a fuzzed invariant).

use proptest::prelude::*;
use vcount::prelude::*;

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        3usize..6,       // cols
        3usize..6,       // rows
        1u8..3,          // lanes
        20.0f64..100.0,  // volume
        1usize..4,       // seeds
        0.0f64..0.4,     // p_fail
        any::<u64>(),    // rng seed
        prop::bool::ANY, // open or closed
    )
        .prop_map(|(cols, rows, lanes, volume, seeds, p_fail, seed, open)| {
            let mut s = Scenario {
                map: MapSpec::Grid {
                    cols,
                    rows,
                    spacing_m: 150.0,
                    lanes,
                    speed_mps: 9.0,
                },
                closed: true,
                sim: SimConfig {
                    seed,
                    ..Default::default()
                },
                demand: Demand::at_volume(volume),
                protocol: CheckpointConfig::default(),
                channel: ChannelKind::Bernoulli(p_fail),
                seeds: SeedSpec::Random { count: seeds },
                transport: TransportMode::default(),
                patrol: PatrolSpec::default(),
                max_time_s: 2.0 * 3600.0,
            };
            if open {
                // Grids carry no interaction flags, so "open" here means
                // running the Open variant over a closed map — it must
                // degrade gracefully to closed-system behaviour.
                s.protocol = CheckpointConfig::for_variant(vcount::core::ProtocolVariant::Open);
            }
            s
        })
}

proptest! {
    // Full runs are costly; a modest case count still covers a wide space
    // across CI runs because failures persist in proptest-regressions.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Exactness under arbitrary grid deployments: converges, zero
    /// per-vehicle violations, global count == ground truth.
    #[test]
    fn counting_is_always_exact(s in arb_scenario()) {
        let mut runner = Runner::builder(&s).build();
        let m = runner.run(Goal::Collection, s.max_time_s);
        prop_assert!(m.collection_done_s.is_some(), "must converge");
        prop_assert_eq!(m.oracle_violations, 0);
        prop_assert_eq!(m.global_count, Some(m.true_population as i64));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The same invariant on irregular one-way-rich random cities.
    #[test]
    fn counting_is_exact_on_random_cities(map_seed in 0u64..5000, one_way in 0.0f64..0.7) {
        let s = Scenario {
            map: MapSpec::Random(RandomCityConfig {
                nodes: 18,
                one_way_fraction: one_way,
                seed: map_seed,
                ..Default::default()
            }),
            closed: true,
            sim: SimConfig { seed: map_seed, ..Default::default() },
            demand: Demand::at_volume(80.0),
            protocol: CheckpointConfig::default(),
            channel: ChannelKind::PAPER,
            seeds: SeedSpec::Random { count: 2 },
            transport: TransportMode::default(),
            patrol: PatrolSpec::default(),
            max_time_s: 3.0 * 3600.0,
        };
        let mut runner = Runner::builder(&s).build();
        let m = runner.run(Goal::Collection, s.max_time_s);
        prop_assert!(m.collection_done_s.is_some(), "must converge");
        prop_assert_eq!(m.oracle_violations, 0);
        prop_assert_eq!(m.global_count, Some(m.true_population as i64));
    }
}
