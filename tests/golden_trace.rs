//! Golden trace of the paper's Fig. 1 walkthrough.
//!
//! Replays exactly the script of `examples/three_intersections.rs` through
//! [`Checkpoint::handle`] and pins the complete [`ProtocolEvent`] stream each
//! checkpoint emits: activation and wave propagation (Alg. 1 phases 1–4),
//! counting at the seed and at n1 (phase 5), the backwash stopping every
//! inbound direction, and the report chain 2 → 1 → 0 of Alg. 2. Any change
//! to when or what the protocol emits shows up here as a diff against the
//! expected sequence.

use vcount::core::{
    Action, ActionKind, Checkpoint, CheckpointConfig, Command, Observation, ProtocolVariant,
    Replayer,
};
use vcount::roadnet::builders::fig1_triangle;
use vcount::roadnet::{EdgeId, NodeId};
use vcount::v2x::{BodyType, Brand, Color, Label, VehicleClass, VehicleId};
use vcount_obs::{EventFilter, EventKind, EventRecord, EventSink, JsonlSink, ProtocolEvent};

const CAR: VehicleClass = VehicleClass {
    color: Color::Silver,
    brand: Brand::Borealis,
    body: BodyType::Sedan,
};

fn handle(cp: &mut Checkpoint, obs: Observation, t: f64) -> Vec<Command> {
    let mut cmds = Vec::new();
    cp.handle(obs, t, &mut cmds);
    cmds
}

fn enter(cp: &mut Checkpoint, t: f64, vehicle: u64, via: EdgeId, label: Option<Label>) {
    handle(
        cp,
        Observation::Entered {
            vehicle: VehicleId(vehicle),
            via: Some(via),
            class: CAR,
            label,
        },
        t,
    );
}

fn deliver(cp: &mut Checkpoint, t: f64, vehicle: u64, onto: EdgeId) -> Label {
    let label = cp.offer_label(onto).expect("label pending");
    handle(
        cp,
        Observation::Departed {
            vehicle: VehicleId(vehicle),
            onto,
            delivered: true,
            matches_filter: true,
        },
        t,
    );
    label
}

/// Runs the Fig. 1 walkthrough and returns each checkpoint's event stream
/// (in emission order), exactly as the example drives it.
fn walkthrough() -> Vec<Vec<(f64, ProtocolEvent)>> {
    let net = fig1_triangle(250.0, 1, 6.7);
    let cfg = CheckpointConfig::for_variant(ProtocolVariant::Simple);
    let mut cps: Vec<Checkpoint> = net
        .node_ids()
        .map(|n| Checkpoint::new(&net, n, cfg))
        .collect();
    let e = |a: u32, b: u32| net.edge_between(NodeId(a), NodeId(b)).unwrap();

    // (a) seed initialization + three vehicles counted at n0.
    let mut seed_cmds = Vec::new();
    cps[0].activate_as_seed(0.0, &mut seed_cmds);
    for (vehicle, via, t) in [(1, e(1, 0), 1.0), (2, e(2, 0), 1.5), (3, e(1, 0), 2.0)] {
        enter(&mut cps[0], t, vehicle, via, None);
    }

    // (b) the wave: 0→1 activates n1, n1 counts one car, 1→2 activates n2.
    let l01 = deliver(&mut cps[0], 29.0, 1, e(0, 1));
    enter(&mut cps[1], 30.0, 1, e(0, 1), Some(l01));
    enter(&mut cps[1], 35.0, 4, e(2, 1), None);
    let l12 = deliver(&mut cps[1], 59.0, 4, e(1, 2));
    enter(&mut cps[2], 60.0, 4, e(1, 2), Some(l12));

    // (c) backwash: every remaining inbound direction is stopped.
    let l10 = deliver(&mut cps[1], 69.0, 1, e(1, 0));
    enter(&mut cps[0], 70.0, 1, e(1, 0), Some(l10));
    let l20 = deliver(&mut cps[2], 74.0, 4, e(2, 0));
    enter(&mut cps[0], 75.0, 4, e(2, 0), Some(l20));
    let l21 = deliver(&mut cps[2], 79.0, 2, e(2, 1));
    enter(&mut cps[1], 80.0, 2, e(2, 1), Some(l21));
    let l02 = deliver(&mut cps[0], 84.0, 3, e(0, 2));
    let cmds2 = handle(
        &mut cps[2],
        Observation::Entered {
            vehicle: VehicleId(3),
            via: Some(e(0, 2)),
            class: CAR,
            label: Some(l02),
        },
        85.0,
    );

    // (d) collection 2 → 1 → 0.
    let vcount::core::Command::SendReport { total, seq, .. } = cmds2[0] else {
        panic!("n2 must report on stabilization");
    };
    let cmds1 = handle(
        &mut cps[1],
        Observation::Report {
            from: NodeId(2),
            total,
            seq,
        },
        100.0,
    );
    let vcount::core::Command::SendReport { total, seq, .. } = cmds1[0] else {
        panic!("n1 must report after n2's report");
    };
    handle(
        &mut cps[0],
        Observation::Report {
            from: NodeId(1),
            total,
            seq,
        },
        120.0,
    );
    assert_eq!(cps[0].tree_total(), Some(4));

    cps.iter_mut()
        .map(|cp| {
            let mut evs = Vec::new();
            cp.drain_events_into(&mut evs);
            evs
        })
        .collect()
}

/// Replays the identical Fig. 1 script through the *pure machines only*
/// ([`Replayer`]) — no `Checkpoint` shell — and pins the FNV-1a dispatch
/// digest over everything the machines emitted. The digest constant is the
/// machine-level golden value: any semantic drift in the protocol core
/// (event or command content, ordering, timing) changes it.
#[test]
fn fig1_walkthrough_replays_machine_only_with_pinned_digest() {
    let net = fig1_triangle(250.0, 1, 6.7);
    let cfg = CheckpointConfig::for_variant(ProtocolVariant::Simple);
    let mut rp = Replayer::new(&net, cfg);
    let e = |a: u32, b: u32| net.edge_between(NodeId(a), NodeId(b)).unwrap();
    let n = |i: u32| NodeId(i);
    let apply = |rp: &mut Replayer, node: NodeId, at_s: f64, kind: ActionKind| {
        rp.apply(node, &Action { at_s, kind });
    };
    let entered =
        |vehicle: u64, via: vcount::roadnet::EdgeId, label: Option<Label>| ActionKind::Entered {
            vehicle: VehicleId(vehicle),
            via: Some(via),
            class: CAR,
            label,
        };
    let departed = |vehicle: u64, onto: vcount::roadnet::EdgeId| ActionKind::Departed {
        vehicle: VehicleId(vehicle),
        onto,
        delivered: true,
        matches_filter: true,
    };
    // The carried label is frozen into each `Entered` action exactly as the
    // recording engine would freeze it: offered at the departure checkpoint.
    let deliver = |rp: &mut Replayer, from: u32, t: f64, vehicle: u64, onto_node: u32| {
        let onto = e(from, onto_node);
        let label = rp.offer_label(n(from), onto).expect("label pending");
        apply(rp, n(from), t, departed(vehicle, onto));
        label
    };

    apply(&mut rp, n(0), 0.0, ActionKind::Seed);
    for (vehicle, via, t) in [(1, e(1, 0), 1.0), (2, e(2, 0), 1.5), (3, e(1, 0), 2.0)] {
        apply(&mut rp, n(0), t, entered(vehicle, via, None));
    }
    let l01 = deliver(&mut rp, 0, 29.0, 1, 1);
    apply(&mut rp, n(1), 30.0, entered(1, e(0, 1), Some(l01)));
    apply(&mut rp, n(1), 35.0, entered(4, e(2, 1), None));
    let l12 = deliver(&mut rp, 1, 59.0, 4, 2);
    apply(&mut rp, n(2), 60.0, entered(4, e(1, 2), Some(l12)));
    let l10 = deliver(&mut rp, 1, 69.0, 1, 0);
    apply(&mut rp, n(0), 70.0, entered(1, e(1, 0), Some(l10)));
    let l20 = deliver(&mut rp, 2, 74.0, 4, 0);
    apply(&mut rp, n(0), 75.0, entered(4, e(2, 0), Some(l20)));
    let l21 = deliver(&mut rp, 2, 79.0, 2, 1);
    apply(&mut rp, n(1), 80.0, entered(2, e(2, 1), Some(l21)));
    let l02 = deliver(&mut rp, 0, 84.0, 3, 2);
    apply(&mut rp, n(2), 85.0, entered(3, e(0, 2), Some(l02)));
    // Collection 2 → 1 → 0, with the report contents frozen in the actions
    // (n2 reports 0, n1 reports 1 — pinned by the shell-level golden test).
    apply(
        &mut rp,
        n(1),
        100.0,
        ActionKind::Report {
            from: n(2),
            total: 0,
            seq: 1,
        },
    );
    apply(
        &mut rp,
        n(0),
        120.0,
        ActionKind::Report {
            from: n(1),
            total: 1,
            seq: 1,
        },
    );

    assert_eq!(rp.actions_applied(), 19);
    assert_eq!(rp.local_counts(), vec![3, 1, 0]);
    assert_eq!(rp.tree_totals(), vec![Some(4), Some(1), Some(0)]);
    // The machine-level golden digest of the Fig. 1 walkthrough.
    assert_eq!(rp.digest(), 0x2127_3CAD_028B_D1D4);
}

/// Compact, readable rendering used for the golden comparison.
fn fmt(t: f64, ev: ProtocolEvent) -> String {
    use ProtocolEvent as E;
    let body = match ev {
        E::CheckpointActivated {
            node,
            pred,
            is_seed,
            ..
        } => match pred {
            Some(p) => format!("activated n{node} pred=n{p} seed={is_seed}"),
            None => format!("activated n{node} pred=- seed={is_seed}"),
        },
        E::CheckpointStable { node } => format!("stable n{node}"),
        E::LabelEmitted { node, edge, .. } => format!("label_out n{node} e{edge}"),
        E::LabelHandoffAcked {
            node,
            edge,
            vehicle,
        } => {
            format!("handoff_ack n{node} e{edge} veh{vehicle}")
        }
        E::LabelHandoffFailed {
            node,
            edge,
            vehicle,
        } => {
            format!("handoff_fail n{node} e{edge} veh{vehicle}")
        }
        E::LossCompensation {
            node,
            edge,
            vehicle,
        } => {
            format!("loss_comp n{node} e{edge} veh{vehicle}")
        }
        E::InboundStopped { node, edge } => format!("stop_in n{node} e{edge}"),
        E::VehicleCounted { node, vehicle, .. } => format!("count n{node} veh{vehicle}"),
        E::OvertakeAdjustment { node, plus, minus } => {
            format!("adjust n{node} +{plus} -{minus}")
        }
        E::ReportSent {
            node,
            to,
            total,
            seq,
        } => format!("report n{node}->n{to} total={total} seq={seq}"),
        E::ReportSuperseded { node, child, .. } => format!("supersede n{node} child=n{child}"),
        E::PatrolStatusRelay { node, vehicle, .. } => format!("patrol n{node} veh{vehicle}"),
        E::BorderEntry { node, vehicle } => format!("border_in n{node} veh{vehicle}"),
        E::BorderExit { node, vehicle } => format!("border_out n{node} veh{vehicle}"),
        // Fault-injection events come from the simulator's fault layer,
        // never from the checkpoint state machines driven here.
        E::CheckpointCrashed { .. }
        | E::CheckpointRecovered { .. }
        | E::FaultMessageDropped { .. }
        | E::ChannelBlackout { .. }
        | E::FaultWatchDropped { .. } => unreachable!("checkpoints do not emit fault events"),
    };
    format!("t={t} {body}")
}

#[test]
fn fig1_walkthrough_event_stream_is_pinned() {
    let streams = walkthrough();
    let actual: Vec<Vec<String>> = streams
        .iter()
        .map(|evs| evs.iter().map(|&(t, ev)| fmt(t, ev)).collect())
        .collect();

    // n0 (the seed): activates at t=0, counts vehicles 1–3, emits the wave
    // labels as soon as a vehicle departs onto each successor direction
    // (veh 1 onto 0→1, veh 3 onto 0→2), and is stopped on both inbound
    // directions by the backwash.
    let n0 = vec![
        "t=0 activated n0 pred=- seed=true",
        "t=1 count n0 veh1",
        "t=1.5 count n0 veh2",
        "t=2 count n0 veh3",
        "t=29 label_out n0 e0",
        "t=29 handoff_ack n0 e0 veh1",
        "t=70 stop_in n0 e1",
        "t=75 stop_in n0 e4",
        "t=75 stable n0",
        "t=84 label_out n0 e5",
        "t=84 handoff_ack n0 e5 veh3",
    ];
    // n1: activated by the 0→1 label (pred n0), counts vehicle 4 from n2,
    // hands labels onward (veh 4 carries 1→2, veh 1 carries the 1→0
    // backwash), stabilizes when the 2→1 backwash label arrives, and
    // reports 1 up the tree after n2's 0 arrives.
    let n1 = vec![
        "t=30 activated n1 pred=n0 seed=false",
        "t=35 count n1 veh4",
        "t=59 label_out n1 e2",
        "t=59 handoff_ack n1 e2 veh4",
        "t=69 label_out n1 e1",
        "t=69 handoff_ack n1 e1 veh1",
        "t=80 stop_in n1 e3",
        "t=80 stable n1",
        "t=100 report n1->n0 total=1 seq=1",
    ];
    // n2: activated by the 1→2 label (pred n1), counts nothing (both its
    // inbound directions carry already-counted traffic), hands the backwash
    // labels to n0 (veh 4) and n1 (veh 2), stabilizes when the 0→2 label
    // arrives, and immediately reports its empty subtree.
    let n2 = vec![
        "t=60 activated n2 pred=n1 seed=false",
        "t=74 label_out n2 e4",
        "t=74 handoff_ack n2 e4 veh4",
        "t=79 label_out n2 e3",
        "t=79 handoff_ack n2 e3 veh2",
        "t=85 stop_in n2 e5",
        "t=85 stable n2",
        "t=85 report n2->n1 total=0 seq=1",
    ];
    let expected = [n0, n1, n2];
    for (node, (act, exp)) in actual.iter().zip(expected.iter()).enumerate() {
        assert_eq!(act, exp, "event stream of checkpoint n{node} diverged");
    }
    assert_eq!(actual.len(), 3);
}

#[test]
fn fig1_walkthrough_exports_parseable_jsonl() {
    use std::sync::{Arc, Mutex};

    // A Send-able in-memory writer so the stream can be inspected.
    #[derive(Clone, Default)]
    struct Shared(Arc<Mutex<Vec<u8>>>);
    impl std::io::Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let buf = Shared::default();
    let mut sink = JsonlSink::filtered(
        Box::new(buf.clone()),
        EventFilter::of([
            EventKind::CheckpointActivated,
            EventKind::VehicleCounted,
            EventKind::ReportSent,
        ]),
    );
    let streams = walkthrough();
    let mut emitted = 0usize;
    for (node, evs) in streams.into_iter().enumerate() {
        for (t, event) in evs {
            let _ = node;
            sink.record(&EventRecord {
                time_s: t,
                seed_epoch: 0,
                event,
            });
            emitted += 1;
        }
    }
    sink.flush();
    assert!(sink.error().is_none());
    assert_eq!(emitted, 28, "the walkthrough emits 28 events in total");

    let bytes = buf.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    // 3 activations + 4 counts + 2 reports survive the filter.
    assert_eq!(lines.len(), 9, "filter admits exactly 9 records:\n{text}");
    for line in lines {
        let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON per line");
        assert!(v["t"].as_f64().is_some());
        let kind = v["kind"].as_str().unwrap();
        assert!(
            ["checkpoint_activated", "vehicle_counted", "report_sent"].contains(&kind),
            "unexpected kind {kind}"
        );
        assert!(v["node"].as_u64().is_some());
    }
}
