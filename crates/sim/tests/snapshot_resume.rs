//! Snapshot/resume determinism: freezing a run mid-flight, serializing the
//! snapshot to JSON, and resuming from the parsed copy must replay the
//! exact event stream the uninterrupted run produces — byte for byte —
//! under all three protocol variants (DESIGN.md §6quater).

use std::sync::{Arc, Mutex};

use vcount_core::{CheckpointConfig, ProtocolVariant};
use vcount_obs::{EventRecord, EventSink};
use vcount_sim::{EngineSnapshot, Goal, Runner, Scenario};
use vcount_sim::{MapSpec, PatrolSpec, SeedSpec, TransportMode};
use vcount_traffic::{Demand, SimConfig};
use vcount_v2x::ChannelKind;

/// Collects every record's JSONL line so streams can be compared and
/// digested byte for byte.
struct VecSink(Arc<Mutex<Vec<String>>>);

impl EventSink for VecSink {
    fn record(&mut self, rec: &EventRecord) {
        self.0.lock().unwrap().push(rec.to_json());
    }
}

/// FNV-1a over the JSONL stream (one implicit `\n` per line), the same
/// digest `run_checks.sh` computes for the CLI smoke test.
fn fnv1a(lines: &[String]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for line in lines {
        for &b in line.as_bytes() {
            eat(b);
        }
        eat(b'\n');
    }
    h
}

fn scenario(variant: ProtocolVariant, seed: u64) -> Scenario {
    let mut s = Scenario {
        map: MapSpec::Grid {
            cols: 3,
            rows: 3,
            spacing_m: 120.0,
            lanes: 2,
            speed_mps: 10.0,
        },
        closed: variant != ProtocolVariant::Open,
        sim: SimConfig {
            seed,
            detect_overtakes: true,
            speed_factor_range: (0.6, 1.0),
            ..Default::default()
        },
        demand: Demand::at_volume(60.0),
        protocol: CheckpointConfig::for_variant(variant),
        channel: ChannelKind::PAPER,
        seeds: SeedSpec::Random { count: 2 },
        transport: TransportMode::default(),
        patrol: PatrolSpec::default(),
        max_time_s: 1200.0,
    };
    if variant == ProtocolVariant::Extended {
        // Exercise the patrol-carried queues and status exchange too.
        s.transport = TransportMode::VehicleWithPatrolFallback;
        s.patrol = PatrolSpec { cars: 1 };
    }
    s
}

/// Runs `prefix_steps`, snapshots through a JSON round-trip, resumes, and
/// checks the stitched prefix+tail stream is byte-identical (same FNV
/// digest, same lines) to an uninterrupted run of the same total length.
fn roundtrip(variant: ProtocolVariant, seed: u64) {
    let scen = scenario(variant, seed);
    let total_steps = 600usize;
    let prefix_steps = 217usize;

    // Uninterrupted reference run.
    let full = Arc::new(Mutex::new(Vec::new()));
    let mut reference = Runner::builder(&scen)
        .sink(Box::new(VecSink(full.clone())))
        .build();
    for _ in 0..total_steps {
        reference.step();
    }
    reference.flush_sinks();
    let full = full.lock().unwrap().clone();
    assert!(
        !full.is_empty(),
        "{variant:?}: reference run emitted no events"
    );

    // Interrupted run: prefix, freeze, JSON round-trip, resume, tail.
    let prefix = Arc::new(Mutex::new(Vec::new()));
    let mut first = Runner::builder(&scen)
        .sink(Box::new(VecSink(prefix.clone())))
        .build();
    for _ in 0..prefix_steps {
        first.step();
    }
    first.flush_sinks();
    let snap_json = first.snapshot().to_json();
    drop(first);

    let snap = EngineSnapshot::from_json(&snap_json).expect("snapshot JSON parses");
    let tail = Arc::new(Mutex::new(Vec::new()));
    let mut resumed = Runner::resume_with(&snap, vec![Box::new(VecSink(tail.clone()))], 4096);
    assert_eq!(
        resumed.time_s(),
        snap.sim.time_s,
        "resume restores the clock"
    );
    for _ in 0..(total_steps - prefix_steps) {
        resumed.step();
    }
    resumed.flush_sinks();

    let mut stitched = prefix.lock().unwrap().clone();
    stitched.extend(tail.lock().unwrap().iter().cloned());

    assert_eq!(
        fnv1a(&full),
        fnv1a(&stitched),
        "{variant:?}: resumed stream digest diverged from the reference"
    );
    assert_eq!(full, stitched, "{variant:?}: resumed stream diverged");

    // The resumed run's end state must match the reference's too.
    assert_eq!(reference.time_s(), resumed.time_s(), "{variant:?}");
    assert_eq!(
        reference.distributed_count(),
        resumed.distributed_count(),
        "{variant:?}"
    );
    assert_eq!(
        reference.verify().len(),
        resumed.verify().len(),
        "{variant:?}: oracle verdicts diverged"
    );
}

#[test]
fn simple_variant_resumes_byte_identical() {
    roundtrip(ProtocolVariant::Simple, 11);
}

#[test]
fn extended_variant_with_patrol_resumes_byte_identical() {
    roundtrip(ProtocolVariant::Extended, 22);
}

#[test]
fn open_variant_resumes_byte_identical() {
    roundtrip(ProtocolVariant::Open, 33);
}

#[test]
fn snapshot_rejects_wrong_schema() {
    let scen = scenario(ProtocolVariant::Simple, 5);
    let mut runner = Runner::builder(&scen).build();
    runner.step();
    let mut snap = runner.snapshot();
    snap.schema = "vcount-engine-snapshot/v0".to_string();
    let err = EngineSnapshot::from_json(&snap.to_json()).unwrap_err();
    assert!(err.contains("unsupported snapshot schema"), "{err}");
}

#[test]
fn goal_run_after_resume_matches_reference() {
    // Beyond fixed-step stitching: resume mid-run, then drive both to the
    // constitution goal and compare the final metrics.
    let scen = scenario(ProtocolVariant::Extended, 77);
    let mut reference = Runner::builder(&scen).build();
    let m_ref = reference.run(Goal::Constitution, scen.max_time_s);

    let mut first = Runner::builder(&scen).build();
    for _ in 0..150 {
        first.step();
    }
    let snap = first.snapshot();
    let mut resumed = Runner::resume(&snap);
    while resumed.time_s() < scen.max_time_s && !resumed.all_stable() {
        resumed.step();
    }
    let m_res = resumed.metrics_now();
    assert_eq!(m_ref.global_count, m_res.global_count);
    assert_eq!(m_ref.true_population, m_res.true_population);
    assert_eq!(m_ref.oracle_violations, 0);
    assert_eq!(m_res.oracle_violations, 0);
    assert_eq!(m_ref.checkpoint_stable_s, m_res.checkpoint_stable_s);
}
