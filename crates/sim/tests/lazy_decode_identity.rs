//! The lazy-decode contract (DESIGN.md §9): decode strategy is a
//! throughput knob, never a semantics knob. For every scenario family the
//! protocol event stream, the final counts, and the per-checkpoint
//! machine states must be *byte-identical* between lazy decode (the
//! default: discarded deliveries are never parsed) and forced eager
//! decode (`--eager-decode`: the pre-zero-copy parse-everything
//! behavior) — including under a fault plan that exercises every discard
//! path: crashes (dropped queued/carried messages and labels), a radio
//! blackout window, and duplicate/delay/reorder message chaos.
//!
//! The only observable difference is the wire telemetry split: lazy runs
//! move the never-consumed messages from `messages_decoded` into
//! `messages_skipped_decode`, and the two modes' counters reconcile
//! exactly (`decoded_eager = decoded_lazy + skipped_lazy`).

use std::sync::{Arc, Mutex};

use vcount_core::{CheckpointConfig, CheckpointState, ProtocolVariant};
use vcount_obs::{EventRecord, EventSink};
use vcount_roadnet::builders::ManhattanConfig;
use vcount_sim::{Blackout, ChaosFault, CrashFault, FaultPlan, RunMetrics, Runner, Scenario};
use vcount_sim::{MapSpec, PatrolSpec, SeedSpec, TransportMode};
use vcount_traffic::{Demand, SimConfig};
use vcount_v2x::ChannelKind;

struct VecSink(Arc<Mutex<Vec<String>>>);

impl EventSink for VecSink {
    fn record(&mut self, rec: &EventRecord) {
        self.0.lock().unwrap().push(rec.to_json());
    }
}

/// 64-bit FNV-1a over the JSONL stream — one order-sensitive digest per
/// run, so a mismatch report stays readable even for long streams.
fn fnv_digest(lines: &[String]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for line in lines {
        for &b in line.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        h ^= u64::from(b'\n');
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

fn grid_scenario(variant: ProtocolVariant, seed: u64) -> Scenario {
    let mut s = Scenario {
        map: MapSpec::Grid {
            cols: 4,
            rows: 4,
            spacing_m: 130.0,
            lanes: 2,
            speed_mps: 10.0,
        },
        closed: true,
        sim: SimConfig {
            seed,
            detect_overtakes: true,
            speed_factor_range: (0.6, 1.0),
            ..Default::default()
        },
        demand: Demand::at_volume(60.0),
        protocol: CheckpointConfig::for_variant(variant),
        channel: ChannelKind::PAPER,
        seeds: SeedSpec::Random { count: 2 },
        transport: TransportMode::default(),
        patrol: PatrolSpec::default(),
        max_time_s: 1500.0,
    };
    if variant == ProtocolVariant::Extended {
        s.transport = TransportMode::VehicleWithPatrolFallback;
        s.patrol = PatrolSpec { cars: 1 };
    }
    s
}

/// The open-system family: border checkpoints, live entry/exit tracking.
fn open_scenario(seed: u64) -> Scenario {
    Scenario {
        map: MapSpec::Manhattan(ManhattanConfig::small()),
        closed: false,
        sim: SimConfig {
            seed,
            spawn_rate_hz: 0.2,
            detect_overtakes: true,
            ..Default::default()
        },
        demand: Demand::at_volume(50.0),
        protocol: CheckpointConfig::for_variant(ProtocolVariant::Open),
        channel: ChannelKind::PAPER,
        seeds: SeedSpec::AllBorder,
        transport: Default::default(),
        patrol: PatrolSpec::default(),
        max_time_s: 900.0,
    }
}

/// Exercises every lazy-discard path at once: two crash windows (queued
/// messages, carried reports, and carried labels dropped at down nodes),
/// a regional blackout, and a chaos window injecting duplicates, delays,
/// and reorders on the relay and patrol-carried paths.
fn chaos_plan() -> FaultPlan {
    FaultPlan {
        seed: 23,
        crashes: vec![
            CrashFault {
                node: 5,
                at_s: 60.0,
                recover_s: 300.0,
            },
            CrashFault {
                node: 10,
                at_s: 120.0,
                recover_s: 420.0,
            },
        ],
        blackouts: vec![Blackout {
            nodes: vec![1, 2],
            from_s: 150.0,
            until_s: 280.0,
        }],
        chaos: Some(ChaosFault {
            from_s: 30.0,
            until_s: 600.0,
            duplicate_p: 0.3,
            delay_p: 0.3,
            max_delay_s: 12.0,
            reorder_p: 0.3,
        }),
        image_every_s: 60.0,
    }
}

struct Capture {
    stream: Vec<String>,
    metrics: RunMetrics,
    checkpoints: Vec<CheckpointState>,
}

fn capture(scen: &Scenario, eager: bool, plan: Option<FaultPlan>, steps: usize) -> Capture {
    let lines = Arc::new(Mutex::new(Vec::new()));
    let mut builder = Runner::builder(scen)
        .eager_decode(eager)
        .sink(Box::new(VecSink(lines.clone())));
    if let Some(p) = plan {
        builder = builder.faults(p);
    }
    let mut runner = builder.build();
    for _ in 0..steps {
        runner.step();
    }
    runner.flush_sinks();
    let metrics = runner.metrics_now();
    let checkpoints = runner.snapshot().checkpoints;
    let stream = lines.lock().unwrap().clone();
    Capture {
        stream,
        metrics,
        checkpoints,
    }
}

/// Compares two runs' metrics, skipping only the fields the decode
/// strategy legitimately moves: wall-clock timings (nondeterministic)
/// and the `messages_decoded`/`messages_skipped_decode` split itself.
fn assert_metrics_identical(a: &RunMetrics, b: &RunMetrics, what: &str) {
    let normalized = |m: &RunMetrics| {
        let mut t = m.telemetry;
        t.traffic_step_secs = 0.0;
        t.protocol_secs = 0.0;
        t.relay_secs = 0.0;
        t.messages_decoded = 0;
        t.messages_skipped_decode = 0;
        t
    };
    assert_eq!(a.constitution_done_s, b.constitution_done_s, "{what}");
    assert_eq!(a.collection_done_s, b.collection_done_s, "{what}");
    assert_eq!(a.global_count, b.global_count, "{what}");
    assert_eq!(a.true_population, b.true_population, "{what}");
    assert_eq!(a.oracle_violations, b.oracle_violations, "{what}");
    assert_eq!(a.handoff_failures, b.handoff_failures, "{what}");
    assert_eq!(a.overtake_adjustments, b.overtake_adjustments, "{what}");
    assert_eq!(a.baseline_naive, b.baseline_naive, "{what}");
    assert_eq!(a.baseline_dedup, b.baseline_dedup, "{what}");
    assert_eq!(a.degraded, b.degraded, "{what}");
    assert_eq!(a.elapsed_s, b.elapsed_s, "{what}");
    assert_eq!(a.steps, b.steps, "{what}");
    assert_eq!(normalized(a), normalized(b), "{what}");
}

fn assert_decode_invariant(scen: &Scenario, plan: Option<FaultPlan>, steps: usize, what: &str) {
    let lazy = capture(scen, false, plan.clone(), steps);
    assert!(
        !lazy.stream.is_empty(),
        "{what}: lazy run emitted no events"
    );
    let eager = capture(scen, true, plan, steps);

    assert_eq!(
        fnv_digest(&lazy.stream),
        fnv_digest(&eager.stream),
        "{what}: event digest diverged between lazy and eager decode"
    );
    assert_eq!(
        lazy.stream, eager.stream,
        "{what}: event stream diverged between lazy and eager decode"
    );
    assert_metrics_identical(&lazy.metrics, &eager.metrics, what);
    assert_eq!(
        lazy.checkpoints, eager.checkpoints,
        "{what}: per-checkpoint machine states diverged"
    );

    // The counter split reconciles exactly: eager parses precisely the
    // messages lazy skipped, nothing more.
    let (lt, et) = (&lazy.metrics.telemetry, &eager.metrics.telemetry);
    assert_eq!(et.messages_skipped_decode, 0, "{what}: eager mode skipped");
    assert_eq!(
        et.messages_decoded,
        lt.messages_decoded + lt.messages_skipped_decode,
        "{what}: decode counters do not reconcile"
    );
    assert_eq!(lt.messages_encoded, et.messages_encoded, "{what}");
    assert_eq!(lt.wire_bytes, et.wire_bytes, "{what}");
}

#[test]
fn simple_variant_is_decode_strategy_invariant() {
    let scen = grid_scenario(ProtocolVariant::Simple, 42);
    assert_decode_invariant(&scen, None, 900, "simple");
}

#[test]
fn extended_variant_is_decode_strategy_invariant() {
    let scen = grid_scenario(ProtocolVariant::Extended, 43);
    assert_decode_invariant(&scen, None, 900, "extended");
}

#[test]
fn open_variant_is_decode_strategy_invariant() {
    let scen = open_scenario(44);
    assert_decode_invariant(&scen, None, 700, "open");
}

#[test]
fn chaos_and_blackout_faults_are_decode_strategy_invariant() {
    let scen = grid_scenario(ProtocolVariant::Simple, 45);
    assert_decode_invariant(&scen, Some(chaos_plan()), 900, "chaos faults");

    // The fault plan actually exercised the lazy path: down recipients
    // and dropped duplicates left unparsed payloads behind.
    let lazy = capture(&scen, false, Some(chaos_plan()), 900);
    assert!(
        lazy.metrics.telemetry.messages_skipped_decode > 0,
        "fault plan produced no skipped decodes — the lazy path was never taken"
    );
}
