//! Guards the allocation-free steady state of the exchange's due-message
//! takes.
//!
//! [`Exchange::take_due_reports`] and [`Exchange::take_due_patrol`] hand
//! out reusable scratch buffers. They must come from *distinct* scratch
//! slots: the engine takes both in the same arrival (reports first, patrol
//! second), so a shared slot would hand the second take a freshly
//! allocated vector every time — a per-arrival allocation the original
//! shared-`due_scratch` implementation actually had. A counting global
//! allocator pins the fix: after one warm-up take per slot, a window of
//! paired take/recycle cycles must not allocate at all.
//!
//! This is the only test in this file on purpose, and the counter only
//! ticks while the measuring thread raises a thread-local flag: libtest's
//! harness threads share the process allocator and allocate at
//! unpredictable moments, which would otherwise fail the window
//! spuriously.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use vcount_roadnet::{EdgeId, NodeId};
use vcount_sim::Exchange;
use vcount_v2x::{Label, Message, VehicleId};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Const-initialised `Cell<bool>` has no destructor and no lazy
    // registration, so reading it inside the allocator never allocates.
    static MEASURING: Cell<bool> = const { Cell::new(false) };
}

struct Counting;

// SAFETY: delegates directly to the system allocator; the counter is a
// relaxed atomic with no other side effects. `try_with` (not `with`)
// keeps late allocations during thread teardown from panicking.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if MEASURING.try_with(Cell::get).unwrap_or(false) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if MEASURING.try_with(Cell::get).unwrap_or(false) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

#[test]
fn paired_due_takes_do_not_allocate() {
    const WINDOW: usize = 200;
    let nodes = WINDOW + 2;
    let mut ex = Exchange::new(1, nodes);
    let v = VehicleId(0);
    let msg = Message::Label(Label {
        origin: NodeId(0),
        origin_pred: None,
        seed: NodeId(0),
    });

    // Preload one envelope per destination onto the carried queues (this
    // part allocates freely: payload encoding, queue growth).
    for i in 1..nodes {
        ex.post_report(NodeId(0), EdgeId(0), NodeId(i as u32), &msg);
        ex.post_patrol(NodeId(0), NodeId(i as u32), &msg);
    }
    ex.load_reports(NodeId(0), v, EdgeId(0));
    ex.pickup_patrol(v, NodeId(0));

    // Warm-up: one take per slot grows each scratch buffer to capacity.
    let r = ex.take_due_reports(v, NodeId(1));
    let p = ex.take_due_patrol(v, NodeId(1));
    assert_eq!((r.len(), p.len()), (1, 1), "warm-up takes missed");
    ex.recycle_reports(r);
    ex.recycle_patrol(p);

    let before = ALLOCS.load(Ordering::Relaxed);
    MEASURING.with(|m| m.set(true));
    let mut taken = 0usize;
    for i in 2..nodes {
        let r = ex.take_due_reports(v, NodeId(i as u32));
        let p = ex.take_due_patrol(v, NodeId(i as u32));
        taken += r.len() + p.len();
        ex.recycle_reports(r);
        ex.recycle_patrol(p);
    }
    MEASURING.with(|m| m.set(false));
    let delta = ALLOCS.load(Ordering::Relaxed) - before;

    assert_eq!(taken, 2 * WINDOW, "measurement window missed envelopes");
    assert_eq!(
        delta, 0,
        "paired take/recycle cycles allocated {delta} times over {WINDOW} \
         arrivals — the due-scratch slots are being clobbered"
    );
}
