//! The `vcountd` trust boundary (DESIGN.md §10): everything arriving over
//! the wire is validated at the service edge, and a malformed or hostile
//! feeder is answered with [`ServiceResponse::Error`] — it never panics
//! the daemon, never mutates its own tenant, and never perturbs another
//! tenant's byte-identical stream. The engine's internal panics on the
//! same conditions remain as debug contracts for trusted in-process
//! sources; these tests pin the boundary where trust ends.

use std::sync::{Arc, Mutex};

use vcount_core::{CheckpointConfig, ProtocolVariant};
use vcount_obs::{EventRecord, EventSink};
use vcount_roadnet::{EdgeId, NodeId};
use vcount_sim::{
    serve_connections, Conn, Goal, Listener, ObservationBatch, ObservationSource, RunManager,
    RunMetrics, Runner, Scenario, ServiceConfig, ServiceRequest, ServiceResponse, SimulatorSource,
    WireClient,
};
use vcount_sim::{MapSpec, PatrolSpec, SeedSpec, TransportMode};
use vcount_traffic::{Demand, SimConfig, TrafficEvent};
use vcount_v2x::{VehicleClass, VehicleId};

struct VecSink(Arc<Mutex<Vec<String>>>);

impl EventSink for VecSink {
    fn record(&mut self, rec: &EventRecord) {
        self.0.lock().unwrap().push(rec.to_json());
    }
}

/// 64-bit FNV-1a over the JSONL stream, as the identity tests use.
fn fnv_digest(lines: &[String]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for line in lines {
        for &b in line.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        h ^= u64::from(b'\n');
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

fn grid_scenario(seed: u64) -> Scenario {
    Scenario {
        map: MapSpec::Grid {
            cols: 4,
            rows: 4,
            spacing_m: 130.0,
            lanes: 2,
            speed_mps: 10.0,
        },
        closed: true,
        sim: SimConfig {
            seed,
            detect_overtakes: true,
            speed_factor_range: (0.6, 1.0),
            ..Default::default()
        },
        demand: Demand::at_volume(60.0),
        protocol: CheckpointConfig::for_variant(ProtocolVariant::Simple),
        channel: vcount_v2x::ChannelKind::PAPER,
        seeds: SeedSpec::Random { count: 2 },
        transport: TransportMode::default(),
        patrol: PatrolSpec::default(),
        max_time_s: 1500.0,
    }
}

/// The in-process reference stream and metrics for `scen`.
fn capture_batch(scen: &Scenario) -> (Vec<String>, RunMetrics) {
    let lines = Arc::new(Mutex::new(Vec::new()));
    let mut runner = Runner::builder(scen)
        .sink(Box::new(VecSink(lines.clone())))
        .build();
    let _ = runner.run(Goal::Collection, scen.max_time_s);
    let metrics = runner.metrics_now();
    let out = lines.lock().unwrap().clone();
    (out, metrics)
}

/// Applies one request; event lines go to `events`, everything else (the
/// terminal response — possibly an Error, which is what these tests are
/// about) is returned.
fn call(mgr: &mut RunManager, req: ServiceRequest, events: &mut Vec<String>) -> ServiceResponse {
    let mut out = Vec::new();
    mgr.handle(req, &mut out);
    let mut terminal = None;
    for resp in out {
        match resp {
            ServiceResponse::Event { line, .. } => events.push(line),
            other => {
                assert!(terminal.is_none(), "more than one terminal response");
                terminal = Some(other);
            }
        }
    }
    terminal.expect("framing: every request ends in one terminal response")
}

fn start_request(run: &str, scen: &Scenario) -> ServiceRequest {
    ServiceRequest::Start {
        run: run.into(),
        scenario: Box::new(scen.clone()),
        goal: Some(Goal::Collection),
        shards: 0,
        eager_decode: false,
        faults: None,
        trace: None,
    }
}

fn observe(run: &str, batch: &ObservationBatch) -> ServiceRequest {
    ServiceRequest::Observe {
        run: run.into(),
        batch: batch.clone(),
    }
}

fn expect_malformed(resp: ServiceResponse, what: &str) {
    match resp {
        ServiceResponse::Error { message, .. } => assert!(
            message.contains("malformed batch"),
            "{what}: unexpected error message {message:?}"
        ),
        other => panic!("{what}: expected Error, got {other:?}"),
    }
}

/// Every malformed-batch shape the wire can carry is rejected with an
/// Error that poisons only that request: the same run then continues to a
/// byte-identical stream and identical metrics — the rejected batches
/// left zero trace in the tenant.
#[test]
fn malformed_batches_error_without_perturbing_the_run() {
    let scen = grid_scenario(131);
    let (reference, ref_metrics) = capture_batch(&scen);
    assert!(!reference.is_empty());

    // One poison per kind, each derived from the genuine batch of some
    // step so all the *other* fields stay plausible.
    type Poison = (&'static str, fn(&mut ObservationBatch));
    let poisons: &[Poison] = &[
        ("non-finite now", |b| b.now = f64::NAN),
        ("non-dense class announcement", |b| {
            let next = b
                .new_classes
                .last()
                .map(|(v, _)| v.index() + 2)
                .unwrap_or(usize::MAX);
            b.new_classes
                .push((VehicleId(next as u64), VehicleClass::WHITE_VAN));
        }),
        ("unknown vehicle in event", |b| {
            b.events.push(TrafficEvent::Exited {
                vehicle: VehicleId(u64::MAX),
                node: NodeId(0),
            });
        }),
        ("out-of-range node in event", |b| {
            b.events.push(TrafficEvent::Exited {
                vehicle: VehicleId(0),
                node: NodeId(u32::MAX),
            });
        }),
        ("out-of-range edge in event", |b| {
            b.events.push(TrafficEvent::Overtake {
                edge: EdgeId(u32::MAX),
                overtaker: VehicleId(0),
                overtaken: VehicleId(0),
            });
        }),
        ("departure without in-transit capture", |b| {
            let onto = (0..u32::MAX)
                .map(EdgeId)
                .find(|e| !b.in_transit_index.iter().any(|(ie, _, _)| ie == e))
                .expect("some low edge id is uncaptured");
            b.events.push(TrafficEvent::Departed {
                vehicle: VehicleId(0),
                node: NodeId(0),
                onto,
            });
        }),
        ("in-transit slice out of bounds", |b| {
            let len = b.in_transit_vehicles.len() as u32;
            b.in_transit_index.push((EdgeId(0), 0, len + 7));
        }),
        ("in-transit slice u32 overflow", |b| {
            // start + len wraps to a tiny value in u32 — the historical
            // panic-or-worse path; the validator must sum in u64.
            b.in_transit_index.push((EdgeId(0), u32::MAX, u32::MAX));
        }),
        ("unknown vehicle in in-transit storage", |b| {
            b.in_transit_index
                .push((EdgeId(0), b.in_transit_vehicles.len() as u32, 1));
            b.in_transit_vehicles.push(VehicleId(u64::MAX));
        }),
    ];
    let mut mgr = RunManager::new(ServiceConfig::default());
    let mut events = Vec::new();
    assert!(matches!(
        call(&mut mgr, start_request("t", &scen), &mut events),
        ServiceResponse::Started { .. }
    ));

    let mut source = SimulatorSource::from_scenario(&scen, 1);
    let mut batch = ObservationBatch::default();
    let mut step = 0usize;
    let mut done = false;
    while !done && source.next_batch(&mut batch) {
        // Interleave one poison ahead of each of the first few genuine
        // batches; every poison must bounce without touching the tenant.
        if let Some((what, poison)) = poisons.get(step) {
            let mut bad = batch.clone();
            poison(&mut bad);
            let before = events.len();
            expect_malformed(call(&mut mgr, observe("t", &bad), &mut events), what);
            assert_eq!(
                events.len(),
                before,
                "{what}: a rejected batch emitted events"
            );
        }
        match call(&mut mgr, observe("t", &batch), &mut events) {
            ServiceResponse::Accepted { done: d, .. } => done = d,
            other => panic!("genuine batch at step {step} answered with {other:?}"),
        }
        step += 1;
    }
    assert!(
        step > poisons.len(),
        "run ended before every poison was tried"
    );

    let finished = call(
        &mut mgr,
        ServiceRequest::Finish {
            run: "t".into(),
            truth: source.truth(),
        },
        &mut events,
    );
    let ServiceResponse::Finished { metrics, .. } = finished else {
        panic!("Finish answered with {finished:?}");
    };
    assert_eq!(
        fnv_digest(&events),
        fnv_digest(&reference),
        "poisoned requests perturbed the surviving stream"
    );
    assert_eq!(events, reference);
    assert_eq!(metrics.global_count, ref_metrics.global_count);
    assert_eq!(metrics.steps, ref_metrics.steps);
    assert_eq!(metrics.oracle_violations, ref_metrics.oracle_violations);
}

/// A Start whose scenario violates an *internal* contract (here: an
/// explicit seed index no checkpoint has) would panic deep inside engine
/// construction; the service converts that unwind into an Error and stays
/// fully serviceable — the next tenant on the same manager runs
/// byte-identically to its solo reference.
#[test]
fn panicking_start_becomes_an_error_and_spares_the_manager() {
    let mut hostile = grid_scenario(132);
    hostile.seeds = SeedSpec::Explicit(vec![9999]);

    let mut mgr = RunManager::new(ServiceConfig::default());
    let mut events = Vec::new();
    match call(&mut mgr, start_request("evil", &hostile), &mut events) {
        ServiceResponse::Error { run, message } => {
            assert_eq!(run, "evil");
            assert!(message.contains("start failed"), "got {message:?}");
        }
        other => panic!("hostile Start answered with {other:?}"),
    }
    assert!(events.is_empty(), "a failed Start must not emit events");
    assert_eq!(
        mgr.runs().count(),
        0,
        "no tenant may survive a failed Start"
    );

    // Unparseable wire bytes are likewise an unattributable Error.
    let mut out = Vec::new();
    mgr.handle_line("this is not json", &mut out);
    assert!(
        matches!(&out[..], [ServiceResponse::Error { run, .. }] if run.is_empty()),
        "garbage line answered with {out:?}"
    );

    // The manager is uncontaminated: a good tenant still matches solo.
    let scen = grid_scenario(133);
    let (reference, _) = capture_batch(&scen);
    assert!(matches!(
        call(&mut mgr, start_request("good", &scen), &mut events),
        ServiceResponse::Started { .. }
    ));
    let mut source = SimulatorSource::from_scenario(&scen, 1);
    let mut batch = ObservationBatch::default();
    let mut done = false;
    while !done && source.next_batch(&mut batch) {
        match call(&mut mgr, observe("good", &batch), &mut events) {
            ServiceResponse::Accepted { done: d, .. } => done = d,
            other => panic!("Observe answered with {other:?}"),
        }
    }
    call(
        &mut mgr,
        ServiceRequest::Finish {
            run: "good".into(),
            truth: source.truth(),
        },
        &mut events,
    );
    assert_eq!(
        events, reference,
        "a survivor tenant diverged from its solo run"
    );
}

/// Stop aborts a tenant mid-run; the runner's drop guard flushes its
/// sinks, and lines emitted *by* that flush are drained into the response
/// stream ahead of Stopped — nothing recorded is ever silently discarded.
/// The stopped prefix is byte-identical to the solo run's prefix.
#[test]
fn stop_drains_every_event_including_the_drop_guard_flush() {
    let scen = grid_scenario(134);
    let (reference, _) = capture_batch(&scen);

    let mut mgr = RunManager::new(ServiceConfig::default());
    let mut events = Vec::new();
    assert!(matches!(
        call(&mut mgr, start_request("t", &scen), &mut events),
        ServiceResponse::Started { .. }
    ));
    let mut source = SimulatorSource::from_scenario(&scen, 1);
    let mut batch = ObservationBatch::default();
    for _ in 0..40 {
        assert!(source.next_batch(&mut batch));
        match call(&mut mgr, observe("t", &batch), &mut events) {
            ServiceResponse::Accepted { done, .. } => assert!(!done),
            other => panic!("Observe answered with {other:?}"),
        }
    }
    let mut out = Vec::new();
    mgr.handle(ServiceRequest::Stop { run: "t".into() }, &mut out);
    let Some(ServiceResponse::Stopped { .. }) = out.last() else {
        panic!("Stop must terminate with Stopped, got {out:?}");
    };
    for resp in &out[..out.len() - 1] {
        let ServiceResponse::Event { line, .. } = resp else {
            panic!("non-event before the Stopped terminal: {resp:?}");
        };
        events.push(line.clone());
    }
    assert_eq!(mgr.runs().count(), 0);
    assert_eq!(
        events[..],
        reference[..events.len()],
        "stopped prefix diverged from the solo run"
    );
}

/// A tenant frozen with a *non-empty ingest queue* (reachable under
/// `pump_budget: 0`) must not lose the queued batches across a daemon
/// restart: they were answered Accepted, so Snapshot drains them into the
/// engine before freezing. The stitched restart run stays byte-identical.
#[test]
fn snapshot_under_backpressure_keeps_accepted_batches() {
    let scen = grid_scenario(135);
    let (reference, ref_metrics) = capture_batch(&scen);

    // Manual ingest: every Observe only queues, so the Snapshot below
    // provably freezes behind a non-empty queue.
    let mut mgr = RunManager::new(ServiceConfig {
        queue_capacity: 64,
        pump_budget: 0,
    });
    let mut prefix = Vec::new();
    assert!(matches!(
        call(&mut mgr, start_request("t", &scen), &mut prefix),
        ServiceResponse::Started { .. }
    ));
    let mut source = SimulatorSource::from_scenario(&scen, 1);
    let mut batch = ObservationBatch::default();
    let queued_batches = 30usize;
    for _ in 0..queued_batches {
        assert!(source.next_batch(&mut batch));
        match call(&mut mgr, observe("t", &batch), &mut prefix) {
            ServiceResponse::Accepted { queued, .. } => assert!(queued > 0),
            other => panic!("Observe answered with {other:?}"),
        }
    }
    // Nothing was ingested yet: the seed-activation events from Start are
    // all the stream holds.
    let activation_events = prefix.len();
    let snap = match call(
        &mut mgr,
        ServiceRequest::Snapshot {
            run: "t".into(),
            sim: source.sim_state(),
        },
        &mut prefix,
    ) {
        ServiceResponse::Snapshot { snapshot, .. } => snapshot,
        other => panic!("Snapshot answered with {other:?}"),
    };
    assert!(
        prefix.len() > activation_events,
        "Snapshot must drain the queued batches through the engine first"
    );
    call(
        &mut mgr,
        ServiceRequest::Stop { run: "t".into() },
        &mut prefix,
    );
    drop(mgr);

    // Restart: fresh manager, default (inline) pumping, resumed feeder.
    let mut mgr = RunManager::new(ServiceConfig::default());
    let mut tail = Vec::new();
    let mut source = SimulatorSource::resume_from(&snap.scenario, &snap.sim, 1);
    assert!(matches!(
        call(
            &mut mgr,
            ServiceRequest::Resume {
                run: "t2".into(),
                snapshot: snap,
                goal: Some(Goal::Collection),
                trace: None,
            },
            &mut tail,
        ),
        ServiceResponse::Resumed { .. }
    ));
    let mut done = false;
    while !done && source.next_batch(&mut batch) {
        match call(&mut mgr, observe("t2", &batch), &mut tail) {
            ServiceResponse::Accepted { done: d, .. } => done = d,
            other => panic!("Observe answered with {other:?}"),
        }
    }
    let finished = call(
        &mut mgr,
        ServiceRequest::Finish {
            run: "t2".into(),
            truth: source.truth(),
        },
        &mut tail,
    );
    let ServiceResponse::Finished { metrics, .. } = finished else {
        panic!("Finish answered with {finished:?}");
    };

    let mut stitched = prefix;
    stitched.extend(tail);
    assert_eq!(
        fnv_digest(&stitched),
        fnv_digest(&reference),
        "backpressured snapshot/restart diverged from the uninterrupted run"
    );
    assert_eq!(stitched, reference);
    assert_eq!(metrics.global_count, ref_metrics.global_count);
    assert_eq!(metrics.steps, ref_metrics.steps);
}

/// The adversarial daemon test, over a real TCP connection: one feeder
/// sends unparseable bytes, then a hostile Start, then a malformed batch
/// for its (successfully started) run, then vanishes without Finish. The
/// daemon answers each with an Error, keeps the connection, keeps the
/// process — and a second tenant on a second connection runs to
/// completion byte-identical to its solo reference.
#[test]
fn hostile_feeder_cannot_kill_the_daemon_or_other_tenants() {
    let scen_victim = grid_scenario(136);
    let (reference, _) = capture_batch(&scen_victim);

    let listener = Listener::bind_tcp("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr();
    let mgr = Arc::new(Mutex::new(RunManager::new(ServiceConfig::default())));
    let server_mgr = Arc::clone(&mgr);
    let server = std::thread::spawn(move || {
        serve_connections(&listener, &server_mgr, Some(2)).expect("serve_connections")
    });

    // The adversary, speaking raw bytes on connection 1.
    {
        use std::io::{BufRead, BufReader, Write};
        let conn = Conn::connect_tcp(&addr).expect("connect");
        let mut writer = conn.try_clone().expect("clone");
        let mut reader = BufReader::new(conn);
        let mut line = String::new();
        let next_line = |reader: &mut BufReader<Conn>, line: &mut String| {
            line.clear();
            assert!(reader.read_line(line).expect("read") > 0, "daemon hung up");
            serde_json::from_str::<ServiceResponse>(line.trim_end()).expect("response parses")
        };

        writeln!(writer, "$$$ definitely not json $$$").unwrap();
        assert!(matches!(
            next_line(&mut reader, &mut line),
            ServiceResponse::Error { .. }
        ));

        let mut hostile = grid_scenario(137);
        hostile.seeds = SeedSpec::Explicit(vec![9999]);
        let start = serde_json::to_string(&start_request("evil", &hostile)).unwrap();
        writeln!(writer, "{start}").unwrap();
        assert!(matches!(
            next_line(&mut reader, &mut line),
            ServiceResponse::Error { .. }
        ));

        // A run that *does* start, then gets fed garbage.
        let good_start = serde_json::to_string(&start_request("adv", &grid_scenario(138))).unwrap();
        writeln!(writer, "{good_start}").unwrap();
        loop {
            match next_line(&mut reader, &mut line) {
                ServiceResponse::Event { .. } => continue,
                ServiceResponse::Started { .. } => break,
                other => panic!("Start answered with {other:?}"),
            }
        }
        let mut bad = ObservationBatch::default();
        bad.in_transit_index.push((EdgeId(0), u32::MAX, u32::MAX));
        let req = serde_json::to_string(&observe("adv", &bad)).unwrap();
        writeln!(writer, "{req}").unwrap();
        assert!(matches!(
            next_line(&mut reader, &mut line),
            ServiceResponse::Error { .. }
        ));
        // ...and the adversary disconnects without Finish. The tenant
        // stays; the daemon keeps accepting.
    }

    // The victim tenant, on connection 2, end to end.
    let mut client =
        WireClient::new(Conn::connect_tcp(&addr).expect("connect")).expect("wire client");
    let mut events = Vec::new();
    let terminal = |client: &mut WireClient,
                    req: &ServiceRequest,
                    events: &mut Vec<String>|
     -> ServiceResponse {
        let mut terminal = None;
        for resp in client.call(req).expect("wire call") {
            match resp {
                ServiceResponse::Event { line, .. } => events.push(line),
                other => terminal = Some(other),
            }
        }
        terminal.expect("terminal response")
    };
    assert!(matches!(
        terminal(
            &mut client,
            &start_request("victim", &scen_victim),
            &mut events
        ),
        ServiceResponse::Started { .. }
    ));
    let mut source = SimulatorSource::from_scenario(&scen_victim, 1);
    let mut batch = ObservationBatch::default();
    let mut done = false;
    while !done && source.next_batch(&mut batch) {
        match terminal(&mut client, &observe("victim", &batch), &mut events) {
            ServiceResponse::Accepted { done: d, .. } => done = d,
            other => panic!("Observe answered with {other:?}"),
        }
    }
    let finished = terminal(
        &mut client,
        &ServiceRequest::Finish {
            run: "victim".into(),
            truth: source.truth(),
        },
        &mut events,
    );
    assert!(matches!(finished, ServiceResponse::Finished { .. }));
    drop(client);
    server.join().expect("server thread");

    assert_eq!(
        fnv_digest(&events),
        fnv_digest(&reference),
        "the victim tenant's digest diverged beside a hostile feeder"
    );
    assert_eq!(events, reference);
    // The adversary's half-started run survived the daemon shutdown path.
    assert_eq!(mgr.lock().unwrap().runs().collect::<Vec<_>>(), ["adv"]);
}
