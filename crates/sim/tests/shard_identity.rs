//! The sharding contract (DESIGN.md §8bis): the shard count is a
//! throughput knob, never a semantics knob. For every scenario family the
//! merged protocol event stream, the final counts, and the run metrics
//! must be *byte-identical* for 1, 2, and 4 shards — including under a
//! fault plan whose crashes straddle a region boundary, and across a
//! snapshot/resume taken mid-run by a sharded engine.
//!
//! The only fields allowed to vary with the shard count are the wall-clock
//! phase timings and the `cross_shard_messages` bookkeeping counter (a
//! partition-relative measurement by definition); both are normalized out
//! before comparison.

use std::sync::{Arc, Mutex};

use vcount_core::{CheckpointConfig, ProtocolVariant};
use vcount_obs::{EventRecord, EventSink};
use vcount_roadnet::builders::ManhattanConfig;
use vcount_sim::{CrashFault, EngineSnapshot, FaultPlan, RunMetrics, Runner, Scenario};
use vcount_sim::{MapSpec, PatrolSpec, SeedSpec, TransportMode};
use vcount_traffic::{Demand, SimConfig};
use vcount_v2x::ChannelKind;

struct VecSink(Arc<Mutex<Vec<String>>>);

impl EventSink for VecSink {
    fn record(&mut self, rec: &EventRecord) {
        self.0.lock().unwrap().push(rec.to_json());
    }
}

/// 64-bit FNV-1a over the JSONL stream — one order-sensitive digest per
/// run, so a mismatch report stays readable even for long streams.
fn fnv_digest(lines: &[String]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for line in lines {
        for &b in line.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        h ^= u64::from(b'\n');
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// A 4×4 closed grid: 16 nodes, so 2 shards split regions at node 8 and
/// 4 shards at nodes 4/8/12.
fn grid_scenario(variant: ProtocolVariant, seed: u64) -> Scenario {
    let mut s = Scenario {
        map: MapSpec::Grid {
            cols: 4,
            rows: 4,
            spacing_m: 130.0,
            lanes: 2,
            speed_mps: 10.0,
        },
        closed: true,
        sim: SimConfig {
            seed,
            detect_overtakes: true,
            speed_factor_range: (0.6, 1.0),
            ..Default::default()
        },
        demand: Demand::at_volume(60.0),
        protocol: CheckpointConfig::for_variant(variant),
        channel: ChannelKind::PAPER,
        seeds: SeedSpec::Random { count: 2 },
        transport: TransportMode::default(),
        patrol: PatrolSpec::default(),
        max_time_s: 1500.0,
    };
    if variant == ProtocolVariant::Extended {
        s.transport = TransportMode::VehicleWithPatrolFallback;
        s.patrol = PatrolSpec { cars: 1 };
    }
    s
}

/// The open-system family: border checkpoints, live entry/exit tracking.
fn open_scenario(seed: u64) -> Scenario {
    Scenario {
        map: MapSpec::Manhattan(ManhattanConfig::small()),
        closed: false,
        sim: SimConfig {
            seed,
            spawn_rate_hz: 0.2,
            detect_overtakes: true,
            ..Default::default()
        },
        demand: Demand::at_volume(50.0),
        protocol: CheckpointConfig::for_variant(ProtocolVariant::Open),
        channel: ChannelKind::PAPER,
        seeds: SeedSpec::AllBorder,
        transport: Default::default(),
        patrol: PatrolSpec::default(),
        max_time_s: 900.0,
    }
}

/// Crashes on both sides of the 2-shard boundary of a 16-node graph
/// (nodes 7 and 8 land in different regions for every tested shard
/// count > 1), so fault handling itself is exercised across regions.
fn boundary_plan() -> FaultPlan {
    FaultPlan {
        seed: 11,
        crashes: vec![
            CrashFault {
                node: 7,
                at_s: 60.0,
                recover_s: 240.0,
            },
            CrashFault {
                node: 8,
                at_s: 90.0,
                recover_s: 300.0,
            },
        ],
        blackouts: Vec::new(),
        chaos: None,
        image_every_s: 60.0,
    }
}

fn capture(
    scen: &Scenario,
    shards: usize,
    plan: Option<FaultPlan>,
    steps: usize,
) -> (Vec<String>, RunMetrics) {
    let lines = Arc::new(Mutex::new(Vec::new()));
    let mut builder = Runner::builder(scen)
        .shards(shards)
        .sink(Box::new(VecSink(lines.clone())));
    if let Some(p) = plan {
        builder = builder.faults(p);
    }
    let mut runner = builder.build();
    assert_eq!(runner.shards(), shards);
    for _ in 0..steps {
        runner.step();
    }
    runner.flush_sinks();
    let metrics = runner.metrics_now();
    let out = lines.lock().unwrap().clone();
    (out, metrics)
}

/// Compares two runs' metrics, skipping the fields legitimately allowed to
/// differ across shard counts: wall-clock timings (nondeterministic) and
/// the cross-shard message counter (defined relative to the partition
/// being measured).
fn assert_metrics_identical(a: &RunMetrics, b: &RunMetrics, what: &str) {
    let normalized = |m: &RunMetrics| {
        let mut t = m.telemetry;
        t.traffic_step_secs = 0.0;
        t.protocol_secs = 0.0;
        t.relay_secs = 0.0;
        t.cross_shard_messages = 0;
        t
    };
    assert_eq!(a.constitution_done_s, b.constitution_done_s, "{what}");
    assert_eq!(a.collection_done_s, b.collection_done_s, "{what}");
    assert_eq!(a.global_count, b.global_count, "{what}");
    assert_eq!(a.true_population, b.true_population, "{what}");
    assert_eq!(a.oracle_violations, b.oracle_violations, "{what}");
    assert_eq!(a.handoff_failures, b.handoff_failures, "{what}");
    assert_eq!(a.overtake_adjustments, b.overtake_adjustments, "{what}");
    assert_eq!(a.baseline_naive, b.baseline_naive, "{what}");
    assert_eq!(a.baseline_dedup, b.baseline_dedup, "{what}");
    assert_eq!(a.degraded, b.degraded, "{what}");
    assert_eq!(a.elapsed_s, b.elapsed_s, "{what}");
    assert_eq!(a.steps, b.steps, "{what}");
    assert_eq!(normalized(a), normalized(b), "{what}");
}

fn assert_shard_invariant(scen: &Scenario, plan: Option<FaultPlan>, steps: usize, what: &str) {
    let (ref_stream, ref_metrics) = capture(scen, 1, plan.clone(), steps);
    assert!(
        !ref_stream.is_empty(),
        "{what}: reference emitted no events"
    );
    let ref_digest = fnv_digest(&ref_stream);
    for shards in [2usize, 4] {
        let (stream, metrics) = capture(scen, shards, plan.clone(), steps);
        assert_eq!(
            fnv_digest(&stream),
            ref_digest,
            "{what}: event digest diverged at {shards} shards"
        );
        assert_eq!(
            stream, ref_stream,
            "{what}: event stream diverged at {shards} shards"
        );
        assert_metrics_identical(&metrics, &ref_metrics, what);
    }
}

#[test]
fn simple_variant_is_shard_count_invariant() {
    let scen = grid_scenario(ProtocolVariant::Simple, 42);
    assert_shard_invariant(&scen, None, 900, "simple");
}

#[test]
fn extended_variant_is_shard_count_invariant() {
    let scen = grid_scenario(ProtocolVariant::Extended, 43);
    assert_shard_invariant(&scen, None, 900, "extended");
}

#[test]
fn open_variant_is_shard_count_invariant() {
    let scen = open_scenario(44);
    assert_shard_invariant(&scen, None, 700, "open");
}

#[test]
fn boundary_straddling_faults_are_shard_count_invariant() {
    let scen = grid_scenario(ProtocolVariant::Simple, 45);
    assert_shard_invariant(&scen, Some(boundary_plan()), 900, "boundary faults");
}

#[test]
fn sharded_snapshot_resumes_byte_identically() {
    let scen = grid_scenario(ProtocolVariant::Simple, 46);
    let total_steps = 800usize;
    let prefix_steps = 300usize;

    // Reference: one uninterrupted 4-shard run.
    let (reference, _) = capture(&scen, 4, Some(boundary_plan()), total_steps);
    assert!(!reference.is_empty(), "reference emitted no events");

    // Snapshot a 4-shard run mid-flight; the snapshot must self-check its
    // per-shard decomposition and still carry the monolithic state.
    let prefix_lines = Arc::new(Mutex::new(Vec::new()));
    let mut first = Runner::builder(&scen)
        .shards(4)
        .faults(boundary_plan())
        .sink(Box::new(VecSink(prefix_lines.clone())))
        .build();
    for _ in 0..prefix_steps {
        first.step();
    }
    first.flush_sinks();
    let snap_json = first.snapshot().to_json();
    drop(first);

    let snap = EngineSnapshot::from_json(&snap_json).expect("snapshot JSON parses");
    assert_eq!(snap.shards, 4, "snapshot lost the shard count");

    // Resume restores the shard count and replays the tail byte-for-byte.
    let tail = Arc::new(Mutex::new(Vec::new()));
    let mut resumed = Runner::resume_with(&snap, vec![Box::new(VecSink(tail.clone()))], 4096);
    assert_eq!(resumed.shards(), 4, "resume dropped the shard count");
    for _ in 0..(total_steps - prefix_steps) {
        resumed.step();
    }
    resumed.flush_sinks();

    let mut stitched = prefix_lines.lock().unwrap().clone();
    stitched.extend(tail.lock().unwrap().iter().cloned());
    assert_eq!(
        fnv_digest(&stitched),
        fnv_digest(&reference),
        "sharded snapshot/resume diverged from the uninterrupted run"
    );
    assert_eq!(stitched, reference);
}
