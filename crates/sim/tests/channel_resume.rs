//! Stateful-channel snapshot/resume: a run over the bursty
//! Gilbert–Elliott channel carries loss-model state (current burst mode)
//! inside the snapshot, so a resumed run must replay the exact event
//! stream of an uninterrupted one — byte for byte. This pins the channel
//! half of the DESIGN.md §6quater determinism contract that
//! `snapshot_resume.rs` pins for the protocol state machines.

use std::sync::{Arc, Mutex};

use vcount_core::{CheckpointConfig, ProtocolVariant};
use vcount_obs::{EventRecord, EventSink};
use vcount_sim::{EngineSnapshot, Runner, Scenario};
use vcount_sim::{MapSpec, PatrolSpec, SeedSpec, TransportMode};
use vcount_traffic::{Demand, SimConfig};
use vcount_v2x::ChannelKind;

struct VecSink(Arc<Mutex<Vec<String>>>);

impl EventSink for VecSink {
    fn record(&mut self, rec: &EventRecord) {
        self.0.lock().unwrap().push(rec.to_json());
    }
}

/// FNV-1a over the JSONL stream (one implicit `\n` per line).
fn fnv1a(lines: &[String]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for line in lines {
        for &b in line.as_bytes() {
            eat(b);
        }
        eat(b'\n');
    }
    h
}

fn bursty_scenario(seed: u64) -> Scenario {
    Scenario {
        map: MapSpec::Grid {
            cols: 3,
            rows: 3,
            spacing_m: 120.0,
            lanes: 2,
            speed_mps: 10.0,
        },
        closed: true,
        sim: SimConfig {
            seed,
            detect_overtakes: true,
            speed_factor_range: (0.6, 1.0),
            ..Default::default()
        },
        demand: Demand::at_volume(60.0),
        protocol: CheckpointConfig::for_variant(ProtocolVariant::Simple),
        channel: ChannelKind::BURSTY,
        seeds: SeedSpec::Random { count: 2 },
        transport: TransportMode::default(),
        patrol: PatrolSpec::default(),
        max_time_s: 1200.0,
    }
}

#[test]
fn gilbert_elliott_run_resumes_byte_identical() {
    let scen = bursty_scenario(19);
    let total_steps = 600usize;
    let prefix_steps = 301usize;

    let full = Arc::new(Mutex::new(Vec::new()));
    let mut reference = Runner::builder(&scen)
        .sink(Box::new(VecSink(full.clone())))
        .build();
    for _ in 0..total_steps {
        reference.step();
    }
    reference.flush_sinks();
    let full = full.lock().unwrap().clone();
    assert!(!full.is_empty(), "bursty reference run emitted no events");
    // The bursty channel must actually bite during the prefix, or this
    // test is not exercising loss-model state at all.
    assert!(
        reference.metrics_now().handoff_failures > 0,
        "Gilbert–Elliott channel never failed a handoff; scenario too calm"
    );

    let prefix = Arc::new(Mutex::new(Vec::new()));
    let mut first = Runner::builder(&scen)
        .sink(Box::new(VecSink(prefix.clone())))
        .build();
    for _ in 0..prefix_steps {
        first.step();
    }
    first.flush_sinks();
    let snap_json = first.snapshot().to_json();
    drop(first);

    let snap = EngineSnapshot::from_json(&snap_json).expect("snapshot JSON parses");
    let tail = Arc::new(Mutex::new(Vec::new()));
    let mut resumed = Runner::resume_with(&snap, vec![Box::new(VecSink(tail.clone()))], 4096);
    for _ in 0..(total_steps - prefix_steps) {
        resumed.step();
    }
    resumed.flush_sinks();

    let mut stitched = prefix.lock().unwrap().clone();
    stitched.extend(tail.lock().unwrap().iter().cloned());

    assert_eq!(
        fnv1a(&full),
        fnv1a(&stitched),
        "bursty resumed stream digest diverged from the reference"
    );
    assert_eq!(full, stitched, "bursty resumed stream diverged");
    assert_eq!(reference.time_s(), resumed.time_s());
    assert_eq!(reference.distributed_count(), resumed.distributed_count());
}
