//! Behavioural tests of the runner: progress accounting, signalised
//! traffic, metrics consistency, and seed deployments.

use vcount_core::{CheckpointConfig, ProtocolVariant};
use vcount_roadnet::builders::ManhattanConfig;
use vcount_sim::{Goal, MapSpec, PatrolSpec, Runner, Scenario, SeedSpec};
use vcount_traffic::{Demand, SignalTiming, SimConfig};
use vcount_v2x::ChannelKind;

fn grid_scenario(seed: u64) -> Scenario {
    Scenario {
        map: MapSpec::Grid {
            cols: 4,
            rows: 3,
            spacing_m: 160.0,
            lanes: 2,
            speed_mps: 9.0,
        },
        closed: true,
        sim: SimConfig {
            seed,
            ..Default::default()
        },
        demand: Demand::at_volume(70.0),
        protocol: CheckpointConfig::default(),
        channel: ChannelKind::PAPER,
        seeds: SeedSpec::Random { count: 1 },
        transport: Default::default(),
        patrol: PatrolSpec::default(),
        max_time_s: 2.0 * 3600.0,
    }
}

#[test]
fn progress_counters_are_monotone_and_converge() {
    let s = grid_scenario(31);
    let mut r = Runner::builder(&s).build();
    let mut last_active = 0;
    let mut last_stable = 0;
    while !(r.all_stable() && r.all_collected()) && r.time_s() < s.max_time_s {
        r.step();
        let p = r.progress();
        assert!(p.active >= last_active, "active count regressed");
        assert!(p.stable >= last_stable, "stable count regressed");
        assert!(p.stable <= p.active, "stable before active");
        last_active = p.active;
        last_stable = p.stable;
    }
    let p = r.progress();
    assert_eq!(p.active, p.checkpoints);
    assert_eq!(p.stable, p.checkpoints);
    assert_eq!(p.collected_seeds, r.seeds().len());
}

#[test]
fn signalised_traffic_stays_exact() {
    let mut s = grid_scenario(33);
    s.sim.signals = Some(SignalTiming {
        green_s: 20.0,
        all_red_s: 2.0,
    });
    let mut r = Runner::builder(&s).build();
    let m = r.run(Goal::Collection, s.max_time_s);
    assert!(m.collection_done_s.is_some(), "signals must not deadlock");
    assert!(
        m.exact(),
        "signals reorder admissions but preserve FIFO per direction"
    );
}

#[test]
fn signals_slow_the_wave_down() {
    let base = grid_scenario(35);
    let mut with_signals = grid_scenario(35);
    with_signals.sim.signals = Some(SignalTiming {
        green_s: 45.0,
        all_red_s: 5.0,
    });
    let run = |s: &Scenario| {
        let mut r = Runner::builder(s).build();
        r.run(Goal::Constitution, s.max_time_s)
            .constitution_done_s
            .expect("converges")
    };
    let free = run(&base);
    let signalised = run(&with_signals);
    assert!(
        signalised > free,
        "long red phases must delay constitution: {signalised} <= {free}"
    );
}

#[test]
fn metrics_now_matches_run_outcome() {
    let s = grid_scenario(37);
    let mut r = Runner::builder(&s).build();
    let from_run = r.run(Goal::Collection, s.max_time_s);
    let now = r.metrics_now();
    assert_eq!(now.global_count, from_run.global_count);
    assert_eq!(now.oracle_violations, from_run.oracle_violations);
    assert!(now.constitution_done_s.is_some());
    assert!(now.collection_done_s.is_some());
    // metrics_now stamps from checkpoint records, which can only lead the
    // loop's observation by less than the observation lag.
    assert!(now.constitution_done_s.unwrap() <= from_run.constitution_done_s.unwrap() + 1.0);
}

#[test]
fn no_reports_in_flight_after_collection() {
    let s = grid_scenario(39);
    let mut r = Runner::builder(&s).build();
    r.run(Goal::Collection, s.max_time_s);
    assert!(!r.reports_in_flight());
}

#[test]
fn all_border_deployment_runs_open_midtown() {
    let mut s = Scenario {
        map: MapSpec::Manhattan(ManhattanConfig::small()),
        closed: false,
        sim: SimConfig {
            seed: 41,
            ..Default::default()
        },
        demand: Demand::at_volume(50.0),
        protocol: CheckpointConfig::for_variant(ProtocolVariant::Open),
        channel: ChannelKind::PAPER,
        seeds: SeedSpec::AllBorder,
        transport: Default::default(),
        patrol: PatrolSpec::default(),
        max_time_s: 3.0 * 3600.0,
    };
    s.demand.white_van_fraction = 0.0;
    let mut r = Runner::builder(&s).build();
    assert_eq!(r.seeds().len(), r.net().border_nodes().len());
    let m = r.run(Goal::Collection, s.max_time_s);
    assert!(m.collection_done_s.is_some());
    assert!(m.exact());
}

#[test]
fn all_border_on_closed_map_falls_back_to_one_seed() {
    let mut s = grid_scenario(43);
    s.seeds = SeedSpec::AllBorder;
    let r = Runner::builder(&s).build();
    assert_eq!(r.seeds().len(), 1, "grids have no border; one random seed");
}

#[test]
fn baselines_diverge_from_truth_while_protocol_matches() {
    let s = grid_scenario(45);
    let mut r = Runner::builder(&s).build();
    let m = r.run(Goal::Collection, s.max_time_s);
    assert!(m.exact());
    assert!(
        m.baseline_naive as i64 > m.true_population as i64,
        "naive interval counting must double-count in circulating traffic"
    );
    assert!(
        (m.baseline_dedup as i64) < m.true_population as i64,
        "class dedup must collapse look-alike vehicles"
    );
}
