//! Fault-injection properties: the headline contract of `vcount_sim::faults`.
//!
//! Under *any* fault plan — checkpoint crashes, regional blackouts,
//! message chaos, in any combination — a run must end in one of exactly
//! two states:
//!
//!  1. **exact** — zero oracle violations and (if the collection finished)
//!     a global count equal to ground truth, or
//!  2. **explicitly degraded** — `RunMetrics::degraded` set because some
//!     fault class provably cost protocol information.
//!
//! A silent miscount (wrong answer with `degraded == false`) is the one
//! outcome the harness exists to rule out. The randomized sweep below
//! throws ≥32 generated plans at both the Simple (closed) and Extended
//! (patrol) variants; companion tests pin the boundary behaviors: an
//! empty plan is byte-identical to no plan, blackout-only plans stay
//! exact, and a crash firing *after* a snapshot/resume replays
//! byte-identically.

use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vcount_core::{CheckpointConfig, ProtocolVariant};
use vcount_obs::{EventRecord, EventSink};
use vcount_sim::{Blackout, ChaosFault, CrashFault, FaultPlan};
use vcount_sim::{EngineSnapshot, Goal, Runner, Scenario};
use vcount_sim::{MapSpec, PatrolSpec, SeedSpec, TransportMode};
use vcount_traffic::{Demand, SimConfig};
use vcount_v2x::ChannelKind;

const NODES: u32 = 9; // 3×3 grid

fn scenario(variant: ProtocolVariant, seed: u64) -> Scenario {
    let mut s = Scenario {
        map: MapSpec::Grid {
            cols: 3,
            rows: 3,
            spacing_m: 120.0,
            lanes: 2,
            speed_mps: 10.0,
        },
        closed: true,
        sim: SimConfig {
            seed,
            detect_overtakes: true,
            speed_factor_range: (0.6, 1.0),
            ..Default::default()
        },
        demand: Demand::at_volume(60.0),
        protocol: CheckpointConfig::for_variant(variant),
        channel: ChannelKind::PAPER,
        seeds: SeedSpec::Random { count: 2 },
        transport: TransportMode::default(),
        patrol: PatrolSpec::default(),
        max_time_s: 1500.0,
    };
    if variant == ProtocolVariant::Extended {
        s.transport = TransportMode::VehicleWithPatrolFallback;
        s.patrol = PatrolSpec { cars: 1 };
    }
    s
}

/// Draws a random-but-valid plan: up to two crashes, up to two blackouts,
/// maybe a chaos window, a random image cadence.
fn random_plan(rng: &mut StdRng) -> FaultPlan {
    let mut crashes = Vec::new();
    for _ in 0..rng.gen_range(0..3u32) {
        let at_s = rng.gen_range(60.0..600.0);
        crashes.push(CrashFault {
            node: rng.gen_range(0..NODES),
            at_s,
            recover_s: at_s + rng.gen_range(60.0..400.0),
        });
    }
    // Overlapping same-node crash windows are invalid; drop the later one.
    crashes.sort_by(|a: &CrashFault, b: &CrashFault| {
        (a.node, a.at_s).partial_cmp(&(b.node, b.at_s)).unwrap()
    });
    crashes.dedup_by(|b, a| a.node == b.node && b.at_s < a.recover_s);
    let mut blackouts = Vec::new();
    for _ in 0..rng.gen_range(0..3u32) {
        let from_s = rng.gen_range(0.0..500.0);
        blackouts.push(Blackout {
            nodes: (0..rng.gen_range(1..4u32))
                .map(|_| rng.gen_range(0..NODES))
                .collect(),
            from_s,
            until_s: from_s + rng.gen_range(30.0..300.0),
        });
    }
    let chaos = rng.gen_bool(0.5).then(|| {
        let from_s = rng.gen_range(0.0..300.0);
        ChaosFault {
            from_s,
            until_s: from_s + rng.gen_range(60.0..600.0),
            duplicate_p: rng.gen_range(0.0..0.4),
            delay_p: rng.gen_range(0.0..0.4),
            max_delay_s: rng.gen_range(0.0..20.0),
            reorder_p: rng.gen_range(0.0..0.4),
        }
    });
    FaultPlan {
        seed: rng.gen(),
        crashes,
        blackouts,
        chaos,
        image_every_s: [30.0, 60.0, 120.0][rng.gen_range(0..3u32) as usize],
    }
}

#[test]
fn randomized_plans_never_miscount_silently() {
    let mut rng = StdRng::seed_from_u64(0xFA_07);
    let mut degraded_runs = 0usize;
    let mut exact_runs = 0usize;
    let mut crashes_fired = 0u64;
    for case in 0..32u64 {
        let variant = if case % 2 == 0 {
            ProtocolVariant::Simple
        } else {
            ProtocolVariant::Extended
        };
        let scen = scenario(variant, 1000 + case);
        // JSON round-trip every plan so the sweep also covers the schema.
        let plan = FaultPlan::from_json(&random_plan(&mut rng).to_json()).unwrap();
        plan.validate(NODES as usize).unwrap();
        let mut runner = Runner::builder(&scen).faults(plan.clone()).build();
        let m = runner.run(Goal::Collection, scen.max_time_s);
        crashes_fired += m.telemetry.crashes;
        // The global count is only a *claim* once collection finished; an
        // unconverged run asserts nothing (and is not a silent miscount).
        let count_matches =
            m.collection_done_s.is_none() || m.global_count == Some(m.true_population as i64);
        assert!(
            m.degraded || (m.oracle_violations == 0 && count_matches),
            "case {case} ({variant:?}): SILENT miscount under plan {}: \
             violations={}, count={:?}, truth={}, counters={:?}",
            plan.to_json(),
            m.oracle_violations,
            m.global_count,
            m.true_population,
            runner.fault_counters(),
        );
        if m.degraded {
            degraded_runs += 1;
        } else if m.collection_done_s.is_some() && count_matches {
            exact_runs += 1;
        }
    }
    // The sweep must actually exercise both outcomes, or the property
    // above is vacuous.
    assert!(degraded_runs > 0, "no run degraded; plans too gentle");
    assert!(exact_runs > 0, "no run stayed exact; plans too violent");
    assert!(crashes_fired > 0, "no crash ever fired");
}

struct VecSink(Arc<Mutex<Vec<String>>>);

impl EventSink for VecSink {
    fn record(&mut self, rec: &EventRecord) {
        self.0.lock().unwrap().push(rec.to_json());
    }
}

fn capture(scen: &Scenario, plan: Option<FaultPlan>, steps: usize) -> Vec<String> {
    let lines = Arc::new(Mutex::new(Vec::new()));
    let mut builder = Runner::builder(scen).sink(Box::new(VecSink(lines.clone())));
    if let Some(p) = plan {
        builder = builder.faults(p);
    }
    let mut runner = builder.build();
    for _ in 0..steps {
        runner.step();
    }
    runner.flush_sinks();
    let out = lines.lock().unwrap().clone();
    out
}

#[test]
fn empty_plan_is_byte_identical_to_no_plan() {
    let scen = scenario(ProtocolVariant::Simple, 7);
    let empty = FaultPlan {
        seed: 99,
        crashes: Vec::new(),
        blackouts: Vec::new(),
        chaos: None,
        image_every_s: 60.0,
    };
    assert!(empty.is_empty());
    let without = capture(&scen, None, 600);
    let with = capture(&scen, Some(empty), 600);
    assert!(!without.is_empty(), "reference run emitted no events");
    assert_eq!(
        without, with,
        "an empty fault plan perturbed the event stream"
    );
}

#[test]
fn blackout_only_plans_stay_exact() {
    let scen = scenario(ProtocolVariant::Simple, 13);
    let plan = FaultPlan {
        seed: 5,
        crashes: Vec::new(),
        blackouts: vec![Blackout {
            nodes: vec![0, 4, 8],
            from_s: 30.0,
            until_s: 240.0,
        }],
        chaos: None,
        image_every_s: 60.0,
    };
    let mut runner = Runner::builder(&scen).faults(plan).build();
    let m = runner.run(Goal::Collection, scen.max_time_s);
    assert!(
        m.telemetry.blackout_failures > 0,
        "blackout never bit; test is vacuous"
    );
    // Blackouts only force handoff failures, which the paper's −1
    // compensation absorbs: never degraded, still exact.
    assert!(!m.degraded, "blackout-only plan must not degrade");
    assert_eq!(m.oracle_violations, 0);
    assert!(
        m.collection_done_s.is_some(),
        "blackout run never collected"
    );
    assert_eq!(m.global_count, Some(m.true_population as i64));
}

#[test]
fn crash_mid_watch_drops_open_watches_explicitly() {
    // A segment watch stays open from a labelled departure until its label
    // vehicle reaches the far checkpoint, so crashing the busiest node
    // mid-run catches some of its watches in flight. The crash must close
    // them at the exchange (a recovered image never saw the handoff, so
    // finalizing later would adjust counters the origin no longer owns),
    // count each closure, emit the audit event, and mark the run degraded
    // — never resolve them silently.
    let scen = scenario(ProtocolVariant::Simple, 31);
    let plan = FaultPlan {
        seed: 3,
        crashes: vec![CrashFault {
            node: 4, // center of the 3×3 grid: highest degree, most watches
            at_s: 60.0,
            recover_s: 400.0,
        }],
        blackouts: Vec::new(),
        chaos: None,
        image_every_s: 60.0,
    };
    plan.validate(NODES as usize).unwrap();

    let lines = Arc::new(Mutex::new(Vec::new()));
    let mut runner = Runner::builder(&scen)
        .faults(plan)
        .sink(Box::new(VecSink(lines.clone())))
        .build();
    let m = runner.run(Goal::Collection, scen.max_time_s);
    runner.flush_sinks();

    let dropped = runner.fault_counters().watches_dropped;
    assert!(
        dropped > 0,
        "crash caught no open watch; pick a busier crash time"
    );
    assert_eq!(
        m.telemetry.watches_dropped, dropped,
        "telemetry disagrees with the fault counters"
    );
    let events = lines.lock().unwrap();
    assert!(
        events.iter().any(|l| l.contains("fault_watch_dropped")),
        "no fault_watch_dropped event was audited"
    );
    // Dropping a watch provably costs adjustment information: the run must
    // say so rather than present its count as exact.
    assert!(m.degraded, "dropped watches did not degrade the run");
}

#[test]
fn resume_replays_a_crash_scheduled_after_the_snapshot() {
    let scen = scenario(ProtocolVariant::Extended, 21);
    let plan = FaultPlan {
        seed: 17,
        crashes: vec![CrashFault {
            node: 4,
            at_s: 150.0, // fires in the tail: snapshot is taken at 125 s
            recover_s: 220.0,
        }],
        blackouts: vec![Blackout {
            nodes: vec![2],
            from_s: 100.0,
            until_s: 200.0,
        }],
        chaos: Some(ChaosFault {
            from_s: 0.0,
            until_s: 300.0,
            duplicate_p: 0.2,
            delay_p: 0.2,
            max_delay_s: 10.0,
            reorder_p: 0.1,
        }),
        image_every_s: 30.0,
    };
    let total_steps = 600usize; // 300 s at dt 0.5
    let prefix_steps = 250usize; // 125 s — before the crash fires

    let reference = capture(&scen, Some(plan.clone()), total_steps);
    assert!(
        reference.iter().any(|l| l.contains("checkpoint_crashed")),
        "reference run never crashed; test is vacuous"
    );

    let prefix_lines = Arc::new(Mutex::new(Vec::new()));
    let mut first = Runner::builder(&scen)
        .faults(plan)
        .sink(Box::new(VecSink(prefix_lines.clone())))
        .build();
    for _ in 0..prefix_steps {
        first.step();
    }
    first.flush_sinks();
    let snap_json = first.snapshot().to_json();
    drop(first);

    let snap = EngineSnapshot::from_json(&snap_json).expect("snapshot JSON parses");
    assert!(
        snap.fault_plan.is_some() && snap.faults.is_some(),
        "fault layer missing from the snapshot"
    );
    let tail = Arc::new(Mutex::new(Vec::new()));
    let mut resumed = Runner::resume_with(&snap, vec![Box::new(VecSink(tail.clone()))], 4096);
    for _ in 0..(total_steps - prefix_steps) {
        resumed.step();
    }
    resumed.flush_sinks();

    let mut stitched = prefix_lines.lock().unwrap().clone();
    stitched.extend(tail.lock().unwrap().iter().cloned());
    assert_eq!(
        reference, stitched,
        "fault schedule diverged across snapshot/resume"
    );
}
