//! Guards the zero-copy payload decode path of the exchange.
//!
//! [`Exchange::decode_payload`] used to copy every payload into a fresh
//! `Bytes` heap buffer before decoding — one allocation per delivered
//! message, on the hottest path of the relay stage. The decoder is generic
//! over [`bytes::Buf`] and `&[u8]` implements it, so the exchange now
//! decodes straight from the borrowed payload slice. A counting global
//! allocator pins the fix: decoding a window of already-encoded payloads
//! must not allocate at all.
//!
//! Only the fixed-size message variants (`Label`, `Report`, `Announce`,
//! `Ack`) are in the measurement window — decoding `Patrol` legitimately
//! allocates its observation vector.
//!
//! This is the only test in this file on purpose, and the counter only
//! ticks while the measuring thread raises a thread-local flag: libtest's
//! harness threads share the process allocator and allocate at
//! unpredictable moments, which would otherwise fail the window
//! spuriously.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use vcount_roadnet::NodeId;
use vcount_sim::Exchange;
use vcount_v2x::{Announce, Label, Message, Report, VehicleId};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Const-initialised `Cell<bool>` has no destructor and no lazy
    // registration, so reading it inside the allocator never allocates.
    static MEASURING: Cell<bool> = const { Cell::new(false) };
}

struct Counting;

// SAFETY: delegates directly to the system allocator; the counter is a
// relaxed atomic with no other side effects. `try_with` (not `with`)
// keeps late allocations during thread teardown from panicking.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if MEASURING.try_with(Cell::get).unwrap_or(false) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if MEASURING.try_with(Cell::get).unwrap_or(false) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

#[test]
fn decoding_owned_payloads_does_not_allocate() {
    const ROUNDS: usize = 200;
    let mut ex = Exchange::new(1, 4);

    // Encode the window's payloads up front (this part allocates freely).
    let messages = [
        Message::Label(Label {
            origin: NodeId(0),
            origin_pred: Some(NodeId(1)),
            seed: NodeId(0),
        }),
        Message::Report(Report {
            from: NodeId(2),
            to: NodeId(1),
            subtree_total: -3,
            seq: 7,
        }),
        Message::Announce(Announce {
            to: NodeId(3),
            from: NodeId(2),
            pred: None,
        }),
        Message::Ack {
            vehicle: VehicleId(9),
        },
    ];
    let payloads: Vec<Vec<u8>> = messages.iter().map(|m| m.encode().to_vec()).collect();

    let before = ALLOCS.load(Ordering::Relaxed);
    MEASURING.with(|m| m.set(true));
    let mut decoded = 0usize;
    for _ in 0..ROUNDS {
        for (msg, payload) in messages.iter().zip(&payloads) {
            assert_eq!(&ex.decode_payload(payload), msg, "payload round-trip broke");
            decoded += 1;
        }
    }
    MEASURING.with(|m| m.set(false));
    let delta = ALLOCS.load(Ordering::Relaxed) - before;

    assert_eq!(decoded, ROUNDS * messages.len());
    assert_eq!(
        delta, 0,
        "decode_payload allocated {delta} times over {decoded} decodes — \
         the zero-copy slice path is being bypassed"
    );
}
