//! Open-system live-tracking invariants (Corollaries 1 & 2, beyond the
//! convergence-time checks): once the complete status is reached, the
//! distributed count must track the true in-region population exactly at
//! *every* subsequent step, through arbitrary arrival/departure churn.

use vcount_core::{CheckpointConfig, ProtocolVariant};
use vcount_roadnet::builders::ManhattanConfig;
use vcount_sim::{Goal, MapSpec, PatrolSpec, Runner, Scenario, SeedSpec};
use vcount_traffic::{Demand, SimConfig};
use vcount_v2x::ChannelKind;

fn open_midtown(seed: u64, spawn_rate_hz: f64) -> Scenario {
    Scenario {
        map: MapSpec::Manhattan(ManhattanConfig::small()),
        closed: false,
        sim: SimConfig {
            seed,
            spawn_rate_hz,
            ..Default::default()
        },
        demand: Demand::at_volume(50.0),
        protocol: CheckpointConfig::for_variant(ProtocolVariant::Open),
        channel: ChannelKind::PAPER,
        seeds: SeedSpec::Random { count: 2 },
        transport: Default::default(),
        patrol: PatrolSpec::default(),
        max_time_s: 3.0 * 3600.0,
    }
}

#[test]
fn live_population_tracks_exactly_after_complete_status() {
    let s = open_midtown(101, 0.08);
    let mut r = Runner::builder(&s).build();
    let m = r.run(Goal::Constitution, s.max_time_s);
    assert!(m.constitution_done_s.is_some(), "reaches complete status");

    // 30 more simulated minutes of churn: the count must match the true
    // population at every sampled step (not just at the end).
    let until = r.time_s() + 30.0 * 60.0;
    let mut samples = 0u32;
    while r.time_s() < until {
        r.step();
        if samples.is_multiple_of(40) {
            assert_eq!(
                r.distributed_count(),
                r.true_population() as i64,
                "live drift at t={:.1}min",
                r.time_s() / 60.0
            );
        }
        samples += 1;
    }
    assert!(samples > 0);
    assert!(r.verify().is_empty(), "per-vehicle ledger stays clean");
}

#[test]
fn heavy_churn_does_not_break_tracking() {
    // 4x the arrival rate: lots of concurrent border activity.
    let s = open_midtown(103, 0.3);
    let mut r = Runner::builder(&s).build();
    let m = r.run(Goal::Constitution, s.max_time_s);
    assert!(m.constitution_done_s.is_some());
    let until = r.time_s() + 10.0 * 60.0;
    while r.time_s() < until {
        r.step();
    }
    assert_eq!(r.distributed_count(), r.true_population() as i64);
    assert!(r.verify().is_empty());
}

#[test]
fn zero_churn_open_system_behaves_like_closed() {
    // Interaction flags set but nobody crosses the border: the open
    // protocol must converge and count exactly like the closed one.
    let mut s = open_midtown(107, 0.0);
    s.sim.exit_prob = 0.0;
    let mut r = Runner::builder(&s).build();
    let m = r.run(Goal::Collection, s.max_time_s);
    assert!(m.collection_done_s.is_some());
    assert_eq!(m.oracle_violations, 0);
    assert_eq!(m.global_count, Some(m.true_population as i64));
}

#[test]
fn draining_open_system_stays_exact_even_when_starving() {
    // No arrivals + steady exits: the region drains until the label wave
    // starves. Convergence is NOT guaranteed (that is the paper's sparse-
    // traffic deadlock), but exactness of the live view must never break.
    let mut s = open_midtown(109, 0.0);
    s.sim.exit_prob = 0.1;
    s.max_time_s = 1.5 * 3600.0;
    let mut r = Runner::builder(&s).build();
    r.run(Goal::Collection, s.max_time_s);
    assert!(
        r.verify().is_empty(),
        "draining must not corrupt the ledger"
    );
}
