//! Pins the wire-counter semantics of the short-circuited self-delivery
//! paths (`ack_handoff`, `relay_status`) and the lazy/eager decode
//! split.
//!
//! The zero-copy plane stopped re-parsing messages that the exchange
//! both produces and consumes in the same call — but those paths still
//! model a real transmission, so their counters must read exactly as if
//! the bytes had crossed the air: one `encoded`, one `decoded`, the full
//! payload length in `bytes`, and never a `skipped_decode`. This test is
//! the regression fence: if a refactor drops (or double-counts) a leg of
//! the short circuit, the telemetry silently changes meaning and every
//! downstream overhead analysis drifts. Counter *values* are asserted,
//! not just deltas being nonzero.

use vcount_roadnet::{EdgeId, NodeId};
use vcount_sim::Exchange;
use vcount_v2x::{Message, Report, VehicleId};

#[test]
fn ack_handoff_counts_one_encode_and_one_decode() {
    let mut ex = Exchange::new(1, 4);
    let v = VehicleId(7);
    let ack_len = Message::Ack { vehicle: v }.encode().len() as u64;

    for round in 1..=3u64 {
        ex.ack_handoff(v);
        let c = ex.counters();
        assert_eq!(c.encoded, round, "ack must count exactly one encode");
        assert_eq!(c.decoded, round, "ack must count exactly one decode");
        assert_eq!(
            c.bytes,
            round * ack_len,
            "ack must count its full wire length"
        );
        assert_eq!(
            c.skipped_decode, 0,
            "a consumed ack is never a skipped decode"
        );
    }
}

#[test]
fn relay_status_counts_one_encode_and_one_decode() {
    let mut ex = Exchange::new(1, 8);
    let v = VehicleId(0);
    ex.observe_status(v, NodeId(2), true);
    ex.observe_status(v, NodeId(5), false);
    ex.observe_status(v, NodeId(2), false); // supersedes the first entry

    let before = ex.counters();
    let status = ex.relay_status(v);
    let c = ex.counters();

    assert_eq!(status.status_of(NodeId(2)), Some(false));
    assert_eq!(status.status_of(NodeId(5)), Some(false));
    let wire_len = Message::Patrol(status.clone()).encode().len() as u64;

    assert_eq!(
        c.encoded,
        before.encoded + 1,
        "status relay must count one encode"
    );
    assert_eq!(
        c.decoded,
        before.decoded + 1,
        "status relay must count one decode"
    );
    assert_eq!(
        c.bytes,
        before.bytes + wire_len,
        "status relay must count the full encoded status length"
    );
    assert_eq!(
        c.skipped_decode, 0,
        "a consumed status is never a skipped decode"
    );

    // The patrol keeps its observation log: relaying again transmits
    // the same status, again at full wire accounting.
    let again = ex.relay_status(v);
    assert_eq!(
        again.observations, status.observations,
        "status must persist across relays"
    );
    let c2 = ex.counters();
    assert_eq!(c2.encoded, c.encoded + 1);
    assert_eq!(c2.decoded, c.decoded + 1);
    assert_eq!(c2.bytes, c.bytes + wire_len);
}

/// The lazy/eager split never changes `encoded`/`bytes`, and partitions
/// deliveries exactly: consumed messages are `decoded` in both modes,
/// discarded ones are `skipped_decode` lazily and `decoded` eagerly.
#[test]
fn discard_splits_decoded_by_strategy() {
    let msg = Message::Report(Report {
        from: NodeId(0),
        to: NodeId(1),
        subtree_total: 5,
        seq: 1,
    });
    let run = |eager: bool| {
        let mut ex = Exchange::new(1, 4);
        ex.set_eager_decode(eager);
        let v = VehicleId(0);
        for _ in 0..3 {
            ex.post_report(NodeId(0), EdgeId(0), NodeId(1), &msg);
        }
        ex.load_reports(NodeId(0), v, EdgeId(0));
        let due = ex.take_due_reports(v, NodeId(1));
        assert_eq!(due.len(), 3);
        // Consume one, discard two (their recipient is "down").
        assert_eq!(ex.consume_payload(due[0].payload), msg);
        ex.discard_payload(due[1].payload);
        ex.discard_payload(due[2].payload);
        ex.recycle_reports(due);
        ex.counters()
    };

    let lazy = run(false);
    let eager = run(true);

    assert_eq!(lazy.encoded, 3);
    assert_eq!((lazy.decoded, lazy.skipped_decode), (1, 2));
    assert_eq!(eager.encoded, 3);
    assert_eq!((eager.decoded, eager.skipped_decode), (3, 0));
    assert_eq!(
        lazy.bytes, eager.bytes,
        "wire volume is strategy-independent"
    );
    assert_eq!(
        lazy.decoded + lazy.skipped_decode,
        eager.decoded,
        "the split must partition the same delivery set"
    );
}
