//! Determinism guarantees: `(network, config, demand, seed)` fully
//! determines a run. Same seed ⇒ identical metrics and an identical
//! protocol event stream; sweep results are independent of the worker
//! thread count.

use std::sync::{Arc, Mutex};

use vcount_core::CheckpointConfig;
use vcount_obs::{EventRecord, EventSink};
use vcount_sim::{sweep, Cell, Goal, RunMetrics, Runner, Scenario, SweepConfig};
use vcount_sim::{MapSpec, SeedSpec};
use vcount_traffic::{Demand, SimConfig};
use vcount_v2x::ChannelKind;

/// Collects every record's JSON line — the same encoding `JsonlSink`
/// writes — so two runs can be compared byte for byte without touching
/// the filesystem.
struct VecSink(Arc<Mutex<Vec<String>>>);

impl EventSink for VecSink {
    fn record(&mut self, rec: &EventRecord) {
        self.0.lock().unwrap().push(rec.to_json());
    }
}

fn scenario(seed: u64) -> Scenario {
    Scenario {
        map: MapSpec::Grid {
            cols: 4,
            rows: 4,
            spacing_m: 130.0,
            lanes: 2,
            speed_mps: 10.0,
        },
        closed: true,
        sim: SimConfig {
            seed,
            detect_overtakes: true,
            speed_factor_range: (0.6, 1.0),
            ..Default::default()
        },
        demand: Demand::at_volume(60.0),
        protocol: CheckpointConfig::default(),
        channel: ChannelKind::PAPER,
        seeds: SeedSpec::Random { count: 3 },
        transport: Default::default(),
        patrol: Default::default(),
        max_time_s: 2400.0,
    }
}

fn run_once(seed: u64) -> (RunMetrics, Vec<String>) {
    let events = Arc::new(Mutex::new(Vec::new()));
    let mut runner = Runner::builder(&scenario(seed))
        .sink(Box::new(VecSink(events.clone())))
        .build();
    let metrics = runner.run(Goal::Constitution, 2400.0);
    let stream = events.lock().unwrap().clone();
    (metrics, stream)
}

/// The wall-clock phase timings are the only nondeterministic fields; zero
/// them so the rest of the metrics can be compared exactly.
fn normalized(mut m: RunMetrics) -> RunMetrics {
    m.telemetry.traffic_step_secs = 0.0;
    m.telemetry.protocol_secs = 0.0;
    m.telemetry.relay_secs = 0.0;
    m
}

fn assert_metrics_identical(a: &RunMetrics, b: &RunMetrics, what: &str) {
    let (a, b) = (normalized(a.clone()), normalized(b.clone()));
    assert_eq!(a.constitution_done_s, b.constitution_done_s, "{what}");
    assert_eq!(a.collection_done_s, b.collection_done_s, "{what}");
    assert_eq!(a.checkpoint_stable_s, b.checkpoint_stable_s, "{what}");
    assert_eq!(a.checkpoint_activated_s, b.checkpoint_activated_s, "{what}");
    assert_eq!(a.global_count, b.global_count, "{what}");
    assert_eq!(a.true_population, b.true_population, "{what}");
    assert_eq!(a.oracle_violations, b.oracle_violations, "{what}");
    assert_eq!(a.handoff_failures, b.handoff_failures, "{what}");
    assert_eq!(a.overtake_adjustments, b.overtake_adjustments, "{what}");
    assert_eq!(a.baseline_naive, b.baseline_naive, "{what}");
    assert_eq!(a.baseline_dedup, b.baseline_dedup, "{what}");
    assert_eq!(a.elapsed_s, b.elapsed_s, "{what}");
    assert_eq!(a.steps, b.steps, "{what}");
    assert_eq!(a.telemetry, b.telemetry, "{what}");
}

#[test]
fn same_seed_same_metrics_and_event_stream() {
    let (m1, s1) = run_once(42);
    let (m2, s2) = run_once(42);
    assert_metrics_identical(&m1, &m2, "same-seed metrics");
    assert!(!s1.is_empty(), "run emitted no protocol events");
    assert_eq!(s1, s2, "same-seed JSONL event streams differ");

    // And a different seed actually changes the stream — otherwise the
    // comparison above proves nothing.
    let (_, s3) = run_once(43);
    assert_ne!(s1, s3, "different seeds produced identical streams");
}

#[test]
fn sweep_results_independent_of_thread_count() {
    let make = |cell: Cell, rep: u64| {
        let mut s = scenario(rep.wrapping_mul(7919) + cell.seeds as u64);
        s.demand = Demand::at_volume(cell.volume_pct);
        s.seeds = SeedSpec::Random { count: cell.seeds };
        s
    };
    let cfg1 = SweepConfig {
        volumes: vec![40.0, 80.0],
        seed_counts: vec![1, 3],
        replicates: 2,
        threads: 1,
    };
    let cfgn = SweepConfig {
        threads: 4,
        ..cfg1.clone()
    };
    let serial = sweep(&cfg1, Goal::Constitution, make);
    let parallel = sweep(&cfgn, Goal::Constitution, make);
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.cell, b.cell, "cell order must match after sorting");
        assert_eq!(a.constitution_min, b.constitution_min, "{:?}", a.cell);
        assert_eq!(a.per_checkpoint_min, b.per_checkpoint_min, "{:?}", a.cell);
        assert_eq!(a.violations, b.violations, "{:?}", a.cell);
        assert_eq!(a.unconverged, b.unconverged, "{:?}", a.cell);
        assert_eq!(a.failed, b.failed, "{:?}", a.cell);
        assert_eq!(a.runs.len(), b.runs.len(), "{:?}", a.cell);
        for (ra, rb) in a.runs.iter().zip(&b.runs) {
            assert_metrics_identical(ra, rb, "sweep replicate metrics");
        }
    }
}
