//! The observability layer on full simulated deployments: sink fan-out,
//! per-run telemetry, and the post-mortem ring buffer on an induced oracle
//! violation (the Alg. 3 line 3 compensation ablation).

use std::sync::{Arc, Mutex};
use vcount_core::CheckpointConfig;
use vcount_obs::{EventKind, EventRecord, EventSink};
use vcount_sim::{Goal, MapSpec, PatrolSpec, Runner, Scenario, SeedSpec};
use vcount_traffic::{Demand, SimConfig};
use vcount_v2x::ChannelKind;

fn grid_scenario(seed: u64, channel: ChannelKind) -> Scenario {
    Scenario {
        map: MapSpec::Grid {
            cols: 4,
            rows: 4,
            spacing_m: 200.0,
            lanes: 2,
            speed_mps: 9.0,
        },
        closed: true,
        sim: SimConfig {
            seed,
            ..Default::default()
        },
        demand: Demand::at_volume(60.0),
        protocol: CheckpointConfig::default(),
        channel,
        seeds: SeedSpec::Random { count: 1 },
        transport: Default::default(),
        patrol: PatrolSpec::default(),
        max_time_s: 3.0 * 3600.0,
    }
}

/// A sink that retains every record it sees (shared, so the test can look
/// after the runner is done with it).
#[derive(Clone, Default)]
struct Collector(Arc<Mutex<Vec<EventRecord>>>);

impl EventSink for Collector {
    fn record(&mut self, rec: &EventRecord) {
        self.0.lock().unwrap().push(*rec);
    }
}

#[test]
fn sinks_see_every_counted_event() {
    let s = grid_scenario(21, ChannelKind::PAPER);
    let collector = Collector::default();
    let mut runner = Runner::builder(&s)
        .sink(Box::new(collector.clone()))
        .build();
    let metrics = runner.run(Goal::Collection, s.max_time_s);
    assert_eq!(metrics.oracle_violations, 0);

    let seen = collector.0.lock().unwrap();
    // The custom sink and the internal counters sink are fed the same
    // stream: total record count must agree with the aggregate telemetry.
    assert_eq!(seen.len() as u64, metrics.telemetry.events_total());
    assert!(
        metrics.telemetry.activations >= 16,
        "every checkpoint wakes"
    );
    // Under a lossy channel a vehicle whose handoff was lost is counted at
    // two checkpoints and one count is compensated away (Alg. 3 line 3), so
    // count events can exceed the population — never undershoot it.
    assert!(metrics.telemetry.vehicles_counted >= metrics.true_population as u64);
    assert!(metrics.telemetry.labels_emitted > 0);
    assert!(
        metrics.telemetry.handoff_retries > 0,
        "the 30% channel must lose some handoffs"
    );
    assert!(
        metrics.telemetry.compensations > 0,
        "lost handoffs trigger Alg. 3 line 3 compensation"
    );
    // Every record is stamped with a monotone non-negative sim time.
    let mut last = 0.0f64;
    for rec in seen.iter() {
        assert!(rec.time_s >= 0.0);
        last = last.max(rec.time_s);
    }
    assert!(last > 0.0);
    // Wall-clock phase attribution was measured.
    assert!(metrics.telemetry.traffic_step_secs > 0.0);
    assert!(metrics.telemetry.protocol_secs > 0.0);
}

#[test]
fn compensation_ablation_trips_oracle_and_ring_explains_it() {
    // Ablation: 30% lossy handoffs with the Alg. 3 line 3 "-1" compensation
    // disabled. Lost labels then leave vehicles counted twice (once at the
    // emitting checkpoint, once downstream), which the per-vehicle oracle
    // must flag — and the always-on ring buffer must still hold the
    // offending vehicle's attribution chain for the post-mortem.
    let s = grid_scenario(22, ChannelKind::PAPER);
    let mut runner = Runner::builder(&s)
        .compensate_loss(false)
        .ring_capacity(1 << 17)
        .build();
    let metrics = runner.run(Goal::Collection, s.max_time_s);

    let violations = runner.verify();
    assert!(
        !violations.is_empty(),
        "disabling loss compensation on a lossy channel must mis-count"
    );
    assert_eq!(metrics.oracle_violations, violations.len());
    assert_eq!(
        metrics.telemetry.compensations, 0,
        "the ablation must not compensate"
    );
    assert!(metrics.telemetry.handoff_retries > 0);

    let trace = runner.violation_trace(violations[0].vehicle);
    assert!(
        !trace.is_empty(),
        "ring buffer retains the offending vehicle's chain"
    );
    assert!(
        trace
            .iter()
            .all(|r| r.event.vehicle() == Some(violations[0].vehicle.0)),
        "the chain only mentions the offending vehicle"
    );
    assert!(
        trace
            .iter()
            .filter(|r| r.event.kind() == EventKind::VehicleCounted)
            .count()
            >= 1,
        "the chain shows where the vehicle was counted"
    );
    // The chain is exportable for bug reports.
    for rec in &trace {
        assert!(rec.to_json().contains("\"kind\""));
    }
}
