//! Chaos at the daemon boundary: a feeder killed mid-run (connection
//! dropped with no Finish) must leave its tenant alive, its server-side
//! trace file complete up to the last acknowledged batch (the disconnect
//! flush guard), and the run resumable — a reconnecting feeder freezes
//! it, restarts it, and drives it to a byte-identical completion.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use vcount_core::{CheckpointConfig, ProtocolVariant};
use vcount_obs::{EventRecord, EventSink};
use vcount_sim::{
    serve_connections, Conn, Goal, Listener, ObservationBatch, ObservationSource, RunManager,
    RunMetrics, Runner, Scenario, ServiceConfig, ServiceRequest, ServiceResponse, SimulatorSource,
    WireClient,
};
use vcount_sim::{MapSpec, PatrolSpec, SeedSpec, TransportMode};
use vcount_traffic::{Demand, SimConfig};
use vcount_v2x::ChannelKind;

struct VecSink(Arc<Mutex<Vec<String>>>);

impl EventSink for VecSink {
    fn record(&mut self, rec: &EventRecord) {
        self.0.lock().unwrap().push(rec.to_json());
    }
}

/// 64-bit FNV-1a over the JSONL stream, as the identity tests use.
fn fnv_digest(lines: &[String]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for line in lines {
        for &b in line.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        h ^= u64::from(b'\n');
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

fn grid_scenario(seed: u64) -> Scenario {
    Scenario {
        map: MapSpec::Grid {
            cols: 4,
            rows: 4,
            spacing_m: 130.0,
            lanes: 2,
            speed_mps: 10.0,
        },
        closed: true,
        sim: SimConfig {
            seed,
            detect_overtakes: true,
            speed_factor_range: (0.6, 1.0),
            ..Default::default()
        },
        demand: Demand::at_volume(60.0),
        protocol: CheckpointConfig::for_variant(ProtocolVariant::Simple),
        channel: ChannelKind::PAPER,
        seeds: SeedSpec::Random { count: 2 },
        transport: TransportMode::default(),
        patrol: PatrolSpec::default(),
        max_time_s: 1500.0,
    }
}

fn capture_batch(scen: &Scenario) -> (Vec<String>, RunMetrics) {
    let lines = Arc::new(Mutex::new(Vec::new()));
    let mut runner = Runner::builder(scen)
        .sink(Box::new(VecSink(lines.clone())))
        .build();
    let _ = runner.run(Goal::Collection, scen.max_time_s);
    let metrics = runner.metrics_now();
    let out = lines.lock().unwrap().clone();
    (out, metrics)
}

fn wire_call(
    client: &mut WireClient,
    req: &ServiceRequest,
    events: &mut Vec<String>,
) -> ServiceResponse {
    let mut terminal = None;
    for resp in client.call(req).expect("wire call failed") {
        match resp {
            ServiceResponse::Event { line, .. } => events.push(line),
            ServiceResponse::Error { run, message } => {
                panic!("service error for run {run:?}: {message}")
            }
            other => {
                assert!(terminal.is_none(), "more than one terminal response");
                terminal = Some(other);
            }
        }
    }
    terminal.expect("framing: every request ends in one terminal response")
}

fn trace_lines(path: &std::path::Path) -> Vec<String> {
    match std::fs::read_to_string(path) {
        Ok(text) => text.lines().map(String::from).collect(),
        Err(_) => Vec::new(),
    }
}

/// Waits (bounded) for the daemon's disconnect guard to flush `path` up
/// to exactly `want` lines. The flush runs on the server's connection
/// thread after it sees EOF, so the test must tolerate scheduling delay —
/// but not an incomplete file.
fn await_flushed_trace(path: &std::path::Path, want: &[String]) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let got = trace_lines(path);
        if got.len() >= want.len() {
            assert_eq!(
                got, want,
                "server-side trace diverged from the feeder's received stream"
            );
            return;
        }
        assert!(
            Instant::now() < deadline,
            "disconnect flush guard never completed the trace file \
             ({} of {} lines)",
            got.len(),
            want.len()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The full chaos scenario, over real TCP:
///
/// 1. feeder 1 starts run "t" with a server-side trace, pushes a prefix of
///    batches, and is killed (connection dropped, no Finish);
/// 2. the daemon's disconnect guard flushes the tenant's trace file —
///    verified complete (byte-identical to the events feeder 1 was sent)
///    *before* anything else touches the daemon;
/// 3. feeder 2 reconnects, freezes the orphaned run (supplying the
///    simulator state it inherited), stops it, resumes it under a new id
///    with a second trace, and drives it to completion;
/// 4. the stitched event stream, the stitched trace files, and the final
///    metrics are byte-identical to the uninterrupted solo run.
#[test]
fn killed_feeder_leaves_flushed_trace_and_resumable_run() {
    let scen = grid_scenario(141);
    let prefix_batches = 200usize;
    let (reference, ref_metrics) = capture_batch(&scen);
    assert!(reference.len() > 10, "reference emitted too few events");

    let dir = std::env::temp_dir();
    let trace1 = dir.join(format!("vcountd-chaos-{}-1.jsonl", std::process::id()));
    let trace2 = dir.join(format!("vcountd-chaos-{}-2.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&trace1);
    let _ = std::fs::remove_file(&trace2);

    let listener = Listener::bind_tcp("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr();
    let mgr = Arc::new(Mutex::new(RunManager::new(ServiceConfig::default())));
    let server_mgr = Arc::clone(&mgr);
    let server = std::thread::spawn(move || {
        serve_connections(&listener, &server_mgr, Some(2)).expect("serve_connections")
    });

    // Life 1: feeder 1 pushes a prefix, then dies without Finish.
    let mut source = SimulatorSource::from_scenario(&scen, 1);
    let mut batch = ObservationBatch::default();
    let mut prefix = Vec::new();
    {
        let mut client =
            WireClient::new(Conn::connect_tcp(&addr).expect("connect")).expect("client");
        let started = wire_call(
            &mut client,
            &ServiceRequest::Start {
                run: "t".into(),
                scenario: Box::new(scen.clone()),
                goal: Some(Goal::Collection),
                shards: 0,
                eager_decode: false,
                faults: None,
                trace: Some(trace1.to_str().expect("utf-8 temp path").into()),
            },
            &mut prefix,
        );
        assert!(matches!(started, ServiceResponse::Started { .. }));
        for _ in 0..prefix_batches {
            assert!(source.next_batch(&mut batch));
            match wire_call(
                &mut client,
                &ServiceRequest::Observe {
                    run: "t".into(),
                    batch: batch.clone(),
                },
                &mut prefix,
            ) {
                ServiceResponse::Accepted { done, .. } => {
                    assert!(!done, "prefix must end before the goal for a real resume")
                }
                other => panic!("Observe answered with {other:?}"),
            }
        }
        // The kill: drop the connection. No Finish, no Stop, no goodbye.
    }

    // The disconnect guard must complete the server-side trace on its own.
    await_flushed_trace(&trace1, &prefix);

    // Life 2: a fresh feeder adopts the orphan.
    let mut client = WireClient::new(Conn::connect_tcp(&addr).expect("connect")).expect("client");
    let mut tail = Vec::new();
    let snap = match wire_call(
        &mut client,
        &ServiceRequest::Snapshot {
            run: "t".into(),
            sim: source.sim_state(),
        },
        &mut tail,
    ) {
        ServiceResponse::Snapshot { snapshot, .. } => snapshot,
        other => panic!("Snapshot answered with {other:?}"),
    };
    assert!(matches!(
        wire_call(
            &mut client,
            &ServiceRequest::Stop { run: "t".into() },
            &mut tail
        ),
        ServiceResponse::Stopped { .. }
    ));
    let mut source = SimulatorSource::resume_from(&snap.scenario, &snap.sim, 1);
    assert!(matches!(
        wire_call(
            &mut client,
            &ServiceRequest::Resume {
                run: "t2".into(),
                snapshot: snap,
                goal: Some(Goal::Collection),
                trace: Some(trace2.to_str().expect("utf-8 temp path").into()),
            },
            &mut tail,
        ),
        ServiceResponse::Resumed { .. }
    ));
    let mut done = false;
    while !done && source.next_batch(&mut batch) {
        match wire_call(
            &mut client,
            &ServiceRequest::Observe {
                run: "t2".into(),
                batch: batch.clone(),
            },
            &mut tail,
        ) {
            ServiceResponse::Accepted { done: d, .. } => done = d,
            other => panic!("Observe answered with {other:?}"),
        }
    }
    let finished = wire_call(
        &mut client,
        &ServiceRequest::Finish {
            run: "t2".into(),
            truth: source.truth(),
        },
        &mut tail,
    );
    let ServiceResponse::Finished { metrics, .. } = finished else {
        panic!("Finish answered with {finished:?}");
    };
    drop(client);
    server.join().expect("server thread");

    // The stitched wire streams are byte-identical to the solo run...
    let mut stitched = prefix.clone();
    stitched.extend(tail.clone());
    assert_eq!(
        fnv_digest(&stitched),
        fnv_digest(&reference),
        "kill + reconnect + resume diverged from the uninterrupted run"
    );
    assert_eq!(stitched, reference);
    // ...and so are the stitched server-side trace files (the second one
    // is complete after the daemon's graceful shutdown).
    let mut traces = trace_lines(&trace1);
    traces.extend(trace_lines(&trace2));
    assert_eq!(
        traces, reference,
        "stitched server-side traces diverged from the uninterrupted run"
    );
    // State-derived metrics survive the kill (telemetry counters are
    // audited per life, as the snapshot schema documents).
    assert_eq!(metrics.global_count, ref_metrics.global_count);
    assert_eq!(metrics.true_population, ref_metrics.true_population);
    assert_eq!(metrics.oracle_violations, ref_metrics.oracle_violations);
    assert_eq!(metrics.elapsed_s, ref_metrics.elapsed_s);
    assert_eq!(metrics.steps, ref_metrics.steps);

    let _ = std::fs::remove_file(&trace1);
    let _ = std::fs::remove_file(&trace2);
}
