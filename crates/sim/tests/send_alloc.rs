//! Guards the allocation-free steady state of the exchange's *send*
//! path.
//!
//! Before the slab payload store, every `Exchange::encode` copied the
//! scratch encode buffer into a fresh `Vec<u8>` — one heap allocation
//! per posted message, on every send site (labels, reports, patrol
//! status, relays). The [`PayloadStore`] recycles freed slots with their
//! capacity intact, so once a slot and the surrounding queues have been
//! warmed, a full send → carry → deliver → free cycle must not touch
//! the allocator at all. A counting global allocator pins that: after
//! one warm-up cycle, a window of post/load/take/consume/recycle cycles
//! must not allocate.
//!
//! [`PayloadStore`]: vcount_v2x::PayloadStore
//!
//! This is the only test in this file on purpose, and the counter only
//! ticks while the measuring thread raises a thread-local flag: libtest's
//! harness threads share the process allocator and allocate at
//! unpredictable moments, which would otherwise fail the window
//! spuriously.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use vcount_roadnet::{EdgeId, NodeId};
use vcount_sim::Exchange;
use vcount_v2x::{Message, Report, VehicleId};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Const-initialised `Cell<bool>` has no destructor and no lazy
    // registration, so reading it inside the allocator never allocates.
    static MEASURING: Cell<bool> = const { Cell::new(false) };
}

struct Counting;

// SAFETY: delegates directly to the system allocator; the counter is a
// relaxed atomic with no other side effects. `try_with` (not `with`)
// keeps late allocations during thread teardown from panicking.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if MEASURING.try_with(Cell::get).unwrap_or(false) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if MEASURING.try_with(Cell::get).unwrap_or(false) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

/// One full message lifetime on the report path: post (slab encode),
/// load onto a vehicle, take at the destination, consume (lazy decode +
/// slot free), recycle the scratch buffer. Returns how many messages
/// were delivered, so the caller can assert the window did real work.
fn send_cycle(ex: &mut Exchange, v: VehicleId, msg: &Message) -> usize {
    ex.post_report(NodeId(0), EdgeId(0), NodeId(1), msg);
    ex.load_reports(NodeId(0), v, EdgeId(0));
    let due = ex.take_due_reports(v, NodeId(1));
    let mut delivered = 0usize;
    for routed in &due {
        assert_eq!(
            &ex.consume_payload(routed.payload),
            msg,
            "send round-trip broke"
        );
        delivered += 1;
    }
    ex.recycle_reports(due);
    delivered
}

#[test]
fn steady_state_send_path_does_not_allocate() {
    const WINDOW: usize = 200;
    let mut ex = Exchange::new(1, 4);
    let v = VehicleId(0);
    let msg = Message::Report(Report {
        from: NodeId(0),
        to: NodeId(1),
        subtree_total: 41,
        seq: 3,
    });

    // Warm-up: the first cycle grows the slab slot, the pending/carried
    // queues, and the due-take scratch buffer (allocates freely).
    assert_eq!(send_cycle(&mut ex, v, &msg), 1, "warm-up cycle missed");

    let before = ALLOCS.load(Ordering::Relaxed);
    MEASURING.with(|m| m.set(true));
    let mut delivered = 0usize;
    for _ in 0..WINDOW {
        delivered += send_cycle(&mut ex, v, &msg);
    }
    MEASURING.with(|m| m.set(false));
    let delta = ALLOCS.load(Ordering::Relaxed) - before;

    assert_eq!(delivered, WINDOW, "measurement window missed messages");
    assert_eq!(
        delta, 0,
        "steady-state send path allocated {delta} times over {WINDOW} \
         post/consume cycles — slab slot recycling is being bypassed"
    );
}
