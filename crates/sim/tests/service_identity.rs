//! The service contract (DESIGN.md §10): transport is a deployment knob,
//! never a semantics knob. A scenario driven through the `vcountd`
//! [`RunManager`] by a simulator-fed client must produce a *byte-identical*
//! protocol event stream, final counts, and counter telemetry to the same
//! scenario under the in-process batch runner — for every protocol variant,
//! under fault injection, with tenants interleaved, and across a
//! snapshot/restart through the service.
//!
//! The only fields allowed to differ are the wall-clock phase timings: the
//! service never runs the traffic substrate (the feeder does), so its
//! `traffic_step_secs` is legitimately zero. They are normalized out
//! before comparison, exactly as the sharding tests do.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use vcount_core::{CheckpointConfig, ProtocolVariant};
use vcount_obs::{EventRecord, EventSink};
use vcount_roadnet::builders::ManhattanConfig;
use vcount_sim::{
    serve_connections, Conn, CrashFault, FaultPlan, Goal, Listener, ObservationBatch,
    ObservationSource, RunManager, RunMetrics, Runner, Scenario, ServiceConfig, ServiceRequest,
    ServiceResponse, SimulatorSource, WireClient,
};
use vcount_sim::{MapSpec, PatrolSpec, SeedSpec, TransportMode};
use vcount_traffic::{Demand, SimConfig};
use vcount_v2x::ChannelKind;

struct VecSink(Arc<Mutex<Vec<String>>>);

impl EventSink for VecSink {
    fn record(&mut self, rec: &EventRecord) {
        self.0.lock().unwrap().push(rec.to_json());
    }
}

/// 64-bit FNV-1a over the JSONL stream — one order-sensitive digest per
/// run, so a mismatch report stays readable even for long streams.
fn fnv_digest(lines: &[String]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for line in lines {
        for &b in line.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        h ^= u64::from(b'\n');
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// A 4×4 closed grid, as the sharding identity tests use.
fn grid_scenario(variant: ProtocolVariant, seed: u64) -> Scenario {
    let mut s = Scenario {
        map: MapSpec::Grid {
            cols: 4,
            rows: 4,
            spacing_m: 130.0,
            lanes: 2,
            speed_mps: 10.0,
        },
        closed: true,
        sim: SimConfig {
            seed,
            detect_overtakes: true,
            speed_factor_range: (0.6, 1.0),
            ..Default::default()
        },
        demand: Demand::at_volume(60.0),
        protocol: CheckpointConfig::for_variant(variant),
        channel: ChannelKind::PAPER,
        seeds: SeedSpec::Random { count: 2 },
        transport: TransportMode::default(),
        patrol: PatrolSpec::default(),
        max_time_s: 1500.0,
    };
    if variant == ProtocolVariant::Extended {
        s.transport = TransportMode::VehicleWithPatrolFallback;
        s.patrol = PatrolSpec { cars: 1 };
    }
    s
}

/// The open-system family: border checkpoints, live entry/exit tracking.
fn open_scenario(seed: u64) -> Scenario {
    Scenario {
        map: MapSpec::Manhattan(ManhattanConfig::small()),
        closed: false,
        sim: SimConfig {
            seed,
            spawn_rate_hz: 0.2,
            detect_overtakes: true,
            ..Default::default()
        },
        demand: Demand::at_volume(50.0),
        protocol: CheckpointConfig::for_variant(ProtocolVariant::Open),
        channel: ChannelKind::PAPER,
        seeds: SeedSpec::AllBorder,
        transport: Default::default(),
        patrol: PatrolSpec::default(),
        max_time_s: 900.0,
    }
}

fn boundary_plan() -> FaultPlan {
    FaultPlan {
        seed: 11,
        crashes: vec![
            CrashFault {
                node: 7,
                at_s: 60.0,
                recover_s: 240.0,
            },
            CrashFault {
                node: 8,
                at_s: 90.0,
                recover_s: 300.0,
            },
        ],
        blackouts: Vec::new(),
        chaos: None,
        image_every_s: 60.0,
    }
}

/// The in-process reference: the classic `vcount run` shape, driven by
/// [`Runner::run`] itself, reporting through the same `metrics_now` face
/// the service uses.
fn capture_batch(
    scen: &Scenario,
    plan: Option<FaultPlan>,
    goal: Goal,
) -> (Vec<String>, RunMetrics) {
    let lines = Arc::new(Mutex::new(Vec::new()));
    let mut builder = Runner::builder(scen).sink(Box::new(VecSink(lines.clone())));
    if let Some(p) = plan {
        builder = builder.faults(p);
    }
    let mut runner = builder.build();
    let _ = runner.run(goal, scen.max_time_s);
    let metrics = runner.metrics_now();
    let out = lines.lock().unwrap().clone();
    (out, metrics)
}

/// Applies one request and splits the answer per the framing contract:
/// event lines are appended to `events`, the single terminal response is
/// returned. Panics on a service [`ServiceResponse::Error`].
fn call(mgr: &mut RunManager, req: ServiceRequest, events: &mut Vec<String>) -> ServiceResponse {
    let mut out = Vec::new();
    mgr.handle(req, &mut out);
    let mut terminal = None;
    for resp in out {
        match resp {
            ServiceResponse::Event { line, .. } => events.push(line),
            ServiceResponse::Error { run, message } => {
                panic!("service error for run {run:?}: {message}")
            }
            other => {
                assert!(terminal.is_none(), "more than one terminal response");
                terminal = Some(other);
            }
        }
    }
    terminal.expect("framing: every request ends in one terminal response")
}

/// Drives `scen` through a [`RunManager`] exactly as a `vcount feed`
/// client would: Start, one Observe per simulator tick until the service
/// reports the run done, then Finish with ground truth.
fn capture_service(
    scen: &Scenario,
    plan: Option<FaultPlan>,
    goal: Goal,
    cfg: ServiceConfig,
) -> (Vec<String>, RunMetrics) {
    let mut mgr = RunManager::new(cfg);
    let mut events = Vec::new();
    let started = call(
        &mut mgr,
        ServiceRequest::Start {
            run: "t".into(),
            scenario: Box::new(scen.clone()),
            goal: Some(goal),
            shards: 0,
            eager_decode: false,
            faults: plan,
            trace: None,
        },
        &mut events,
    );
    assert!(matches!(started, ServiceResponse::Started { .. }));

    let mut source = SimulatorSource::from_scenario(scen, 1);
    let mut batch = ObservationBatch::default();
    let mut done = false;
    while !done && source.next_batch(&mut batch) {
        loop {
            let resp = call(
                &mut mgr,
                ServiceRequest::Observe {
                    run: "t".into(),
                    batch: batch.clone(),
                },
                &mut events,
            );
            match resp {
                ServiceResponse::Accepted { done: d, .. } => {
                    done = d;
                    break;
                }
                ServiceResponse::Throttled { .. } => {
                    call(&mut mgr, ServiceRequest::Pump { budget: None }, &mut events);
                }
                other => panic!("Observe answered with {other:?}"),
            }
        }
    }

    let finished = call(
        &mut mgr,
        ServiceRequest::Finish {
            run: "t".into(),
            truth: source.truth(),
        },
        &mut events,
    );
    let ServiceResponse::Finished { metrics, .. } = finished else {
        panic!("Finish answered with {finished:?}");
    };
    (events, *metrics)
}

/// Compares two runs' metrics, skipping only the wall-clock phase timings
/// (nondeterministic, and attributed to the feeder in service mode).
fn assert_metrics_identical(a: &RunMetrics, b: &RunMetrics, what: &str) {
    let normalized = |m: &RunMetrics| {
        let mut t = m.telemetry;
        t.traffic_step_secs = 0.0;
        t.protocol_secs = 0.0;
        t.relay_secs = 0.0;
        t
    };
    assert_eq!(a.constitution_done_s, b.constitution_done_s, "{what}");
    assert_eq!(a.collection_done_s, b.collection_done_s, "{what}");
    assert_eq!(a.global_count, b.global_count, "{what}");
    assert_eq!(a.true_population, b.true_population, "{what}");
    assert_eq!(a.oracle_violations, b.oracle_violations, "{what}");
    assert_eq!(a.handoff_failures, b.handoff_failures, "{what}");
    assert_eq!(a.overtake_adjustments, b.overtake_adjustments, "{what}");
    assert_eq!(a.baseline_naive, b.baseline_naive, "{what}");
    assert_eq!(a.baseline_dedup, b.baseline_dedup, "{what}");
    assert_eq!(a.degraded, b.degraded, "{what}");
    assert_eq!(a.elapsed_s, b.elapsed_s, "{what}");
    assert_eq!(a.steps, b.steps, "{what}");
    assert_eq!(normalized(a), normalized(b), "{what}");
}

fn assert_service_matches_batch(scen: &Scenario, plan: Option<FaultPlan>, what: &str) {
    let (batch_stream, batch_metrics) = capture_batch(scen, plan.clone(), Goal::Collection);
    assert!(
        !batch_stream.is_empty(),
        "{what}: reference emitted no events"
    );
    let (service_stream, service_metrics) =
        capture_service(scen, plan, Goal::Collection, ServiceConfig::default());
    assert_eq!(
        fnv_digest(&service_stream),
        fnv_digest(&batch_stream),
        "{what}: event digest diverged between transports"
    );
    assert_eq!(
        service_stream, batch_stream,
        "{what}: event stream diverged between transports"
    );
    assert_metrics_identical(&service_metrics, &batch_metrics, what);
}

#[test]
fn simple_variant_is_transport_invariant() {
    let scen = grid_scenario(ProtocolVariant::Simple, 52);
    assert_service_matches_batch(&scen, None, "simple");
}

#[test]
fn extended_variant_is_transport_invariant() {
    let scen = grid_scenario(ProtocolVariant::Extended, 53);
    assert_service_matches_batch(&scen, None, "extended");
}

#[test]
fn open_variant_is_transport_invariant() {
    let scen = open_scenario(54);
    assert_service_matches_batch(&scen, None, "open");
}

#[test]
fn faulted_run_is_transport_invariant() {
    let scen = grid_scenario(ProtocolVariant::Simple, 55);
    assert_service_matches_batch(&scen, Some(boundary_plan()), "boundary faults");
}

/// Two interleaved tenants with different seeds and protocol variants:
/// each tenant's event stream and metrics must be byte-identical to its
/// own solo batch run — tenants share a manager, never state.
#[test]
fn interleaved_tenants_match_their_solo_runs() {
    let scen_a = grid_scenario(ProtocolVariant::Simple, 61);
    let scen_b = open_scenario(62);
    let (solo_a, metrics_a) = capture_batch(&scen_a, None, Goal::Collection);
    let (solo_b, metrics_b) = capture_batch(&scen_b, None, Goal::Collection);

    let mut mgr = RunManager::new(ServiceConfig::default());
    let mut events: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut finished: BTreeMap<String, RunMetrics> = BTreeMap::new();
    let sift = |out: Vec<ServiceResponse>,
                events: &mut BTreeMap<String, Vec<String>>,
                finished: &mut BTreeMap<String, RunMetrics>|
     -> Option<ServiceResponse> {
        let mut terminal = None;
        for resp in out {
            match resp {
                ServiceResponse::Event { run, line } => events.entry(run).or_default().push(line),
                ServiceResponse::Error { run, message } => {
                    panic!("service error for run {run:?}: {message}")
                }
                ServiceResponse::Finished { run, metrics } => {
                    finished.insert(run, *metrics);
                }
                other => terminal = Some(other),
            }
        }
        terminal
    };

    for (run, scen) in [("a", &scen_a), ("b", &scen_b)] {
        let mut out = Vec::new();
        mgr.handle(
            ServiceRequest::Start {
                run: run.into(),
                scenario: Box::new(scen.clone()),
                goal: Some(Goal::Collection),
                shards: 0,
                eager_decode: false,
                faults: None,
                trace: None,
            },
            &mut out,
        );
        sift(out, &mut events, &mut finished);
    }

    let mut src_a = SimulatorSource::from_scenario(&scen_a, 1);
    let mut src_b = SimulatorSource::from_scenario(&scen_b, 1);
    let mut batch = ObservationBatch::default();
    let (mut done_a, mut done_b) = (false, false);
    while !done_a || !done_b {
        for (run, src, done) in [
            ("a", &mut src_a as &mut SimulatorSource, &mut done_a),
            ("b", &mut src_b, &mut done_b),
        ] {
            if *done || !src.next_batch(&mut batch) {
                continue;
            }
            let mut out = Vec::new();
            mgr.handle(
                ServiceRequest::Observe {
                    run: run.into(),
                    batch: batch.clone(),
                },
                &mut out,
            );
            match sift(out, &mut events, &mut finished) {
                Some(ServiceResponse::Accepted { done: d, .. }) => *done = d,
                other => panic!("Observe answered with {other:?}"),
            }
        }
    }
    for (run, src) in [("a", &src_a), ("b", &src_b)] {
        let mut out = Vec::new();
        mgr.handle(
            ServiceRequest::Finish {
                run: run.into(),
                truth: src.truth(),
            },
            &mut out,
        );
        sift(out, &mut events, &mut finished);
    }

    assert_eq!(events["a"], solo_a, "tenant a diverged from its solo run");
    assert_eq!(events["b"], solo_b, "tenant b diverged from its solo run");
    assert_eq!(
        fnv_digest(&events["a"]),
        fnv_digest(&solo_a),
        "tenant a digest"
    );
    assert_eq!(
        fnv_digest(&events["b"]),
        fnv_digest(&solo_b),
        "tenant b digest"
    );
    assert_metrics_identical(&finished["a"], &metrics_a, "tenant a metrics");
    assert_metrics_identical(&finished["b"], &metrics_b, "tenant b metrics");
}

/// The bounded ingest queue enforces *explicit* backpressure: an over-rate
/// producer gets a deterministic Throttled response (the batch is not
/// enqueued), and once the queue drains every accepted batch is ingested
/// exactly once — nothing is silently dropped.
#[test]
fn over_rate_producer_gets_explicit_backpressure() {
    let scen = grid_scenario(ProtocolVariant::Simple, 71);
    // Manual ingest: nothing is consumed until an explicit Pump, so the
    // queue fills deterministically.
    let cfg = ServiceConfig {
        queue_capacity: 2,
        pump_budget: 0,
    };
    let mut mgr = RunManager::new(cfg);
    let mut events = Vec::new();
    call(
        &mut mgr,
        ServiceRequest::Start {
            run: "t".into(),
            scenario: Box::new(scen.clone()),
            goal: Some(Goal::Collection),
            shards: 0,
            eager_decode: false,
            faults: None,
            trace: None,
        },
        &mut events,
    );

    // Start itself emits the seed-activation events at t=0; only ingest
    // may add to the stream after this point.
    let activation_events = events.len();

    let mut source = SimulatorSource::from_scenario(&scen, 1);
    let mut batches = Vec::new();
    for _ in 0..3 {
        let mut b = ObservationBatch::default();
        assert!(source.next_batch(&mut b));
        batches.push(b);
    }

    let observe = |b: &ObservationBatch| ServiceRequest::Observe {
        run: "t".into(),
        batch: b.clone(),
    };
    // Two batches fill the queue...
    for (i, b) in batches.iter().take(2).enumerate() {
        match call(&mut mgr, observe(b), &mut events) {
            ServiceResponse::Accepted { queued, done, .. } => {
                assert_eq!(queued, i + 1);
                assert!(!done);
            }
            other => panic!("expected Accepted, got {other:?}"),
        }
    }
    // ...and the third is rejected loudly, not enqueued and not dropped.
    match call(&mut mgr, observe(&batches[2]), &mut events) {
        ServiceResponse::Throttled {
            queued, capacity, ..
        } => {
            assert_eq!((queued, capacity), (2, 2));
        }
        other => panic!("expected Throttled, got {other:?}"),
    }
    assert_eq!(
        events.len(),
        activation_events,
        "nothing may be ingested before an explicit Pump"
    );

    // Draining one slot lets the identical resend through.
    match call(
        &mut mgr,
        ServiceRequest::Pump { budget: Some(1) },
        &mut events,
    ) {
        ServiceResponse::Pumped { ingested } => assert_eq!(ingested, 1),
        other => panic!("expected Pumped, got {other:?}"),
    }
    match call(&mut mgr, observe(&batches[2]), &mut events) {
        ServiceResponse::Accepted { queued, .. } => assert_eq!(queued, 2),
        other => panic!("expected Accepted after drain, got {other:?}"),
    }
    match call(&mut mgr, ServiceRequest::Pump { budget: None }, &mut events) {
        ServiceResponse::Pumped { ingested } => assert_eq!(ingested, 2),
        other => panic!("expected Pumped, got {other:?}"),
    }

    // Every accepted batch went through the engine exactly once.
    let finished = call(
        &mut mgr,
        ServiceRequest::Finish {
            run: "t".into(),
            truth: source.truth(),
        },
        &mut events,
    );
    let ServiceResponse::Finished { metrics, .. } = finished else {
        panic!("Finish answered with {finished:?}");
    };
    assert_eq!(metrics.steps, 3, "all three batches ingested, none dropped");
}

/// A run frozen through the service (the feeder supplies its traffic
/// state) and restarted on a fresh manager — a daemon restart — must
/// resume byte-identically to the uninterrupted batch run.
#[test]
fn service_snapshot_restart_resumes_byte_identically() {
    let scen = grid_scenario(ProtocolVariant::Simple, 81);
    let prefix_batches = 200usize;
    let (reference, ref_metrics) = capture_batch(&scen, None, Goal::Collection);
    assert!(!reference.is_empty(), "reference emitted no events");

    // First life: feed a prefix, freeze, stop.
    let mut mgr = RunManager::new(ServiceConfig::default());
    let mut prefix = Vec::new();
    call(
        &mut mgr,
        ServiceRequest::Start {
            run: "t".into(),
            scenario: Box::new(scen.clone()),
            goal: Some(Goal::Collection),
            shards: 0,
            eager_decode: false,
            faults: None,
            trace: None,
        },
        &mut prefix,
    );
    let mut source = SimulatorSource::from_scenario(&scen, 1);
    let mut batch = ObservationBatch::default();
    for _ in 0..prefix_batches {
        assert!(source.next_batch(&mut batch));
        match call(
            &mut mgr,
            ServiceRequest::Observe {
                run: "t".into(),
                batch: batch.clone(),
            },
            &mut prefix,
        ) {
            ServiceResponse::Accepted { done, .. } => {
                assert!(!done, "prefix must end before the goal for a real resume")
            }
            other => panic!("Observe answered with {other:?}"),
        }
    }
    let snap = match call(
        &mut mgr,
        ServiceRequest::Snapshot {
            run: "t".into(),
            sim: source.sim_state(),
        },
        &mut prefix,
    ) {
        ServiceResponse::Snapshot { snapshot, .. } => snapshot,
        other => panic!("Snapshot answered with {other:?}"),
    };
    call(
        &mut mgr,
        ServiceRequest::Stop { run: "t".into() },
        &mut prefix,
    );
    drop(mgr);

    // Second life: a fresh manager resumes the frozen run; the feeder
    // restores its simulator from the same snapshot.
    let mut mgr = RunManager::new(ServiceConfig::default());
    let mut tail = Vec::new();
    let mut source = SimulatorSource::resume_from(&snap.scenario, &snap.sim, 1);
    call(
        &mut mgr,
        ServiceRequest::Resume {
            run: "t2".into(),
            snapshot: snap,
            goal: Some(Goal::Collection),
            trace: None,
        },
        &mut tail,
    );
    let mut done = false;
    while !done && source.next_batch(&mut batch) {
        match call(
            &mut mgr,
            ServiceRequest::Observe {
                run: "t2".into(),
                batch: batch.clone(),
            },
            &mut tail,
        ) {
            ServiceResponse::Accepted { done: d, .. } => done = d,
            other => panic!("Observe answered with {other:?}"),
        }
    }
    let finished = call(
        &mut mgr,
        ServiceRequest::Finish {
            run: "t2".into(),
            truth: source.truth(),
        },
        &mut tail,
    );
    let ServiceResponse::Finished { metrics, .. } = finished else {
        panic!("Finish answered with {finished:?}");
    };

    let mut stitched = prefix;
    stitched.extend(tail);
    assert_eq!(
        fnv_digest(&stitched),
        fnv_digest(&reference),
        "service snapshot/restart diverged from the uninterrupted run"
    );
    assert_eq!(stitched, reference);
    // The snapshot deliberately excludes the telemetry counters ("a
    // resumed run audits its own tail"), so only the state-derived
    // metrics must survive the restart.
    assert_eq!(metrics.global_count, ref_metrics.global_count);
    assert_eq!(metrics.true_population, ref_metrics.true_population);
    assert_eq!(metrics.oracle_violations, ref_metrics.oracle_violations);
    assert_eq!(metrics.baseline_naive, ref_metrics.baseline_naive);
    assert_eq!(metrics.baseline_dedup, ref_metrics.baseline_dedup);
    assert_eq!(metrics.degraded, ref_metrics.degraded);
    assert_eq!(metrics.elapsed_s, ref_metrics.elapsed_s);
    assert_eq!(metrics.steps, ref_metrics.steps);
    assert_eq!(metrics.constitution_done_s, ref_metrics.constitution_done_s);
    assert_eq!(metrics.collection_done_s, ref_metrics.collection_done_s);
}

/// Splits one wire call's responses per the framing contract: event lines
/// are appended to `events`, the single terminal response is returned.
fn wire_call(
    client: &mut WireClient,
    req: ServiceRequest,
    events: &mut Vec<String>,
) -> ServiceResponse {
    let responses = client.call(&req).expect("wire call failed");
    let mut terminal = None;
    for resp in responses {
        match resp {
            ServiceResponse::Event { line, .. } => events.push(line),
            ServiceResponse::Error { run, message } => {
                panic!("service error for run {run:?}: {message}")
            }
            other => {
                assert!(terminal.is_none(), "more than one terminal response");
                terminal = Some(other);
            }
        }
    }
    terminal.expect("framing: every request ends in one terminal response")
}

/// Drives `scen` to completion over an already-dialed connection, exactly
/// as a `vcount feed` client would: Start, one Observe per simulator tick
/// (resending after Throttled), then Finish with ground truth.
fn drive_wire(conn: Conn, run: &str, scen: &Scenario) -> (Vec<String>, RunMetrics) {
    let mut client = WireClient::new(conn).expect("wire client");
    let mut events = Vec::new();
    let started = wire_call(
        &mut client,
        ServiceRequest::Start {
            run: run.into(),
            scenario: Box::new(scen.clone()),
            goal: Some(Goal::Collection),
            shards: 0,
            eager_decode: false,
            faults: None,
            trace: None,
        },
        &mut events,
    );
    assert!(matches!(started, ServiceResponse::Started { .. }));

    let mut source = SimulatorSource::from_scenario(scen, 1);
    let mut batch = ObservationBatch::default();
    let mut done = false;
    while !done && source.next_batch(&mut batch) {
        loop {
            let resp = wire_call(
                &mut client,
                ServiceRequest::Observe {
                    run: run.into(),
                    batch: batch.clone(),
                },
                &mut events,
            );
            match resp {
                ServiceResponse::Accepted { done: d, .. } => {
                    done = d;
                    break;
                }
                ServiceResponse::Throttled { .. } => {
                    wire_call(
                        &mut client,
                        ServiceRequest::Pump { budget: None },
                        &mut events,
                    );
                }
                other => panic!("Observe answered with {other:?}"),
            }
        }
    }
    let finished = wire_call(
        &mut client,
        ServiceRequest::Finish {
            run: run.into(),
            truth: source.truth(),
        },
        &mut events,
    );
    let ServiceResponse::Finished { metrics, .. } = finished else {
        panic!("Finish answered with {finished:?}");
    };
    (events, *metrics)
}

/// The tentpole contract, over real sockets: two feeders on *concurrent
/// connections* to one daemon — each tenant's event stream and metrics
/// must be byte-identical to its own solo batch run, on both transports.
/// Requests interleave at request granularity under the shared manager
/// lock; per-connection write serialization keeps each feeder's framing
/// intact.
fn concurrent_feeders_match_solo(listener: Listener, dial: impl Fn() -> Conn + Send + Sync) {
    let scen_a = grid_scenario(ProtocolVariant::Simple, 61);
    let scen_b = open_scenario(62);
    let (solo_a, metrics_a) = capture_batch(&scen_a, None, Goal::Collection);
    let (solo_b, metrics_b) = capture_batch(&scen_b, None, Goal::Collection);

    let mgr = Arc::new(Mutex::new(RunManager::new(ServiceConfig::default())));
    let server_mgr = Arc::clone(&mgr);
    let server = std::thread::spawn(move || {
        serve_connections(&listener, &server_mgr, Some(2)).expect("serve_connections")
    });
    let ((events_a, got_a), (events_b, got_b)) = std::thread::scope(|s| {
        let feeder_a = s.spawn(|| drive_wire(dial(), "a", &scen_a));
        let feeder_b = s.spawn(|| drive_wire(dial(), "b", &scen_b));
        (
            feeder_a.join().expect("feeder a"),
            feeder_b.join().expect("feeder b"),
        )
    });
    server.join().expect("server thread");

    assert_eq!(
        fnv_digest(&events_a),
        fnv_digest(&solo_a),
        "tenant a digest diverged from its solo run"
    );
    assert_eq!(events_a, solo_a, "tenant a diverged from its solo run");
    assert_eq!(
        fnv_digest(&events_b),
        fnv_digest(&solo_b),
        "tenant b digest diverged from its solo run"
    );
    assert_eq!(events_b, solo_b, "tenant b diverged from its solo run");
    assert_metrics_identical(&got_a, &metrics_a, "tenant a metrics");
    assert_metrics_identical(&got_b, &metrics_b, "tenant b metrics");
    assert!(
        mgr.lock().unwrap().runs().next().is_none(),
        "both tenants finished and were removed"
    );
}

#[test]
fn concurrent_tcp_feeders_match_their_solo_runs() {
    let listener = Listener::bind_tcp("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr();
    concurrent_feeders_match_solo(listener, move || Conn::connect_tcp(&addr).expect("connect"));
}

#[test]
fn concurrent_unix_feeders_match_their_solo_runs() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("vcountd-identity-{}.sock", std::process::id()));
    let path = path.to_str().expect("utf-8 temp path").to_string();
    let listener = Listener::bind_unix(&path).expect("bind");
    let dial_path = path.clone();
    concurrent_feeders_match_solo(listener, move || {
        Conn::connect_unix(&dial_path).expect("connect")
    });
    let _ = std::fs::remove_file(&path);
}

/// The shutdown guard (satellite of the service work): dropping a runner
/// mid-run — an aborted tenant, a panic unwinding past an external drive
/// loop — flushes its sinks, so a buffered trace never loses its tail.
#[test]
fn dropping_a_runner_mid_run_flushes_sinks() {
    struct FlagSink {
        records: usize,
        flushed: Arc<Mutex<bool>>,
    }
    impl EventSink for FlagSink {
        fn record(&mut self, _rec: &EventRecord) {
            self.records += 1;
        }
        fn flush(&mut self) {
            *self.flushed.lock().unwrap() = true;
        }
    }

    let flushed = Arc::new(Mutex::new(false));
    let scen = grid_scenario(ProtocolVariant::Simple, 91);
    let mut runner = Runner::builder(&scen)
        .sink(Box::new(FlagSink {
            records: 0,
            flushed: flushed.clone(),
        }))
        .build();
    for _ in 0..5 {
        runner.step();
    }
    assert!(!*flushed.lock().unwrap(), "no flush while mid-run");
    drop(runner);
    assert!(
        *flushed.lock().unwrap(),
        "dropping the runner must flush its sinks"
    );
}
