//! Action record/replay determinism: a run recorded with the
//! [`vcount_sim::ActionRecorder`] must replay through the *pure machines
//! only* ([`vcount_core::Replayer`]) — no traffic simulator, channel, or
//! RNG — to a byte-identical dispatch digest and identical final
//! per-checkpoint counts, under all three protocol variants and with an
//! active fault plan (DESIGN.md §8).

use vcount_core::{CheckpointConfig, ProtocolVariant};
use vcount_sim::{
    replay_trace, ActionTrace, CrashFault, FaultPlan, Goal, Runner, Scenario, TRACE_SCHEMA,
};
use vcount_sim::{MapSpec, PatrolSpec, SeedSpec, TransportMode};
use vcount_traffic::{Demand, SimConfig};
use vcount_v2x::ChannelKind;

fn scenario(variant: ProtocolVariant, seed: u64) -> Scenario {
    let mut s = Scenario {
        map: MapSpec::Grid {
            cols: 3,
            rows: 3,
            spacing_m: 120.0,
            lanes: 2,
            speed_mps: 10.0,
        },
        closed: variant != ProtocolVariant::Open,
        sim: SimConfig {
            seed,
            detect_overtakes: true,
            speed_factor_range: (0.6, 1.0),
            ..Default::default()
        },
        demand: Demand::at_volume(60.0),
        protocol: CheckpointConfig::for_variant(variant),
        channel: ChannelKind::PAPER,
        seeds: SeedSpec::Random { count: 2 },
        transport: TransportMode::default(),
        patrol: PatrolSpec::default(),
        max_time_s: 1200.0,
    };
    if variant == ProtocolVariant::Extended {
        // Exercise the patrol-carried queues and status exchange too.
        s.transport = TransportMode::VehicleWithPatrolFallback;
        s.patrol = PatrolSpec { cars: 1 };
    }
    s
}

/// Records a run of `scen`, optionally under a fault plan, and returns the
/// finished action trace.
fn record(scen: &Scenario, faults: Option<FaultPlan>) -> ActionTrace {
    let mut builder = Runner::builder(scen).record_actions(true);
    if let Some(plan) = faults {
        builder = builder.faults(plan);
    }
    let mut runner = builder.build();
    runner.run(Goal::Collection, scen.max_time_s);
    runner
        .take_action_trace()
        .expect("recording was enabled at build time")
}

/// Records, JSON round-trips the trace, replays machine-only, and asserts
/// byte-identical dispatches and final counts.
fn roundtrip(variant: ProtocolVariant, seed: u64, faults: Option<FaultPlan>) {
    let scen = scenario(variant, seed);
    let trace = record(&scen, faults);
    assert!(
        !trace.records.is_empty(),
        "{variant:?}: a converging run must process actions"
    );

    // The serialized form is what `vcount replay` consumes.
    let parsed = ActionTrace::from_json(&trace.to_json()).expect("trace round-trips");
    assert_eq!(parsed.records, trace.records);
    assert_eq!(parsed.dispatch_digest, trace.dispatch_digest);

    let report = replay_trace(&parsed).expect("trace replays");
    assert_eq!(report.actions, trace.records.len() as u64);
    assert!(
        report.digests_match,
        "{variant:?}: dispatch digest diverged (recorded {:#018x}, replayed {:#018x})",
        report.recorded_digest, report.replayed_digest
    );
    assert!(
        report.counts_match,
        "{variant:?}: final per-checkpoint counts diverged"
    );
    report.check().expect("report agrees with its own flags");
}

#[test]
fn simple_variant_trace_replays_machine_only() {
    roundtrip(ProtocolVariant::Simple, 11, None);
}

#[test]
fn extended_variant_trace_replays_machine_only() {
    roundtrip(ProtocolVariant::Extended, 12, None);
}

#[test]
fn open_variant_trace_replays_machine_only() {
    roundtrip(ProtocolVariant::Open, 13, None);
}

/// A crash/recover schedule mid-run: the recorded `Crash` documents the
/// outage and the recorded `Recover` carries the rollback image, so the
/// machine-only replay reproduces the post-recovery stream exactly.
#[test]
fn faulty_run_trace_replays_machine_only() {
    let plan = FaultPlan {
        seed: 11,
        crashes: vec![CrashFault {
            node: 4,
            at_s: 120.0,
            recover_s: 300.0,
        }],
        blackouts: Vec::new(),
        chaos: None,
        image_every_s: 60.0,
    };
    roundtrip(ProtocolVariant::Simple, 14, Some(plan));
}

#[test]
fn recording_off_yields_no_trace() {
    let scen = scenario(ProtocolVariant::Simple, 15);
    let mut runner = Runner::builder(&scen).build();
    for _ in 0..50 {
        runner.step();
    }
    assert!(runner.take_action_trace().is_none());
}

#[test]
fn trace_schema_mismatch_is_rejected() {
    let scen = scenario(ProtocolVariant::Simple, 16);
    let mut trace = record(&scen, None);
    trace.schema = "vcount-action-trace/v0".into();
    let err = ActionTrace::from_json(&trace.to_json()).unwrap_err();
    assert!(err.contains(TRACE_SCHEMA), "error names the schema: {err}");
}

/// A corrupted trace (one action's frozen input altered) must be caught —
/// never a silent pass.
#[test]
fn tampered_trace_is_detected() {
    use vcount_core::ActionKind;

    let scen = scenario(ProtocolVariant::Simple, 17);
    let mut trace = record(&scen, None);
    // Inflate one frozen report total: the collection outcome the
    // recording saw no longer reproduces, so dispatches and/or counts
    // must diverge.
    let rec = trace
        .records
        .iter_mut()
        .find(|r| matches!(r.action.kind, ActionKind::Report { .. }))
        .expect("a collected run delivers at least one report");
    let ActionKind::Report { total, .. } = &mut rec.action.kind else {
        unreachable!()
    };
    *total += 1;
    let report = replay_trace(&trace).expect("still structurally replayable");
    assert!(
        !report.digests_match || !report.counts_match,
        "inflating a report total must not replay clean"
    );
    assert!(report.check().is_err());
}
