//! End-to-end protocol correctness: Theorems 1–4 and Corollaries 1–2 as
//! executable checks on full simulated deployments.

use vcount_core::{CheckpointConfig, ProtocolVariant};
use vcount_roadnet::builders::{ManhattanConfig, RandomCityConfig};
use vcount_sim::{Goal, MapSpec, PatrolSpec, Runner, Scenario, SeedSpec};
use vcount_traffic::{Demand, SimConfig};
use vcount_v2x::{ChannelKind, ClassFilter};

fn base(map: MapSpec, seed: u64) -> Scenario {
    Scenario {
        map,
        closed: true,
        sim: SimConfig {
            seed,
            ..Default::default()
        },
        demand: Demand::at_volume(60.0),
        protocol: CheckpointConfig::default(),
        channel: ChannelKind::Perfect,
        seeds: SeedSpec::Random { count: 1 },
        transport: Default::default(),
        patrol: PatrolSpec::default(),
        max_time_s: 3.0 * 3600.0,
    }
}

fn assert_exact(scenario: &Scenario, goal: Goal) {
    let mut runner = Runner::builder(scenario).build();
    let metrics = runner.run(goal, scenario.max_time_s);
    match goal {
        Goal::Constitution => assert!(
            metrics.constitution_done_s.is_some(),
            "constitution did not converge within {}s",
            scenario.max_time_s
        ),
        Goal::Collection => assert!(
            metrics.collection_done_s.is_some(),
            "collection did not converge within {}s",
            scenario.max_time_s
        ),
    }
    let violations = runner.verify();
    assert!(
        violations.is_empty(),
        "oracle violations (first 3): {:?}",
        &violations[..violations.len().min(3)]
    );
    assert_eq!(
        metrics.global_count,
        Some(metrics.true_population as i64),
        "global count must equal ground truth"
    );
}

// --- Theorem 1: closed, simple road model (Alg. 1 + Alg. 2) -------------

#[test]
fn simple_model_triangle_counts_exactly() {
    let mut s = base(
        MapSpec::Fig1Triangle {
            segment_m: 250.0,
            speed_mps: 6.7,
        },
        1,
    );
    s.sim = SimConfig::simple_model(1);
    s.protocol = CheckpointConfig::for_variant(ProtocolVariant::Simple);
    assert_exact(&s, Goal::Collection);
}

#[test]
fn simple_model_grid_counts_exactly() {
    let mut s = base(
        MapSpec::Grid {
            cols: 4,
            rows: 4,
            spacing_m: 150.0,
            lanes: 1,
            speed_mps: 8.0,
        },
        2,
    );
    s.sim = SimConfig::simple_model(2);
    s.protocol = CheckpointConfig::for_variant(ProtocolVariant::Simple);
    assert_exact(&s, Goal::Collection);
}

// --- Theorem 2: extended model (Alg. 3 + Alg. 4) -------------------------

#[test]
fn extended_model_with_overtakes_counts_exactly() {
    let mut s = base(
        MapSpec::Grid {
            cols: 4,
            rows: 3,
            spacing_m: 300.0,
            lanes: 3,
            speed_mps: 11.0,
        },
        3,
    );
    s.sim.speed_factor_range = (0.5, 1.0);
    s.demand.vehicles_per_lane_km = 16.0;
    assert_exact(&s, Goal::Collection);
}

#[test]
fn lossy_channel_30pct_counts_exactly() {
    let mut s = base(
        MapSpec::Grid {
            cols: 4,
            rows: 4,
            spacing_m: 200.0,
            lanes: 2,
            speed_mps: 9.0,
        },
        4,
    );
    s.channel = ChannelKind::PAPER; // 30% failures
    assert_exact(&s, Goal::Collection);
}

#[test]
fn one_way_ring_counts_exactly() {
    let mut s = base(
        MapSpec::DirectedRing {
            nodes: 6,
            spacing_m: 200.0,
            speed_mps: 8.0,
        },
        5,
    );
    s.demand.vehicles_per_lane_km = 20.0;
    assert_exact(&s, Goal::Collection);
}

#[test]
fn mixed_oneway_random_city_counts_exactly() {
    for seed in [6, 7, 8] {
        let mut s = base(
            MapSpec::Random(RandomCityConfig {
                nodes: 25,
                one_way_fraction: 0.5,
                seed,
                ..Default::default()
            }),
            seed,
        );
        s.channel = ChannelKind::PAPER;
        assert_exact(&s, Goal::Collection);
    }
}

#[test]
fn midtown_closed_system_counts_exactly() {
    let mut s = base(MapSpec::Manhattan(ManhattanConfig::small()), 9);
    s.channel = ChannelKind::PAPER;
    s.demand.volume_pct = 50.0;
    assert_exact(&s, Goal::Collection);
}

// --- Multiple seeds (forest of spanning trees) ---------------------------

#[test]
fn multiple_seeds_sum_to_ground_truth() {
    for seeds in [2, 4, 7] {
        let mut s = base(
            MapSpec::Grid {
                cols: 5,
                rows: 4,
                spacing_m: 150.0,
                lanes: 2,
                speed_mps: 9.0,
            },
            10 + seeds as u64,
        );
        s.seeds = SeedSpec::Random { count: seeds };
        s.channel = ChannelKind::PAPER;
        assert_exact(&s, Goal::Collection);
    }
}

// --- Corollaries 1 & 2: open road system (Alg. 5) ------------------------

#[test]
fn open_midtown_reaches_complete_status_exactly() {
    let mut s = base(MapSpec::Manhattan(ManhattanConfig::small()), 11);
    s.closed = false;
    s.protocol = CheckpointConfig::for_variant(ProtocolVariant::Open);
    s.channel = ChannelKind::PAPER;
    s.demand.volume_pct = 40.0;
    assert_exact(&s, Goal::Constitution);
}

#[test]
fn open_system_collection_matches_live_population() {
    let mut s = base(MapSpec::Manhattan(ManhattanConfig::small()), 12);
    s.closed = false;
    s.protocol = CheckpointConfig::for_variant(ProtocolVariant::Open);
    s.seeds = SeedSpec::Random { count: 3 };
    assert_exact(&s, Goal::Collection);
}

// --- Specified-type counting ("that white van") --------------------------

#[test]
fn white_van_filter_counts_only_vans() {
    let mut s = base(
        MapSpec::Grid {
            cols: 4,
            rows: 4,
            spacing_m: 180.0,
            lanes: 2,
            speed_mps: 9.0,
        },
        13,
    );
    s.protocol.filter = ClassFilter::white_vans();
    s.demand.white_van_fraction = 0.15;
    s.channel = ChannelKind::PAPER;
    assert_exact(&s, Goal::Collection);
}

// --- Theorems 3 & 4: patrol under sparse traffic -------------------------

#[test]
fn patrol_resolves_sparse_traffic_deadlock() {
    // Near-empty network: with so few civilian vehicles the label wave
    // starves on many directions; patrol cars carry the pending labels
    // (and reports) around their edge-covering cycle.
    let mut s = base(
        MapSpec::Grid {
            cols: 3,
            rows: 3,
            spacing_m: 150.0,
            lanes: 1,
            speed_mps: 10.0,
        },
        14,
    );
    s.demand = Demand {
        volume_pct: 100.0,
        vehicles_per_lane_km: 0.6, // a handful of vehicles in total
        white_van_fraction: 0.0,
    };
    s.patrol = PatrolSpec { cars: 2 };
    s.transport = vcount_sim::TransportMode::VehicleWithPatrolFallback;
    assert_exact(&s, Goal::Collection);
}

#[test]
fn sparse_traffic_without_patrol_starves() {
    // The same scenario without patrol cars must NOT converge — this is
    // the deadlock the paper's Section IV-B describes.
    let mut s = base(
        MapSpec::Grid {
            cols: 3,
            rows: 3,
            spacing_m: 150.0,
            lanes: 1,
            speed_mps: 10.0,
        },
        14,
    );
    s.demand = Demand {
        volume_pct: 100.0,
        vehicles_per_lane_km: 0.0, // zero civilian traffic: full starvation
        white_van_fraction: 0.0,
    };
    s.max_time_s = 900.0;
    let mut runner = Runner::builder(&s).build();
    let metrics = runner.run(Goal::Constitution, s.max_time_s);
    assert!(
        metrics.constitution_done_s.is_none(),
        "empty network must starve without patrol support"
    );
}

// --- Determinism ----------------------------------------------------------

#[test]
fn runs_are_reproducible_per_seed() {
    let s = base(
        MapSpec::Grid {
            cols: 4,
            rows: 3,
            spacing_m: 150.0,
            lanes: 2,
            speed_mps: 9.0,
        },
        15,
    );
    let run = |s: &Scenario| {
        let mut r = Runner::builder(s).build();
        let m = r.run(Goal::Collection, s.max_time_s);
        (
            m.constitution_done_s,
            m.collection_done_s,
            m.global_count,
            m.handoff_failures,
        )
    };
    assert_eq!(run(&s), run(&s));
}

// --- Burst losses (beyond the paper's independent-loss model) -------------

#[test]
fn bursty_channel_counts_exactly() {
    let mut s = base(
        MapSpec::Grid {
            cols: 4,
            rows: 3,
            spacing_m: 180.0,
            lanes: 2,
            speed_mps: 9.0,
        },
        47,
    );
    s.channel = ChannelKind::BURSTY; // ~30% long-run loss in fades
    assert_exact(&s, Goal::Collection);
}
