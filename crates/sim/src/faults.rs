//! Deterministic fault injection: checkpoint crashes, channel blackouts,
//! and message chaos, driven by a serializable [`FaultPlan`].
//!
//! The paper's headline claim is exactness *despite* failure — Alg. 3
//! compensates lossy handoffs and the patrol extension breaks one-way
//! deadlocks — but an i.i.d. loss model alone never exercises the fault
//! classes real V2V deployments report: equipment crashes, regional radio
//! outages, and duplicated/delayed/reordered deliveries. This module
//! injects exactly those, deterministically:
//!
//! - **Checkpoint crash/recover** ([`CrashFault`]): a crashed checkpoint
//!   drops its volatile message queues and, on recovery, rejoins from its
//!   last per-checkpoint state image (taken at [`FaultPlan::image_every_s`]
//!   cadence through the same `export_state`/`restore_state` machinery the
//!   engine snapshot uses). While down it processes no observations.
//! - **Channel blackout** ([`Blackout`]): a time-windowed, per-region
//!   override layered *above* the scenario's [`vcount_v2x::LossModel`] —
//!   every handoff at a blacked-out checkpoint fails, without consuming a
//!   draw from the protocol RNG stream.
//! - **Exchange chaos** ([`ChaosFault`]): duplicate/delay/reorder injection
//!   on the relay and patrol-carried message paths. The protocol is
//!   designed to tolerate these (announces are idempotent, reports are
//!   highest-sequence-wins), so chaos alone must never change the count.
//!
//! Determinism: the layer draws from its **own** [`ReplayRng`] stream
//! seeded from [`FaultPlan::seed`], so a fault-free run consumes zero
//! extra draws and keeps byte-identical golden digests; the layer's full
//! state serializes as a [`FaultSnapshot`] inside the engine snapshot, so
//! a resumed faulty run replays the identical tail.
//!
//! **Degraded-status contract**: a run is [`FaultLayer::degraded`] as soon
//! as any injected fault *may* have cost protocol information — a crash
//! whose recovery image was stale, a message dropped at a down checkpoint,
//! a carried label lost, or a suppressed observation at an active
//! checkpoint. Blackouts and chaos alone do not degrade a run: the
//! protocol's own compensation and idempotence absorb them. The inverse
//! guarantee is the tested property: a run that ends with
//! `oracle_violations > 0` or a wrong count is always flagged degraded —
//! faults never cause a *silent* miscount.

use crate::engine::{audit, StepCtx};
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use vcount_core::{ActionKind, CheckpointState};
use vcount_obs::ProtocolEvent;
use vcount_roadnet::NodeId;
use vcount_traffic::ReplayRng;

/// One scheduled checkpoint crash: the node goes down at `at_s` (dropping
/// the messages queued at it) and rejoins from its last state image at
/// `recover_s`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashFault {
    /// The checkpoint that crashes.
    pub node: u32,
    /// Simulated crash time, seconds.
    pub at_s: f64,
    /// Simulated recovery time, seconds (must exceed `at_s`).
    pub recover_s: f64,
}

/// A regional radio blackout: every label handoff attempted at one of
/// `nodes` during `[from_s, until_s)` fails, independent of the loss model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Blackout {
    /// The blacked-out checkpoints.
    pub nodes: Vec<u32>,
    /// Window start, simulated seconds (inclusive).
    pub from_s: f64,
    /// Window end, simulated seconds (exclusive).
    pub until_s: f64,
}

/// Message-chaos injection on the relay and patrol-carried paths during
/// `[from_s, until_s)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosFault {
    /// Window start, simulated seconds (inclusive).
    pub from_s: f64,
    /// Window end, simulated seconds (exclusive).
    pub until_s: f64,
    /// Probability a relayed (or patrol-carried) message is duplicated.
    #[serde(default)]
    pub duplicate_p: f64,
    /// Probability a relayed message is delayed by up to `max_delay_s`.
    #[serde(default)]
    pub delay_p: f64,
    /// Extra delay upper bound, seconds (0 = delayed messages arrive on
    /// their original schedule).
    #[serde(default)]
    pub max_delay_s: f64,
    /// Probability the two most recent relay messages swap delivery order
    /// (patrol side: the carried queue reverses).
    #[serde(default)]
    pub reorder_p: f64,
}

/// Recovery-image cadence used when a plan omits `image_every_s`.
pub const DEFAULT_IMAGE_EVERY_S: f64 = 60.0;

/// A complete, reproducible fault schedule for one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the layer's own RNG stream (decoupled from the protocol
    /// stream so fault-free digests are untouched).
    pub seed: u64,
    /// Scheduled checkpoint crashes.
    #[serde(default)]
    pub crashes: Vec<CrashFault>,
    /// Regional radio blackouts.
    #[serde(default)]
    pub blackouts: Vec<Blackout>,
    /// Message-chaos window, if any.
    #[serde(default)]
    pub chaos: Option<ChaosFault>,
    /// Cadence of the per-checkpoint recovery state images, seconds
    /// (0 or absent = [`DEFAULT_IMAGE_EVERY_S`]).
    #[serde(default)]
    pub image_every_s: f64,
}

impl FaultPlan {
    /// Parses a plan from JSON. An absent (or zero) `image_every_s` is
    /// normalized to [`DEFAULT_IMAGE_EVERY_S`].
    pub fn from_json(s: &str) -> Result<FaultPlan, String> {
        let mut plan: FaultPlan =
            serde_json::from_str(s).map_err(|e| format!("invalid fault plan: {e}"))?;
        if plan.image_every_s == 0.0 {
            plan.image_every_s = DEFAULT_IMAGE_EVERY_S;
        }
        Ok(plan)
    }

    /// Serializes the plan to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fault plans always serialize")
    }

    /// Validates the plan against a deployment of `nodes` checkpoints:
    /// node indices in range, positive windows, probabilities in `[0, 1]`,
    /// and no two crash windows overlapping on the same node.
    pub fn validate(&self, nodes: usize) -> Result<(), String> {
        if self.image_every_s.is_nan() || self.image_every_s <= 0.0 {
            return Err(format!(
                "image_every_s must be positive, got {}",
                self.image_every_s
            ));
        }
        for c in &self.crashes {
            if c.node as usize >= nodes {
                return Err(format!(
                    "crash node {} out of range ({nodes} nodes)",
                    c.node
                ));
            }
            if !valid_window(c.at_s, c.recover_s) {
                return Err(format!(
                    "crash on node {}: need 0 <= at_s < recover_s, got [{}, {}]",
                    c.node, c.at_s, c.recover_s
                ));
            }
        }
        let mut by_node: Vec<&CrashFault> = self.crashes.iter().collect();
        by_node.sort_by(|a, b| {
            (a.node, a.at_s)
                .partial_cmp(&(b.node, b.at_s))
                .expect("crash times validated finite")
        });
        for w in by_node.windows(2) {
            if w[0].node == w[1].node && w[1].at_s < w[0].recover_s {
                return Err(format!(
                    "overlapping crash windows on node {}: [{}, {}) and [{}, {})",
                    w[0].node, w[0].at_s, w[0].recover_s, w[1].at_s, w[1].recover_s
                ));
            }
        }
        for b in &self.blackouts {
            if let Some(n) = b.nodes.iter().find(|n| **n as usize >= nodes) {
                return Err(format!("blackout node {n} out of range ({nodes} nodes)"));
            }
            if !valid_window(b.from_s, b.until_s) {
                return Err(format!(
                    "blackout window [{}, {}) is not a positive interval",
                    b.from_s, b.until_s
                ));
            }
        }
        if let Some(c) = &self.chaos {
            if !valid_window(c.from_s, c.until_s) {
                return Err(format!(
                    "chaos window [{}, {}) is not a positive interval",
                    c.from_s, c.until_s
                ));
            }
            for (name, p) in [
                ("duplicate_p", c.duplicate_p),
                ("delay_p", c.delay_p),
                ("reorder_p", c.reorder_p),
            ] {
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("chaos {name} must be in [0, 1], got {p}"));
                }
            }
            if c.max_delay_s.is_nan() || c.max_delay_s < 0.0 {
                return Err(format!(
                    "chaos max_delay_s must be >= 0, got {}",
                    c.max_delay_s
                ));
            }
        }
        Ok(())
    }

    /// Whether the plan schedules no fault at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.blackouts.is_empty() && self.chaos.is_none()
    }
}

/// A schedulable `[from_s, until_s)` window: non-negative start, positive
/// length. NaN bounds fail both comparisons and are rejected.
fn valid_window(from_s: f64, until_s: f64) -> bool {
    from_s >= 0.0 && until_s > from_s
}

/// Per-class injection counters (surfaced through
/// [`crate::metrics::RunTelemetry`] and the degraded-status contract).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Checkpoint crashes fired.
    pub crashes: u64,
    /// Crashed checkpoints that rejoined.
    pub recoveries: u64,
    /// Crashes whose recovery image was stale (protocol state lost).
    pub state_lost_crashes: u64,
    /// Messages dropped at down checkpoints (queued, carried, relayed, or
    /// finalized-watch adjustments that could not be applied).
    pub dropped_messages: u64,
    /// Carried activation labels lost at down checkpoints.
    pub labels_dropped: u64,
    /// Observations suppressed at an active-but-down checkpoint (each may
    /// be a missed count).
    pub suppressed_observations: u64,
    /// Handoffs forced to fail by a blackout window.
    pub blackout_handoffs: u64,
    /// Open segment watches closed because their origin crashed (the
    /// adjustments they were accumulating are lost).
    #[serde(default)]
    pub watches_dropped: u64,
    /// Relay/patrol messages duplicated by chaos.
    pub chaos_duplicates: u64,
    /// Relay messages delayed by chaos.
    pub chaos_delays: u64,
    /// Relay/patrol deliveries reordered by chaos.
    pub chaos_reorders: u64,
}

/// Serializable image of a live [`FaultLayer`] (the plan itself rides
/// separately in the engine snapshot).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSnapshot {
    /// Draws consumed from the fault RNG stream.
    pub rng_draws: u64,
    /// Injection counters at snapshot time.
    pub counters: FaultCounters,
    /// Last recovery image per checkpoint.
    pub images: Vec<Option<CheckpointState>>,
    /// Next image-refresh time, seconds.
    pub next_image_s: f64,
    /// Which scheduled crashes have fired.
    pub crash_fired: Vec<bool>,
    /// Which scheduled recoveries have fired.
    pub recover_fired: Vec<bool>,
    /// Which checkpoints are currently down.
    pub down: Vec<bool>,
}

/// Chaos decision for one relay enqueue.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RelayChaos {
    /// Extra delivery delay added to the message, seconds.
    pub extra_delay_s: f64,
    /// Whether to enqueue a duplicate copy.
    pub duplicate: bool,
    /// Extra delay of the duplicate copy, seconds.
    pub duplicate_extra_delay_s: f64,
    /// Whether to swap the delivery order of the two newest relay entries.
    pub reorder: bool,
}

/// Chaos decision for one patrol pickup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatrolChaos {
    /// Whether to duplicate the most recently picked-up message.
    pub duplicate: bool,
    /// Whether to reverse the patrol's carried queue.
    pub reverse: bool,
}

/// Live state of an active fault layer.
#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    rng: ReplayRng,
    counters: FaultCounters,
    /// Last recovery image per checkpoint (refreshed at cadence while up).
    images: Vec<Option<CheckpointState>>,
    next_image_s: f64,
    crash_fired: Vec<bool>,
    recover_fired: Vec<bool>,
    down: Vec<bool>,
}

/// The engine's fault-injection layer. Inactive by default (every query is
/// a constant-time no-op, and no RNG draw is ever consumed), so fault-free
/// runs stay byte-identical to builds without the layer.
#[derive(Debug, Default)]
pub struct FaultLayer {
    state: Option<Box<FaultState>>,
}

impl FaultLayer {
    /// The inactive layer: injects nothing, costs nothing.
    pub fn none() -> Self {
        FaultLayer::default()
    }

    /// Activates a validated plan over a deployment of `nodes` checkpoints.
    pub fn from_plan(plan: FaultPlan, nodes: usize) -> Result<Self, String> {
        plan.validate(nodes)?;
        let k = plan.crashes.len();
        let rng = ReplayRng::seed_from_u64(plan.seed);
        Ok(FaultLayer {
            state: Some(Box::new(FaultState {
                rng,
                counters: FaultCounters::default(),
                images: vec![None; nodes],
                // First fault_step images every checkpoint immediately, so
                // a crash before the first cadence tick still has a
                // (t = 0) recovery image.
                next_image_s: 0.0,
                crash_fired: vec![false; k],
                recover_fired: vec![false; k],
                down: vec![false; nodes],
                plan,
            })),
        })
    }

    /// Rebuilds a mid-run layer from a snapshot.
    pub fn restore(plan: FaultPlan, snap: &FaultSnapshot) -> Self {
        FaultLayer {
            state: Some(Box::new(FaultState {
                rng: ReplayRng::resume(plan.seed, snap.rng_draws),
                counters: snap.counters,
                images: snap.images.clone(),
                next_image_s: snap.next_image_s,
                crash_fired: snap.crash_fired.clone(),
                recover_fired: snap.recover_fired.clone(),
                down: snap.down.clone(),
                plan,
            })),
        }
    }

    /// Serializable image of the live layer (`None` when inactive).
    pub fn snapshot(&self) -> Option<FaultSnapshot> {
        self.state.as_ref().map(|s| FaultSnapshot {
            rng_draws: s.rng.draws(),
            counters: s.counters,
            images: s.images.clone(),
            next_image_s: s.next_image_s,
            crash_fired: s.crash_fired.clone(),
            recover_fired: s.recover_fired.clone(),
            down: s.down.clone(),
        })
    }

    /// The plan driving this layer (`None` when inactive).
    pub fn plan(&self) -> Option<&FaultPlan> {
        self.state.as_ref().map(|s| &s.plan)
    }

    /// Whether any plan is active.
    pub fn is_active(&self) -> bool {
        self.state.is_some()
    }

    /// The injection counters so far (zero when inactive).
    pub fn counters(&self) -> FaultCounters {
        self.state.as_ref().map(|s| s.counters).unwrap_or_default()
    }

    /// The degraded-status contract (see the module docs): true as soon as
    /// any injected fault may have cost protocol information. Blackouts and
    /// chaos alone never degrade a run.
    pub fn degraded(&self) -> bool {
        let c = self.counters();
        c.state_lost_crashes > 0
            || c.dropped_messages > 0
            || c.labels_dropped > 0
            || c.suppressed_observations > 0
            || c.watches_dropped > 0
    }

    /// Whether `node`'s checkpoint is currently down.
    pub fn down(&self, node: NodeId) -> bool {
        self.state.as_ref().is_some_and(|s| s.down[node.index()])
    }

    /// Whether a handoff at `node` at time `now` falls in a blackout
    /// window; counts the suppression when it does. Never consumes an RNG
    /// draw — the protocol stream stays untouched.
    pub fn blackout_handoff(&mut self, now: f64, node: NodeId) -> bool {
        let Some(state) = self.state.as_deref_mut() else {
            return false;
        };
        let hit = state
            .plan
            .blackouts
            .iter()
            .any(|b| now >= b.from_s && now < b.until_s && b.nodes.contains(&node.0));
        if hit {
            state.counters.blackout_handoffs += 1;
        }
        hit
    }

    /// Chaos decision for a relay enqueue at time `now`. Outside the chaos
    /// window (or with no plan) this returns the identity decision without
    /// consuming a draw; inside, the draw count per call is fixed by the
    /// outcome, keeping the stream replayable.
    pub fn chaos_relay(&mut self, now: f64) -> RelayChaos {
        let Some(state) = self.state.as_deref_mut() else {
            return RelayChaos::default();
        };
        let Some(chaos) = state.plan.chaos else {
            return RelayChaos::default();
        };
        if now < chaos.from_s || now >= chaos.until_s {
            return RelayChaos::default();
        }
        // The draw order below (duplicate → its magnitude → delay → its
        // magnitude → reorder) is part of the replay contract; reordering
        // it would shift every later draw in the fault stream.
        let duplicate = state.rng.gen_bool(chaos.duplicate_p);
        let duplicate_extra_delay_s = if duplicate {
            state.counters.chaos_duplicates += 1;
            state.rng.gen::<f64>() * chaos.max_delay_s
        } else {
            0.0
        };
        let extra_delay_s = if state.rng.gen_bool(chaos.delay_p) {
            state.counters.chaos_delays += 1;
            state.rng.gen::<f64>() * chaos.max_delay_s
        } else {
            0.0
        };
        let reorder = state.rng.gen_bool(chaos.reorder_p);
        if reorder {
            state.counters.chaos_reorders += 1;
        }
        RelayChaos {
            duplicate,
            duplicate_extra_delay_s,
            extra_delay_s,
            reorder,
        }
    }

    /// Chaos decision for a patrol pickup at time `now` (duplicate the
    /// newest carried message / reverse the carried queue).
    pub fn chaos_patrol(&mut self, now: f64) -> PatrolChaos {
        let Some(state) = self.state.as_deref_mut() else {
            return PatrolChaos::default();
        };
        let Some(chaos) = state.plan.chaos else {
            return PatrolChaos::default();
        };
        if now < chaos.from_s || now >= chaos.until_s {
            return PatrolChaos::default();
        }
        let out = PatrolChaos {
            duplicate: state.rng.gen_bool(chaos.duplicate_p),
            reverse: state.rng.gen_bool(chaos.reorder_p),
        };
        if out.duplicate {
            state.counters.chaos_duplicates += 1;
        }
        if out.reverse {
            state.counters.chaos_reorders += 1;
        }
        out
    }

    /// Counts messages dropped because a checkpoint was down.
    pub fn note_dropped_messages(&mut self, n: usize) {
        if let Some(s) = self.state.as_deref_mut() {
            s.counters.dropped_messages += n as u64;
        }
    }

    /// Counts a carried label lost at a down checkpoint.
    pub fn note_label_dropped(&mut self) {
        if let Some(s) = self.state.as_deref_mut() {
            s.counters.labels_dropped += 1;
        }
    }

    /// Counts an observation suppressed at an active-but-down checkpoint.
    pub fn note_suppressed_observation(&mut self) {
        if let Some(s) = self.state.as_deref_mut() {
            s.counters.suppressed_observations += 1;
        }
    }
}

/// The fault stage: runs right after the traffic step and before the
/// observe stage, so crash/recovery transitions take effect at step
/// boundaries (where checkpoint event buffers are provably drained).
/// Refreshes recovery images at cadence, fires due crashes (dropping the
/// node's queued messages), and fires due recoveries (rolling the
/// checkpoint back to its last image).
pub fn fault_step(ctx: &mut StepCtx<'_>) {
    let now = ctx.now;
    // Image refresh runs under a scoped borrow: the crash/recover
    // applications below feed [`crate::engine::apply_action`], which needs
    // the whole context (recording, audit, dispatch).
    let crash_count = {
        let StepCtx { cps, faults, .. } = ctx;
        let Some(state) = faults.state.as_deref_mut() else {
            return;
        };
        // Refresh recovery images at cadence; down checkpoints keep their
        // pre-crash image (that is what they recover from).
        if now >= state.next_image_s {
            for (i, cp) in cps.iter().enumerate() {
                if !state.down[i] {
                    state.images[i] = Some(cp.export_state());
                }
            }
            while state.next_image_s <= now {
                state.next_image_s += state.plan.image_every_s;
            }
        }
        state.plan.crashes.len()
    };

    for ci in 0..crash_count {
        // Crash: engine-side effects (queue drops, downtime bookkeeping,
        // fault events) happen here; the recorded [`ActionKind::Crash`] is
        // a pure no-op that documents the fault schedule in the trace.
        let crashed = {
            let StepCtx {
                cps,
                exchange,
                audit: log,
                faults,
                ..
            } = ctx;
            let state = faults.state.as_deref_mut().expect("checked above");
            let crash = state.plan.crashes[ci];
            let idx = crash.node as usize;
            if !state.crash_fired[ci] && now >= crash.at_s {
                state.crash_fired[ci] = true;
                state.down[idx] = true;
                state.counters.crashes += 1;
                // The crash loses whatever accrued since the last image.
                let state_lost = match &state.images[idx] {
                    Some(img) => *img != cps[idx].export_state(),
                    None => true,
                };
                if state_lost {
                    state.counters.state_lost_crashes += 1;
                }
                let dropped = exchange.drop_node_queues(NodeId(crash.node));
                if dropped > 0 {
                    state.counters.dropped_messages += dropped as u64;
                    audit::record_fault(
                        log,
                        now,
                        ProtocolEvent::FaultMessageDropped {
                            node: crash.node,
                            messages: dropped as u32,
                        },
                    );
                }
                // The crash also voids the handoff context behind any open
                // segment watch this node originated: finalizing such a
                // watch after recovery would adjust a restored state image
                // that never saw the handoff. Closing it here loses the
                // pending adjustments — an explicit degradation, never a
                // silent miscount.
                let watches = exchange.drop_origin_watches(NodeId(crash.node));
                if watches > 0 {
                    state.counters.watches_dropped += watches as u64;
                    audit::record_fault(
                        log,
                        now,
                        ProtocolEvent::FaultWatchDropped {
                            node: crash.node,
                            watches: watches as u32,
                        },
                    );
                }
                audit::record_fault(
                    log,
                    now,
                    ProtocolEvent::CheckpointCrashed {
                        node: crash.node,
                        state_lost,
                    },
                );
                Some(crash.node)
            } else {
                None
            }
        };
        if let Some(node) = crashed {
            crate::engine::apply_action(ctx, NodeId(node), ActionKind::Crash);
        }

        // Recovery: the rollback image travels *inside* the action, so a
        // machine-only replay restores the identical state.
        let recovered = {
            let StepCtx { faults, .. } = ctx;
            let state = faults.state.as_deref_mut().expect("checked above");
            let crash = state.plan.crashes[ci];
            let idx = crash.node as usize;
            if state.crash_fired[ci] && !state.recover_fired[ci] && now >= crash.recover_s {
                state.recover_fired[ci] = true;
                state.down[idx] = false;
                state.counters.recoveries += 1;
                let image = state.images[idx].clone().map(Box::new);
                Some((crash.node, image))
            } else {
                None
            }
        };
        if let Some((node, image)) = recovered {
            crate::engine::apply_action(ctx, NodeId(node), ActionKind::Recover { image });
            audit::record_fault(ctx.audit, now, ProtocolEvent::CheckpointRecovered { node });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan {
            seed: 11,
            crashes: vec![CrashFault {
                node: 1,
                at_s: 60.0,
                recover_s: 180.0,
            }],
            blackouts: vec![Blackout {
                nodes: vec![0, 2],
                from_s: 30.0,
                until_s: 90.0,
            }],
            chaos: Some(ChaosFault {
                from_s: 0.0,
                until_s: 300.0,
                duplicate_p: 0.5,
                delay_p: 0.5,
                max_delay_s: 10.0,
                reorder_p: 0.25,
            }),
            image_every_s: 60.0,
        }
    }

    #[test]
    fn plan_round_trips_through_json_with_defaults() {
        let p = plan();
        let back = FaultPlan::from_json(&p.to_json()).unwrap();
        assert_eq!(back, p);
        // A minimal plan fills every default.
        let minimal = FaultPlan::from_json("{\"seed\": 3}").unwrap();
        assert!(minimal.is_empty());
        assert_eq!(minimal.image_every_s, 60.0);
        assert!(minimal.validate(4).is_ok());
    }

    #[test]
    fn validate_rejects_bad_plans() {
        let mut p = plan();
        assert!(p.validate(3).is_ok());
        assert!(p.validate(1).unwrap_err().contains("out of range"));
        p.crashes.push(CrashFault {
            node: 1,
            at_s: 100.0,
            recover_s: 200.0,
        });
        assert!(p.validate(3).unwrap_err().contains("overlapping"));
        let mut p = plan();
        p.crashes[0].recover_s = 10.0;
        assert!(p.validate(3).is_err());
        let mut p = plan();
        p.chaos.as_mut().unwrap().duplicate_p = 1.5;
        assert!(p.validate(3).unwrap_err().contains("duplicate_p"));
        let mut p = plan();
        p.image_every_s = 0.0;
        assert!(p.validate(3).unwrap_err().contains("image_every_s"));
        let mut p = plan();
        p.blackouts[0].until_s = p.blackouts[0].from_s;
        assert!(p.validate(3).is_err());
    }

    #[test]
    fn inactive_layer_is_inert() {
        let mut layer = FaultLayer::none();
        assert!(!layer.is_active());
        assert!(!layer.degraded());
        assert!(!layer.down(NodeId(0)));
        assert!(!layer.blackout_handoff(50.0, NodeId(0)));
        assert_eq!(layer.chaos_relay(10.0), RelayChaos::default());
        assert_eq!(layer.chaos_patrol(10.0), PatrolChaos::default());
        assert!(layer.snapshot().is_none());
    }

    #[test]
    fn blackout_windows_hit_only_listed_nodes_in_window() {
        let mut layer = FaultLayer::from_plan(plan(), 3).unwrap();
        assert!(layer.blackout_handoff(30.0, NodeId(0)));
        assert!(layer.blackout_handoff(89.9, NodeId(2)));
        assert!(!layer.blackout_handoff(29.9, NodeId(0)));
        assert!(!layer.blackout_handoff(90.0, NodeId(0)));
        assert!(!layer.blackout_handoff(50.0, NodeId(1)));
        assert_eq!(layer.counters().blackout_handoffs, 2);
        // Blackouts alone never degrade: compensation retries the handoff.
        assert!(!layer.degraded());
    }

    #[test]
    fn chaos_stream_is_deterministic_and_snapshot_resumable() {
        let mut a = FaultLayer::from_plan(plan(), 3).unwrap();
        let seq_a: Vec<RelayChaos> = (0..40).map(|i| a.chaos_relay(i as f64)).collect();
        let mut b = FaultLayer::from_plan(plan(), 3).unwrap();
        let prefix: Vec<RelayChaos> = (0..17).map(|i| b.chaos_relay(i as f64)).collect();
        assert_eq!(prefix[..], seq_a[..17]);
        let snap = b.snapshot().unwrap();
        let mut resumed = FaultLayer::restore(plan(), &snap);
        assert_eq!(resumed.counters(), b.counters());
        let tail: Vec<RelayChaos> = (17..40).map(|i| resumed.chaos_relay(i as f64)).collect();
        assert_eq!(tail[..], seq_a[17..]);
        // Chaos alone never degrades: the protocol absorbs it.
        assert!(!resumed.degraded());
    }

    #[test]
    fn chaos_outside_window_consumes_no_draws() {
        let mut layer = FaultLayer::from_plan(plan(), 3).unwrap();
        assert_eq!(layer.chaos_relay(400.0), RelayChaos::default());
        assert_eq!(layer.chaos_patrol(400.0), PatrolChaos::default());
        assert_eq!(layer.snapshot().unwrap().rng_draws, 0);
    }

    #[test]
    fn degraded_tracks_information_loss_classes() {
        let mut layer = FaultLayer::from_plan(plan(), 3).unwrap();
        assert!(!layer.degraded());
        layer.note_dropped_messages(2);
        assert!(layer.degraded());
        assert_eq!(layer.counters().dropped_messages, 2);
        let mut layer = FaultLayer::from_plan(plan(), 3).unwrap();
        layer.note_label_dropped();
        assert!(layer.degraded());
        let mut layer = FaultLayer::from_plan(plan(), 3).unwrap();
        layer.note_suppressed_observation();
        assert!(layer.degraded());
    }
}
