//! Action record/replay: the millisecond determinism pin.
//!
//! During a run, the engine funnels every protocol input through
//! [`crate::engine::apply_action`]; with recording on, the
//! [`ActionRecorder`] captures the per-checkpoint [`Action`] stream and an
//! incremental [`DispatchDigest`] over everything each action dispatched.
//! The finished [`ActionTrace`] is schema-tagged JSON (like
//! [`crate::engine::EngineSnapshot`]) embedding the scenario, the full
//! action stream, the dispatch digest, and the final counts.
//!
//! [`replay_trace`] then re-drives the *pure machines only* — no
//! simulator, no traffic, no channel, no RNG — from the recorded stream
//! via [`vcount_core::Replayer`], and checks that the dispatch digest and
//! the final per-checkpoint counts come out byte-identical. Because every
//! effectful input was frozen inside the actions at record time, any
//! divergence means the protocol core itself became nondeterministic or
//! semantically drifted — the exact regression class golden traces pin,
//! at a fraction of the cost.

use crate::scenario::Scenario;
use serde::{Deserialize, Serialize};
use vcount_core::{Action, Command, DispatchDigest, ProtocolEvent, Replayer};
use vcount_roadnet::NodeId;

/// Schema tag stamped on every serialized action trace; rejected on
/// mismatch when loading.
pub const TRACE_SCHEMA: &str = "vcount-action-trace/v1";

/// One recorded protocol input: which checkpoint processed which action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActionRecord {
    /// The processing checkpoint's node id.
    pub node: u32,
    /// The action it processed, with every effectful input frozen inside.
    pub action: Action,
}

/// Captures the engine's action stream and dispatch digest while a run
/// executes. Inert by default: every hook is a no-op until recording is
/// enabled, so fault-free hot paths pay one branch per action.
#[derive(Debug, Default)]
pub struct ActionRecorder {
    state: Option<RecorderState>,
}

#[derive(Debug)]
struct RecorderState {
    records: Vec<ActionRecord>,
    digest: DispatchDigest,
}

impl ActionRecorder {
    /// A recorder; `enabled` decides whether it captures anything.
    pub fn new(enabled: bool) -> Self {
        ActionRecorder {
            state: enabled.then(|| RecorderState {
                records: Vec::new(),
                digest: DispatchDigest::new(),
            }),
        }
    }

    /// Whether recording is active.
    pub fn is_on(&self) -> bool {
        self.state.is_some()
    }

    /// Records one action about to be processed at `node`.
    pub fn push(&mut self, node: NodeId, action: &Action) {
        if let Some(s) = &mut self.state {
            s.records.push(ActionRecord {
                node: node.0,
                action: action.clone(),
            });
        }
    }

    /// Absorbs the events the last pushed action emitted (the audit stage
    /// calls this with the drained buffer, before the sink fan-out).
    pub fn absorb_events(&mut self, node: NodeId, events: &[(f64, ProtocolEvent)]) {
        if let Some(s) = &mut self.state {
            s.digest.absorb_events(node, events);
        }
    }

    /// Absorbs the commands the last pushed action dispatched.
    pub fn absorb_commands(&mut self, node: NodeId, commands: &[Command]) {
        if let Some(s) = &mut self.state {
            s.digest.absorb_commands(node, commands);
        }
    }

    /// The dispatch digest over everything recorded so far (the FNV-1a
    /// offset basis when recording is off).
    pub fn digest(&self) -> u64 {
        self.state
            .as_ref()
            .map(|s| s.digest.value())
            .unwrap_or_else(|| DispatchDigest::new().value())
    }

    /// Takes the recorded stream, leaving the recorder disabled.
    pub fn take(&mut self) -> Option<(Vec<ActionRecord>, u64)> {
        self.state.take().map(|s| (s.records, s.digest.value()))
    }
}

/// A finished, self-contained recording of a run's protocol inputs:
/// everything needed to re-drive the pure machines and verify the outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActionTrace {
    /// Schema tag ([`TRACE_SCHEMA`]); rejected on mismatch.
    pub schema: String,
    /// The recorded run's scenario (the map and protocol config rebuild
    /// the machines; traffic/channel fields document provenance).
    pub scenario: Scenario,
    /// The per-checkpoint action stream, in processing order.
    pub records: Vec<ActionRecord>,
    /// FNV-1a digest over every action's dispatched events and commands.
    pub dispatch_digest: u64,
    /// Final non-interaction local count per checkpoint, in node order.
    pub final_local_counts: Vec<i64>,
    /// Final net border interaction per checkpoint, in node order.
    pub final_interaction_nets: Vec<i64>,
    /// Final collected tree total per checkpoint, in node order.
    pub final_tree_totals: Vec<Option<i64>>,
}

impl ActionTrace {
    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("action traces always serialize")
    }

    /// Parses a trace, validating the schema tag.
    pub fn from_json(s: &str) -> Result<ActionTrace, String> {
        let trace: ActionTrace = serde_json::from_str(s).map_err(|e| e.to_string())?;
        if trace.schema != TRACE_SCHEMA {
            return Err(format!(
                "unsupported action-trace schema {:?} (expected {TRACE_SCHEMA:?})",
                trace.schema
            ));
        }
        Ok(trace)
    }
}

/// The outcome of one machine-only replay, comparing against what the
/// recording engine produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayReport {
    /// Actions applied.
    pub actions: u64,
    /// The digest the recording run computed.
    pub recorded_digest: u64,
    /// The digest the machine-only replay computed.
    pub replayed_digest: u64,
    /// Whether the dispatch streams were byte-identical.
    pub digests_match: bool,
    /// Whether every final per-checkpoint count matched.
    pub counts_match: bool,
}

impl ReplayReport {
    /// `Ok` iff the replay reproduced the recording exactly.
    pub fn check(&self) -> Result<(), String> {
        if !self.digests_match {
            return Err(format!(
                "dispatch digest mismatch: recorded {:#018x}, replayed {:#018x}",
                self.recorded_digest, self.replayed_digest
            ));
        }
        if !self.counts_match {
            return Err("final per-checkpoint counts diverged".into());
        }
        Ok(())
    }
}

/// Re-drives the pure machines from `trace` — without the simulator — and
/// reports whether dispatches and final counts are byte-identical to the
/// recording. `Err` is reserved for traces that cannot be replayed at all
/// (bad map, out-of-range node); a clean replay with divergent outcomes
/// returns `Ok` with the mismatch flags set.
pub fn replay_trace(trace: &ActionTrace) -> Result<ReplayReport, String> {
    let net = trace.scenario.map.build(trace.scenario.closed);
    net.validate()
        .map_err(|e| format!("trace scenario map invalid: {e}"))?;
    let nodes = net.node_count();
    let mut rp = Replayer::new(&net, trace.scenario.protocol);
    for rec in &trace.records {
        if rec.node as usize >= nodes {
            return Err(format!(
                "trace references node {} but the map has {nodes} nodes",
                rec.node
            ));
        }
        rp.apply(NodeId(rec.node), &rec.action);
    }
    let replayed_digest = rp.digest();
    let counts_match = rp.local_counts() == trace.final_local_counts
        && rp.interaction_nets() == trace.final_interaction_nets
        && rp.tree_totals() == trace.final_tree_totals;
    Ok(ReplayReport {
        actions: rp.actions_applied(),
        recorded_digest: trace.dispatch_digest,
        replayed_digest,
        digests_match: replayed_digest == trace.dispatch_digest,
        counts_match,
    })
}
