//! The ground-truth correctness oracle.
//!
//! The paper validates its scheme by checking the aggregate count. This
//! oracle is stronger: it tracks every +1/−1 the protocol attributes to
//! every individual vehicle — direct phase-5 counts, border interaction
//! counts, overtake adjustments, and lossy-handoff compensations — and at
//! convergence asserts the per-vehicle invariant behind Theorems 1/2 and
//! Corollaries 1/2:
//!
//! * a matching civilian **inside** the region has net attribution **1**
//!   (counted exactly once),
//! * a matching civilian **outside** has net attribution **0** (its entry
//!   and exit cancelled, or it was never counted),
//!
//! which implies the aggregate check `Σ_u c(u) (+ interaction) == inside
//! population` but also catches compensating-error pairs the aggregate
//! would miss.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vcount_v2x::VehicleId;

/// Why an attribution was recorded (kept for diagnostics and error
/// reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Attribution {
    /// Phase-5 count at a checkpoint.
    Counted,
    /// Inbound interaction (+1) at a border checkpoint.
    InteractionIn,
    /// Outbound interaction (−1) at a border checkpoint.
    InteractionOut,
    /// Overtake adjustment +1 (fell behind a label).
    AdjustPlus,
    /// Overtake adjustment −1 (jumped ahead of a label).
    AdjustMinus,
    /// Lossy handoff compensation −1 (Alg. 3 line 3).
    LossCompensation,
}

impl Attribution {
    /// The counter delta this attribution carries.
    pub fn delta(self) -> i64 {
        match self {
            Attribution::Counted | Attribution::InteractionIn | Attribution::AdjustPlus => 1,
            Attribution::InteractionOut
            | Attribution::AdjustMinus
            | Attribution::LossCompensation => -1,
        }
    }
}

/// One oracle violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The vehicle whose ledger is wrong.
    pub vehicle: VehicleId,
    /// Net attribution found.
    pub net: i64,
    /// Net attribution expected (1 inside, 0 outside).
    pub expected: i64,
    /// The ledger entries, in order.
    pub history: Vec<Attribution>,
}

/// The attribution ledger.
#[derive(Debug, Clone, Default)]
pub struct Oracle {
    ledger: BTreeMap<VehicleId, Vec<Attribution>>,
}

impl Oracle {
    /// Creates an empty oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds an oracle from a previously exported ledger (snapshot
    /// resume).
    pub fn from_ledger(ledger: BTreeMap<VehicleId, Vec<Attribution>>) -> Self {
        Oracle { ledger }
    }

    /// The full attribution ledger (snapshot export).
    pub fn ledger(&self) -> &BTreeMap<VehicleId, Vec<Attribution>> {
        &self.ledger
    }

    /// Records one attribution for `vehicle`.
    pub fn record(&mut self, vehicle: VehicleId, a: Attribution) {
        self.ledger.entry(vehicle).or_default().push(a);
    }

    /// Net attribution of a vehicle so far.
    pub fn net(&self, vehicle: VehicleId) -> i64 {
        self.ledger
            .get(&vehicle)
            .map(|h| h.iter().map(|a| a.delta()).sum())
            .unwrap_or(0)
    }

    /// Whether the vehicle has ever received a direct count (phase 5 or
    /// interaction-in). Used by the per-event adjustment ablation.
    pub fn ever_counted(&self, vehicle: VehicleId) -> bool {
        self.ledger.get(&vehicle).is_some_and(|h| {
            h.iter()
                .any(|a| matches!(a, Attribution::Counted | Attribution::InteractionIn))
        })
    }

    /// Sum of net attributions over all vehicles — must equal the
    /// protocol's aggregate count.
    pub fn total(&self) -> i64 {
        self.ledger.keys().map(|v| self.net(*v)).sum()
    }

    /// Final verification: `population` maps every matching civilian that
    /// ever existed to whether it is currently inside the region. Returns
    /// all per-vehicle violations (empty = Theorems 1/2 hold on this run).
    pub fn verify(
        &self,
        population: impl IntoIterator<Item = (VehicleId, bool)>,
    ) -> Vec<Violation> {
        let mut violations = Vec::new();
        for (vehicle, inside) in population {
            let expected = i64::from(inside);
            let net = self.net(vehicle);
            if net != expected {
                violations.push(Violation {
                    vehicle,
                    net,
                    expected,
                    history: self.ledger.get(&vehicle).cloned().unwrap_or_default(),
                });
            }
        }
        violations
    }

    /// Count of vehicles with at least two direct counts and no
    /// compensating entries — the classic "double counting" the paper's
    /// baselines suffer. Diagnostic for ablations that intentionally break
    /// the protocol.
    pub fn raw_double_counts(&self) -> usize {
        self.ledger
            .values()
            .filter(|h| {
                h.iter()
                    .filter(|a| matches!(a, Attribution::Counted))
                    .count()
                    >= 2
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const V: VehicleId = VehicleId(1);

    #[test]
    fn clean_single_count_passes() {
        let mut o = Oracle::new();
        o.record(V, Attribution::Counted);
        assert!(o.verify([(V, true)]).is_empty());
        assert_eq!(o.total(), 1);
    }

    #[test]
    fn uncounted_inside_vehicle_is_a_miscount() {
        let o = Oracle::new();
        let v = o.verify([(V, true)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].net, 0);
        assert_eq!(v[0].expected, 1);
    }

    #[test]
    fn double_count_is_flagged() {
        let mut o = Oracle::new();
        o.record(V, Attribution::Counted);
        o.record(V, Attribution::Counted);
        assert_eq!(o.verify([(V, true)]).len(), 1);
        assert_eq!(o.raw_double_counts(), 1);
    }

    #[test]
    fn compensated_double_count_passes() {
        // Failed handoff: count, −1 compensation, second count downstream.
        let mut o = Oracle::new();
        o.record(V, Attribution::Counted);
        o.record(V, Attribution::LossCompensation);
        o.record(V, Attribution::Counted);
        assert!(o.verify([(V, true)]).is_empty());
    }

    #[test]
    fn entered_and_left_open_system_nets_zero() {
        let mut o = Oracle::new();
        o.record(V, Attribution::InteractionIn);
        o.record(V, Attribution::InteractionOut);
        assert!(o.verify([(V, false)]).is_empty());
    }

    #[test]
    fn overtake_adjustments_balance() {
        // Fell behind a label after being counted-and-compensated.
        let mut o = Oracle::new();
        o.record(V, Attribution::Counted);
        o.record(V, Attribution::LossCompensation);
        o.record(V, Attribution::AdjustPlus);
        assert!(o.verify([(V, true)]).is_empty());
    }

    #[test]
    fn never_seen_vehicle_outside_is_fine() {
        let o = Oracle::new();
        assert!(o.verify([(V, false)]).is_empty());
        assert!(!o.ever_counted(V));
    }
}
