//! The message Exchange: the engine's only inter-checkpoint path.
//!
//! Every message between checkpoints — the vehicle-carried activation
//! label, vehicle-carried subtree reports, directional V2V relay traffic,
//! and patrol-carried circuitous messages — is encoded once on send into
//! a slab-backed [`PayloadStore`] and queued as a copyable [`Routed`]
//! key. Slots are recycled, so the steady-state send path allocates
//! nothing (pinned by `tests/hotpath_alloc.rs`). Decode is lazy: a
//! payload is parsed only when its recipient actually consumes it —
//! deliveries to crashed checkpoints and chaos-dropped duplicates are
//! discarded unparsed and counted under `skipped_decode` instead of
//! `decoded` (`--eager-decode` forces the old parse-everything behavior;
//! `tests/lazy_decode_identity.rs` proves the event stream cannot tell
//! the difference).
//!
//! The exchange also owns the segment watches (in-flight overtake
//! collaboration state) and the wire counters surfaced through
//! [`crate::metrics::RunTelemetry`]. Everything here serializes into an
//! [`ExchangeSnapshot`] for snapshot/resume: payload refs are resolved
//! to owned bytes on snapshot and re-interned into a fresh store on
//! restore, so the snapshot wire format is unchanged from the owned-
//! payload era.

use super::shard::RegionPartition;
use super::{audit, StepCtx};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vcount_core::ActionKind;
use vcount_roadnet::{EdgeId, NodeId};
use vcount_v2x::message::TAG_REPORT;
use vcount_v2x::{Label, Message, PatrolStatus, PayloadRef, PayloadStore, SegmentWatch, VehicleId};

/// A wire-encoded message plus its routing header, in owned form — the
/// snapshot/serde image of a queued message. In-memory queues hold
/// [`Routed`] slab keys instead; envelopes are materialized only when an
/// [`ExchangeSnapshot`] is taken.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Envelope {
    /// Destination checkpoint.
    pub to: NodeId,
    /// The payload in [`vcount_v2x::Message`] wire form.
    pub payload: Vec<u8>,
}

/// A relay message in flight, due for delivery at `due_s` (serde image;
/// see [`Envelope`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RelayInFlight {
    /// Simulated delivery time, seconds.
    pub due_s: f64,
    /// The routed payload.
    pub env: Envelope,
}

/// A queued message in memory: destination plus a slab key into the
/// exchange's [`PayloadStore`]. Copyable — queue shuffles (compaction,
/// chaos reorder, patrol pickup) move 12 bytes instead of a heap buffer.
#[derive(Debug, Clone, Copy)]
pub struct Routed {
    /// Destination checkpoint.
    pub to: NodeId,
    /// Slab key of the wire payload.
    pub payload: PayloadRef,
}

/// A relay entry in memory (the serde image is [`RelayInFlight`]).
#[derive(Debug, Clone, Copy)]
struct RelayEntry {
    due_s: f64,
    routed: Routed,
}

/// An open segment watch: the label's origin checkpoint plus the V2V
/// collaboration state accumulating overtake adjustments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Watch {
    /// The checkpoint that handed off the watched label.
    pub origin: NodeId,
    /// The relative-position collaboration state machine.
    pub sw: SegmentWatch,
}

/// Wire-level traffic counters (surfaced as telemetry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireCounters {
    /// Messages encoded onto the wire.
    pub encoded: u64,
    /// Messages decoded off the wire (actually parsed by a consumer).
    pub decoded: u64,
    /// Total payload bytes encoded.
    pub bytes: u64,
    /// Messages delivered through the directional relay.
    pub relay_messages: u64,
    /// Carried labels silently overwritten by a second handoff to the same
    /// vehicle — always a protocol anomaly (each overwrite loses a label).
    #[serde(default)]
    pub label_overwrites: u64,
    /// Messages routed across a region (shard) boundary — barrier trades
    /// under `--shards N`. Depends on the partition, so identity checks
    /// across shard counts must normalize it (like wall-clock fields).
    #[serde(default)]
    pub cross_shard: u64,
    /// Messages discarded without parsing — lazy decode's dividend. A
    /// message lands here instead of `decoded` when its recipient was
    /// down (crashed/blacked out) or the payload was a dropped duplicate.
    #[serde(default)]
    pub skipped_decode: u64,
}

/// Per-checkpoint batch queues stage 4 drains due relay traffic into.
/// Draining and delivering are separate passes over the same step, but
/// `order` records the exact drain sequence so delivery replays it
/// byte-for-byte. All buffers keep their capacity across steps.
#[derive(Debug, Default)]
struct DeliveryBatch {
    /// Payloads batched per destination checkpoint.
    queues: Vec<Vec<PayloadRef>>,
    /// Global drain order (one entry per drained message).
    order: Vec<NodeId>,
    /// Per-checkpoint consumption cursor into `queues`.
    cursors: Vec<usize>,
    /// Next `order` index to deliver.
    next: usize,
}

impl DeliveryBatch {
    fn sized(nodes: usize) -> Self {
        DeliveryBatch {
            queues: vec![Vec::new(); nodes],
            order: Vec::new(),
            cursors: vec![0; nodes],
            next: 0,
        }
    }
}

/// The in-flight message store. See the module docs for the invariants.
#[derive(Debug)]
pub struct Exchange {
    /// Slab-backed payload bytes behind every queued [`Routed`] key.
    store: PayloadStore,
    /// Carried activation label per vehicle (phase 2).
    carried_label: Vec<Option<PayloadRef>>,
    /// Reports carried per vehicle.
    carried_reports: Vec<Vec<Routed>>,
    /// Reports waiting at a node for a carrier onto a specific edge.
    pending_reports: Vec<Vec<(EdgeId, Routed)>>,
    /// Circuitous messages waiting at a node for a patrol car (Alg. 4).
    pending_patrol: Vec<Vec<Routed>>,
    /// Directional V2V relay traffic in flight.
    relay: Vec<RelayEntry>,
    /// Open segment watches, keyed by the watched edge.
    watches: BTreeMap<EdgeId, Watch>,
    /// Patrol cars' accumulated status snapshots.
    patrol_status: BTreeMap<VehicleId, PatrolStatus>,
    /// Messages riding each patrol car.
    patrol_carried: BTreeMap<VehicleId, Vec<Routed>>,
    /// Stage-4 per-checkpoint delivery batch (always empty between steps).
    batch: DeliveryBatch,
    /// Reused due-report buffer (taken and recycled by the observe stage).
    /// Distinct from `due_patrol_scratch`: a patrol arrival takes both
    /// buffers in the same interaction, and a single shared slot would
    /// hand the second take a fresh allocation every time.
    due_reports_scratch: Vec<Routed>,
    /// Reused due-patrol buffer (see `due_reports_scratch`).
    due_patrol_scratch: Vec<Routed>,
    /// The region partition routing is attributed against (single-region
    /// unless the runner shards the engine). Not serialized: it is a pure
    /// function of `(nodes, shards)` and is re-derived on restore.
    partition: RegionPartition,
    /// Parse discarded deliveries anyway (`--eager-decode`): a decode-
    /// strategy knob, not simulation state — never serialized, and the
    /// event stream is byte-identical either way.
    eager_decode: bool,
    counters: WireCounters,
}

/// Serializable image of an [`Exchange`] (every queue and counter; slab
/// refs are resolved to owned payload bytes, and the scratch buffers are
/// rebuilt empty on restore).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExchangeSnapshot {
    /// Per-vehicle carried label payloads.
    pub carried_label: Vec<Option<Vec<u8>>>,
    /// Per-vehicle carried report envelopes.
    pub carried_reports: Vec<Vec<Envelope>>,
    /// Per-node reports awaiting a carrier, with their required edge.
    pub pending_reports: Vec<Vec<(EdgeId, Envelope)>>,
    /// Per-node circuitous messages awaiting a patrol car.
    pub pending_patrol: Vec<Vec<Envelope>>,
    /// Relay messages in flight.
    pub relay: Vec<RelayInFlight>,
    /// Open segment watches.
    pub watches: BTreeMap<EdgeId, Watch>,
    /// Patrol status snapshots.
    pub patrol_status: BTreeMap<VehicleId, PatrolStatus>,
    /// Patrol-carried messages.
    pub patrol_carried: BTreeMap<VehicleId, Vec<Envelope>>,
    /// Wire counters at snapshot time.
    pub counters: WireCounters,
}

impl Exchange {
    /// An empty exchange sized for `vehicles` vehicles and `nodes`
    /// checkpoints.
    pub fn new(vehicles: usize, nodes: usize) -> Self {
        Exchange {
            store: PayloadStore::new(),
            carried_label: vec![None; vehicles],
            carried_reports: vec![Vec::new(); vehicles],
            pending_reports: vec![Vec::new(); nodes],
            pending_patrol: vec![Vec::new(); nodes],
            relay: Vec::new(),
            watches: BTreeMap::new(),
            patrol_status: BTreeMap::new(),
            patrol_carried: BTreeMap::new(),
            batch: DeliveryBatch::sized(nodes),
            due_reports_scratch: Vec::new(),
            due_patrol_scratch: Vec::new(),
            partition: RegionPartition::single(nodes),
            eager_decode: false,
            counters: WireCounters::default(),
        }
    }

    /// Installs the region partition routing is attributed against (the
    /// runner calls this when assembling a sharded engine).
    pub fn set_partition(&mut self, partition: RegionPartition) {
        self.partition = partition;
    }

    /// The active region partition.
    pub fn partition(&self) -> &RegionPartition {
        &self.partition
    }

    /// Forces discarded deliveries to be parsed anyway, restoring the
    /// pre-lazy decode behavior. Affects only the `decoded` /
    /// `skipped_decode` counter split and the work done — never the
    /// event stream (`tests/lazy_decode_identity.rs`).
    pub fn set_eager_decode(&mut self, eager: bool) {
        self.eager_decode = eager;
    }

    /// Attributes one routed message `from → to`: a route crossing a
    /// region boundary is a cross-shard barrier trade. Pure bookkeeping —
    /// routing itself never depends on the partition, which is what keeps
    /// the event stream byte-identical across shard counts.
    pub fn note_route(&mut self, from: NodeId, to: NodeId) {
        if self.partition.crosses(from, to) {
            self.counters.cross_shard += 1;
        }
    }

    /// Grows the per-vehicle queues to cover `n` vehicles (open-system
    /// demand spawns new vehicles mid-run).
    pub fn ensure_vehicle_capacity(&mut self, n: usize) {
        if self.carried_label.len() < n {
            self.carried_label.resize(n, None);
            self.carried_reports.resize(n, Vec::new());
        }
    }

    /// The wire counters so far.
    pub fn counters(&self) -> WireCounters {
        self.counters
    }

    /// Encodes `msg` into a recycled slab slot, counting the wire
    /// traffic. Steady state allocates nothing: the slot's buffer keeps
    /// its capacity across messages.
    fn encode(&mut self, msg: &Message) -> PayloadRef {
        let r = self.store.insert_with(|buf| msg.encode_into(buf));
        self.counters.encoded += 1;
        self.counters.bytes += self.store.get(r).len() as u64;
        r
    }

    /// Decodes a payload this exchange previously encoded. Payloads are
    /// self-produced, so a decode failure is a codec bug, not bad input.
    /// Decodes straight from the borrowed slice — the per-delivery hot
    /// path stays allocation-free (pinned by `tests/decode_alloc.rs`).
    pub fn decode_payload(&mut self, payload: &[u8]) -> Message {
        self.counters.decoded += 1;
        let mut buf: &[u8] = payload;
        let msg = Message::decode(&mut buf).expect("exchange-owned payloads always decode");
        debug_assert!(buf.is_empty(), "trailing bytes in exchange payload");
        msg
    }

    /// Parses a queued payload at its consumption point and releases the
    /// slot. The only path that pays a decode in the lazy (default) mode.
    pub fn consume_payload(&mut self, r: PayloadRef) -> Message {
        self.counters.decoded += 1;
        let msg = self
            .store
            .lazy(r)
            .decode()
            .expect("exchange-owned payloads always decode");
        self.store.free(r);
        msg
    }

    /// Drops a queued payload whose recipient will never consume it
    /// (down checkpoint, discarded duplicate). Lazy mode releases the
    /// slot unparsed and counts `skipped_decode`; eager mode pays the
    /// decode it would have cost, keeping `decoded` comparable to the
    /// pre-lazy plane.
    pub fn discard_payload(&mut self, r: PayloadRef) {
        if self.eager_decode {
            self.counters.decoded += 1;
            self.store
                .lazy(r)
                .decode()
                .expect("exchange-owned payloads always decode");
        } else {
            self.counters.skipped_decode += 1;
        }
        self.store.free(r);
    }

    /// Stores a delivered label on its carrier vehicle. A vehicle must
    /// never already hold a label (a checkpoint hands off one label per
    /// direction, and the carrier surrenders it at the next checkpoint);
    /// an overwrite would silently lose the first label, so it is counted
    /// as a telemetry anomaly rather than ignored.
    pub fn hand_label(&mut self, vehicle: VehicleId, label: Label) {
        let r = self.encode(&Message::Label(label));
        let prev = self.carried_label[vehicle.index()].replace(r);
        debug_assert!(
            prev.is_none(),
            "vehicle {vehicle} already carries a label — double handoff overwrites it"
        );
        if let Some(p) = prev {
            self.counters.label_overwrites += 1;
            self.store.free(p);
        }
    }

    /// Takes and decodes the label `vehicle` carries, if any.
    pub fn take_label(&mut self, vehicle: VehicleId) -> Option<Label> {
        let r = self.carried_label[vehicle.index()].take()?;
        match self.consume_payload(r) {
            Message::Label(l) => Some(l),
            other => unreachable!("label slot held {other:?}"),
        }
    }

    /// Drops the label `vehicle` carries without parsing it (the carrier
    /// reached a down checkpoint — nobody will consume the label).
    /// Returns whether a label was dropped.
    pub fn discard_label(&mut self, vehicle: VehicleId) -> bool {
        match self.carried_label[vehicle.index()].take() {
            Some(r) => {
                self.discard_payload(r);
                true
            }
            None => false,
        }
    }

    /// The handoff acknowledgement a civilian vehicle radios back on
    /// successful label receipt (the codec's ack leg). The ack is
    /// produced and consumed by the same exchange, so the parse is
    /// short-circuited: the wire counters record one encode and one
    /// decode exactly as a real transmission would, but no bytes are
    /// re-parsed (debug builds verify the round-trip).
    pub fn ack_handoff(&mut self, vehicle: VehicleId) {
        let r = self.encode(&Message::Ack { vehicle });
        self.counters.decoded += 1;
        debug_assert!(
            matches!(self.store.lazy(r).decode(), Ok(Message::Ack { vehicle: v }) if v == vehicle),
            "ack round-trip mismatch"
        );
        self.store.free(r);
    }

    /// Opens a segment watch for a label handed off onto `edge`.
    pub fn insert_watch(&mut self, edge: EdgeId, origin: NodeId, sw: SegmentWatch) {
        self.watches.insert(edge, Watch { origin, sw });
    }

    /// The open watch on `edge`, if any.
    pub fn watch_mut(&mut self, edge: EdgeId) -> Option<&mut Watch> {
        self.watches.get_mut(&edge)
    }

    /// Closes and returns the watch on `edge`.
    pub fn remove_watch(&mut self, edge: EdgeId) -> Option<Watch> {
        self.watches.remove(&edge)
    }

    /// Posts a report at `from`, waiting for a vehicle departing onto
    /// `edge` toward `to`.
    pub fn post_report(&mut self, from: NodeId, edge: EdgeId, to: NodeId, msg: &Message) {
        let payload = self.encode(msg);
        self.pending_reports[from.index()].push((edge, Routed { to, payload }));
    }

    /// Posts a circuitous message at `from`, waiting for a patrol car.
    pub fn post_patrol(&mut self, from: NodeId, to: NodeId, msg: &Message) {
        let payload = self.encode(msg);
        self.pending_patrol[from.index()].push(Routed { to, payload });
    }

    /// Queues a message on the directional relay, due at `due_s`.
    pub fn queue_relay(&mut self, due_s: f64, to: NodeId, msg: &Message) {
        let payload = self.encode(msg);
        self.relay.push(RelayEntry {
            due_s,
            routed: Routed { to, payload },
        });
    }

    /// Moves the reports waiting at `node` for edge `onto` into the
    /// departing vehicle's carried queue (stable in-place compaction).
    pub fn load_reports(&mut self, node: NodeId, vehicle: VehicleId, onto: EdgeId) {
        let pending = &mut self.pending_reports[node.index()];
        if pending.is_empty() {
            return;
        }
        let carried = &mut self.carried_reports[vehicle.index()];
        let mut kept = 0usize;
        for i in 0..pending.len() {
            if pending[i].0 == onto {
                carried.push(pending[i].1);
            } else {
                pending.swap(kept, i);
                kept += 1;
            }
        }
        pending.truncate(kept);
    }

    /// Takes the reports `vehicle` carries that are addressed to `node`,
    /// preserving order on both sides. Return the buffer with
    /// [`Exchange::recycle_reports`] when done.
    pub fn take_due_reports(&mut self, vehicle: VehicleId, node: NodeId) -> Vec<Routed> {
        let mut due = std::mem::take(&mut self.due_reports_scratch);
        due.clear();
        Self::split_due(&mut self.carried_reports[vehicle.index()], node, &mut due);
        due
    }

    /// Takes the patrol-carried messages addressed to `node`. Return the
    /// buffer with [`Exchange::recycle_patrol`] when done. Safe to call
    /// while a [`Exchange::take_due_reports`] buffer is still outstanding:
    /// the two takes use distinct scratch slots.
    pub fn take_due_patrol(&mut self, vehicle: VehicleId, node: NodeId) -> Vec<Routed> {
        let mut due = std::mem::take(&mut self.due_patrol_scratch);
        due.clear();
        if let Some(list) = self.patrol_carried.get_mut(&vehicle) {
            Self::split_due(list, node, &mut due);
        }
        due
    }

    /// Stable in-place split: messages addressed to `node` move into
    /// `due`, the rest compact in place — no per-arrival allocation.
    fn split_due(list: &mut Vec<Routed>, node: NodeId, due: &mut Vec<Routed>) {
        let mut kept = 0usize;
        for i in 0..list.len() {
            if list[i].to == node {
                due.push(list[i]);
            } else {
                list.swap(kept, i);
                kept += 1;
            }
        }
        list.truncate(kept);
    }

    /// Returns a [`Exchange::take_due_reports`] buffer for reuse.
    pub fn recycle_reports(&mut self, mut scratch: Vec<Routed>) {
        scratch.clear();
        self.due_reports_scratch = scratch;
    }

    /// Returns a [`Exchange::take_due_patrol`] buffer for reuse.
    pub fn recycle_patrol(&mut self, mut scratch: Vec<Routed>) {
        scratch.clear();
        self.due_patrol_scratch = scratch;
    }

    /// Drops every message queued *at* `node` (reports awaiting a carrier
    /// and circuitous messages awaiting a patrol car), returning how many
    /// were lost — a crashed checkpoint loses its volatile queues. The
    /// payloads were never delivered, so they never enter the
    /// `decoded`/`skipped_decode` split; their slots return to the slab.
    pub fn drop_node_queues(&mut self, node: NodeId) -> usize {
        let i = node.index();
        let n = self.pending_reports[i].len() + self.pending_patrol[i].len();
        for (_, r) in self.pending_reports[i].drain(..) {
            self.store.free(r.payload);
        }
        for r in self.pending_patrol[i].drain(..) {
            self.store.free(r.payload);
        }
        n
    }

    /// Drops every open segment watch whose origin is `node`, returning
    /// how many closed. A crashed checkpoint loses the volatile handoff
    /// context its watches adjust against — a watch finalizing after
    /// recovery would apply adjustments to a restored state image that
    /// never saw the handoff, so the crash closes the watch and the loss
    /// is counted as explicit degradation instead.
    pub fn drop_origin_watches(&mut self, node: NodeId) -> usize {
        let before = self.watches.len();
        self.watches.retain(|_, w| w.origin != node);
        before - self.watches.len()
    }

    /// Chaos injection: swaps the due times of the two most recently
    /// queued relay messages, flipping their delivery order. No-op with
    /// fewer than two messages in flight.
    pub fn swap_relay_due_tail(&mut self) {
        let n = self.relay.len();
        if n >= 2 {
            let a = self.relay[n - 2].due_s;
            self.relay[n - 2].due_s = self.relay[n - 1].due_s;
            self.relay[n - 1].due_s = a;
        }
    }

    /// Chaos injection on the patrol-carried path: duplicates the most
    /// recently picked-up message and/or reverses the carried queue. The
    /// protocol tolerates both (announces are idempotent, reports are
    /// highest-sequence-wins). Duplication byte-copies the payload into
    /// its own slot — two queue entries must never share one slab key,
    /// or the first consume would invalidate the second.
    pub fn chaos_patrol_carried(&mut self, vehicle: VehicleId, duplicate: bool, reverse: bool) {
        if duplicate {
            let last = self
                .patrol_carried
                .get(&vehicle)
                .and_then(|list| list.last().copied());
            if let Some(last) = last {
                let dup = Routed {
                    to: last.to,
                    payload: self.store.duplicate(last.payload),
                };
                self.patrol_carried
                    .get_mut(&vehicle)
                    .expect("checked above")
                    .push(dup);
            }
        }
        if reverse {
            if let Some(list) = self.patrol_carried.get_mut(&vehicle) {
                list.reverse();
            }
        }
    }

    /// A patrol car picks up every circuitous message waiting at `node`.
    pub fn pickup_patrol(&mut self, vehicle: VehicleId, node: NodeId) {
        let pending = &mut self.pending_patrol[node.index()];
        if pending.is_empty() {
            return;
        }
        self.patrol_carried
            .entry(vehicle)
            .or_default()
            .append(pending);
    }

    /// Records a patrol car's status observation of `node`.
    pub fn observe_status(&mut self, vehicle: VehicleId, node: NodeId, active: bool) {
        self.patrol_status
            .entry(vehicle)
            .or_default()
            .observe(node, active);
    }

    /// The status snapshot a patrol car radios to the checkpoint it is
    /// visiting. The transmission is self-produced and consumed in the
    /// same call, so — like [`Exchange::ack_handoff`] — the wire
    /// counters record the encode and the decode while the parse itself
    /// is short-circuited: the status the encoder serialized *is* the
    /// status the decoder would have produced (verified in debug builds).
    pub fn relay_status(&mut self, vehicle: VehicleId) -> PatrolStatus {
        let msg = Message::Patrol(self.patrol_status.entry(vehicle).or_default().clone());
        let r = self.encode(&msg);
        self.counters.decoded += 1;
        debug_assert_eq!(
            self.store.lazy(r).decode().ok().as_ref(),
            Some(&msg),
            "patrol status round-trip mismatch"
        );
        self.store.free(r);
        match msg {
            Message::Patrol(p) => p,
            other => unreachable!("patrol slot held {other:?}"),
        }
    }

    /// Removes and returns the relay message at `i` if it is due
    /// (`swap_remove`: the caller re-examines index `i` on `Some`).
    pub(crate) fn take_relay_if_due(&mut self, i: usize, now: f64) -> Option<Routed> {
        if self.relay[i].due_s <= now {
            self.counters.relay_messages += 1;
            Some(self.relay.swap_remove(i).routed)
        } else {
            None
        }
    }

    /// Stage-4 drain pass: moves every due relay message into the
    /// per-checkpoint batch queues in one sweep, recording the global
    /// drain order. Deliveries never make more traffic due within the
    /// same step (relay due times are always at least a second out), so
    /// draining fully before delivering reproduces the old interleaved
    /// scan byte-for-byte.
    pub(crate) fn drain_due_relay(&mut self, now: f64) {
        let mut i = 0;
        while i < self.relay.len() {
            match self.take_relay_if_due(i, now) {
                Some(routed) => {
                    self.batch.queues[routed.to.index()].push(routed.payload);
                    self.batch.order.push(routed.to);
                }
                None => i += 1,
            }
        }
    }

    /// Pops the next batched delivery in drain order, or `None` when the
    /// batch is exhausted.
    pub(crate) fn pop_batched(&mut self) -> Option<(NodeId, PayloadRef)> {
        let to = *self.batch.order.get(self.batch.next)?;
        self.batch.next += 1;
        let cursor = &mut self.batch.cursors[to.index()];
        let payload = self.batch.queues[to.index()][*cursor];
        *cursor += 1;
        Some((to, payload))
    }

    /// Resets the batch for the next step, keeping every buffer's
    /// capacity. O(messages drained), not O(nodes).
    pub(crate) fn finish_batch(&mut self) {
        debug_assert_eq!(
            self.batch.next,
            self.batch.order.len(),
            "batch finished with undelivered messages"
        );
        for &to in &self.batch.order {
            self.batch.queues[to.index()].clear();
            self.batch.cursors[to.index()] = 0;
        }
        self.batch.order.clear();
        self.batch.next = 0;
    }

    /// Whether `vehicle` carries no reports (border-exit invariant: every
    /// report is delivered at the node before an exit).
    pub fn carried_is_empty(&self, vehicle: VehicleId) -> bool {
        self.carried_reports[vehicle.index()].is_empty()
    }

    /// Whether any report payload is still in transit anywhere (on a
    /// vehicle, waiting at a node, in the relay, or on a patrol car).
    /// Collection is final only when the last re-report has landed.
    /// Inspects only the lazy tag byte — no payload is parsed.
    pub fn reports_in_flight(&self) -> bool {
        let store = &self.store;
        let is_report = |r: &Routed| store.lazy(r.payload).tag() == Some(TAG_REPORT);
        self.carried_reports.iter().flatten().any(is_report)
            || self
                .pending_reports
                .iter()
                .flatten()
                .any(|(_, r)| is_report(r))
            || self.relay.iter().any(|e| is_report(&e.routed))
            || self.pending_patrol.iter().flatten().any(is_report)
            || self.patrol_carried.values().flatten().any(is_report)
    }

    /// Serializable image of every queue and counter (slab refs resolve
    /// to owned payload bytes — the snapshot format is identical to the
    /// owned-payload era's).
    pub fn snapshot(&self) -> ExchangeSnapshot {
        let env = |r: &Routed| Envelope {
            to: r.to,
            payload: self.store.get(r.payload).to_vec(),
        };
        ExchangeSnapshot {
            carried_label: self
                .carried_label
                .iter()
                .map(|slot| slot.map(|r| self.store.get(r).to_vec()))
                .collect(),
            carried_reports: self
                .carried_reports
                .iter()
                .map(|list| list.iter().map(env).collect())
                .collect(),
            pending_reports: self
                .pending_reports
                .iter()
                .map(|list| list.iter().map(|(e, r)| (*e, env(r))).collect())
                .collect(),
            pending_patrol: self
                .pending_patrol
                .iter()
                .map(|list| list.iter().map(env).collect())
                .collect(),
            relay: self
                .relay
                .iter()
                .map(|e| RelayInFlight {
                    due_s: e.due_s,
                    env: env(&e.routed),
                })
                .collect(),
            watches: self.watches.clone(),
            patrol_status: self.patrol_status.clone(),
            patrol_carried: self
                .patrol_carried
                .iter()
                .map(|(v, list)| (*v, list.iter().map(env).collect()))
                .collect(),
            counters: self.counters,
        }
    }

    /// Rebuilds an exchange from a snapshot, interning every payload
    /// into a fresh slab (scratch buffers start empty).
    pub fn restore(snap: &ExchangeSnapshot) -> Self {
        let mut store = PayloadStore::new();
        let carried_label: Vec<Option<PayloadRef>> = snap
            .carried_label
            .iter()
            .map(|slot| slot.as_ref().map(|p| store.insert(p)))
            .collect();
        let mut routed = |env: &Envelope| Routed {
            to: env.to,
            payload: store.insert(&env.payload),
        };
        let carried_reports = snap
            .carried_reports
            .iter()
            .map(|list| list.iter().map(&mut routed).collect())
            .collect();
        let pending_reports = snap
            .pending_reports
            .iter()
            .map(|list| list.iter().map(|(e, env)| (*e, routed(env))).collect())
            .collect();
        let pending_patrol = snap
            .pending_patrol
            .iter()
            .map(|list| list.iter().map(&mut routed).collect())
            .collect();
        let relay = snap
            .relay
            .iter()
            .map(|r| RelayEntry {
                due_s: r.due_s,
                routed: routed(&r.env),
            })
            .collect();
        let patrol_carried = snap
            .patrol_carried
            .iter()
            .map(|(v, list)| (*v, list.iter().map(&mut routed).collect()))
            .collect();
        let nodes = snap.pending_reports.len();
        Exchange {
            store,
            carried_label,
            carried_reports,
            pending_reports,
            pending_patrol,
            relay,
            watches: snap.watches.clone(),
            patrol_status: snap.patrol_status.clone(),
            patrol_carried,
            batch: DeliveryBatch::sized(nodes),
            due_reports_scratch: Vec::new(),
            due_patrol_scratch: Vec::new(),
            partition: RegionPartition::single(nodes),
            eager_decode: false,
            counters: snap.counters,
        }
    }
}

/// Stage 4: delivers every relay message that came due this step, in two
/// passes — drain due traffic into per-checkpoint batch queues, then
/// deliver in recorded drain order. A delivery can queue further relay
/// traffic (a report triggered by an announce), but its due time always
/// lands in a later step, so the split changes no delivery order.
pub fn exchange(ctx: &mut StepCtx<'_>) {
    ctx.exchange.drain_due_relay(ctx.now);
    while let Some((to, payload)) = ctx.exchange.pop_batched() {
        deliver_routed(ctx, to, payload);
    }
    ctx.exchange.finish_batch();
}

/// Consumes a routed payload at its destination checkpoint and feeds the
/// resulting observation through the machine (shared by the relay and
/// the patrol delivery paths). A message addressed to a crashed (down)
/// checkpoint is discarded unparsed and counted — the run becomes
/// explicitly degraded rather than silently miscounting.
pub(crate) fn deliver_routed(ctx: &mut StepCtx<'_>, to: NodeId, payload: PayloadRef) {
    if ctx.faults.down(to) {
        ctx.faults.note_dropped_messages(1);
        audit::record_fault(
            ctx.audit,
            ctx.now,
            vcount_obs::ProtocolEvent::FaultMessageDropped {
                node: to.0,
                messages: 1,
            },
        );
        ctx.exchange.discard_payload(payload);
        return;
    }
    let kind = match ctx.exchange.consume_payload(payload) {
        Message::Announce(a) => ActionKind::Announce {
            from: a.from,
            pred: a.pred,
        },
        Message::Report(r) => ActionKind::Report {
            from: r.from,
            total: r.subtree_total,
            seq: r.seq,
        },
        other => unreachable!("exchange routes only announces and reports, got {other:?}"),
    };
    super::apply_action(ctx, to, kind);
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcount_v2x::Report;

    fn report_msg(to: NodeId) -> Message {
        Message::Report(Report {
            from: NodeId(0),
            to,
            subtree_total: 1,
            seq: 1,
        })
    }

    fn label() -> Label {
        Label {
            origin: NodeId(0),
            origin_pred: None,
            seed: NodeId(0),
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "already carries a label")]
    fn double_handoff_is_a_debug_assertion() {
        let mut ex = Exchange::new(1, 2);
        ex.hand_label(VehicleId(0), label());
        ex.hand_label(VehicleId(0), label());
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn double_handoff_is_counted_in_release() {
        let mut ex = Exchange::new(1, 2);
        ex.hand_label(VehicleId(0), label());
        ex.hand_label(VehicleId(0), label());
        assert_eq!(ex.counters().label_overwrites, 1);
        // The second label wins; the loss is visible in telemetry.
        assert!(ex.take_label(VehicleId(0)).is_some());
        assert!(ex.take_label(VehicleId(0)).is_none());
    }

    #[test]
    fn handoff_then_surrender_never_counts_an_overwrite() {
        let mut ex = Exchange::new(1, 2);
        ex.hand_label(VehicleId(0), label());
        assert!(ex.take_label(VehicleId(0)).is_some());
        ex.hand_label(VehicleId(0), label());
        assert_eq!(ex.counters().label_overwrites, 0);
    }

    #[test]
    fn discard_label_skips_the_decode() {
        let mut ex = Exchange::new(1, 2);
        ex.hand_label(VehicleId(0), label());
        assert!(ex.discard_label(VehicleId(0)));
        assert!(!ex.discard_label(VehicleId(0)), "slot already empty");
        let c = ex.counters();
        assert_eq!((c.decoded, c.skipped_decode), (0, 1));
    }

    #[test]
    fn eager_mode_decodes_discards() {
        let mut ex = Exchange::new(1, 2);
        ex.set_eager_decode(true);
        ex.hand_label(VehicleId(0), label());
        assert!(ex.discard_label(VehicleId(0)));
        let c = ex.counters();
        assert_eq!((c.decoded, c.skipped_decode), (1, 0));
    }

    #[test]
    fn due_scratch_slots_survive_simultaneous_takes() {
        let mut ex = Exchange::new(1, 3);
        let v = VehicleId(0);
        let n = NodeId(1);
        // One carried report and one patrol-carried message, both due at n.
        let msg = report_msg(n);
        ex.post_report(NodeId(0), EdgeId(0), n, &msg);
        ex.load_reports(NodeId(0), v, EdgeId(0));
        ex.post_patrol(NodeId(0), n, &msg);
        ex.pickup_patrol(v, NodeId(0));

        // A patrol arrival holds both buffers at once.
        let r = ex.take_due_reports(v, n);
        let p = ex.take_due_patrol(v, n);
        assert_eq!((r.len(), p.len()), (1, 1));
        for routed in r.iter().chain(p.iter()) {
            ex.discard_payload(routed.payload);
        }
        ex.recycle_reports(r);
        ex.recycle_patrol(p);

        // Both slots kept their capacity: nothing is due any more, yet the
        // returned buffers are the previously grown scratch vectors. With a
        // single shared slot the second take would come back fresh
        // (capacity 0), i.e. a new allocation on every patrol arrival.
        let r = ex.take_due_reports(v, n);
        let p = ex.take_due_patrol(v, n);
        assert!(r.is_empty() && r.capacity() > 0, "reports scratch was lost");
        assert!(p.is_empty() && p.capacity() > 0, "patrol scratch was lost");
        ex.recycle_reports(r);
        ex.recycle_patrol(p);
    }

    #[test]
    fn drop_node_queues_counts_and_clears_only_that_node() {
        let mut ex = Exchange::new(1, 3);
        let msg = report_msg(NodeId(2));
        ex.post_report(NodeId(1), EdgeId(0), NodeId(2), &msg);
        ex.post_patrol(NodeId(1), NodeId(2), &msg);
        ex.post_patrol(NodeId(0), NodeId(2), &msg);
        assert_eq!(ex.drop_node_queues(NodeId(1)), 2);
        assert_eq!(ex.drop_node_queues(NodeId(1)), 0);
        // Node 0's queue is untouched.
        ex.pickup_patrol(VehicleId(0), NodeId(0));
        assert_eq!(ex.take_due_patrol(VehicleId(0), NodeId(2)).len(), 1);
    }

    #[test]
    fn drop_origin_watches_closes_only_the_crashed_origin() {
        use vcount_v2x::{AdjustMode, SegmentWatch};
        let sw = || SegmentWatch::new(AdjustMode::NetInversion, VehicleId(0), []);
        let mut ex = Exchange::new(1, 3);
        ex.insert_watch(EdgeId(0), NodeId(1), sw());
        ex.insert_watch(EdgeId(1), NodeId(2), sw());
        ex.insert_watch(EdgeId(2), NodeId(1), sw());
        assert_eq!(ex.drop_origin_watches(NodeId(1)), 2);
        assert_eq!(ex.drop_origin_watches(NodeId(1)), 0);
        assert!(ex.watch_mut(EdgeId(0)).is_none());
        assert!(ex.watch_mut(EdgeId(1)).is_some(), "other origin survives");
    }

    #[test]
    fn note_route_counts_only_cross_region_traffic() {
        use crate::engine::shard::RegionPartition;
        let mut ex = Exchange::new(1, 4);
        // Default single-region partition: nothing crosses.
        ex.note_route(NodeId(0), NodeId(3));
        assert_eq!(ex.counters().cross_shard, 0);
        ex.set_partition(RegionPartition::new(4, 2));
        ex.note_route(NodeId(0), NodeId(1)); // local to region 0
        ex.note_route(NodeId(1), NodeId(2)); // crosses 0 → 1
        ex.note_route(NodeId(3), NodeId(0)); // crosses 1 → 0
        assert_eq!(ex.counters().cross_shard, 2);
    }

    #[test]
    fn swap_relay_due_tail_flips_delivery_order() {
        let mut ex = Exchange::new(1, 3);
        ex.queue_relay(10.0, NodeId(1), &report_msg(NodeId(1)));
        ex.queue_relay(20.0, NodeId(2), &report_msg(NodeId(2)));
        ex.swap_relay_due_tail();
        // The later-queued message is now due first.
        assert!(ex.take_relay_if_due(0, 15.0).is_none());
        let early = ex.take_relay_if_due(1, 15.0).unwrap();
        assert_eq!(early.to, NodeId(2));
        ex.swap_relay_due_tail(); // single message: no-op
        assert!(ex.take_relay_if_due(0, 15.0).is_none());
    }

    #[test]
    fn chaos_patrol_carried_duplicates_and_reverses() {
        let mut ex = Exchange::new(1, 4);
        let v = VehicleId(0);
        ex.post_patrol(NodeId(0), NodeId(2), &report_msg(NodeId(2)));
        ex.post_patrol(NodeId(0), NodeId(3), &report_msg(NodeId(3)));
        ex.pickup_patrol(v, NodeId(0));
        ex.chaos_patrol_carried(v, true, true);
        // Duplicate of the newest (to node 3), then reversed.
        let due3 = ex.take_due_patrol(v, NodeId(3));
        assert_eq!(due3.len(), 2);
        // The duplicate got its own slab slot: consuming the original must
        // not invalidate the copy.
        let first = ex.consume_payload(due3[0].payload);
        let second = ex.consume_payload(due3[1].payload);
        assert_eq!(first, second);
        ex.recycle_patrol(due3);
        let due2 = ex.take_due_patrol(v, NodeId(2));
        assert_eq!(due2.len(), 1);
        // No carried queue for an unknown vehicle: no-op.
        ex.chaos_patrol_carried(VehicleId(99), true, true);
    }

    #[test]
    fn batch_preserves_drain_order_across_checkpoints() {
        let mut ex = Exchange::new(1, 4);
        // Interleaved destinations, all due.
        for &(due, to) in &[(1.0, 2u32), (2.0, 1), (3.0, 2), (4.0, 3)] {
            ex.queue_relay(due, NodeId(to), &report_msg(NodeId(to)));
        }
        ex.drain_due_relay(10.0);
        let mut seen = Vec::new();
        while let Some((to, payload)) = ex.pop_batched() {
            seen.push(to.0);
            ex.discard_payload(payload);
        }
        ex.finish_batch();
        // swap_remove drain order: take index 0 (to 2); the swap brings the
        // newest entry (to 3) to the front — take it; the next swap brings
        // the second to-2 forward — take it; finally to 1.
        assert_eq!(seen, vec![2, 3, 2, 1]);
        assert_eq!(ex.counters().relay_messages, 4);
    }

    #[test]
    fn snapshot_round_trips_through_the_slab() {
        let mut ex = Exchange::new(2, 3);
        ex.hand_label(VehicleId(1), label());
        ex.post_report(NodeId(0), EdgeId(0), NodeId(1), &report_msg(NodeId(1)));
        ex.post_patrol(NodeId(2), NodeId(0), &report_msg(NodeId(0)));
        ex.queue_relay(5.0, NodeId(2), &report_msg(NodeId(2)));
        ex.pickup_patrol(VehicleId(0), NodeId(2));
        let snap = ex.snapshot();
        let mut back = Exchange::restore(&snap);
        assert_eq!(back.counters(), ex.counters());
        assert!(back.reports_in_flight());
        assert_eq!(back.take_label(VehicleId(1)), Some(label()));
        // Re-snapshotting the restored exchange reproduces the image.
        let again = Exchange::restore(&snap).snapshot();
        assert_eq!(
            serde_json::to_string(&snap).unwrap(),
            serde_json::to_string(&again).unwrap()
        );
    }
}
