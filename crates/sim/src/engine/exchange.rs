//! The message Exchange: the engine's only inter-checkpoint path.
//!
//! Every message between checkpoints — the vehicle-carried activation
//! label, vehicle-carried subtree reports, directional V2V relay traffic,
//! and patrol-carried circuitous messages — lives here as an [`Envelope`]:
//! the destination plus the payload in [`vcount_v2x::Message`] wire form.
//! Payloads are encoded once on send (through a reused scratch buffer, so
//! the steady-state hot path stays allocation-free) and decoded exactly
//! once on delivery, so the binary codec is exercised on every run.
//!
//! The exchange also owns the segment watches (in-flight overtake
//! collaboration state) and the wire counters surfaced through
//! [`crate::metrics::RunTelemetry`]. Everything here serializes into an
//! [`ExchangeSnapshot`] for snapshot/resume.

use super::shard::RegionPartition;
use super::{audit, StepCtx};
use bytes::BytesMut;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vcount_core::ActionKind;
use vcount_roadnet::{EdgeId, NodeId};
use vcount_v2x::message::TAG_REPORT;
use vcount_v2x::{Label, Message, PatrolStatus, SegmentWatch, VehicleId};

/// A wire-encoded message plus its routing header — what actually travels
/// between checkpoints (on a vehicle, the relay, or a patrol car).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Envelope {
    /// Destination checkpoint.
    pub to: NodeId,
    /// The payload in [`vcount_v2x::Message`] wire form.
    pub payload: Vec<u8>,
}

impl Envelope {
    /// Placeholder left behind while compacting in place (never observed).
    fn hole() -> Envelope {
        Envelope {
            to: NodeId(u32::MAX),
            payload: Vec::new(),
        }
    }
}

/// A relay message in flight, due for delivery at `due_s`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RelayInFlight {
    /// Simulated delivery time, seconds.
    pub due_s: f64,
    /// The routed payload.
    pub env: Envelope,
}

/// An open segment watch: the label's origin checkpoint plus the V2V
/// collaboration state accumulating overtake adjustments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Watch {
    /// The checkpoint that handed off the watched label.
    pub origin: NodeId,
    /// The relative-position collaboration state machine.
    pub sw: SegmentWatch,
}

/// Wire-level traffic counters (surfaced as telemetry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireCounters {
    /// Messages encoded onto the wire.
    pub encoded: u64,
    /// Messages decoded off the wire.
    pub decoded: u64,
    /// Total payload bytes encoded.
    pub bytes: u64,
    /// Messages delivered through the directional relay.
    pub relay_messages: u64,
    /// Carried labels silently overwritten by a second handoff to the same
    /// vehicle — always a protocol anomaly (each overwrite loses a label).
    #[serde(default)]
    pub label_overwrites: u64,
    /// Messages routed across a region (shard) boundary — barrier trades
    /// under `--shards N`. Depends on the partition, so identity checks
    /// across shard counts must normalize it (like wall-clock fields).
    #[serde(default)]
    pub cross_shard: u64,
}

/// The in-flight message store. See the module docs for the invariants.
#[derive(Debug)]
pub struct Exchange {
    /// Wire-encoded activation label carried per vehicle (phase 2).
    carried_label: Vec<Option<Vec<u8>>>,
    /// Wire-encoded reports carried per vehicle.
    carried_reports: Vec<Vec<Envelope>>,
    /// Reports waiting at a node for a carrier onto a specific edge.
    pending_reports: Vec<Vec<(EdgeId, Envelope)>>,
    /// Circuitous messages waiting at a node for a patrol car (Alg. 4).
    pending_patrol: Vec<Vec<Envelope>>,
    /// Directional V2V relay traffic in flight.
    relay: Vec<RelayInFlight>,
    /// Open segment watches, keyed by the watched edge.
    watches: BTreeMap<EdgeId, Watch>,
    /// Patrol cars' accumulated status snapshots.
    patrol_status: BTreeMap<VehicleId, PatrolStatus>,
    /// Messages riding each patrol car.
    patrol_carried: BTreeMap<VehicleId, Vec<Envelope>>,
    /// Reused encode buffer — keeps steady-state encoding allocation-free.
    scratch: BytesMut,
    /// Reused due-report buffer (taken and recycled by the observe stage).
    /// Distinct from `due_patrol_scratch`: a patrol arrival takes both
    /// buffers in the same interaction, and a single shared slot would
    /// hand the second take a fresh allocation every time.
    due_reports_scratch: Vec<Envelope>,
    /// Reused due-patrol buffer (see `due_reports_scratch`).
    due_patrol_scratch: Vec<Envelope>,
    /// The region partition routing is attributed against (single-region
    /// unless the runner shards the engine). Not serialized: it is a pure
    /// function of `(nodes, shards)` and is re-derived on restore.
    partition: RegionPartition,
    counters: WireCounters,
}

/// Serializable image of an [`Exchange`] (every queue and counter; the
/// scratch buffers are rebuilt empty on restore).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExchangeSnapshot {
    /// Per-vehicle carried label payloads.
    pub carried_label: Vec<Option<Vec<u8>>>,
    /// Per-vehicle carried report envelopes.
    pub carried_reports: Vec<Vec<Envelope>>,
    /// Per-node reports awaiting a carrier, with their required edge.
    pub pending_reports: Vec<Vec<(EdgeId, Envelope)>>,
    /// Per-node circuitous messages awaiting a patrol car.
    pub pending_patrol: Vec<Vec<Envelope>>,
    /// Relay messages in flight.
    pub relay: Vec<RelayInFlight>,
    /// Open segment watches.
    pub watches: BTreeMap<EdgeId, Watch>,
    /// Patrol status snapshots.
    pub patrol_status: BTreeMap<VehicleId, PatrolStatus>,
    /// Patrol-carried messages.
    pub patrol_carried: BTreeMap<VehicleId, Vec<Envelope>>,
    /// Wire counters at snapshot time.
    pub counters: WireCounters,
}

impl Exchange {
    /// An empty exchange sized for `vehicles` vehicles and `nodes`
    /// checkpoints.
    pub fn new(vehicles: usize, nodes: usize) -> Self {
        Exchange {
            carried_label: vec![None; vehicles],
            carried_reports: vec![Vec::new(); vehicles],
            pending_reports: vec![Vec::new(); nodes],
            pending_patrol: vec![Vec::new(); nodes],
            relay: Vec::new(),
            watches: BTreeMap::new(),
            patrol_status: BTreeMap::new(),
            patrol_carried: BTreeMap::new(),
            scratch: BytesMut::with_capacity(64),
            due_reports_scratch: Vec::new(),
            due_patrol_scratch: Vec::new(),
            partition: RegionPartition::single(nodes),
            counters: WireCounters::default(),
        }
    }

    /// Installs the region partition routing is attributed against (the
    /// runner calls this when assembling a sharded engine).
    pub fn set_partition(&mut self, partition: RegionPartition) {
        self.partition = partition;
    }

    /// The active region partition.
    pub fn partition(&self) -> &RegionPartition {
        &self.partition
    }

    /// Attributes one routed message `from → to`: a route crossing a
    /// region boundary is a cross-shard barrier trade. Pure bookkeeping —
    /// routing itself never depends on the partition, which is what keeps
    /// the event stream byte-identical across shard counts.
    pub fn note_route(&mut self, from: NodeId, to: NodeId) {
        if self.partition.crosses(from, to) {
            self.counters.cross_shard += 1;
        }
    }

    /// Grows the per-vehicle queues to cover `n` vehicles (open-system
    /// demand spawns new vehicles mid-run).
    pub fn ensure_vehicle_capacity(&mut self, n: usize) {
        if self.carried_label.len() < n {
            self.carried_label.resize(n, None);
            self.carried_reports.resize(n, Vec::new());
        }
    }

    /// The wire counters so far.
    pub fn counters(&self) -> WireCounters {
        self.counters
    }

    /// Encodes `msg` through the reused scratch buffer into an owned
    /// payload, counting the wire traffic.
    fn encode(&mut self, msg: &Message) -> Vec<u8> {
        self.scratch.clear();
        msg.encode_into(&mut self.scratch);
        self.counters.encoded += 1;
        self.counters.bytes += self.scratch.len() as u64;
        self.scratch.to_vec()
    }

    /// Decodes a payload this exchange previously encoded. Payloads are
    /// self-produced, so a decode failure is a codec bug, not bad input.
    /// Decodes straight from the borrowed slice — the per-delivery hot
    /// path stays allocation-free (pinned by `tests/decode_alloc.rs`).
    pub fn decode_payload(&mut self, payload: &[u8]) -> Message {
        self.counters.decoded += 1;
        let mut buf: &[u8] = payload;
        let msg = Message::decode(&mut buf).expect("exchange-owned payloads always decode");
        debug_assert!(buf.is_empty(), "trailing bytes in exchange payload");
        msg
    }

    /// Stores a delivered label on its carrier vehicle. A vehicle must
    /// never already hold a label (a checkpoint hands off one label per
    /// direction, and the carrier surrenders it at the next checkpoint);
    /// an overwrite would silently lose the first label, so it is counted
    /// as a telemetry anomaly rather than ignored.
    pub fn hand_label(&mut self, vehicle: VehicleId, label: Label) {
        let payload = self.encode(&Message::Label(label));
        let prev = self.carried_label[vehicle.index()].replace(payload);
        debug_assert!(
            prev.is_none(),
            "vehicle {vehicle} already carries a label — double handoff overwrites it"
        );
        if prev.is_some() {
            self.counters.label_overwrites += 1;
        }
    }

    /// Takes and decodes the label `vehicle` carries, if any.
    pub fn take_label(&mut self, vehicle: VehicleId) -> Option<Label> {
        let payload = self.carried_label[vehicle.index()].take()?;
        match self.decode_payload(&payload) {
            Message::Label(l) => Some(l),
            other => unreachable!("label slot held {other:?}"),
        }
    }

    /// Round-trips the handoff acknowledgement a civilian vehicle radios
    /// back on successful label receipt (the codec's ack leg).
    pub fn ack_handoff(&mut self, vehicle: VehicleId) {
        let payload = self.encode(&Message::Ack { vehicle });
        match self.decode_payload(&payload) {
            Message::Ack { vehicle: v } => debug_assert_eq!(v, vehicle),
            other => unreachable!("ack decoded as {other:?}"),
        }
    }

    /// Opens a segment watch for a label handed off onto `edge`.
    pub fn insert_watch(&mut self, edge: EdgeId, origin: NodeId, sw: SegmentWatch) {
        self.watches.insert(edge, Watch { origin, sw });
    }

    /// The open watch on `edge`, if any.
    pub fn watch_mut(&mut self, edge: EdgeId) -> Option<&mut Watch> {
        self.watches.get_mut(&edge)
    }

    /// Closes and returns the watch on `edge`.
    pub fn remove_watch(&mut self, edge: EdgeId) -> Option<Watch> {
        self.watches.remove(&edge)
    }

    /// Posts a report at `from`, waiting for a vehicle departing onto
    /// `edge` toward `to`.
    pub fn post_report(&mut self, from: NodeId, edge: EdgeId, to: NodeId, msg: &Message) {
        let payload = self.encode(msg);
        self.pending_reports[from.index()].push((edge, Envelope { to, payload }));
    }

    /// Posts a circuitous message at `from`, waiting for a patrol car.
    pub fn post_patrol(&mut self, from: NodeId, to: NodeId, msg: &Message) {
        let payload = self.encode(msg);
        self.pending_patrol[from.index()].push(Envelope { to, payload });
    }

    /// Queues a message on the directional relay, due at `due_s`.
    pub fn queue_relay(&mut self, due_s: f64, to: NodeId, msg: &Message) {
        let payload = self.encode(msg);
        self.relay.push(RelayInFlight {
            due_s,
            env: Envelope { to, payload },
        });
    }

    /// Moves the reports waiting at `node` for edge `onto` into the
    /// departing vehicle's carried queue (stable in-place compaction).
    pub fn load_reports(&mut self, node: NodeId, vehicle: VehicleId, onto: EdgeId) {
        let pending = &mut self.pending_reports[node.index()];
        if pending.is_empty() {
            return;
        }
        let carried = &mut self.carried_reports[vehicle.index()];
        let mut kept = 0usize;
        for i in 0..pending.len() {
            if pending[i].0 == onto {
                let (_, env) = std::mem::replace(&mut pending[i], (onto, Envelope::hole()));
                carried.push(env);
            } else {
                pending.swap(kept, i);
                kept += 1;
            }
        }
        pending.truncate(kept);
    }

    /// Takes the reports `vehicle` carries that are addressed to `node`,
    /// preserving order on both sides. Return the buffer with
    /// [`Exchange::recycle_reports`] when done.
    pub fn take_due_reports(&mut self, vehicle: VehicleId, node: NodeId) -> Vec<Envelope> {
        let mut due = std::mem::take(&mut self.due_reports_scratch);
        due.clear();
        Self::split_due(&mut self.carried_reports[vehicle.index()], node, &mut due);
        due
    }

    /// Takes the patrol-carried messages addressed to `node`. Return the
    /// buffer with [`Exchange::recycle_patrol`] when done. Safe to call
    /// while a [`Exchange::take_due_reports`] buffer is still outstanding:
    /// the two takes use distinct scratch slots.
    pub fn take_due_patrol(&mut self, vehicle: VehicleId, node: NodeId) -> Vec<Envelope> {
        let mut due = std::mem::take(&mut self.due_patrol_scratch);
        due.clear();
        if let Some(list) = self.patrol_carried.get_mut(&vehicle) {
            Self::split_due(list, node, &mut due);
        }
        due
    }

    /// Stable in-place split: envelopes addressed to `node` move into
    /// `due`, the rest compact in place — no per-arrival allocation.
    fn split_due(list: &mut Vec<Envelope>, node: NodeId, due: &mut Vec<Envelope>) {
        let mut kept = 0usize;
        for i in 0..list.len() {
            if list[i].to == node {
                due.push(std::mem::replace(&mut list[i], Envelope::hole()));
            } else {
                list.swap(kept, i);
                kept += 1;
            }
        }
        list.truncate(kept);
    }

    /// Returns a [`Exchange::take_due_reports`] buffer for reuse.
    pub fn recycle_reports(&mut self, mut scratch: Vec<Envelope>) {
        scratch.clear();
        self.due_reports_scratch = scratch;
    }

    /// Returns a [`Exchange::take_due_patrol`] buffer for reuse.
    pub fn recycle_patrol(&mut self, mut scratch: Vec<Envelope>) {
        scratch.clear();
        self.due_patrol_scratch = scratch;
    }

    /// Drops every message queued *at* `node` (reports awaiting a carrier
    /// and circuitous messages awaiting a patrol car), returning how many
    /// were lost — a crashed checkpoint loses its volatile queues.
    pub fn drop_node_queues(&mut self, node: NodeId) -> usize {
        let n = self.pending_reports[node.index()].len() + self.pending_patrol[node.index()].len();
        self.pending_reports[node.index()].clear();
        self.pending_patrol[node.index()].clear();
        n
    }

    /// Drops every open segment watch whose origin is `node`, returning
    /// how many closed. A crashed checkpoint loses the volatile handoff
    /// context its watches adjust against — a watch finalizing after
    /// recovery would apply adjustments to a restored state image that
    /// never saw the handoff, so the crash closes the watch and the loss
    /// is counted as explicit degradation instead.
    pub fn drop_origin_watches(&mut self, node: NodeId) -> usize {
        let before = self.watches.len();
        self.watches.retain(|_, w| w.origin != node);
        before - self.watches.len()
    }

    /// Chaos injection: swaps the due times of the two most recently
    /// queued relay messages, flipping their delivery order. No-op with
    /// fewer than two messages in flight.
    pub fn swap_relay_due_tail(&mut self) {
        let n = self.relay.len();
        if n >= 2 {
            let a = self.relay[n - 2].due_s;
            self.relay[n - 2].due_s = self.relay[n - 1].due_s;
            self.relay[n - 1].due_s = a;
        }
    }

    /// Chaos injection on the patrol-carried path: duplicates the most
    /// recently picked-up message and/or reverses the carried queue. The
    /// protocol tolerates both (announces are idempotent, reports are
    /// highest-sequence-wins).
    pub fn chaos_patrol_carried(&mut self, vehicle: VehicleId, duplicate: bool, reverse: bool) {
        let Some(list) = self.patrol_carried.get_mut(&vehicle) else {
            return;
        };
        if duplicate {
            if let Some(last) = list.last().cloned() {
                list.push(last);
            }
        }
        if reverse {
            list.reverse();
        }
    }

    /// A patrol car picks up every circuitous message waiting at `node`.
    pub fn pickup_patrol(&mut self, vehicle: VehicleId, node: NodeId) {
        let picked = std::mem::take(&mut self.pending_patrol[node.index()]);
        self.patrol_carried
            .entry(vehicle)
            .or_default()
            .extend(picked);
    }

    /// Records a patrol car's status observation of `node`.
    pub fn observe_status(&mut self, vehicle: VehicleId, node: NodeId, active: bool) {
        self.patrol_status
            .entry(vehicle)
            .or_default()
            .observe(node, active);
    }

    /// The status snapshot a patrol car radios to the checkpoint it is
    /// visiting, round-tripped through the wire codec like a real
    /// transmission.
    pub fn relay_status(&mut self, vehicle: VehicleId) -> PatrolStatus {
        let status = self.patrol_status.entry(vehicle).or_default().clone();
        let payload = self.encode(&Message::Patrol(status));
        match self.decode_payload(&payload) {
            Message::Patrol(p) => p,
            other => unreachable!("patrol status decoded as {other:?}"),
        }
    }

    /// Number of relay messages currently in flight.
    pub(crate) fn relay_len(&self) -> usize {
        self.relay.len()
    }

    /// Removes and returns the relay message at `i` if it is due
    /// (`swap_remove`: the caller re-examines index `i` on `Some`).
    pub(crate) fn take_relay_if_due(&mut self, i: usize, now: f64) -> Option<Envelope> {
        if self.relay[i].due_s <= now {
            self.counters.relay_messages += 1;
            Some(self.relay.swap_remove(i).env)
        } else {
            None
        }
    }

    /// Whether `vehicle` carries no reports (border-exit invariant: every
    /// report is delivered at the node before an exit).
    pub fn carried_is_empty(&self, vehicle: VehicleId) -> bool {
        self.carried_reports[vehicle.index()].is_empty()
    }

    /// Whether any report payload is still in transit anywhere (on a
    /// vehicle, waiting at a node, in the relay, or on a patrol car).
    /// Collection is final only when the last re-report has landed.
    pub fn reports_in_flight(&self) -> bool {
        let is_report = |env: &Envelope| env.payload.first() == Some(&TAG_REPORT);
        self.carried_reports.iter().flatten().any(is_report)
            || self
                .pending_reports
                .iter()
                .flatten()
                .any(|(_, env)| is_report(env))
            || self.relay.iter().any(|r| is_report(&r.env))
            || self.pending_patrol.iter().flatten().any(is_report)
            || self.patrol_carried.values().flatten().any(is_report)
    }

    /// Serializable image of every queue and counter.
    pub fn snapshot(&self) -> ExchangeSnapshot {
        ExchangeSnapshot {
            carried_label: self.carried_label.clone(),
            carried_reports: self.carried_reports.clone(),
            pending_reports: self.pending_reports.clone(),
            pending_patrol: self.pending_patrol.clone(),
            relay: self.relay.clone(),
            watches: self.watches.clone(),
            patrol_status: self.patrol_status.clone(),
            patrol_carried: self.patrol_carried.clone(),
            counters: self.counters,
        }
    }

    /// Rebuilds an exchange from a snapshot (scratch buffers start empty).
    pub fn restore(snap: &ExchangeSnapshot) -> Self {
        Exchange {
            carried_label: snap.carried_label.clone(),
            carried_reports: snap.carried_reports.clone(),
            pending_reports: snap.pending_reports.clone(),
            pending_patrol: snap.pending_patrol.clone(),
            relay: snap.relay.clone(),
            watches: snap.watches.clone(),
            patrol_status: snap.patrol_status.clone(),
            patrol_carried: snap.patrol_carried.clone(),
            scratch: BytesMut::with_capacity(64),
            due_reports_scratch: Vec::new(),
            due_patrol_scratch: Vec::new(),
            partition: RegionPartition::single(snap.pending_reports.len()),
            counters: snap.counters,
        }
    }
}

/// Stage 4: delivers every relay message that came due this step. A
/// delivery can queue further relay traffic (a report triggered by an
/// announce); the scan picks those up in the same pass, though their due
/// times always land in a later step.
pub fn exchange(ctx: &mut StepCtx<'_>) {
    let mut i = 0;
    while i < ctx.exchange.relay_len() {
        match ctx.exchange.take_relay_if_due(i, ctx.now) {
            Some(env) => deliver_envelope(ctx, &env),
            None => i += 1,
        }
    }
}

/// Decodes a routed payload at its destination checkpoint and feeds the
/// resulting observation through the machine (shared by the relay and the
/// patrol delivery paths). A message addressed to a crashed (down)
/// checkpoint is dropped and counted — the run becomes explicitly
/// degraded rather than silently miscounting.
pub(crate) fn deliver_envelope(ctx: &mut StepCtx<'_>, env: &Envelope) {
    if ctx.faults.down(env.to) {
        ctx.faults.note_dropped_messages(1);
        audit::record_fault(
            ctx.audit,
            ctx.now,
            vcount_obs::ProtocolEvent::FaultMessageDropped {
                node: env.to.0,
                messages: 1,
            },
        );
        return;
    }
    let kind = match ctx.exchange.decode_payload(&env.payload) {
        Message::Announce(a) => ActionKind::Announce {
            from: a.from,
            pred: a.pred,
        },
        Message::Report(r) => ActionKind::Report {
            from: r.from,
            total: r.subtree_total,
            seq: r.seq,
        },
        other => unreachable!("exchange routes only announces and reports, got {other:?}"),
    };
    super::apply_action(ctx, env.to, kind);
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcount_v2x::Report;

    fn report_msg(to: NodeId) -> Message {
        Message::Report(Report {
            from: NodeId(0),
            to,
            subtree_total: 1,
            seq: 1,
        })
    }

    fn label() -> Label {
        Label {
            origin: NodeId(0),
            origin_pred: None,
            seed: NodeId(0),
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "already carries a label")]
    fn double_handoff_is_a_debug_assertion() {
        let mut ex = Exchange::new(1, 2);
        ex.hand_label(VehicleId(0), label());
        ex.hand_label(VehicleId(0), label());
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn double_handoff_is_counted_in_release() {
        let mut ex = Exchange::new(1, 2);
        ex.hand_label(VehicleId(0), label());
        ex.hand_label(VehicleId(0), label());
        assert_eq!(ex.counters().label_overwrites, 1);
        // The second label wins; the loss is visible in telemetry.
        assert!(ex.take_label(VehicleId(0)).is_some());
        assert!(ex.take_label(VehicleId(0)).is_none());
    }

    #[test]
    fn handoff_then_surrender_never_counts_an_overwrite() {
        let mut ex = Exchange::new(1, 2);
        ex.hand_label(VehicleId(0), label());
        assert!(ex.take_label(VehicleId(0)).is_some());
        ex.hand_label(VehicleId(0), label());
        assert_eq!(ex.counters().label_overwrites, 0);
    }

    #[test]
    fn due_scratch_slots_survive_simultaneous_takes() {
        let mut ex = Exchange::new(1, 3);
        let v = VehicleId(0);
        let n = NodeId(1);
        // One carried report and one patrol-carried message, both due at n.
        let msg = report_msg(n);
        ex.post_report(NodeId(0), EdgeId(0), n, &msg);
        ex.load_reports(NodeId(0), v, EdgeId(0));
        ex.post_patrol(NodeId(0), n, &msg);
        ex.pickup_patrol(v, NodeId(0));

        // A patrol arrival holds both buffers at once.
        let r = ex.take_due_reports(v, n);
        let p = ex.take_due_patrol(v, n);
        assert_eq!((r.len(), p.len()), (1, 1));
        ex.recycle_reports(r);
        ex.recycle_patrol(p);

        // Both slots kept their capacity: nothing is due any more, yet the
        // returned buffers are the previously grown scratch vectors. With a
        // single shared slot the second take would come back fresh
        // (capacity 0), i.e. a new allocation on every patrol arrival.
        let r = ex.take_due_reports(v, n);
        let p = ex.take_due_patrol(v, n);
        assert!(r.is_empty() && r.capacity() > 0, "reports scratch was lost");
        assert!(p.is_empty() && p.capacity() > 0, "patrol scratch was lost");
        ex.recycle_reports(r);
        ex.recycle_patrol(p);
    }

    #[test]
    fn drop_node_queues_counts_and_clears_only_that_node() {
        let mut ex = Exchange::new(1, 3);
        let msg = report_msg(NodeId(2));
        ex.post_report(NodeId(1), EdgeId(0), NodeId(2), &msg);
        ex.post_patrol(NodeId(1), NodeId(2), &msg);
        ex.post_patrol(NodeId(0), NodeId(2), &msg);
        assert_eq!(ex.drop_node_queues(NodeId(1)), 2);
        assert_eq!(ex.drop_node_queues(NodeId(1)), 0);
        // Node 0's queue is untouched.
        ex.pickup_patrol(VehicleId(0), NodeId(0));
        assert_eq!(ex.take_due_patrol(VehicleId(0), NodeId(2)).len(), 1);
    }

    #[test]
    fn drop_origin_watches_closes_only_the_crashed_origin() {
        use vcount_v2x::{AdjustMode, SegmentWatch};
        let sw = || SegmentWatch::new(AdjustMode::NetInversion, VehicleId(0), []);
        let mut ex = Exchange::new(1, 3);
        ex.insert_watch(EdgeId(0), NodeId(1), sw());
        ex.insert_watch(EdgeId(1), NodeId(2), sw());
        ex.insert_watch(EdgeId(2), NodeId(1), sw());
        assert_eq!(ex.drop_origin_watches(NodeId(1)), 2);
        assert_eq!(ex.drop_origin_watches(NodeId(1)), 0);
        assert!(ex.watch_mut(EdgeId(0)).is_none());
        assert!(ex.watch_mut(EdgeId(1)).is_some(), "other origin survives");
    }

    #[test]
    fn note_route_counts_only_cross_region_traffic() {
        use crate::engine::shard::RegionPartition;
        let mut ex = Exchange::new(1, 4);
        // Default single-region partition: nothing crosses.
        ex.note_route(NodeId(0), NodeId(3));
        assert_eq!(ex.counters().cross_shard, 0);
        ex.set_partition(RegionPartition::new(4, 2));
        ex.note_route(NodeId(0), NodeId(1)); // local to region 0
        ex.note_route(NodeId(1), NodeId(2)); // crosses 0 → 1
        ex.note_route(NodeId(3), NodeId(0)); // crosses 1 → 0
        assert_eq!(ex.counters().cross_shard, 2);
    }

    #[test]
    fn swap_relay_due_tail_flips_delivery_order() {
        let mut ex = Exchange::new(1, 3);
        ex.queue_relay(10.0, NodeId(1), &report_msg(NodeId(1)));
        ex.queue_relay(20.0, NodeId(2), &report_msg(NodeId(2)));
        ex.swap_relay_due_tail();
        // The later-queued message is now due first.
        assert!(ex.take_relay_if_due(0, 15.0).is_none());
        let early = ex.take_relay_if_due(1, 15.0).unwrap();
        assert_eq!(early.to, NodeId(2));
        ex.swap_relay_due_tail(); // single message: no-op
        assert!(ex.take_relay_if_due(0, 15.0).is_none());
    }

    #[test]
    fn chaos_patrol_carried_duplicates_and_reverses() {
        let mut ex = Exchange::new(1, 4);
        let v = VehicleId(0);
        ex.post_patrol(NodeId(0), NodeId(2), &report_msg(NodeId(2)));
        ex.post_patrol(NodeId(0), NodeId(3), &report_msg(NodeId(3)));
        ex.pickup_patrol(v, NodeId(0));
        ex.chaos_patrol_carried(v, true, true);
        // Duplicate of the newest (to node 3), then reversed.
        let due3 = ex.take_due_patrol(v, NodeId(3));
        assert_eq!(due3.len(), 2);
        ex.recycle_patrol(due3);
        let due2 = ex.take_due_patrol(v, NodeId(2));
        assert_eq!(due2.len(), 1);
        // No carried queue for an unknown vehicle: no-op.
        ex.chaos_patrol_carried(VehicleId(99), true, true);
    }
}
