//! Whole-engine snapshots: serialize a mid-run deployment, resume it
//! later, and replay a byte-identical event stream (DESIGN.md §6quater).

use super::ExchangeSnapshot;
use crate::oracle::Attribution;
use crate::scenario::Scenario;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vcount_core::{CheckpointState, ClassDedupCounter, NaiveIntervalCounter};
use vcount_roadnet::NodeId;
use vcount_traffic::SimSnapshot;
use vcount_v2x::VehicleId;

/// Schema tag stamped on every serialized snapshot. `/v4` adds the
/// `skipped_decode` wire counter (zero-copy lazy-decode plane); `/v3`
/// (no `skipped_decode`, defaulting to 0), `/v2` (additionally no shard
/// count, implying 1) and `/v1` (additionally no fault layer) snapshots
/// are still accepted on read.
pub const SNAPSHOT_SCHEMA: &str = "vcount-engine-snapshot/v4";

/// Previous schema tag, still accepted by [`EngineSnapshot::from_json`]:
/// a v3 snapshot is a v4 snapshot whose wire counters predate the
/// `decoded`/`skipped_decode` split (the missing counter defaults to 0).
pub const SNAPSHOT_SCHEMA_V3: &str = "vcount-engine-snapshot/v3";

/// Still accepted by [`EngineSnapshot::from_json`]:
/// a v2 snapshot is exactly a v3 snapshot of a single-shard engine.
pub const SNAPSHOT_SCHEMA_V2: &str = "vcount-engine-snapshot/v2";

/// Oldest schema tag, still accepted by [`EngineSnapshot::from_json`]:
/// a v1 snapshot is a v2 snapshot with no fault layer.
pub const SNAPSHOT_SCHEMA_V1: &str = "vcount-engine-snapshot/v1";

/// Protocol-side RNG seed derivation: decoupled from the traffic stream
/// but derived from the same scenario seed for whole-run reproducibility.
pub(crate) fn proto_seed(sim_seed: u64) -> u64 {
    sim_seed.wrapping_mul(0x9E37_79B9).wrapping_add(7)
}

/// Everything needed to resume a run exactly where it left off: the full
/// scenario, the simulator's dynamic state, every checkpoint state
/// machine, the exchange's in-flight queues, the oracle ledger, both
/// baselines, and the positions of both RNG streams.
///
/// The observability sinks (telemetry counters, post-mortem ring, user
/// sinks) are *not* captured — a resumed run audits its own tail.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// Schema tag ([`SNAPSHOT_SCHEMA`]); rejected on mismatch.
    pub schema: String,
    /// The complete scenario, making the snapshot self-contained.
    pub scenario: Scenario,
    /// The seed checkpoints selected at assembly (an RNG-dependent choice
    /// that must not be redrawn on resume).
    pub seeds: Vec<NodeId>,
    /// Draws consumed from the protocol RNG stream.
    pub proto_rng_draws: u64,
    /// Opaque interior state of the loss model (Gilbert–Elliott burst
    /// phase; `0` for memoryless models).
    pub channel_state: u64,
    /// The traffic simulator's dynamic state.
    pub sim: SimSnapshot,
    /// Every checkpoint's dynamic state, in node order.
    pub checkpoints: Vec<CheckpointState>,
    /// The exchange's in-flight queues and wire counters.
    pub exchange: ExchangeSnapshot,
    /// The ground-truth oracle's attribution ledger.
    pub ledger: BTreeMap<VehicleId, Vec<Attribution>>,
    /// The naive interval-counting baseline.
    pub naive: NaiveIntervalCounter,
    /// The image-recognition dedup baseline.
    pub dedup: ClassDedupCounter,
    /// The fault plan driving the run, if any (absent in v1 snapshots and
    /// fault-free runs).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub fault_plan: Option<crate::faults::FaultPlan>,
    /// The fault layer's mid-run state, if a plan is active.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub faults: Option<crate::faults::FaultSnapshot>,
    /// Shard (worker) count the run was using. Resume restores it; the
    /// event stream is byte-identical for every value, so resuming with a
    /// different count via `--shards` is also sound. v1/v2 snapshots carry
    /// no shard count: the field defaults to `0` and resume clamps it up
    /// to the single-shard engine those schemas imply.
    #[serde(default)]
    pub shards: usize,
}

impl EngineSnapshot {
    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("engine snapshots always serialize")
    }

    /// Parses a snapshot, validating the schema tag.
    pub fn from_json(s: &str) -> Result<EngineSnapshot, String> {
        let snap: EngineSnapshot = serde_json::from_str(s).map_err(|e| e.to_string())?;
        if snap.schema != SNAPSHOT_SCHEMA
            && snap.schema != SNAPSHOT_SCHEMA_V3
            && snap.schema != SNAPSHOT_SCHEMA_V2
            && snap.schema != SNAPSHOT_SCHEMA_V1
        {
            return Err(format!(
                "unsupported snapshot schema {:?} (expected {SNAPSHOT_SCHEMA:?})",
                snap.schema
            ));
        }
        Ok(snap)
    }
}
