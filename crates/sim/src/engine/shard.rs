//! Region partitioning for the sharded engine (DESIGN.md §8bis).
//!
//! The road graph's checkpoints are split into `shards` contiguous regions
//! of near-equal size. Each region conceptually owns its nodes'
//! [`vcount_core::Checkpoint`] machines and the node-indexed slices of the
//! [`super::Exchange`] queues (`pending_reports` / `pending_patrol`); every
//! message whose source and destination fall in different regions is a
//! cross-shard trade that must cross the per-step barrier. The partition
//! itself is *pure bookkeeping*: it never changes routing, only attributes
//! it, which is what keeps the merged event stream byte-identical for
//! every shard count (see the module docs on determinism in
//! `vcount_traffic::Simulator::set_detect_shards` for the parallel leg).
//!
//! [`decompose`]/[`compose`] split a monolithic engine snapshot into
//! per-region [`ShardSnapshot`]s and reassemble them. The on-disk format
//! stays the monolithic [`super::EngineSnapshot`]; the round-trip runs on
//! every sharded snapshot as a self-check that regional ownership covers
//! the whole state.

use super::exchange::{Envelope, ExchangeSnapshot};
use serde::{Deserialize, Serialize};
use vcount_core::CheckpointState;
use vcount_roadnet::{EdgeId, NodeId};

/// A contiguous split of the node id space into regions, one per shard.
/// Region `r` owns nodes `bounds[r]..bounds[r+1]`; the bounds are
/// monotonically non-decreasing, start at 0 and end at the node count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionPartition {
    bounds: Vec<u32>,
}

impl RegionPartition {
    /// Balanced partition of `nodes` checkpoints into `shards` regions.
    /// `shards` is clamped to `[1, nodes]` (a region must own at least one
    /// node; `nodes == 0` degenerates to one empty region).
    pub fn new(nodes: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, nodes.max(1));
        let mut bounds = Vec::with_capacity(shards + 1);
        bounds.push(0u32);
        let mut first = 0usize;
        for s in 0..shards {
            first += nodes / shards + usize::from(s < nodes % shards);
            bounds.push(first as u32);
        }
        RegionPartition { bounds }
    }

    /// The trivial single-region partition (everything local).
    pub fn single(nodes: usize) -> Self {
        RegionPartition::new(nodes, 1)
    }

    /// Number of regions.
    pub fn shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The node-index range region `region` owns.
    pub fn node_range(&self, region: usize) -> std::ops::Range<usize> {
        self.bounds[region] as usize..self.bounds[region + 1] as usize
    }

    /// The region owning `node`.
    pub fn region_of(&self, node: NodeId) -> usize {
        debug_assert!(
            node.0 < *self.bounds.last().unwrap() || self.bounds.len() == 2,
            "node {node:?} outside the partitioned id space"
        );
        self.bounds[1..]
            .partition_point(|&b| b <= node.0)
            .min(self.shards() - 1)
    }

    /// Whether a message `a → b` crosses a region boundary (and therefore
    /// trades through the per-step barrier instead of staying local).
    pub fn crosses(&self, a: NodeId, b: NodeId) -> bool {
        self.region_of(a) != self.region_of(b)
    }
}

/// The state one region owns at a step boundary: its nodes' checkpoint
/// machines plus the node-indexed exchange queue slices local to it.
/// Vehicle-carried and in-flight state (labels, carried reports, relay,
/// watches, patrol cars) is *global* — vehicles roam across regions — and
/// stays with the composed snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSnapshot {
    /// Which region this shard is.
    pub region: usize,
    /// First node id the region owns (`node i` of the shard is global node
    /// `first_node + i`).
    pub first_node: u32,
    /// The owned checkpoints' dynamic state, in node order.
    pub checkpoints: Vec<CheckpointState>,
    /// Reports waiting at the owned nodes for a carrier.
    pub pending_reports: Vec<Vec<(EdgeId, Envelope)>>,
    /// Circuitous messages waiting at the owned nodes for a patrol car.
    pub pending_patrol: Vec<Vec<Envelope>>,
}

/// Splits a monolithic engine state into per-region shards. Panics if the
/// checkpoint count disagrees with the partition (snapshot corruption).
pub fn decompose(
    partition: &RegionPartition,
    checkpoints: &[CheckpointState],
    exchange: &ExchangeSnapshot,
) -> Vec<ShardSnapshot> {
    assert_eq!(
        checkpoints.len(),
        partition.node_range(partition.shards() - 1).end,
        "partition does not cover the checkpoint set"
    );
    assert_eq!(checkpoints.len(), exchange.pending_reports.len());
    assert_eq!(checkpoints.len(), exchange.pending_patrol.len());
    (0..partition.shards())
        .map(|region| {
            let range = partition.node_range(region);
            ShardSnapshot {
                region,
                first_node: range.start as u32,
                checkpoints: checkpoints[range.clone()].to_vec(),
                pending_reports: exchange.pending_reports[range.clone()].to_vec(),
                pending_patrol: exchange.pending_patrol[range].to_vec(),
            }
        })
        .collect()
}

/// Reassembles [`decompose`]'s output into the monolithic node-ordered
/// vectors. Accepts the shards in any order; panics on a gap or overlap in
/// regional ownership.
pub type ComposedShards = (
    Vec<CheckpointState>,
    Vec<Vec<(EdgeId, Envelope)>>,
    Vec<Vec<Envelope>>,
);

/// See [`ComposedShards`].
pub fn compose(mut shards: Vec<ShardSnapshot>) -> ComposedShards {
    shards.sort_by_key(|s| s.region);
    let mut checkpoints = Vec::new();
    let mut pending_reports = Vec::new();
    let mut pending_patrol = Vec::new();
    for (i, shard) in shards.into_iter().enumerate() {
        assert_eq!(shard.region, i, "missing or duplicate shard region");
        assert_eq!(
            shard.first_node as usize,
            checkpoints.len(),
            "shard {i} does not start where shard {} ended",
            i.wrapping_sub(1)
        );
        assert_eq!(shard.checkpoints.len(), shard.pending_reports.len());
        assert_eq!(shard.checkpoints.len(), shard.pending_patrol.len());
        checkpoints.extend(shard.checkpoints);
        pending_reports.extend(shard.pending_reports);
        pending_patrol.extend(shard.pending_patrol);
    }
    (checkpoints, pending_reports, pending_patrol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Exchange;
    use vcount_v2x::{Message, Report};

    #[test]
    fn balanced_bounds_cover_every_node_once() {
        for nodes in 0..40usize {
            for shards in 1..8usize {
                let p = RegionPartition::new(nodes, shards);
                assert_eq!(p.node_range(0).start, 0);
                assert_eq!(p.node_range(p.shards() - 1).end, nodes);
                let mut covered = 0usize;
                for r in 0..p.shards() {
                    let range = p.node_range(r);
                    assert_eq!(range.start, covered, "gap before region {r}");
                    // Balanced: sizes differ by at most one.
                    assert!(range.len() + 1 >= nodes / p.shards().max(1));
                    covered = range.end;
                    for n in range {
                        assert_eq!(p.region_of(NodeId(n as u32)), r);
                    }
                }
                assert_eq!(covered, nodes);
            }
        }
    }

    #[test]
    fn shards_clamp_to_node_count() {
        let p = RegionPartition::new(3, 64);
        assert_eq!(p.shards(), 3);
        let p = RegionPartition::new(0, 4);
        assert_eq!(p.shards(), 1);
        assert_eq!(p.node_range(0), 0..0);
    }

    #[test]
    fn crosses_detects_region_boundaries() {
        let p = RegionPartition::new(8, 4); // regions of 2
        assert!(!p.crosses(NodeId(0), NodeId(1)));
        assert!(p.crosses(NodeId(1), NodeId(2)));
        assert!(p.crosses(NodeId(0), NodeId(7)));
        let single = RegionPartition::single(8);
        assert!(!single.crosses(NodeId(0), NodeId(7)));
    }

    /// A distinguishable checkpoint state (only `report_seq` varies — the
    /// round-trip must keep the states in node order).
    fn state(seq: u32) -> CheckpointState {
        use std::collections::BTreeMap;
        CheckpointState {
            active: false,
            is_seed: false,
            pred: None,
            wave_seed: None,
            inbound_state: BTreeMap::new(),
            label_state: BTreeMap::new(),
            counters: vcount_core::Counters::default(),
            known_preds: BTreeMap::new(),
            child_reports: BTreeMap::new(),
            last_report: None,
            report_seq: seq,
            tree_total: None,
            activated_at: None,
            stable_at: None,
            collected_at: None,
        }
    }

    #[test]
    fn decompose_compose_round_trips() {
        let nodes = 7usize;
        let mut ex = Exchange::new(2, nodes);
        let msg = Message::Report(Report {
            from: NodeId(0),
            to: NodeId(6),
            subtree_total: 5,
            seq: 1,
        });
        ex.post_report(NodeId(1), EdgeId(0), NodeId(6), &msg);
        ex.post_patrol(NodeId(4), NodeId(2), &msg);
        ex.post_patrol(NodeId(6), NodeId(0), &msg);
        let exch = ex.snapshot();
        let checkpoints: Vec<CheckpointState> = (0..nodes).map(|i| state(i as u32)).collect();

        for shards in [1usize, 2, 3, 7] {
            let p = RegionPartition::new(nodes, shards);
            let parts = decompose(&p, &checkpoints, &exch);
            assert_eq!(parts.len(), shards);
            // Shuffle the shard order; compose must reassemble by region.
            let mut reversed: Vec<_> = parts.into_iter().rev().collect();
            reversed.rotate_left(shards / 2);
            let (cps, reports, patrol) = compose(reversed);
            assert_eq!(cps, checkpoints);
            assert_eq!(reports, exch.pending_reports);
            assert_eq!(patrol, exch.pending_patrol);
        }
    }
}
