//! Stage 3: route checkpoint transport commands into the
//! [`super::Exchange`].
//!
//! Every command becomes a wire-encoded [`vcount_v2x::Message`] the moment
//! it enters the exchange — vehicle-carried, relayed, or patrol-carried —
//! so the codec is the canonical payload representation throughout.

use super::StepCtx;
use crate::scenario::TransportMode;
use vcount_core::Command;
use vcount_roadnet::NodeId;
use vcount_v2x::{Announce, Message, Report};

/// Routes the commands `from` emitted into the exchange, per the
/// scenario's transport mode, draining the caller's scratch buffer.
pub fn dispatch(ctx: &mut StepCtx<'_>, from: NodeId, cmds: &mut Vec<Command>) {
    for cmd in cmds.drain(..) {
        // Attribute the route before picking a transport: every command
        // targets exactly one destination checkpoint, so this counts each
        // cross-region (cross-shard) message once.
        match cmd {
            Command::SendPredAnnounce { to, .. } | Command::SendReport { to, .. } => {
                ctx.exchange.note_route(from, to);
            }
        }
        match cmd {
            Command::SendPredAnnounce { to, pred } => {
                let msg = Message::Announce(Announce { to, from, pred });
                match ctx.transport {
                    TransportMode::VehicleWithRelayFallback { relay_speed_mps }
                    | TransportMode::RelayOnly { relay_speed_mps } => {
                        queue_relay(ctx, from, relay_speed_mps, to, &msg);
                    }
                    TransportMode::VehicleWithPatrolFallback => {
                        ctx.exchange.post_patrol(from, to, &msg);
                    }
                }
            }
            Command::SendReport { to, total, seq } => {
                let msg = Message::Report(Report {
                    from,
                    to,
                    subtree_total: total,
                    seq,
                });
                let edge = ctx.net.edge_between(from, to);
                match (edge, ctx.transport) {
                    (Some(e), TransportMode::VehicleWithRelayFallback { .. })
                    | (Some(e), TransportMode::VehicleWithPatrolFallback) => {
                        ctx.exchange.post_report(from, e, to, &msg);
                    }
                    (_, TransportMode::RelayOnly { relay_speed_mps })
                    | (None, TransportMode::VehicleWithRelayFallback { relay_speed_mps }) => {
                        queue_relay(ctx, from, relay_speed_mps, to, &msg);
                    }
                    (None, TransportMode::VehicleWithPatrolFallback) => {
                        ctx.exchange.post_patrol(from, to, &msg);
                    }
                }
            }
        }
    }
}

/// Queues `msg` on the directional relay with a distance-proportional
/// delivery delay (see [`super::Exchange::queue_relay`]), applying any
/// chaos the fault layer decides for this enqueue (extra delay, duplicate
/// copy, swapped delivery order).
fn queue_relay(
    ctx: &mut StepCtx<'_>,
    from: NodeId,
    relay_speed_mps: f64,
    to: NodeId,
    msg: &Message,
) {
    let net = ctx.net;
    let dist = net.node(from).pos.distance(&net.node(to).pos);
    let due = ctx.now + dist / relay_speed_mps.max(1.0) + 1.0;
    let chaos = ctx.faults.chaos_relay(ctx.now);
    ctx.exchange.queue_relay(due + chaos.extra_delay_s, to, msg);
    if chaos.duplicate {
        ctx.exchange
            .queue_relay(due + chaos.duplicate_extra_delay_s, to, msg);
    }
    if chaos.reorder {
        ctx.exchange.swap_relay_due_tail();
    }
}
