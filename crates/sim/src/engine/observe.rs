//! Stage 2: feed each surveillance event to the checkpoint machines.
//!
//! This stage drives the per-event protocol loop. After every checkpoint
//! interaction it invokes the [`super::audit()`] stage (event draining) and
//! the [`super::dispatch()`] stage (command routing) so that intra-step
//! interleaving — a report posted mid-step being picked up by a later
//! departure of the same step — is preserved exactly.

use super::exchange::deliver_routed;
use super::{apply_action, audit, StepCtx, Watch};
use crate::source::{BatchIndex, ObservationBatch};
use vcount_core::ActionKind;
use vcount_obs::ProtocolEvent;
use vcount_roadnet::{EdgeId, NodeId};
use vcount_traffic::TrafficEvent;
use vcount_v2x::{AdjustMode, Message, SegmentWatch, VehicleId};

/// Replays the step's event batch through the protocol, in order. `index`
/// is the engine-derived event index over the same batch (see
/// [`BatchIndex::rebuild`]).
pub fn observe(ctx: &mut StepCtx<'_>, batch: &ObservationBatch, index: &BatchIndex) {
    for (i, ev) in batch.events.iter().enumerate() {
        match *ev {
            TrafficEvent::Entered {
                vehicle,
                node,
                from,
            } => on_entered(ctx, vehicle, node, from),
            TrafficEvent::Departed {
                vehicle,
                node,
                onto,
            } => on_departed(ctx, batch, index, i, vehicle, node, onto),
            TrafficEvent::Exited { vehicle, node } => on_exited(ctx, vehicle, node),
            TrafficEvent::Overtake {
                edge,
                overtaker,
                overtaken,
            } => on_overtake(ctx, edge, overtaker, overtaken),
        }
    }
}

fn on_entered(ctx: &mut StepCtx<'_>, vehicle: VehicleId, node: NodeId, from: Option<EdgeId>) {
    let class = ctx.classes.class(vehicle);
    let is_patrol = class.is_patrol();
    let node_down = ctx.faults.down(node);

    // Deliver carried reports addressed to this node. A down checkpoint
    // cannot receive: the carrier surrenders them anyway (real radios
    // broadcast blind), the loss is counted, and the payloads are
    // discarded unparsed — a dead recipient never pays a decode.
    let due = ctx.exchange.take_due_reports(vehicle, node);
    if node_down {
        if !due.is_empty() {
            ctx.faults.note_dropped_messages(due.len());
            audit::record_fault(
                ctx.audit,
                ctx.now,
                ProtocolEvent::FaultMessageDropped {
                    node: node.0,
                    messages: due.len() as u32,
                },
            );
            for env in &due {
                ctx.exchange.discard_payload(env.payload);
            }
        }
    } else {
        for env in &due {
            let r = match ctx.exchange.consume_payload(env.payload) {
                Message::Report(r) => r,
                other => unreachable!("carried report queue held {other:?}"),
            };
            apply_action(
                ctx,
                node,
                ActionKind::Report {
                    from: r.from,
                    total: r.subtree_total,
                    seq: r.seq,
                },
            );
        }
    }
    ctx.exchange.recycle_reports(due);

    if is_patrol && !node_down {
        // Deliver circuitous messages addressed here, then pick up the
        // ones waiting, then exchange status snapshots. (At a down node
        // the patrol keeps its cargo and moves on — circuitous delivery
        // is deferred, not lost.)
        let due = ctx.exchange.take_due_patrol(vehicle, node);
        for env in &due {
            deliver_routed(ctx, env.to, env.payload);
        }
        ctx.exchange.recycle_patrol(due);
        ctx.exchange.pickup_patrol(vehicle, node);
        let chaos = ctx.faults.chaos_patrol(ctx.now);
        if chaos.duplicate || chaos.reverse {
            ctx.exchange
                .chaos_patrol_carried(vehicle, chaos.duplicate, chaos.reverse);
        }
        let status = ctx.exchange.relay_status(vehicle);
        apply_action(ctx, node, ActionKind::PatrolStatus { vehicle, status });
    }

    // Segment-watch bookkeeping on the arrival edge.
    if let Some(e) = from {
        let finalize = match ctx.exchange.watch_mut(e) {
            Some(w) if w.sw.label_vehicle() == vehicle => true,
            Some(w) => {
                if !is_patrol {
                    let counted = ctx.oracle.ever_counted(vehicle);
                    w.sw.record_arrival(vehicle, counted);
                }
                false
            }
            None => false,
        };
        if finalize {
            let w = ctx.exchange.remove_watch(e).expect("checked above");
            finalize_watch(ctx, w);
        }
    }

    // Label delivery + phase 3/4/5 processing; the oracle attribution
    // (counted / interaction-in) is derived from the emitted events. The
    // vehicle surrenders its label regardless: a down checkpoint loses it
    // (counted — that label's wave stalls until compensation or re-seed,
    // and the payload is discarded unparsed), and any observation the
    // checkpoint would have counted is recorded as suppressed, so a
    // possible miscount is never silent.
    if node_down {
        if ctx.exchange.discard_label(vehicle) {
            ctx.faults.note_label_dropped();
            audit::record_fault(
                ctx.audit,
                ctx.now,
                ProtocolEvent::FaultMessageDropped {
                    node: node.0,
                    messages: 1,
                },
            );
        }
        if ctx.cps[node.index()].is_active() && !is_patrol && ctx.filter.matches(&class) {
            ctx.faults.note_suppressed_observation();
        }
    } else {
        let label = ctx.exchange.take_label(vehicle);
        apply_action(
            ctx,
            node,
            ActionKind::Entered {
                vehicle,
                via: from,
                class,
                label,
            },
        );
    }

    // Patrol observation recorded after processing: the status carried
    // onward reflects this checkpoint's state as the patrol leaves it
    // (a down checkpoint reads as inactive — that is what Alg. 4's
    // circuitous delivery is for).
    if is_patrol {
        let active = !node_down && ctx.cps[node.index()].is_active();
        ctx.exchange.observe_status(vehicle, node, active);
    }

    // Unsynchronized baselines observe the same surveillance stream.
    ctx.naive.observe(&class);
    ctx.dedup.observe(&class);
}

#[allow(clippy::too_many_arguments)]
fn on_departed(
    ctx: &mut StepCtx<'_>,
    batch: &ObservationBatch,
    index: &BatchIndex,
    event_idx: usize,
    vehicle: VehicleId,
    node: NodeId,
    onto: EdgeId,
) {
    let class = ctx.classes.class(vehicle);
    let is_patrol = class.is_patrol();

    // A down checkpoint neither loads reports nor offers labels; nothing
    // is lost (its queues were dropped at crash time, and the label offer
    // simply retries after recovery), so this is not a degradation.
    if ctx.faults.down(node) {
        return;
    }

    // Pending reports that ride this edge board the departing vehicle.
    ctx.exchange.load_reports(node, vehicle, onto);

    // Phase 2: label handoff.
    if let Some(label) = ctx.cps[node.index()].offer_label(onto) {
        // A regional blackout fails every handoff outright — patrol
        // included — without consuming a protocol-RNG draw, so fault-free
        // replay stays byte-identical. Compensation (when configured)
        // absorbs the failure exactly like an ordinary channel loss.
        let blackout = ctx.faults.blackout_handoff(ctx.now, node);
        if blackout {
            audit::record_fault(
                ctx.audit,
                ctx.now,
                ProtocolEvent::ChannelBlackout {
                    node: node.0,
                    edge: onto.0,
                    vehicle: vehicle.0,
                },
            );
        }
        let delivered = !blackout
            && (is_patrol || {
                // Police equipment is reliable; civilian handoffs go
                // through the lossy channel with ack confirmation.
                ctx.channel.attempt(&mut *ctx.proto_rng).delivered()
            });
        // On failure the checkpoint emits the compensation event (when
        // configured), and the audit stage mirrors it into the oracle — so
        // the compensation-disabled ablation shows up as violations.
        apply_action(
            ctx,
            node,
            ActionKind::Departed {
                vehicle,
                onto,
                delivered,
                matches_filter: ctx.filter.matches(&class),
            },
        );
        if delivered {
            ctx.exchange.hand_label(vehicle, label);
            if !is_patrol {
                ctx.exchange.ack_handoff(vehicle);
            }
            let ahead = ahead_of(ctx, batch, index, event_idx, vehicle, onto);
            let sw = SegmentWatch::new(ctx.adjust_mode, vehicle, ahead);
            ctx.exchange.insert_watch(onto, node, sw);
        }
    }
}

/// Vehicles ahead of a label departing onto `onto` at event `idx`, with
/// their counted status (see the runner's module docs for the
/// reconstruction from the end-of-step snapshot).
fn ahead_of(
    ctx: &StepCtx<'_>,
    batch: &ObservationBatch,
    index: &BatchIndex,
    idx: usize,
    label_vehicle: VehicleId,
    onto: EdgeId,
) -> Vec<(VehicleId, bool)> {
    let later_departure = |v: VehicleId| {
        index
            .departures_onto
            .iter()
            .any(|&(e, i, d)| e == onto && i > idx && d == v)
    };
    let later_entries = index
        .entries_via
        .iter()
        .filter(|&&(e, i, _)| e == onto && i > idx)
        .map(|&(_, _, v)| v);

    let mut ahead: Vec<VehicleId> = later_entries.collect();
    let from_entries = ahead.len();
    ahead.extend_from_slice(batch.in_transit(onto));
    // The two sources are disjoint: a vehicle whose same-step `Entered`
    // via `onto` comes later has *left* the segment this step (it sits at
    // the far node, or beyond), so it cannot also be in the end-of-step
    // `in_transit(onto)` order — a directed edge is traversed at most once
    // per step. Assert that here; the first-occurrence dedup below stays
    // correct even if a future simulator change breaks the invariant
    // (`Vec::dedup` would not: it only drops *adjacent* repeats, and this
    // concatenation is unsorted).
    debug_assert!(
        ahead[from_entries..]
            .iter()
            .all(|v| !ahead[..from_entries].contains(v)),
        "a same-step later entry cannot still be in transit on the segment"
    );
    ahead.retain(|v| {
        *v != label_vehicle && !later_departure(*v) && !ctx.classes.class(*v).is_patrol()
    });
    dedup_first_occurrence(&mut ahead);
    ahead
        .into_iter()
        .map(|v| (v, ctx.oracle.ever_counted(v)))
        .collect()
}

/// Order-preserving dedup that keeps each vehicle's *first* occurrence,
/// wherever the repeats sit (unlike `Vec::dedup`, which assumes adjacency).
/// The ahead set feeds a [`SegmentWatch`], where a double entry would
/// double-adjust a single vehicle. Lists here are a handful of vehicles,
/// so the quadratic scan beats allocating a seen-set.
fn dedup_first_occurrence(ahead: &mut Vec<VehicleId>) {
    let mut kept = 0usize;
    for i in 0..ahead.len() {
        let v = ahead[i];
        if !ahead[..kept].contains(&v) {
            ahead[kept] = v;
            kept += 1;
        }
    }
    ahead.truncate(kept);
}

fn finalize_watch(ctx: &mut StepCtx<'_>, w: Watch) {
    let adj = w.sw.finalize();
    // A down origin cannot apply the adjustment. Count what would have
    // been applied (without touching the oracle ledger — nothing was
    // actually adjusted) so the loss is explicit, and drop the watch.
    if ctx.faults.down(w.origin) {
        let lost = adj
            .plus
            .iter()
            .filter(|v| vehicle_matches(ctx, **v))
            .count()
            + adj
                .minus
                .iter()
                .filter(|v| vehicle_matches(ctx, **v))
                .count();
        if lost > 0 {
            ctx.faults.note_dropped_messages(lost);
            audit::record_fault(
                ctx.audit,
                ctx.now,
                ProtocolEvent::FaultMessageDropped {
                    node: w.origin.0,
                    messages: lost as u32,
                },
            );
        }
        return;
    }
    let mut plus = 0usize;
    let mut minus = 0usize;
    for v in &adj.plus {
        if vehicle_matches(ctx, *v) {
            ctx.oracle
                .record(*v, crate::oracle::Attribution::AdjustPlus);
            plus += 1;
        }
    }
    for v in &adj.minus {
        if vehicle_matches(ctx, *v) {
            ctx.oracle
                .record(*v, crate::oracle::Attribution::AdjustMinus);
            minus += 1;
        }
    }
    if plus > 0 || minus > 0 {
        apply_action(ctx, w.origin, ActionKind::Adjust { plus, minus });
    }
}

fn vehicle_matches(ctx: &StepCtx<'_>, v: VehicleId) -> bool {
    let class = ctx.classes.class(v);
    !class.is_patrol() && ctx.filter.matches(&class)
}

fn on_exited(ctx: &mut StepCtx<'_>, vehicle: VehicleId, node: NodeId) {
    let class = ctx.classes.class(vehicle);
    debug_assert!(
        ctx.exchange.carried_is_empty(vehicle),
        "reports are always delivered at the node before an exit"
    );
    // A down border checkpoint misses the exit; if it would have counted
    // it, the suppression is recorded so the miss is never silent.
    if ctx.faults.down(node) {
        if ctx.cps[node.index()].is_active() && vehicle_matches(ctx, vehicle) {
            ctx.faults.note_suppressed_observation();
        }
        return;
    }
    // A counted exit emits a BorderExit event; the audit stage mirrors it
    // into the oracle as an interaction-out attribution. Exits provably
    // dispatch no commands, so the funnel's dispatch pass is a no-op here.
    apply_action(ctx, node, ActionKind::BorderExit { vehicle, class });
}

fn on_overtake(ctx: &mut StepCtx<'_>, edge: EdgeId, overtaker: VehicleId, overtaken: VehicleId) {
    // Only meaningful for the per-event adjustment ablation.
    if ctx.adjust_mode != AdjustMode::PerEvent {
        return;
    }
    let counted_overtaken = ctx.oracle.ever_counted(overtaken);
    let counted_overtaker = ctx.oracle.ever_counted(overtaker);
    let matches_overtaken = vehicle_matches(ctx, overtaken);
    let matches_overtaker = vehicle_matches(ctx, overtaker);
    if let Some(w) = ctx.exchange.watch_mut(edge) {
        let label = w.sw.label_vehicle();
        if overtaker == label && matches_overtaken {
            w.sw.label_overtakes(overtaken, counted_overtaken);
        } else if overtaken == label && matches_overtaker {
            w.sw.label_overtaken_by(overtaker, counted_overtaker);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::dedup_first_occurrence;
    use vcount_v2x::VehicleId;

    fn ids(raw: &[u64]) -> Vec<VehicleId> {
        raw.iter().map(|&v| VehicleId(v)).collect()
    }

    /// Regression for the `ahead_of` dedup: the list is an *unsorted*
    /// concatenation of same-step entries and in-transit order, so repeats
    /// need not be adjacent. `Vec::dedup` left `[3, 5, 3]` untouched, which
    /// would seed a watch that double-adjusts vehicle 3.
    #[test]
    fn removes_non_adjacent_repeats() {
        let mut ahead = ids(&[3, 5, 3, 7, 5, 3]);
        dedup_first_occurrence(&mut ahead);
        assert_eq!(ahead, ids(&[3, 5, 7]));
    }

    #[test]
    fn keeps_first_occurrence_order() {
        let mut ahead = ids(&[9, 2, 9, 2, 4]);
        dedup_first_occurrence(&mut ahead);
        assert_eq!(ahead, ids(&[9, 2, 4]));
    }

    #[test]
    fn leaves_unique_lists_alone() {
        let mut ahead = ids(&[1, 2, 3]);
        dedup_first_occurrence(&mut ahead);
        assert_eq!(ahead, ids(&[1, 2, 3]));
        let mut empty: Vec<VehicleId> = Vec::new();
        dedup_first_occurrence(&mut empty);
        assert!(empty.is_empty());
    }
}
