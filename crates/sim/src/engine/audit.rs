//! Stage 5: drain buffered protocol events into the oracle and the sinks.

use super::StepCtx;
use crate::oracle::Attribution;
use vcount_obs::{CountersSink, EventRecord, EventSink, ProtocolEvent, RingBufferSink};
use vcount_roadnet::NodeId;
use vcount_v2x::VehicleId;

/// The audit stage's own state: the run's event stamp, the always-on
/// telemetry and post-mortem sinks, the user-configured sinks, and the
/// reused drain buffer.
pub struct AuditLog {
    /// The run's RNG seed, stamped on every emitted event record.
    pub(crate) seed_epoch: u64,
    /// Always-on telemetry aggregation (counters + phase timings).
    pub(crate) counters: CountersSink,
    /// Always-on last-N ring for post-mortem attribution chains.
    pub(crate) ring: RingBufferSink,
    /// User-configured sinks (JSONL export, custom consumers).
    pub(crate) sinks: Vec<Box<dyn EventSink + Send>>,
    /// Scratch buffer for draining checkpoint events.
    event_drain: Vec<(f64, ProtocolEvent)>,
}

impl AuditLog {
    /// An empty audit trail stamping records with `seed_epoch`.
    pub fn new(
        seed_epoch: u64,
        ring_capacity: usize,
        sinks: Vec<Box<dyn EventSink + Send>>,
    ) -> Self {
        AuditLog {
            seed_epoch,
            counters: CountersSink::new(),
            ring: RingBufferSink::new(ring_capacity),
            sinks,
            event_drain: Vec::new(),
        }
    }
}

/// Drains the protocol events `node`'s checkpoint buffered, derives the
/// oracle attributions they imply, and fans the stamped records into the
/// telemetry, ring, and user sinks. Invoked after every checkpoint
/// interaction, so checkpoint event buffers are provably empty at step
/// boundaries (which is what makes [`super::EngineSnapshot`] complete).
pub fn audit(ctx: &mut StepCtx<'_>, node: NodeId) {
    let mut drained = std::mem::take(&mut ctx.audit.event_drain);
    ctx.cps[node.index()].drain_events_into(&mut drained);
    // The recorder's digest absorbs the events line before the commands
    // line (see [`super::apply_action`]); a no-op when recording is off.
    ctx.recorder.absorb_events(node, &drained);
    for &(t, event) in &drained {
        // The oracle ledger mirrors exactly what the protocol applied;
        // attribution-bearing events carry the vehicle they concern.
        match event {
            ProtocolEvent::VehicleCounted { vehicle, .. } => {
                ctx.oracle.record(VehicleId(vehicle), Attribution::Counted);
            }
            ProtocolEvent::BorderEntry { vehicle, .. } => {
                ctx.oracle
                    .record(VehicleId(vehicle), Attribution::InteractionIn);
            }
            ProtocolEvent::BorderExit { vehicle, .. } => {
                ctx.oracle
                    .record(VehicleId(vehicle), Attribution::InteractionOut);
            }
            ProtocolEvent::LossCompensation { vehicle, .. } => {
                ctx.oracle
                    .record(VehicleId(vehicle), Attribution::LossCompensation);
            }
            _ => {}
        }
        let rec = EventRecord {
            time_s: t,
            seed_epoch: ctx.audit.seed_epoch,
            event,
        };
        ctx.audit.counters.record(&rec);
        ctx.audit.ring.record(&rec);
        for sink in &mut ctx.audit.sinks {
            sink.record(&rec);
        }
    }
    drained.clear();
    ctx.audit.event_drain = drained;
}

/// Records one injected-fault event into the telemetry, ring, and user
/// sinks. Fault events originate in the engine's fault layer, not in a
/// checkpoint's event buffer, so they bypass the oracle mirroring —
/// injected faults are environment, not protocol attributions.
pub fn record_fault(log: &mut AuditLog, time_s: f64, event: ProtocolEvent) {
    let rec = EventRecord {
        time_s,
        seed_epoch: log.seed_epoch,
        event,
    };
    log.counters.record(&rec);
    log.ring.record(&rec);
    for sink in &mut log.sinks {
        sink.record(&rec);
    }
}
