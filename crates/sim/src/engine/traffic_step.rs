//! Stage 1: advance the traffic microsimulation and index its events.

use vcount_roadnet::EdgeId;
use vcount_traffic::{Simulator, TrafficEvent};
use vcount_v2x::VehicleId;

/// One step's surveillance events plus the per-edge indices the observe
/// stage needs for watch "ahead" reconstruction (see the runner's module
/// docs). All buffers are reused across steps.
#[derive(Debug, Default)]
pub struct TrafficBatch {
    /// The step's events, in the simulator's deterministic order.
    pub events: Vec<TrafficEvent>,
    /// Same-step `(edge, event index, vehicle)` departures onto each edge.
    pub departures_onto: Vec<(EdgeId, usize, VehicleId)>,
    /// Same-step `(edge, event index, vehicle)` entries via each edge.
    pub entries_via: Vec<(EdgeId, usize, VehicleId)>,
}

/// Advances the simulator one tick and rebuilds the batch: events are
/// copied out (the simulator's buffer is reused next step) and the
/// departure/entry indices are re-derived. Flat reused buffers: a step
/// carries few events, so a linear filter beats rebuilding a map of fresh
/// vectors every step.
pub fn traffic_step(sim: &mut Simulator, batch: &mut TrafficBatch) {
    batch.events.clear();
    let events = sim.step();
    batch.events.extend(events.iter().copied());
    batch.departures_onto.clear();
    batch.entries_via.clear();
    for (i, ev) in batch.events.iter().enumerate() {
        match *ev {
            TrafficEvent::Departed { vehicle, onto, .. } => {
                batch.departures_onto.push((onto, i, vehicle));
            }
            TrafficEvent::Entered {
                vehicle,
                from: Some(e),
                ..
            } => {
                batch.entries_via.push((e, i, vehicle));
            }
            _ => {}
        }
    }
}
