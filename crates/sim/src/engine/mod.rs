//! The layered deterministic engine behind [`crate::runner::Runner`].
//!
//! One simulation step decomposes into five single-responsibility stages,
//! each a named free function over explicit `(state, inputs) -> outputs`
//! pieces:
//!
//! 1. *source* — produce the step's [`crate::source::ObservationBatch`].
//!    This stage lives behind the [`crate::source::ObservationSource`]
//!    trait: the in-process traffic simulator is one implementation, a
//!    network feeder another — the engine consumes batches and never asks
//!    who made them;
//! 2. [`observe()`] — feed each surveillance event to the checkpoint state
//!    machines (label delivery, lossy handoffs, segment watches,
//!    baselines);
//! 3. [`dispatch()`] — route the transport commands checkpoints emit into
//!    the [`Exchange`], encoding each payload with the
//!    [`vcount_v2x::Message`] wire codec;
//! 4. [`exchange()`] — deliver relay messages that came due, decoding each
//!    payload back at the receiving checkpoint;
//! 5. [`audit()`] — drain buffered protocol events into the ground-truth
//!    oracle and the observability sinks.
//!
//! Stages 3 and 5 are also invoked *within* stage 2 after every checkpoint
//! interaction: the protocol is event-driven, and a command produced
//! mid-step (say, a report posted at a node) can be picked up by a later
//! event of the same step. The decomposition preserves that interleaving
//! exactly — the stages are units of responsibility, not barriers.
//!
//! All in-flight message state lives in the [`Exchange`] — the sole path
//! between checkpoints — and the whole engine state serializes as an
//! [`EngineSnapshot`] for byte-identical snapshot/resume (DESIGN.md
//! §6quater).

pub mod audit;
pub mod dispatch;
pub mod exchange;
pub mod observe;
pub mod shard;
pub mod snapshot;

pub use audit::{audit, AuditLog};
pub use dispatch::dispatch;
pub use exchange::{exchange, Envelope, Exchange, ExchangeSnapshot, Watch, WireCounters};
pub use observe::observe;
pub use shard::{RegionPartition, ShardSnapshot};
pub use snapshot::{EngineSnapshot, SNAPSHOT_SCHEMA};

use crate::oracle::Oracle;
use crate::replay::ActionRecorder;
use crate::scenario::TransportMode;
use crate::source::ClassTable;
use vcount_core::{
    Action, ActionKind, Checkpoint, ClassDedupCounter, Command, NaiveIntervalCounter,
};
use vcount_roadnet::{NodeId, RoadNetwork};
use vcount_traffic::ReplayRng;
use vcount_v2x::{AdjustMode, ClassFilter, LossModel};

/// Borrowed view of one engine step: every stage receives the same context
/// and mutates only the state its responsibility covers. The fields are
/// disjoint borrows of the runner, so stages can call each other (observe →
/// dispatch → audit) without hidden cross-stage mutation.
pub struct StepCtx<'a> {
    /// Event timestamp: simulated time at the end of the current step.
    pub now: f64,
    /// The road graph the deployment runs on (read-only; the traffic
    /// substrate itself lives behind the observation source and is never
    /// visible to the protocol stages).
    pub net: &'a RoadNetwork,
    /// Camera-visible class of every announced vehicle.
    pub classes: &'a ClassTable,
    /// One checkpoint state machine per intersection.
    pub cps: &'a mut [Checkpoint],
    /// The message layer owning every in-flight payload.
    pub exchange: &'a mut Exchange,
    /// Ground-truth attribution ledger.
    pub oracle: &'a mut Oracle,
    /// Lossy handoff channel.
    pub channel: &'a (dyn LossModel + Send),
    /// Protocol-side RNG (channel and seed-selection draws), draw-counted
    /// so a resumed run continues the identical stream.
    pub proto_rng: &'a mut ReplayRng,
    /// Collection transport selection.
    pub transport: TransportMode,
    /// The specified-type filter checkpoints count against.
    pub filter: ClassFilter,
    /// Overtake adjustment mode.
    pub adjust_mode: AdjustMode,
    /// Naive per-checkpoint interval baseline.
    pub naive: &'a mut NaiveIntervalCounter,
    /// Image-recognition dedup baseline.
    pub dedup: &'a mut ClassDedupCounter,
    /// Event audit trail: oracle mirroring and observability sinks.
    pub audit: &'a mut AuditLog,
    /// Deterministic fault injection (inactive unless a plan is loaded).
    pub faults: &'a mut crate::faults::FaultLayer,
    /// Action-trace recorder (inert unless `--record-actions` is on).
    pub recorder: &'a mut ActionRecorder,
    /// Reused command scratch for [`apply_action`] (allocation-free once
    /// warmed up).
    pub cmd_scratch: &'a mut Vec<Command>,
}

/// The single funnel every protocol input passes through: mints the
/// [`Action`] at `ctx.now`, records it, feeds it to `node`'s pure machine,
/// audits the emitted events, and dispatches the emitted commands into
/// the exchange. Keeping one funnel guarantees the recorded action stream
/// is complete — a machine-only replay of it reproduces every dispatch.
pub fn apply_action(ctx: &mut StepCtx<'_>, node: NodeId, kind: ActionKind) {
    let action = Action {
        at_s: ctx.now,
        kind,
    };
    ctx.recorder.push(node, &action);
    let mut cmds = std::mem::take(ctx.cmd_scratch);
    debug_assert!(cmds.is_empty(), "command scratch must drain every action");
    ctx.cps[node.index()].apply(&action, &mut cmds);
    // Events first, then commands — the recorder's digest lines follow the
    // same order (see `AuditLog`/`ActionRecorder`).
    audit::audit(ctx, node);
    ctx.recorder.absorb_commands(node, &cmds);
    dispatch::dispatch(ctx, node, &mut cmds);
    *ctx.cmd_scratch = cmds;
}
