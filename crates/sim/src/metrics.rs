//! Run metrics: the quantities the paper's figures report.

use serde::{Deserialize, Serialize};

/// Simple summary statistics over a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Summary {
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample count.
    pub n: usize,
}

impl Summary {
    /// Summarizes a sample; `None` when empty.
    pub fn of(samples: impl IntoIterator<Item = f64>) -> Option<Summary> {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut n = 0usize;
        for s in samples {
            min = min.min(s);
            max = max.max(s);
            sum += s;
            n += 1;
        }
        (n > 0).then(|| Summary {
            min,
            max,
            mean: sum / n as f64,
            n,
        })
    }
}

/// A point-in-time view of a running deployment (see
/// [`crate::runner::Runner::progress`]): how far the wave and the
/// collection have spread. Useful for live dashboards and the wave-trace
/// example.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProgressSnapshot {
    /// Simulated time, seconds.
    pub time_s: f64,
    /// Checkpoints activated so far.
    pub active: usize,
    /// Checkpoints whose local count stabilized.
    pub stable: usize,
    /// Seeds holding a tree total.
    pub collected_seeds: usize,
    /// Total checkpoints.
    pub checkpoints: usize,
    /// Current distributed count (Σ local + interaction net).
    pub distributed_count: i64,
    /// Ground-truth matching population inside.
    pub population: usize,
}

/// Observability telemetry attached to a run's metrics: protocol event
/// counts aggregated by a [`vcount_obs::CountersSink`], relay transport
/// usage, and wall-clock phase attribution of the driving loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunTelemetry {
    /// Checkpoint activations (seeds included).
    pub activations: u64,
    /// Checkpoints whose counting stabilized.
    pub stabilizations: u64,
    /// Label handoff attempts.
    pub labels_emitted: u64,
    /// Acknowledged handoffs.
    pub handoff_acks: u64,
    /// Failed handoffs (each is a retry with the next vehicle).
    pub handoff_retries: u64,
    /// −1 loss compensations applied.
    pub compensations: u64,
    /// Inbound directions stopped by an arriving label.
    pub inbound_stops: u64,
    /// Phase-5 vehicle counts.
    pub vehicles_counted: u64,
    /// Finalized overtake-adjustment events (not net magnitude).
    pub overtake_adjustment_events: u64,
    /// Subtree reports sent toward predecessors (re-reports included).
    pub reports_sent: u64,
    /// Child reports superseded by a higher sequence number.
    pub reports_superseded: u64,
    /// Patrol status snapshots relayed to checkpoints.
    pub patrol_relays: u64,
    /// Border entries counted (+1 live interaction).
    pub border_entries: u64,
    /// Border exits counted (−1 live interaction).
    pub border_exits: u64,
    /// Messages delivered through the directional V2V relay.
    pub relay_messages: u64,
    /// Payloads encoded to the wire format by the exchange.
    pub messages_encoded: u64,
    /// Payloads decoded from the wire format on delivery.
    pub messages_decoded: u64,
    /// Payloads discarded without decoding (lazy decode: the recipient
    /// was down or the message was a dropped duplicate).
    #[serde(default)]
    pub messages_skipped_decode: u64,
    /// Total wire bytes produced by the exchange's encoder.
    pub wire_bytes: u64,
    /// Carried labels overwritten by a double handoff (always an anomaly).
    #[serde(default)]
    pub label_overwrites: u64,
    /// Injected checkpoint crashes.
    #[serde(default)]
    pub crashes: u64,
    /// Crashed checkpoints that rejoined from their state image.
    #[serde(default)]
    pub recoveries: u64,
    /// Messages dropped because their destination or holder was down.
    #[serde(default)]
    pub fault_messages_dropped: u64,
    /// Handoffs forced to fail by a regional radio blackout.
    #[serde(default)]
    pub blackout_failures: u64,
    /// Relay/patrol messages duplicated by chaos injection.
    #[serde(default)]
    pub chaos_duplicates: u64,
    /// Relay messages delayed by chaos injection.
    #[serde(default)]
    pub chaos_delays: u64,
    /// Relay/patrol deliveries reordered by chaos injection.
    #[serde(default)]
    pub chaos_reorders: u64,
    /// Messages routed across a region (shard) boundary — barrier trades
    /// under `--shards N`. Varies with the shard count (the only telemetry
    /// field that does); identity comparisons must normalize it.
    #[serde(default)]
    pub cross_shard_messages: u64,
    /// Open segment watches closed because their origin checkpoint
    /// crashed (each is an explicit degradation, never a silent miscount).
    #[serde(default)]
    pub watches_dropped: u64,
    /// Wall-clock seconds advancing the traffic microsimulation.
    pub traffic_step_secs: f64,
    /// Wall-clock seconds driving checkpoint state machines and sinks.
    pub protocol_secs: f64,
    /// Wall-clock seconds delivering relay / patrol-carried messages.
    pub relay_secs: f64,
}

impl RunTelemetry {
    /// Copies the event counts out of an observability counter set.
    pub fn from_counters(c: &vcount_obs::Counters) -> Self {
        RunTelemetry {
            activations: c.activations,
            stabilizations: c.stabilizations,
            labels_emitted: c.labels_emitted,
            handoff_acks: c.handoff_acks,
            handoff_retries: c.handoff_retries,
            compensations: c.compensations,
            inbound_stops: c.inbound_stops,
            vehicles_counted: c.vehicles_counted,
            overtake_adjustment_events: c.overtake_adjustments,
            reports_sent: c.reports_sent,
            reports_superseded: c.reports_superseded,
            patrol_relays: c.patrol_relays,
            border_entries: c.border_entries,
            border_exits: c.border_exits,
            relay_messages: 0,
            messages_encoded: 0,
            messages_decoded: 0,
            messages_skipped_decode: 0,
            wire_bytes: 0,
            label_overwrites: 0,
            crashes: c.crashes,
            recoveries: c.recoveries,
            fault_messages_dropped: c.fault_messages_dropped,
            blackout_failures: c.blackout_failures,
            chaos_duplicates: 0,
            chaos_delays: 0,
            chaos_reorders: 0,
            cross_shard_messages: 0,
            watches_dropped: 0,
            traffic_step_secs: 0.0,
            protocol_secs: 0.0,
            relay_secs: 0.0,
        }
    }

    /// Total protocol events counted.
    pub fn events_total(&self) -> u64 {
        self.activations
            + self.stabilizations
            + self.labels_emitted
            + self.handoff_acks
            + self.handoff_retries
            + self.compensations
            + self.inbound_stops
            + self.vehicles_counted
            + self.overtake_adjustment_events
            + self.reports_sent
            + self.reports_superseded
            + self.patrol_relays
            + self.border_entries
            + self.border_exits
            + self.crashes
            + self.recoveries
            + self.fault_messages_dropped
            + self.blackout_failures
    }

    /// Field-wise sum, for aggregating replicates of a sweep cell.
    pub fn merge(&mut self, other: &RunTelemetry) {
        self.activations += other.activations;
        self.stabilizations += other.stabilizations;
        self.labels_emitted += other.labels_emitted;
        self.handoff_acks += other.handoff_acks;
        self.handoff_retries += other.handoff_retries;
        self.compensations += other.compensations;
        self.inbound_stops += other.inbound_stops;
        self.vehicles_counted += other.vehicles_counted;
        self.overtake_adjustment_events += other.overtake_adjustment_events;
        self.reports_sent += other.reports_sent;
        self.reports_superseded += other.reports_superseded;
        self.patrol_relays += other.patrol_relays;
        self.border_entries += other.border_entries;
        self.border_exits += other.border_exits;
        self.relay_messages += other.relay_messages;
        self.messages_encoded += other.messages_encoded;
        self.messages_decoded += other.messages_decoded;
        self.messages_skipped_decode += other.messages_skipped_decode;
        self.wire_bytes += other.wire_bytes;
        self.label_overwrites += other.label_overwrites;
        self.crashes += other.crashes;
        self.recoveries += other.recoveries;
        self.fault_messages_dropped += other.fault_messages_dropped;
        self.blackout_failures += other.blackout_failures;
        self.chaos_duplicates += other.chaos_duplicates;
        self.chaos_delays += other.chaos_delays;
        self.chaos_reorders += other.chaos_reorders;
        self.cross_shard_messages += other.cross_shard_messages;
        self.watches_dropped += other.watches_dropped;
        self.traffic_step_secs += other.traffic_step_secs;
        self.protocol_secs += other.protocol_secs;
        self.relay_secs += other.relay_secs;
    }
}

/// The outcome of one simulated run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Simulated time when every checkpoint's non-interaction counting
    /// stabilized (Alg. 3 constitution / Alg. 5 "complete status"), or
    /// `None` if the run hit its time limit first.
    pub constitution_done_s: Option<f64>,
    /// Simulated time when every seed held its tree's global view
    /// (Alg. 2/4 collection), or `None`.
    pub collection_done_s: Option<f64>,
    /// Per-checkpoint stabilization times, seconds (Fig. 2's max/min/avg
    /// are statistics over these).
    pub checkpoint_stable_s: Vec<f64>,
    /// Per-checkpoint activation times, seconds.
    pub checkpoint_activated_s: Vec<f64>,
    /// The global count collected at the seeds (sum of tree totals plus
    /// live interaction net for open systems).
    pub global_count: Option<i64>,
    /// Ground-truth matching civilian population inside at evaluation time.
    pub true_population: usize,
    /// Number of per-vehicle oracle violations (0 = mis/double-counting
    /// free, the paper's headline claim).
    pub oracle_violations: usize,
    /// Total label handoff failures compensated (30% channel).
    pub handoff_failures: u64,
    /// Net overtake adjustments applied across all checkpoints.
    pub overtake_adjustments: i64,
    /// Naive per-checkpoint interval counting baseline (double-counts).
    pub baseline_naive: u64,
    /// Image-recognition dedup baseline (undercounts).
    pub baseline_dedup: u64,
    /// Simulated seconds actually run.
    pub elapsed_s: f64,
    /// Simulation steps executed.
    pub steps: u64,
    /// Whether injected faults may have cost protocol information (see
    /// [`crate::faults`]). Always `false` for fault-free runs; when `true`
    /// the count is not guaranteed exact — but the flag is what makes the
    /// inexactness explicit rather than silent.
    #[serde(default)]
    pub degraded: bool,
    /// Protocol event counts and phase timings (absent in metrics
    /// serialized before the observability layer existed).
    #[serde(default)]
    pub telemetry: RunTelemetry,
}

impl RunMetrics {
    /// Fig. 2 style statistics over per-checkpoint stabilization times.
    pub fn stable_summary(&self) -> Option<Summary> {
        Summary::of(self.checkpoint_stable_s.iter().copied())
    }

    /// Whether the protocol's global view matches ground truth exactly.
    pub fn exact(&self) -> bool {
        self.oracle_violations == 0 && self.global_count == Some(self.true_population as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_samples() {
        let s = Summary::of([2.0, 4.0, 6.0]).unwrap();
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::of(std::iter::empty()).is_none());
    }

    #[test]
    fn exactness_requires_zero_violations_and_matching_count() {
        let m = RunMetrics {
            constitution_done_s: Some(100.0),
            collection_done_s: Some(200.0),
            checkpoint_stable_s: vec![50.0, 100.0],
            checkpoint_activated_s: vec![10.0, 20.0],
            global_count: Some(42),
            true_population: 42,
            oracle_violations: 0,
            handoff_failures: 3,
            overtake_adjustments: -1,
            baseline_naive: 400,
            baseline_dedup: 17,
            elapsed_s: 300.0,
            steps: 600,
            degraded: false,
            telemetry: RunTelemetry::default(),
        };
        assert!(m.exact());
        let bad = RunMetrics {
            global_count: Some(41),
            ..m.clone()
        };
        assert!(!bad.exact());
        let viol = RunMetrics {
            oracle_violations: 1,
            ..m
        };
        assert!(!viol.exact());
    }
}
