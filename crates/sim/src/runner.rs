//! The run orchestrator: wires the traffic microsimulator, the lossy V2X
//! channel, and one checkpoint state machine per intersection into a full
//! deployment, tracks ground truth in the [`Oracle`], and measures the
//! times the paper's figures report.
//!
//! ## Intra-step ordering
//!
//! The simulator emits its step's events in deterministic order. A label
//! handoff at a `Departed` event needs the set of vehicles *ahead* of the
//! label on the joined segment at that instant; the runner reconstructs it
//! from the end-of-step `in_transit` snapshot by adding vehicles whose
//! same-step `Entered` (via that edge) events come later — they were still
//! on the segment at the departure instant — and removing vehicles whose
//! same-step `Departed` (onto that edge) events come later — they joined
//! behind the label.

use crate::metrics::{ProgressSnapshot, RunMetrics, RunTelemetry};
use crate::oracle::{Attribution, Oracle};
use crate::scenario::{Scenario, SeedSpec, TransportMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::time::Instant;
use vcount_core::{Checkpoint, Command, Observation};
use vcount_core::{ClassDedupCounter, NaiveIntervalCounter};
use vcount_obs::{CountersSink, EventRecord, EventSink, Phase, ProtocolEvent, RingBufferSink};
use vcount_roadnet::{edge_covering_cycle, EdgeId, NodeId, RoadNetwork};
use vcount_traffic::{Simulator, TrafficEvent};
use vcount_v2x::{
    AdjustMode, ClassFilter, Label, LossModel, PatrolStatus, SegmentWatch, VehicleId,
};

/// Ring-buffer capacity of the always-on post-mortem sink.
const DEFAULT_RING_CAPACITY: usize = 4096;

/// What a run is trying to reach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Goal {
    /// Every checkpoint's non-interaction counting stabilized
    /// (Fig. 2 constitution; Fig. 4 "complete status" when open).
    Constitution,
    /// Additionally, every seed holds its tree's global view
    /// (Fig. 3 / Fig. 5 collection).
    Collection,
}

struct Watch {
    origin: NodeId,
    sw: SegmentWatch,
}

#[derive(Debug, Clone, Copy)]
enum RelayMsg {
    Announce {
        to: NodeId,
        from: NodeId,
        pred: Option<NodeId>,
    },
    Report {
        to: NodeId,
        from: NodeId,
        total: i64,
        seq: u32,
    },
}

struct RelayInFlight {
    due_s: f64,
    msg: RelayMsg,
}

/// A fully wired deployment under simulation.
pub struct Runner {
    sim: Simulator,
    cps: Vec<Checkpoint>,
    channel: Box<dyn LossModel + Send>,
    proto_rng: StdRng,
    oracle: Oracle,
    transport: TransportMode,
    filter: ClassFilter,
    adjust_mode: AdjustMode,
    seeds: Vec<NodeId>,

    carried_label: Vec<Option<Label>>,
    /// (destination, reporting checkpoint, subtree total, seq) per vehicle.
    carried_reports: Vec<Vec<(NodeId, NodeId, i64, u32)>>,
    watches: HashMap<EdgeId, Watch>,
    /// Reports waiting at a node for a carrier onto a specific edge.
    pending_reports: Vec<Vec<(EdgeId, NodeId, i64, u32)>>,
    /// Circuitous messages waiting for a patrol car (Alg. 4 mode).
    pending_patrol: Vec<Vec<RelayMsg>>,
    relay: Vec<RelayInFlight>,
    patrol_status: HashMap<VehicleId, PatrolStatus>,
    patrol_carried: HashMap<VehicleId, Vec<RelayMsg>>,

    naive: NaiveIntervalCounter,
    dedup: ClassDedupCounter,
    events_scratch: Vec<TrafficEvent>,
    /// Scratch: same-step `(edge, event index, vehicle)` departures
    /// (rebuilt per step; flat — event counts per step are small).
    departures_scratch: Vec<(EdgeId, usize, VehicleId)>,
    /// Scratch: same-step `(edge, event index, vehicle)` entries.
    entries_scratch: Vec<(EdgeId, usize, VehicleId)>,
    /// Scratch: carried reports due at the node being processed.
    due_reports_scratch: Vec<(NodeId, NodeId, i64, u32)>,
    /// Scratch: patrol-carried messages due at the node being processed.
    due_patrol_scratch: Vec<RelayMsg>,

    /// The run's RNG seed, stamped on every emitted event record.
    seed_epoch: u64,
    /// Always-on telemetry aggregation (counters + phase timings).
    counters: CountersSink,
    /// Always-on last-N ring for post-mortem attribution chains.
    ring: RingBufferSink,
    /// User-configured sinks (JSONL export, custom consumers).
    sinks: Vec<Box<dyn EventSink + Send>>,
    /// Messages delivered through the directional relay.
    relay_messages: u64,
    /// Scratch buffer for draining checkpoint events.
    event_drain: Vec<(f64, ProtocolEvent)>,
}

/// Chained-setter construction of a [`Runner`]: scenario first, then
/// observability sinks and protocol overrides, then [`RunnerBuilder::build`]
/// (or [`RunnerBuilder::run`] to execute in one go).
///
/// ```no_run
/// use vcount_sim::{Goal, Runner, Scenario};
/// use vcount_roadnet::builders::ManhattanConfig;
///
/// let scenario = Scenario::paper_closed(ManhattanConfig::small(), 60.0, 2, 7);
/// let metrics = Runner::builder(&scenario)
///     .compensate_loss(true)
///     .goal(Goal::Collection)
///     .run();
/// assert_eq!(metrics.oracle_violations, 0);
/// ```
pub struct RunnerBuilder {
    scenario: Scenario,
    sinks: Vec<Box<dyn EventSink + Send>>,
    ring_capacity: usize,
    goal: Goal,
}

impl RunnerBuilder {
    /// Starts from a scenario (cloned; the builder owns its copy).
    pub fn new(scenario: &Scenario) -> Self {
        RunnerBuilder {
            scenario: scenario.clone(),
            sinks: Vec::new(),
            ring_capacity: DEFAULT_RING_CAPACITY,
            goal: Goal::Collection,
        }
    }

    /// Adds an event sink; every stamped protocol event is fanned into each
    /// configured sink in emission order.
    pub fn sink(mut self, sink: Box<dyn EventSink + Send>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Capacity of the always-on post-mortem ring buffer.
    pub fn ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity;
        self
    }

    /// Overrides the scenario's collection transport.
    pub fn transport(mut self, transport: TransportMode) -> Self {
        self.scenario.transport = transport;
        self
    }

    /// Overrides the scenario's overtake adjustment mode (ablations).
    pub fn adjust_mode(mut self, mode: AdjustMode) -> Self {
        self.scenario.protocol.adjust_mode = mode;
        self
    }

    /// Overrides the scenario's lossy-handoff compensation (Alg. 3 line 3).
    pub fn compensate_loss(mut self, on: bool) -> Self {
        self.scenario.protocol.compensate_loss = on;
        self
    }

    /// The goal [`RunnerBuilder::run`] drives toward (default:
    /// [`Goal::Collection`]).
    pub fn goal(mut self, goal: Goal) -> Self {
        self.goal = goal;
        self
    }

    /// Wires the deployment: map, traffic, checkpoints, patrol cars, sinks,
    /// seed activation at t = 0.
    pub fn build(self) -> Runner {
        Runner::assemble(&self.scenario, self.sinks, self.ring_capacity)
    }

    /// Builds and runs to the configured goal within the scenario's time
    /// budget, returning the metrics.
    pub fn run(self) -> RunMetrics {
        let goal = self.goal;
        let max = self.scenario.max_time_s;
        self.build().run(goal, max)
    }
}

impl Runner {
    /// Starts building a deployment from `scenario`.
    pub fn builder(scenario: &Scenario) -> RunnerBuilder {
        RunnerBuilder::new(scenario)
    }

    fn assemble(
        scenario: &Scenario,
        sinks: Vec<Box<dyn EventSink + Send>>,
        ring_capacity: usize,
    ) -> Self {
        let net = scenario.map.build(scenario.closed);
        net.validate().expect("scenario map must be valid");
        let mut sim = Simulator::new(net, scenario.sim.clone(), scenario.demand.clone());
        let n = sim.net().node_count();
        let cps: Vec<Checkpoint> = sim
            .net()
            .node_ids()
            .map(|node| Checkpoint::new(sim.net(), node, scenario.protocol))
            .collect();
        // Protocol-side randomness (seed selection, channel draws) is
        // decoupled from traffic randomness but derived from the same seed
        // for whole-run reproducibility.
        let mut proto_rng =
            StdRng::seed_from_u64(scenario.sim.seed.wrapping_mul(0x9E37_79B9).wrapping_add(7));

        if scenario.patrol.cars > 0 {
            let cycle = edge_covering_cycle(sim.net(), NodeId(0))
                .expect("validated map admits an edge-covering patrol cycle");
            for off in cycle.even_offsets(scenario.patrol.cars) {
                sim.add_patrol_car(cycle.edges.clone(), off);
            }
        }

        let seeds: Vec<NodeId> = match &scenario.seeds {
            SeedSpec::Explicit(list) => list.iter().map(|i| NodeId(*i)).collect(),
            SeedSpec::AllBorder => {
                let border = sim.net().border_nodes();
                if border.is_empty() {
                    vec![NodeId(proto_rng.gen_range(0..n as u32))]
                } else {
                    border
                }
            }
            SeedSpec::Random { count } => {
                let mut ids: Vec<u32> = (0..n as u32).collect();
                for i in (1..ids.len()).rev() {
                    let j = proto_rng.gen_range(0..=i);
                    ids.swap(i, j);
                }
                ids.truncate((*count).max(1).min(n));
                ids.into_iter().map(NodeId).collect()
            }
        };

        let vehicles = sim.vehicles().len();
        let mut runner = Runner {
            sim,
            cps,
            channel: scenario.channel.build(),
            proto_rng,
            oracle: Oracle::new(),
            transport: scenario.transport,
            filter: scenario.protocol.filter,
            adjust_mode: scenario.protocol.adjust_mode,
            seeds: seeds.clone(),
            carried_label: vec![None; vehicles],
            carried_reports: vec![Vec::new(); vehicles],
            watches: HashMap::new(),
            pending_reports: vec![Vec::new(); n],
            pending_patrol: vec![Vec::new(); n],
            relay: Vec::new(),
            patrol_status: HashMap::new(),
            patrol_carried: HashMap::new(),
            naive: NaiveIntervalCounter::new(scenario.protocol.filter),
            dedup: ClassDedupCounter::new(scenario.protocol.filter),
            events_scratch: Vec::new(),
            departures_scratch: Vec::new(),
            entries_scratch: Vec::new(),
            due_reports_scratch: Vec::new(),
            due_patrol_scratch: Vec::new(),
            seed_epoch: scenario.sim.seed,
            counters: CountersSink::new(),
            ring: RingBufferSink::new(ring_capacity),
            sinks,
            relay_messages: 0,
            event_drain: Vec::new(),
        };
        for s in seeds {
            let cmds = runner.cps[s.index()].activate_as_seed(0.0);
            runner.pump(s);
            runner.dispatch(s, cmds);
        }
        runner
    }

    /// Drains the protocol events a checkpoint buffered, derives the
    /// oracle attributions they imply, and fans the stamped records into
    /// the telemetry, ring, and user sinks.
    fn pump(&mut self, node: NodeId) {
        let mut drained = std::mem::take(&mut self.event_drain);
        self.cps[node.index()].drain_events_into(&mut drained);
        for &(t, event) in &drained {
            // The oracle ledger mirrors exactly what the protocol applied;
            // attribution-bearing events carry the vehicle they concern.
            match event {
                ProtocolEvent::VehicleCounted { vehicle, .. } => {
                    self.oracle.record(VehicleId(vehicle), Attribution::Counted);
                }
                ProtocolEvent::BorderEntry { vehicle, .. } => {
                    self.oracle
                        .record(VehicleId(vehicle), Attribution::InteractionIn);
                }
                ProtocolEvent::BorderExit { vehicle, .. } => {
                    self.oracle
                        .record(VehicleId(vehicle), Attribution::InteractionOut);
                }
                ProtocolEvent::LossCompensation { vehicle, .. } => {
                    self.oracle
                        .record(VehicleId(vehicle), Attribution::LossCompensation);
                }
                _ => {}
            }
            let rec = EventRecord {
                time_s: t,
                seed_epoch: self.seed_epoch,
                event,
            };
            self.counters.record(&rec);
            self.ring.record(&rec);
            for sink in &mut self.sinks {
                sink.record(&rec);
            }
        }
        drained.clear();
        self.event_drain = drained;
    }

    /// The road network under simulation.
    pub fn net(&self) -> &RoadNetwork {
        self.sim.net()
    }

    /// The traffic simulator (read access for examples and tests).
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// A checkpoint's state machine.
    pub fn checkpoint(&self, node: NodeId) -> &Checkpoint {
        &self.cps[node.index()]
    }

    /// The seed checkpoints of this deployment.
    pub fn seeds(&self) -> &[NodeId] {
        &self.seeds
    }

    /// The ground-truth oracle.
    pub fn oracle(&self) -> &Oracle {
        &self.oracle
    }

    /// Simulated time, seconds.
    pub fn time_s(&self) -> f64 {
        self.sim.time_s()
    }

    /// Whether every checkpoint's non-interaction counting stabilized.
    pub fn all_stable(&self) -> bool {
        self.cps.iter().all(Checkpoint::is_stable)
    }

    /// Whether every seed holds its tree total.
    pub fn all_collected(&self) -> bool {
        self.seeds
            .iter()
            .all(|s| self.cps[s.index()].tree_total().is_some())
    }

    /// The distributed sum of all local counts plus (for open systems) the
    /// live interaction net — the protocol's region-wide vehicle count.
    pub fn distributed_count(&self) -> i64 {
        self.cps
            .iter()
            .map(|c| c.local_count() + c.interaction_net())
            .sum()
    }

    /// The count as collected at the seeds (available once
    /// [`Runner::all_collected`]), plus the live interaction net.
    pub fn collected_count(&self) -> Option<i64> {
        let tree: Option<i64> = self
            .seeds
            .iter()
            .map(|s| self.cps[s.index()].tree_total())
            .sum();
        tree.map(|t| {
            t + self
                .cps
                .iter()
                .map(Checkpoint::interaction_net)
                .sum::<i64>()
        })
    }

    /// Ground truth: matching civilian vehicles currently inside.
    pub fn true_population(&self) -> usize {
        let filter = self.filter;
        self.sim.civilian_population_where(|c| filter.matches(c))
    }

    /// Runs per-vehicle verification (see [`Oracle::verify`]).
    pub fn verify(&self) -> Vec<crate::oracle::Violation> {
        let filter = self.filter;
        let pop: Vec<(VehicleId, bool)> = self
            .sim
            .vehicles()
            .iter()
            .filter(|v| !v.is_patrol() && filter.matches(&v.class))
            .map(|v| (v.id, v.is_inside()))
            .collect();
        self.oracle.verify(pop)
    }

    /// Advances one simulation step, driving the protocol from the event
    /// stream.
    pub fn step(&mut self) {
        let t_traffic = Instant::now();
        self.events_scratch.clear();
        self.events_scratch.extend(self.sim.step().iter().copied());
        self.counters
            .add_phase(Phase::TrafficStep, t_traffic.elapsed());
        let t_protocol = Instant::now();
        let events = std::mem::take(&mut self.events_scratch);
        // Events are timestamped at the end of the step they occurred in.
        let now = self.sim.time_s();

        self.ensure_vehicle_capacity();

        // Pre-scan same-step departures/entries per edge (watch 'ahead'
        // reconstruction; see module docs). Flat reused buffers: a step
        // carries few events, so a linear filter beats rebuilding a
        // `HashMap` of fresh `Vec`s every step.
        let mut departures_onto = std::mem::take(&mut self.departures_scratch);
        let mut entries_via = std::mem::take(&mut self.entries_scratch);
        departures_onto.clear();
        entries_via.clear();
        for (i, ev) in events.iter().enumerate() {
            match *ev {
                TrafficEvent::Departed { vehicle, onto, .. } => {
                    departures_onto.push((onto, i, vehicle));
                }
                TrafficEvent::Entered {
                    vehicle,
                    from: Some(e),
                    ..
                } => {
                    entries_via.push((e, i, vehicle));
                }
                _ => {}
            }
        }

        for (i, ev) in events.iter().enumerate() {
            match *ev {
                TrafficEvent::Entered {
                    vehicle,
                    node,
                    from,
                } => self.on_entered(now, vehicle, node, from),
                TrafficEvent::Departed {
                    vehicle,
                    node,
                    onto,
                } => self.on_departed(now, i, vehicle, node, onto, &departures_onto, &entries_via),
                TrafficEvent::Exited { vehicle, node } => self.on_exited(now, vehicle, node),
                TrafficEvent::Overtake {
                    edge,
                    overtaker,
                    overtaken,
                } => self.on_overtake(edge, overtaker, overtaken),
            }
        }
        self.events_scratch = events;
        self.departures_scratch = departures_onto;
        self.entries_scratch = entries_via;
        self.counters
            .add_phase(Phase::Protocol, t_protocol.elapsed());
        let t_relay = Instant::now();
        self.deliver_due_relays(now);
        self.counters.add_phase(Phase::Relay, t_relay.elapsed());
    }

    fn ensure_vehicle_capacity(&mut self) {
        let n = self.sim.vehicles().len();
        if self.carried_label.len() < n {
            self.carried_label.resize(n, None);
            self.carried_reports.resize(n, Vec::new());
        }
    }

    fn on_entered(&mut self, now: f64, vehicle: VehicleId, node: NodeId, from: Option<EdgeId>) {
        let class = self.sim.vehicle(vehicle).class;
        let is_patrol = class.is_patrol();

        // Deliver carried reports addressed to this node: matching entries
        // move into a reused scratch, the rest compact in place — no
        // per-arrival partition allocation.
        let mut due = std::mem::take(&mut self.due_reports_scratch);
        due.clear();
        {
            let list = &mut self.carried_reports[vehicle.index()];
            let mut kept = 0usize;
            for i in 0..list.len() {
                let item = list[i];
                if item.0 == node {
                    due.push(item);
                } else {
                    list[kept] = item;
                    kept += 1;
                }
            }
            list.truncate(kept);
        }
        for &(_, reporter, total, seq) in &due {
            let cmds = self.cps[node.index()].handle(
                Observation::Report {
                    from: reporter,
                    total,
                    seq,
                },
                now,
            );
            self.pump(node);
            self.dispatch(node, cmds);
        }
        self.due_reports_scratch = due;

        if is_patrol {
            // Deliver circuitous messages addressed here (same in-place
            // split as the carried reports above).
            let mut due = std::mem::take(&mut self.due_patrol_scratch);
            due.clear();
            {
                let list = self.patrol_carried.entry(vehicle).or_default();
                let mut kept = 0usize;
                for i in 0..list.len() {
                    let m = list[i];
                    let here = match m {
                        RelayMsg::Announce { to, .. } | RelayMsg::Report { to, .. } => to == node,
                    };
                    if here {
                        due.push(m);
                    } else {
                        list[kept] = m;
                        kept += 1;
                    }
                }
                list.truncate(kept);
            }
            for &m in &due {
                self.deliver_relay(now, m);
            }
            self.due_patrol_scratch = due;
            // Pick up circuitous messages waiting here.
            let picked = std::mem::take(&mut self.pending_patrol[node.index()]);
            self.patrol_carried
                .entry(vehicle)
                .or_default()
                .extend(picked);
            // Status snapshot exchange (stale-stop ablation; a no-op for
            // the default configuration).
            let status = self.patrol_status.entry(vehicle).or_default().clone();
            let cmds =
                self.cps[node.index()].handle(Observation::PatrolStatus { vehicle, status }, now);
            self.pump(node);
            self.dispatch(node, cmds);
        }

        // Segment-watch bookkeeping on the arrival edge.
        if let Some(e) = from {
            let finalize = match self.watches.get_mut(&e) {
                Some(w) if w.sw.label_vehicle() == vehicle => true,
                Some(w) => {
                    if !is_patrol {
                        let counted = self.oracle.ever_counted(vehicle);
                        w.sw.record_arrival(vehicle, counted);
                    }
                    false
                }
                None => false,
            };
            if finalize {
                let w = self.watches.remove(&e).expect("checked above");
                self.finalize_watch(w);
            }
        }

        // Label delivery + phase 3/4/5 processing; the oracle attribution
        // (counted / interaction-in) is derived from the emitted events.
        let label = self.carried_label[vehicle.index()].take();
        let cmds = self.cps[node.index()].handle(
            Observation::Entered {
                vehicle,
                via: from,
                class,
                label,
            },
            now,
        );
        self.pump(node);
        self.dispatch(node, cmds);

        // Patrol observation recorded after processing: the status carried
        // onward reflects this checkpoint's state as the patrol leaves it.
        if is_patrol {
            let active = self.cps[node.index()].is_active();
            self.patrol_status
                .entry(vehicle)
                .or_default()
                .observe(node, active);
        }

        // Unsynchronized baselines observe the same surveillance stream.
        self.naive.observe(&class);
        self.dedup.observe(&class);
    }

    #[allow(clippy::too_many_arguments)]
    fn on_departed(
        &mut self,
        now: f64,
        event_idx: usize,
        vehicle: VehicleId,
        node: NodeId,
        onto: EdgeId,
        departures_onto: &[(EdgeId, usize, VehicleId)],
        entries_via: &[(EdgeId, usize, VehicleId)],
    ) {
        let class = self.sim.vehicle(vehicle).class;
        let is_patrol = class.is_patrol();

        // Hand pending reports that ride this edge to the vehicle —
        // moved directly into its carried list, the rest compacted in
        // place (the two lists are disjoint fields, so no intermediate
        // buffer is needed).
        if !self.pending_reports[node.index()].is_empty() {
            let pending = &mut self.pending_reports[node.index()];
            let carried = &mut self.carried_reports[vehicle.index()];
            let mut kept = 0usize;
            for i in 0..pending.len() {
                let (e, dest, total, seq) = pending[i];
                if e == onto {
                    carried.push((dest, node, total, seq));
                } else {
                    pending[kept] = pending[i];
                    kept += 1;
                }
            }
            pending.truncate(kept);
        }

        // Phase 2: label handoff.
        if let Some(label) = self.cps[node.index()].offer_label(onto) {
            let delivered = is_patrol || {
                // Police equipment is reliable; civilian handoffs go
                // through the lossy channel with ack confirmation.
                self.channel.attempt(&mut self.proto_rng).delivered()
            };
            // On failure the checkpoint emits the compensation event (when
            // configured), and pump() mirrors it into the oracle — so the
            // compensation-disabled ablation shows up as violations.
            let cmds = self.cps[node.index()].handle(
                Observation::Departed {
                    vehicle,
                    onto,
                    delivered,
                    matches_filter: self.filter.matches(&class),
                },
                now,
            );
            self.pump(node);
            self.dispatch(node, cmds);
            if delivered {
                self.carried_label[vehicle.index()] = Some(label);
                let ahead = self.ahead_of(event_idx, vehicle, onto, departures_onto, entries_via);
                let sw = SegmentWatch::new(self.adjust_mode, vehicle, ahead);
                self.watches.insert(onto, Watch { origin: node, sw });
            }
        }
    }

    /// Vehicles ahead of a label departing onto `onto` at event `idx`, with
    /// their counted status (see module docs for the reconstruction).
    fn ahead_of(
        &self,
        idx: usize,
        label_vehicle: VehicleId,
        onto: EdgeId,
        departures_onto: &[(EdgeId, usize, VehicleId)],
        entries_via: &[(EdgeId, usize, VehicleId)],
    ) -> Vec<(VehicleId, bool)> {
        let later_departure = |v: VehicleId| {
            departures_onto
                .iter()
                .any(|&(e, i, d)| e == onto && i > idx && d == v)
        };
        let later_entries = entries_via
            .iter()
            .filter(|&&(e, i, _)| e == onto && i > idx)
            .map(|&(_, _, v)| v);

        let mut ahead: Vec<VehicleId> = later_entries.collect();
        ahead.extend(self.sim.in_transit(onto));
        ahead.retain(|v| {
            *v != label_vehicle && !later_departure(*v) && !self.sim.vehicle(*v).is_patrol()
        });
        ahead.dedup();
        ahead
            .into_iter()
            .map(|v| (v, self.oracle.ever_counted(v)))
            .collect()
    }

    fn finalize_watch(&mut self, w: Watch) {
        let adj = w.sw.finalize();
        let mut plus = 0usize;
        let mut minus = 0usize;
        for v in &adj.plus {
            if self.vehicle_matches(*v) {
                self.oracle.record(*v, Attribution::AdjustPlus);
                plus += 1;
            }
        }
        for v in &adj.minus {
            if self.vehicle_matches(*v) {
                self.oracle.record(*v, Attribution::AdjustMinus);
                minus += 1;
            }
        }
        if plus > 0 || minus > 0 {
            let now = self.sim.time_s();
            let cmds = self.cps[w.origin.index()].handle(Observation::Adjust { plus, minus }, now);
            self.pump(w.origin);
            self.dispatch(w.origin, cmds);
        }
    }

    fn vehicle_matches(&self, v: VehicleId) -> bool {
        let veh = self.sim.vehicle(v);
        !veh.is_patrol() && self.filter.matches(&veh.class)
    }

    fn on_exited(&mut self, now: f64, vehicle: VehicleId, node: NodeId) {
        let class = self.sim.vehicle(vehicle).class;
        debug_assert!(
            self.carried_reports[vehicle.index()].is_empty(),
            "reports are always delivered at the node before an exit"
        );
        // A counted exit emits a BorderExit event; pump() mirrors it into
        // the oracle as an interaction-out attribution.
        self.cps[node.index()].handle(Observation::BorderExit { vehicle, class }, now);
        self.pump(node);
    }

    fn on_overtake(&mut self, edge: EdgeId, overtaker: VehicleId, overtaken: VehicleId) {
        // Only meaningful for the per-event adjustment ablation.
        if self.adjust_mode != AdjustMode::PerEvent {
            return;
        }
        let counted_overtaken = self.oracle.ever_counted(overtaken);
        let counted_overtaker = self.oracle.ever_counted(overtaker);
        let matches_overtaken = self.vehicle_matches(overtaken);
        let matches_overtaker = self.vehicle_matches(overtaker);
        if let Some(w) = self.watches.get_mut(&edge) {
            let label = w.sw.label_vehicle();
            if overtaker == label && matches_overtaken {
                w.sw.label_overtakes(overtaken, counted_overtaken);
            } else if overtaken == label && matches_overtaker {
                w.sw.label_overtaken_by(overtaker, counted_overtaker);
            }
        }
    }

    fn dispatch(&mut self, from: NodeId, cmds: Vec<Command>) {
        for cmd in cmds {
            match cmd {
                Command::SendPredAnnounce { to, pred } => match self.transport {
                    TransportMode::VehicleWithRelayFallback { relay_speed_mps }
                    | TransportMode::RelayOnly { relay_speed_mps } => {
                        self.queue_relay(
                            from,
                            relay_speed_mps,
                            RelayMsg::Announce { to, from, pred },
                        );
                    }
                    TransportMode::VehicleWithPatrolFallback => {
                        self.pending_patrol[from.index()].push(RelayMsg::Announce {
                            to,
                            from,
                            pred,
                        });
                    }
                },
                Command::SendReport { to, total, seq } => {
                    let edge = self.sim.net().edge_between(from, to);
                    match (edge, self.transport) {
                        (Some(e), TransportMode::VehicleWithRelayFallback { .. })
                        | (Some(e), TransportMode::VehicleWithPatrolFallback) => {
                            self.pending_reports[from.index()].push((e, to, total, seq));
                        }
                        (_, TransportMode::RelayOnly { relay_speed_mps })
                        | (None, TransportMode::VehicleWithRelayFallback { relay_speed_mps }) => {
                            self.queue_relay(
                                from,
                                relay_speed_mps,
                                RelayMsg::Report {
                                    to,
                                    from,
                                    total,
                                    seq,
                                },
                            );
                        }
                        (None, TransportMode::VehicleWithPatrolFallback) => {
                            self.pending_patrol[from.index()].push(RelayMsg::Report {
                                to,
                                from,
                                total,
                                seq,
                            });
                        }
                    }
                }
            }
        }
    }

    fn queue_relay(&mut self, from: NodeId, relay_speed_mps: f64, msg: RelayMsg) {
        let to = match msg {
            RelayMsg::Announce { to, .. } | RelayMsg::Report { to, .. } => to,
        };
        let dist = self
            .sim
            .net()
            .node(from)
            .pos
            .distance(&self.sim.net().node(to).pos);
        let due = self.sim.time_s() + dist / relay_speed_mps.max(1.0) + 1.0;
        self.relay.push(RelayInFlight { due_s: due, msg });
    }

    fn deliver_due_relays(&mut self, now: f64) {
        let mut i = 0;
        while i < self.relay.len() {
            if self.relay[i].due_s <= now {
                let RelayInFlight { msg, .. } = self.relay.swap_remove(i);
                self.relay_messages += 1;
                self.deliver_relay(now, msg);
            } else {
                i += 1;
            }
        }
    }

    fn deliver_relay(&mut self, now: f64, msg: RelayMsg) {
        let (to, obs) = match msg {
            RelayMsg::Announce { to, from, pred } => (to, Observation::Announce { from, pred }),
            RelayMsg::Report {
                to,
                from,
                total,
                seq,
            } => (to, Observation::Report { from, total, seq }),
        };
        let cmds = self.cps[to.index()].handle(obs, now);
        self.pump(to);
        self.dispatch(to, cmds);
    }

    /// Whether any report message is still in transit (on a vehicle,
    /// waiting at a node, in the relay, or on a patrol car). Collection is
    /// final only when the last re-report has landed.
    pub fn reports_in_flight(&self) -> bool {
        self.pending_reports.iter().any(|v| !v.is_empty())
            || self.carried_reports.iter().any(|v| !v.is_empty())
            || self
                .relay
                .iter()
                .any(|r| matches!(r.msg, RelayMsg::Report { .. }))
            || self
                .pending_patrol
                .iter()
                .any(|v| v.iter().any(|m| matches!(m, RelayMsg::Report { .. })))
            || self
                .patrol_carried
                .values()
                .any(|v| v.iter().any(|m| matches!(m, RelayMsg::Report { .. })))
    }

    /// Runs until `goal` is reached or `max_time_s` elapses, then evaluates
    /// ground truth and returns the metrics.
    ///
    /// Collection is declared done when every seed holds a tree total *and*
    /// no report is in flight *and* the constitution has completed — after
    /// that point no further label handoff can fail and no watch is open,
    /// so no re-report can change the collected value.
    pub fn run(&mut self, goal: Goal, max_time_s: f64) -> RunMetrics {
        let mut constitution_done: Option<f64> = None;
        let mut collection_done: Option<f64> = None;
        while self.sim.time_s() < max_time_s {
            self.step();
            if constitution_done.is_none() && self.all_stable() {
                constitution_done = Some(self.sim.time_s());
                if goal == Goal::Constitution {
                    break;
                }
            }
            if goal == Goal::Collection
                && constitution_done.is_some()
                && collection_done.is_none()
                && self.all_collected()
                && !self.reports_in_flight()
            {
                collection_done = Some(self.sim.time_s());
                break;
            }
        }
        self.flush_sinks();
        self.metrics(constitution_done, collection_done)
    }

    /// Flushes every configured event sink (called automatically at the end
    /// of [`Runner::run`]; externally driven loops should call it once
    /// done stepping).
    pub fn flush_sinks(&mut self) {
        for sink in &mut self.sinks {
            sink.flush();
        }
    }

    /// The run's telemetry so far: aggregated event counters, relay
    /// message count, and wall-clock phase attribution.
    pub fn telemetry(&self) -> RunTelemetry {
        let mut t = RunTelemetry::from_counters(self.counters.counters());
        t.relay_messages = self.relay_messages;
        t.traffic_step_secs = self.counters.phase_secs(Phase::TrafficStep);
        t.protocol_secs = self.counters.phase_secs(Phase::Protocol);
        t.relay_secs = self.counters.phase_secs(Phase::Relay);
        t
    }

    /// The retained post-mortem events mentioning `vehicle`, oldest first —
    /// its attribution chain as far as the ring buffer remembers.
    pub fn violation_trace(&self, vehicle: VehicleId) -> Vec<EventRecord> {
        self.ring.for_vehicle(vehicle.0)
    }

    fn metrics(&self, constitution_done: Option<f64>, collection_done: Option<f64>) -> RunMetrics {
        let violations = self.verify();
        if let Some(v) = violations.first() {
            // Post-mortem: dump the offending vehicle's attribution chain
            // from the always-on ring buffer.
            eprintln!(
                "oracle violation: {} net {} expected {} ({} violation(s) total); \
                 ring-buffer attribution chain:",
                v.vehicle,
                v.net,
                v.expected,
                violations.len()
            );
            let chain = self.ring.for_vehicle(v.vehicle.0);
            if chain.is_empty() {
                eprintln!("  (no retained events — raise the ring capacity)");
            }
            for rec in chain {
                eprintln!("  {}", rec.to_json());
            }
        }
        let global_count = if self.all_collected() {
            self.collected_count()
        } else if self.all_stable() {
            Some(self.distributed_count())
        } else {
            None
        };
        RunMetrics {
            constitution_done_s: constitution_done,
            collection_done_s: collection_done,
            checkpoint_stable_s: self.cps.iter().filter_map(Checkpoint::stable_at).collect(),
            checkpoint_activated_s: self
                .cps
                .iter()
                .filter_map(Checkpoint::activated_at)
                .collect(),
            global_count,
            true_population: self.true_population(),
            oracle_violations: violations.len(),
            handoff_failures: self.counters.counters().handoff_retries,
            overtake_adjustments: self.cps.iter().map(|c| c.counters().overtake_total()).sum(),
            baseline_naive: self.naive.total(),
            baseline_dedup: self.dedup.total(),
            elapsed_s: self.sim.time_s(),
            steps: self.sim.steps(),
            telemetry: self.telemetry(),
        }
    }

    /// Baseline counters (ablation access).
    pub fn baselines(&self) -> (u64, u64) {
        (self.naive.total(), self.dedup.total())
    }

    /// Metrics derived from the current state, using the checkpoints'
    /// own recorded timestamps (activation/stabilization/collection).
    /// Unlike [`Runner::run`], which timestamps goal completion when its
    /// loop observes it, this can be called at any time — e.g. after an
    /// externally driven stepping loop.
    pub fn metrics_now(&self) -> RunMetrics {
        let constitution = self.all_stable().then(|| {
            self.cps
                .iter()
                .filter_map(Checkpoint::stable_at)
                .fold(0.0f64, f64::max)
        });
        let collection = (self.all_collected() && !self.reports_in_flight()).then(|| {
            self.seeds
                .iter()
                .filter_map(|s| self.cps[s.index()].collected_at())
                .fold(0.0f64, f64::max)
        });
        self.metrics(constitution, collection)
    }

    /// A point-in-time progress view of the deployment.
    pub fn progress(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            time_s: self.sim.time_s(),
            active: self.cps.iter().filter(|c| c.is_active()).count(),
            stable: self.cps.iter().filter(|c| c.is_stable()).count(),
            collected_seeds: self
                .seeds
                .iter()
                .filter(|s| self.cps[s.index()].tree_total().is_some())
                .count(),
            checkpoints: self.cps.len(),
            distributed_count: self.distributed_count(),
            population: self.true_population(),
        }
    }
}
