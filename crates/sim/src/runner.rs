//! The run orchestrator: wires an observation source (by default the
//! traffic microsimulator), the lossy V2X channel, and one checkpoint
//! state machine per intersection into a full deployment, tracks ground
//! truth in the [`Oracle`], and measures the times the paper's figures
//! report.
//!
//! The per-step work is decomposed into the five named stages of
//! [`crate::engine`] — source, `observe`, `dispatch`, `exchange`, `audit`
//! — with every in-flight message owned by the
//! [`crate::engine::Exchange`]. The first stage lives behind the
//! [`ObservationSource`] trait: [`Runner::step`] pulls the next
//! [`ObservationBatch`] from the configured source, while an externally
//! fed deployment (see [`crate::service`]) pushes batches straight into
//! [`Runner::ingest`]. The runner itself only assembles the deployment,
//! sequences the stages, and exposes metrics; it holds no message state.
//! A run can be frozen at any step boundary into an [`EngineSnapshot`]
//! and resumed to a byte-identical event stream.
//!
//! ## Intra-step ordering
//!
//! The simulator emits its step's events in deterministic order. A label
//! handoff at a `Departed` event needs the set of vehicles *ahead* of the
//! label on the joined segment at that instant; the observe stage
//! reconstructs it from the end-of-step `in_transit` snapshot by adding
//! vehicles whose same-step `Entered` (via that edge) events come later —
//! they were still on the segment at the departure instant — and removing
//! vehicles whose same-step `Departed` (onto that edge) events come later —
//! they joined behind the label.

use crate::engine::{self, AuditLog, EngineSnapshot, Exchange, StepCtx};
use crate::faults::{FaultLayer, FaultPlan};
use crate::metrics::{ProgressSnapshot, RunMetrics, RunTelemetry};
use crate::oracle::Oracle;
use crate::replay::{ActionRecorder, ActionTrace, TRACE_SCHEMA};
use crate::scenario::{Scenario, SeedSpec, TransportMode};
use crate::source::{
    BatchIndex, ClassTable, ExternalSource, ObservationBatch, ObservationSource, SimulatorSource,
    TruthSnapshot,
};
use rand::{Rng, SeedableRng};
use std::time::Instant;
use vcount_core::Checkpoint;
use vcount_core::{ActionKind, ClassDedupCounter, Command, NaiveIntervalCounter};
use vcount_obs::{EventRecord, EventSink, Phase};
use vcount_roadnet::{NodeId, RoadNetwork};
use vcount_traffic::{ReplayRng, SimSnapshot, Simulator};
use vcount_v2x::{AdjustMode, ClassFilter, LossModel, VehicleId};

/// Ring-buffer capacity of the always-on post-mortem sink.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// What a run is trying to reach.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Goal {
    /// Every checkpoint's non-interaction counting stabilized
    /// (Fig. 2 constitution; Fig. 4 "complete status" when open).
    Constitution,
    /// Additionally, every seed holds its tree's global view
    /// (Fig. 3 / Fig. 5 collection).
    Collection,
}

/// A fully wired deployment under simulation.
pub struct Runner {
    /// The scenario this deployment was assembled from (kept so snapshots
    /// are self-contained).
    scenario: Scenario,
    /// The road graph the deployment runs on (the source builds its own
    /// copy from the same scenario — both are deterministic products of
    /// the map spec).
    net: RoadNetwork,
    /// Where observation batches come from: the in-process simulator by
    /// default, or an [`ExternalSource`] when batches are pushed in.
    source: Box<dyn ObservationSource>,
    /// Camera-visible class of every vehicle announced by a batch so far.
    classes: ClassTable,
    /// Simulated time at the end of the last ingested batch, seconds.
    now: f64,
    /// Step counter of the last ingested batch.
    steps: u64,
    cps: Vec<Checkpoint>,
    channel: Box<dyn LossModel + Send>,
    proto_rng: ReplayRng,
    oracle: Oracle,
    transport: TransportMode,
    filter: ClassFilter,
    adjust_mode: AdjustMode,
    seeds: Vec<NodeId>,
    /// The message layer: every in-flight payload lives here.
    exchange: Exchange,
    naive: NaiveIntervalCounter,
    dedup: ClassDedupCounter,
    /// Reused per-step observation batch (pull path only).
    batch: ObservationBatch,
    /// Reused per-batch event indices, rebuilt on every ingest.
    index: BatchIndex,
    /// Event stamping, telemetry and sink fan-out.
    audit: AuditLog,
    /// Deterministic fault injection (inactive unless a plan is loaded).
    faults: FaultLayer,
    /// Action-trace recorder (inert unless requested at build time).
    recorder: ActionRecorder,
    /// Reused command scratch for [`engine::apply_action`].
    cmd_scratch: Vec<Command>,
    /// Engine shard (worker) count. Drives the traffic detection fan-out
    /// and the exchange's region partition; the event stream is
    /// byte-identical for every value (see DESIGN.md §8bis).
    shards: usize,
}

/// Chained-setter construction of a [`Runner`]: scenario first, then
/// observability sinks and protocol overrides, then [`RunnerBuilder::build`]
/// (or [`RunnerBuilder::run`] to execute in one go).
///
/// ```no_run
/// use vcount_sim::{Goal, Runner, Scenario};
/// use vcount_roadnet::builders::ManhattanConfig;
///
/// let scenario = Scenario::paper_closed(ManhattanConfig::small(), 60.0, 2, 7);
/// let metrics = Runner::builder(&scenario)
///     .compensate_loss(true)
///     .goal(Goal::Collection)
///     .run();
/// assert_eq!(metrics.oracle_violations, 0);
/// ```
pub struct RunnerBuilder {
    scenario: Scenario,
    sinks: Vec<Box<dyn EventSink + Send>>,
    ring_capacity: usize,
    goal: Goal,
    faults: Option<FaultPlan>,
    record: bool,
    shards: usize,
    eager_decode: bool,
    external: bool,
}

impl RunnerBuilder {
    /// Starts from a scenario (cloned; the builder owns its copy).
    pub fn new(scenario: &Scenario) -> Self {
        RunnerBuilder {
            scenario: scenario.clone(),
            sinks: Vec::new(),
            ring_capacity: DEFAULT_RING_CAPACITY,
            goal: Goal::Collection,
            faults: None,
            record: false,
            shards: 1,
            eager_decode: false,
            external: false,
        }
    }

    /// Builds the runner around an [`ExternalSource`] instead of the
    /// in-process simulator: [`Runner::step`] will not advance on its own,
    /// and observation batches must be pushed via [`Runner::ingest`] —
    /// the `vcountd` service shape. The source is a deployment knob,
    /// never a semantics knob: fed the batches a [`SimulatorSource`] for
    /// the same scenario produces, the event stream is byte-identical to
    /// the in-process run.
    pub fn external(mut self, on: bool) -> Self {
        self.external = on;
        self
    }

    /// Forces every discarded delivery to be parsed anyway, disabling the
    /// exchange's lazy decode. A decode-strategy knob, never a semantics
    /// knob: the event stream is byte-identical either way (pinned by
    /// `tests/lazy_decode_identity.rs`); only the `messages_decoded` /
    /// `messages_skipped_decode` telemetry split and the work done change.
    pub fn eager_decode(mut self, on: bool) -> Self {
        self.eager_decode = on;
        self
    }

    /// Number of engine shards (worker threads). The road graph is split
    /// into that many contiguous regions and overtake detection fans out
    /// across them; `1` (the default) runs fully inline. Any value
    /// produces a byte-identical event stream — shards are a throughput
    /// knob, never a semantics knob.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Loads a fault-injection plan (validated against the scenario map at
    /// build time). Fault-free runs of the same scenario are unaffected:
    /// the layer draws from its own RNG stream.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Records the run's full action stream for machine-only replay
    /// (see [`crate::replay`]); retrieve it with
    /// [`Runner::take_action_trace`] once the run is done.
    pub fn record_actions(mut self, on: bool) -> Self {
        self.record = on;
        self
    }

    /// Adds an event sink; every stamped protocol event is fanned into each
    /// configured sink in emission order.
    pub fn sink(mut self, sink: Box<dyn EventSink + Send>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Capacity of the always-on post-mortem ring buffer.
    pub fn ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity;
        self
    }

    /// Overrides the scenario's collection transport.
    pub fn transport(mut self, transport: TransportMode) -> Self {
        self.scenario.transport = transport;
        self
    }

    /// Overrides the scenario's overtake adjustment mode (ablations).
    pub fn adjust_mode(mut self, mode: AdjustMode) -> Self {
        self.scenario.protocol.adjust_mode = mode;
        self
    }

    /// Overrides the scenario's lossy-handoff compensation (Alg. 3 line 3).
    pub fn compensate_loss(mut self, on: bool) -> Self {
        self.scenario.protocol.compensate_loss = on;
        self
    }

    /// The goal [`RunnerBuilder::run`] drives toward (default:
    /// [`Goal::Collection`]).
    pub fn goal(mut self, goal: Goal) -> Self {
        self.goal = goal;
        self
    }

    /// Wires the deployment: map, traffic, checkpoints, patrol cars, sinks,
    /// seed activation at t = 0. Panics on a fault plan that does not fit
    /// the scenario map; use [`RunnerBuilder::try_build`] to handle that
    /// gracefully.
    pub fn build(self) -> Runner {
        self.try_build().expect("fault plan must fit the scenario")
    }

    /// Like [`RunnerBuilder::build`], but reports an invalid fault plan as
    /// an error instead of panicking.
    pub fn try_build(self) -> Result<Runner, String> {
        let mut runner = Runner::assemble(
            &self.scenario,
            self.sinks,
            self.ring_capacity,
            self.faults,
            self.record,
            self.shards,
            self.external,
        )?;
        runner.set_eager_decode(self.eager_decode);
        Ok(runner)
    }

    /// Builds and runs to the configured goal within the scenario's time
    /// budget, returning the metrics.
    pub fn run(self) -> RunMetrics {
        let goal = self.goal;
        let max = self.scenario.max_time_s;
        self.build().run(goal, max)
    }
}

impl Runner {
    /// Starts building a deployment from `scenario`.
    pub fn builder(scenario: &Scenario) -> RunnerBuilder {
        RunnerBuilder::new(scenario)
    }

    fn assemble(
        scenario: &Scenario,
        sinks: Vec<Box<dyn EventSink + Send>>,
        ring_capacity: usize,
        fault_plan: Option<FaultPlan>,
        record: bool,
        shards: usize,
        external: bool,
    ) -> Result<Self, String> {
        let shards = shards.max(1);
        let net = scenario.map.build(scenario.closed);
        net.validate().expect("scenario map must be valid");
        let source: Box<dyn ObservationSource> = if external {
            Box::new(ExternalSource::new())
        } else {
            Box::new(SimulatorSource::from_scenario(scenario, shards))
        };
        let n = net.node_count();
        let cps: Vec<Checkpoint> = net
            .node_ids()
            .map(|node| Checkpoint::new(&net, node, scenario.protocol))
            .collect();
        // Protocol-side randomness (seed selection, channel draws) is
        // decoupled from traffic randomness but derived from the same seed
        // for whole-run reproducibility. Draw-counted so snapshots can
        // resume the exact stream position.
        let mut proto_rng =
            ReplayRng::seed_from_u64(engine::snapshot::proto_seed(scenario.sim.seed));

        let seeds: Vec<NodeId> = match &scenario.seeds {
            SeedSpec::Explicit(list) => list.iter().map(|i| NodeId(*i)).collect(),
            SeedSpec::AllBorder => {
                let border = net.border_nodes();
                if border.is_empty() {
                    vec![NodeId(proto_rng.gen_range(0..n as u32))]
                } else {
                    border
                }
            }
            SeedSpec::Random { count } => {
                let mut ids: Vec<u32> = (0..n as u32).collect();
                for i in (1..ids.len()).rev() {
                    let j = proto_rng.gen_range(0..=i);
                    ids.swap(i, j);
                }
                ids.truncate((*count).max(1).min(n));
                ids.into_iter().map(NodeId).collect()
            }
        };

        let faults = match fault_plan {
            Some(plan) => FaultLayer::from_plan(plan, n)?,
            None => FaultLayer::none(),
        };
        // Vehicle-indexed capacity starts at zero and grows as batches
        // announce the population (capacity is not semantics).
        let mut exchange = Exchange::new(0, n);
        exchange.set_partition(engine::RegionPartition::new(n, shards));
        let mut runner = Runner {
            scenario: scenario.clone(),
            net,
            source,
            classes: ClassTable::new(),
            now: 0.0,
            steps: 0,
            cps,
            channel: scenario.channel.build(),
            proto_rng,
            oracle: Oracle::new(),
            transport: scenario.transport,
            filter: scenario.protocol.filter,
            adjust_mode: scenario.protocol.adjust_mode,
            seeds: seeds.clone(),
            exchange,
            naive: NaiveIntervalCounter::new(scenario.protocol.filter),
            dedup: ClassDedupCounter::new(scenario.protocol.filter),
            batch: ObservationBatch::default(),
            index: BatchIndex::default(),
            audit: AuditLog::new(scenario.sim.seed, ring_capacity, sinks),
            faults,
            recorder: ActionRecorder::new(record),
            cmd_scratch: Vec::new(),
            shards,
        };
        for s in seeds {
            runner.with_ctx(0.0, |ctx| engine::apply_action(ctx, s, ActionKind::Seed));
        }
        Ok(runner)
    }

    /// Resumes a deployment from a snapshot, with no extra sinks and the
    /// default ring capacity. The resumed run replays the event stream the
    /// snapshotted run would have produced, byte for byte.
    pub fn resume(snap: &EngineSnapshot) -> Runner {
        Runner::resume_with(snap, Vec::new(), DEFAULT_RING_CAPACITY)
    }

    /// Resumes a deployment from a snapshot with the given sinks and ring
    /// capacity. The sinks receive only the tail of the run — telemetry
    /// and post-mortem state are not part of the snapshot.
    pub fn resume_with(
        snap: &EngineSnapshot,
        sinks: Vec<Box<dyn EventSink + Send>>,
        ring_capacity: usize,
    ) -> Runner {
        Runner::resume_core(snap, sinks, ring_capacity, false)
    }

    /// Resumes a deployment from a snapshot around an [`ExternalSource`]:
    /// the run continues exactly where it froze, but batches must be
    /// pushed via [`Runner::ingest`] — the service restart path. The
    /// source is pre-seeded with the snapshot's traffic state so the run
    /// can be re-frozen before the feeder's first refresh.
    pub fn resume_external(
        snap: &EngineSnapshot,
        sinks: Vec<Box<dyn EventSink + Send>>,
        ring_capacity: usize,
    ) -> Runner {
        Runner::resume_core(snap, sinks, ring_capacity, true)
    }

    fn resume_core(
        snap: &EngineSnapshot,
        sinks: Vec<Box<dyn EventSink + Send>>,
        ring_capacity: usize,
        external: bool,
    ) -> Runner {
        let scenario = snap.scenario.clone();
        let net = scenario.map.build(scenario.closed);
        net.validate().expect("snapshot scenario map must be valid");
        assert_eq!(
            snap.checkpoints.len(),
            net.node_count(),
            "snapshot checkpoint count must match the scenario map"
        );
        let shards = snap.shards.max(1);
        let source: Box<dyn ObservationSource> = if external {
            Box::new(ExternalSource::with_sim_state(snap.sim.clone()))
        } else {
            Box::new(SimulatorSource::resume_from(&scenario, &snap.sim, shards))
        };
        let mut cps: Vec<Checkpoint> = net
            .node_ids()
            .map(|node| Checkpoint::new(&net, node, scenario.protocol))
            .collect();
        for (cp, state) in cps.iter_mut().zip(&snap.checkpoints) {
            cp.restore_state(state.clone());
        }
        let proto_rng = ReplayRng::resume(
            engine::snapshot::proto_seed(scenario.sim.seed),
            snap.proto_rng_draws,
        );
        let channel = scenario.channel.build();
        channel.restore_state(snap.channel_state);
        let mut exchange = Exchange::restore(&snap.exchange);
        exchange.set_partition(engine::RegionPartition::new(snap.checkpoints.len(), shards));
        Runner {
            transport: scenario.transport,
            filter: scenario.protocol.filter,
            adjust_mode: scenario.protocol.adjust_mode,
            scenario,
            net,
            source,
            classes: ClassTable::from_snapshot(&snap.sim),
            now: snap.sim.time_s,
            steps: snap.sim.steps,
            cps,
            channel,
            proto_rng,
            oracle: Oracle::from_ledger(snap.ledger.clone()),
            seeds: snap.seeds.clone(),
            exchange,
            naive: snap.naive.clone(),
            dedup: snap.dedup.clone(),
            batch: ObservationBatch::default(),
            index: BatchIndex::default(),
            audit: AuditLog::new(snap.scenario.sim.seed, ring_capacity, sinks),
            faults: match (&snap.fault_plan, &snap.faults) {
                (Some(plan), Some(fs)) => FaultLayer::restore(plan.clone(), fs),
                _ => FaultLayer::none(),
            },
            recorder: ActionRecorder::new(false),
            cmd_scratch: Vec::new(),
            shards,
        }
    }

    /// Freezes the deployment at the current step boundary. The snapshot
    /// embeds the scenario, so [`Runner::resume`] needs nothing else.
    ///
    /// On a sharded engine the region-owned state (checkpoints and per-node
    /// exchange queues) is decomposed into per-shard snapshots and
    /// recomposed into the monolithic on-disk form, asserting the
    /// round-trip is exact — a self-check that regional ownership covers
    /// the whole engine state.
    pub fn snapshot(&self) -> EngineSnapshot {
        self.try_snapshot()
            .expect("source must hold traffic state to snapshot")
    }

    /// Like [`Runner::snapshot`], but reports a source without traffic
    /// state (an [`ExternalSource`] the feeder never refreshed) as an
    /// error instead of panicking — the service path.
    pub fn try_snapshot(&self) -> Result<EngineSnapshot, String> {
        let sim = self.source.sim_state().ok_or_else(|| {
            "observation source holds no traffic state; \
             supply one (service: a Snapshot request carries it) before freezing"
                .to_string()
        })?;
        let snap = EngineSnapshot {
            schema: engine::SNAPSHOT_SCHEMA.to_string(),
            scenario: self.scenario.clone(),
            seeds: self.seeds.clone(),
            proto_rng_draws: self.proto_rng.draws(),
            channel_state: self.channel.save_state(),
            sim,
            checkpoints: self.cps.iter().map(Checkpoint::export_state).collect(),
            exchange: self.exchange.snapshot(),
            ledger: self.oracle.ledger().clone(),
            naive: self.naive.clone(),
            dedup: self.dedup.clone(),
            fault_plan: self.faults.plan().cloned(),
            faults: self.faults.snapshot(),
            shards: self.shards,
        };
        if self.shards > 1 {
            let parts = engine::shard::decompose(
                self.exchange.partition(),
                &snap.checkpoints,
                &snap.exchange,
            );
            let (cps, reports, patrol) = engine::shard::compose(parts);
            assert_eq!(cps, snap.checkpoints, "shard composition lost state");
            assert_eq!(reports, snap.exchange.pending_reports);
            assert_eq!(patrol, snap.exchange.pending_patrol);
        }
        Ok(snap)
    }

    /// Hands externally produced ground truth to the observation source
    /// (push-fed runs; a no-op on the in-process simulator, which knows
    /// its own truth). Verification and the reported true population use
    /// whatever the source last supplied.
    pub fn provide_truth(&mut self, truth: TruthSnapshot) {
        self.source.provide_truth(truth);
    }

    /// Hands externally produced traffic state to the observation source
    /// so [`Runner::try_snapshot`] can freeze the run (push-fed runs; a
    /// no-op on the in-process simulator).
    pub fn provide_sim_state(&mut self, snap: SimSnapshot) {
        self.source.provide_sim_state(snap);
    }

    /// The engine's shard (worker) count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Toggles eager decode on the live exchange (see
    /// [`RunnerBuilder::eager_decode`]); also usable on a resumed runner —
    /// the strategy is not part of the snapshot.
    pub fn set_eager_decode(&mut self, on: bool) {
        self.exchange.set_eager_decode(on);
    }

    /// Builds a stage context over this runner's state and runs `f` in it.
    fn with_ctx<R>(&mut self, now: f64, f: impl FnOnce(&mut StepCtx<'_>) -> R) -> R {
        let Runner {
            net,
            classes,
            cps,
            channel,
            proto_rng,
            oracle,
            transport,
            filter,
            adjust_mode,
            exchange,
            naive,
            dedup,
            audit,
            faults,
            recorder,
            cmd_scratch,
            ..
        } = self;
        let mut ctx = StepCtx {
            now,
            net,
            classes,
            cps,
            exchange,
            oracle,
            channel: &**channel,
            proto_rng,
            transport: *transport,
            filter: *filter,
            adjust_mode: *adjust_mode,
            naive,
            dedup,
            audit,
            faults,
            recorder,
            cmd_scratch,
        };
        f(&mut ctx)
    }

    /// The road network under simulation.
    pub fn net(&self) -> &RoadNetwork {
        &self.net
    }

    /// Vehicles announced to the engine so far (the dense-id population
    /// the next batch's class announcements must start at) — what the
    /// service boundary validates wire batches against.
    pub fn announced_vehicles(&self) -> usize {
        self.classes.len()
    }

    /// The traffic simulator (read access for examples and tests).
    /// Panics when the runner is driven by an external observation
    /// source — there is no in-process simulator to read then.
    pub fn simulator(&self) -> &Simulator {
        self.source
            .simulator()
            .expect("runner is driven by an external observation source")
    }

    /// A checkpoint's state machine.
    pub fn checkpoint(&self, node: NodeId) -> &Checkpoint {
        &self.cps[node.index()]
    }

    /// The seed checkpoints of this deployment.
    pub fn seeds(&self) -> &[NodeId] {
        &self.seeds
    }

    /// The ground-truth oracle.
    pub fn oracle(&self) -> &Oracle {
        &self.oracle
    }

    /// Simulated time, seconds (of the last ingested batch).
    pub fn time_s(&self) -> f64 {
        self.now
    }

    /// Whether every checkpoint's non-interaction counting stabilized.
    pub fn all_stable(&self) -> bool {
        self.cps.iter().all(Checkpoint::is_stable)
    }

    /// Whether every seed holds its tree total.
    pub fn all_collected(&self) -> bool {
        self.seeds
            .iter()
            .all(|s| self.cps[s.index()].tree_total().is_some())
    }

    /// The distributed sum of all local counts plus (for open systems) the
    /// live interaction net — the protocol's region-wide vehicle count.
    pub fn distributed_count(&self) -> i64 {
        self.cps
            .iter()
            .map(|c| c.local_count() + c.interaction_net())
            .sum()
    }

    /// The count as collected at the seeds (available once
    /// [`Runner::all_collected`]), plus the live interaction net.
    pub fn collected_count(&self) -> Option<i64> {
        let tree: Option<i64> = self
            .seeds
            .iter()
            .map(|s| self.cps[s.index()].tree_total())
            .sum();
        tree.map(|t| {
            t + self
                .cps
                .iter()
                .map(Checkpoint::interaction_net)
                .sum::<i64>()
        })
    }

    /// Ground truth: matching civilian vehicles currently inside. Zero
    /// when the observation source holds no truth (an [`ExternalSource`]
    /// the feeder never supplied) — see [`Runner::provide_truth`].
    pub fn true_population(&self) -> usize {
        self.source.truth().map(|t| t.population()).unwrap_or(0)
    }

    /// Runs per-vehicle verification (see [`Oracle::verify`]). Empty when
    /// the observation source holds no ground truth — nothing to verify
    /// against; push the feeder's [`TruthSnapshot`] first for a real
    /// verdict.
    pub fn verify(&self) -> Vec<crate::oracle::Violation> {
        match self.source.truth() {
            Some(truth) => self.oracle.verify(truth.vehicles),
            None => Vec::new(),
        }
    }

    /// Advances one step by pulling the next batch from the observation
    /// source and ingesting it. Returns `false` (without ingesting) when
    /// the source cannot advance on its own — an [`ExternalSource`]
    /// waiting for pushed batches.
    pub fn step(&mut self) -> bool {
        let t_traffic = Instant::now();
        let mut batch = std::mem::take(&mut self.batch);
        let advanced = self.source.next_batch(&mut batch);
        self.audit
            .counters
            .add_phase(Phase::TrafficStep, t_traffic.elapsed());
        if advanced {
            self.ingest(&batch);
        }
        self.batch = batch;
        advanced
    }

    /// The step-driven core: consumes one observation batch through the
    /// engine stages — fault transitions, observe (which invokes dispatch
    /// and audit per interaction), then end-of-step exchange delivery.
    /// This is the only way protocol state advances; [`Runner::step`] is
    /// just a pull wrapper around it, and the service pushes batches here
    /// directly.
    pub fn ingest(&mut self, batch: &ObservationBatch) {
        self.classes.learn(&batch.new_classes);
        self.exchange.ensure_vehicle_capacity(self.classes.len());
        // Events are timestamped at the end of the step they occurred in.
        self.now = batch.now;
        self.steps = batch.steps;
        self.index.rebuild(&batch.events);
        let Runner {
            net,
            classes,
            cps,
            channel,
            proto_rng,
            oracle,
            transport,
            filter,
            adjust_mode,
            exchange,
            naive,
            dedup,
            index,
            audit,
            faults,
            recorder,
            cmd_scratch,
            ..
        } = self;
        let mut ctx = StepCtx {
            now: batch.now,
            net,
            classes,
            cps,
            exchange,
            oracle,
            channel: &**channel,
            proto_rng,
            transport: *transport,
            filter: *filter,
            adjust_mode: *adjust_mode,
            naive,
            dedup,
            audit,
            faults,
            recorder,
            cmd_scratch,
        };
        let t_protocol = Instant::now();
        // Fault transitions fire at the step boundary — after the traffic
        // advance, before any observation — where checkpoint event buffers
        // are provably drained.
        crate::faults::fault_step(&mut ctx);
        engine::observe(&mut ctx, batch, index);
        ctx.audit
            .counters
            .add_phase(Phase::Protocol, t_protocol.elapsed());

        let t_relay = Instant::now();
        engine::exchange(&mut ctx);
        ctx.audit
            .counters
            .add_phase(Phase::Relay, t_relay.elapsed());
    }

    /// Whether any report message is still in transit (on a vehicle,
    /// waiting at a node, in the relay, or on a patrol car). Collection is
    /// final only when the last re-report has landed.
    pub fn reports_in_flight(&self) -> bool {
        self.exchange.reports_in_flight()
    }

    /// Runs until `goal` is reached or `max_time_s` elapses, then evaluates
    /// ground truth and returns the metrics.
    ///
    /// Collection is declared done when every seed holds a tree total *and*
    /// no report is in flight *and* the constitution has completed — after
    /// that point no further label handoff can fail and no watch is open,
    /// so no re-report can change the collected value.
    pub fn run(&mut self, goal: Goal, max_time_s: f64) -> RunMetrics {
        let mut constitution_done: Option<f64> = None;
        let mut collection_done: Option<f64> = None;
        while self.now < max_time_s {
            if !self.step() {
                break;
            }
            if constitution_done.is_none() && self.all_stable() {
                constitution_done = Some(self.now);
                if goal == Goal::Constitution {
                    break;
                }
            }
            if goal == Goal::Collection
                && constitution_done.is_some()
                && collection_done.is_none()
                && self.all_collected()
                && !self.reports_in_flight()
            {
                collection_done = Some(self.now);
                break;
            }
        }
        self.flush_sinks();
        self.metrics(constitution_done, collection_done)
    }

    /// Flushes every configured event sink (called automatically at the end
    /// of [`Runner::run`]; externally driven loops should call it once
    /// done stepping).
    pub fn flush_sinks(&mut self) {
        for sink in &mut self.audit.sinks {
            sink.flush();
        }
    }

    /// The run's telemetry so far: aggregated event counters, wire-level
    /// exchange counters, and wall-clock phase attribution.
    pub fn telemetry(&self) -> RunTelemetry {
        let mut t = RunTelemetry::from_counters(self.audit.counters.counters());
        let wire = self.exchange.counters();
        t.relay_messages = wire.relay_messages;
        t.messages_encoded = wire.encoded;
        t.messages_decoded = wire.decoded;
        t.messages_skipped_decode = wire.skipped_decode;
        t.wire_bytes = wire.bytes;
        t.label_overwrites = wire.label_overwrites;
        t.cross_shard_messages = wire.cross_shard;
        let fc = self.faults.counters();
        t.chaos_duplicates = fc.chaos_duplicates;
        t.chaos_delays = fc.chaos_delays;
        t.chaos_reorders = fc.chaos_reorders;
        t.watches_dropped = fc.watches_dropped;
        t.traffic_step_secs = self.audit.counters.phase_secs(Phase::TrafficStep);
        t.protocol_secs = self.audit.counters.phase_secs(Phase::Protocol);
        t.relay_secs = self.audit.counters.phase_secs(Phase::Relay);
        t
    }

    /// The fault layer's injection counters (all zero without a plan).
    pub fn fault_counters(&self) -> crate::faults::FaultCounters {
        self.faults.counters()
    }

    /// Whether injected faults may have cost protocol information (the
    /// explicit degraded status — see [`crate::faults`]).
    pub fn degraded(&self) -> bool {
        self.faults.degraded()
    }

    /// Finishes recording and packages the run's action stream as a
    /// self-contained [`ActionTrace`] (scenario, actions, dispatch digest,
    /// final counts). `None` unless the runner was built with
    /// [`RunnerBuilder::record_actions`]; recording stops once taken.
    pub fn take_action_trace(&mut self) -> Option<ActionTrace> {
        let (records, dispatch_digest) = self.recorder.take()?;
        Some(ActionTrace {
            schema: TRACE_SCHEMA.to_string(),
            scenario: self.scenario.clone(),
            records,
            dispatch_digest,
            final_local_counts: self.cps.iter().map(Checkpoint::local_count).collect(),
            final_interaction_nets: self.cps.iter().map(Checkpoint::interaction_net).collect(),
            final_tree_totals: self.cps.iter().map(Checkpoint::tree_total).collect(),
        })
    }

    /// The retained post-mortem events mentioning `vehicle`, oldest first —
    /// its attribution chain as far as the ring buffer remembers.
    pub fn violation_trace(&self, vehicle: VehicleId) -> Vec<EventRecord> {
        self.audit.ring.for_vehicle(vehicle.0)
    }

    fn metrics(&self, constitution_done: Option<f64>, collection_done: Option<f64>) -> RunMetrics {
        let violations = self.verify();
        if let Some(v) = violations.first() {
            // Post-mortem: dump the offending vehicle's attribution chain
            // from the always-on ring buffer.
            eprintln!(
                "oracle violation: {} net {} expected {} ({} violation(s) total); \
                 ring-buffer attribution chain:",
                v.vehicle,
                v.net,
                v.expected,
                violations.len()
            );
            let chain = self.audit.ring.for_vehicle(v.vehicle.0);
            if chain.is_empty() {
                eprintln!("  (no retained events — raise the ring capacity)");
            }
            for rec in chain {
                eprintln!("  {}", rec.to_json());
            }
        }
        let global_count = if self.all_collected() {
            self.collected_count()
        } else if self.all_stable() {
            Some(self.distributed_count())
        } else {
            None
        };
        RunMetrics {
            constitution_done_s: constitution_done,
            collection_done_s: collection_done,
            checkpoint_stable_s: self.cps.iter().filter_map(Checkpoint::stable_at).collect(),
            checkpoint_activated_s: self
                .cps
                .iter()
                .filter_map(Checkpoint::activated_at)
                .collect(),
            global_count,
            true_population: self.true_population(),
            oracle_violations: violations.len(),
            handoff_failures: self.audit.counters.counters().handoff_retries,
            overtake_adjustments: self.cps.iter().map(|c| c.counters().overtake_total()).sum(),
            baseline_naive: self.naive.total(),
            baseline_dedup: self.dedup.total(),
            elapsed_s: self.now,
            steps: self.steps,
            degraded: self.faults.degraded(),
            telemetry: self.telemetry(),
        }
    }

    /// Baseline counters (ablation access).
    pub fn baselines(&self) -> (u64, u64) {
        (self.naive.total(), self.dedup.total())
    }

    /// Metrics derived from the current state, using the checkpoints'
    /// own recorded timestamps (activation/stabilization/collection).
    /// Unlike [`Runner::run`], which timestamps goal completion when its
    /// loop observes it, this can be called at any time — e.g. after an
    /// externally driven stepping loop.
    pub fn metrics_now(&self) -> RunMetrics {
        let constitution = self.all_stable().then(|| {
            self.cps
                .iter()
                .filter_map(Checkpoint::stable_at)
                .fold(0.0f64, f64::max)
        });
        let collection = (self.all_collected() && !self.reports_in_flight()).then(|| {
            self.seeds
                .iter()
                .filter_map(|s| self.cps[s.index()].collected_at())
                .fold(0.0f64, f64::max)
        });
        self.metrics(constitution, collection)
    }

    /// A point-in-time progress view of the deployment.
    pub fn progress(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            time_s: self.now,
            active: self.cps.iter().filter(|c| c.is_active()).count(),
            stable: self.cps.iter().filter(|c| c.is_stable()).count(),
            collected_seeds: self
                .seeds
                .iter()
                .filter(|s| self.cps[s.index()].tree_total().is_some())
                .count(),
            checkpoints: self.cps.len(),
            distributed_count: self.distributed_count(),
            population: self.true_population(),
        }
    }
}

/// Shutdown guard: whatever ends a run — clean completion, an early
/// `break`, a panic unwinding past an externally driven loop, or a service
/// tenant disconnecting mid-run — the configured sinks are flushed, so a
/// buffered trace file never loses its tail. Flushing twice is harmless
/// ([`Runner::run`] also flushes on the clean path).
impl Drop for Runner {
    fn drop(&mut self) {
        self.flush_sinks();
    }
}
