//! Scenario descriptions: everything needed to reproduce one run, as plain
//! serializable data.

use serde::{Deserialize, Serialize};
use vcount_core::CheckpointConfig;
use vcount_roadnet::builders::{
    directed_ring, fig1_triangle, grid, manhattan, random_city, ManhattanConfig, RandomCityConfig,
};
use vcount_roadnet::RoadNetwork;
use vcount_traffic::{Demand, SimConfig};
use vcount_v2x::ChannelKind;

/// Which map a scenario runs on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum MapSpec {
    /// The synthetic midtown-Manhattan map (the paper's evaluation region).
    Manhattan(ManhattanConfig),
    /// A plain bidirectional grid.
    Grid {
        /// Columns.
        cols: usize,
        /// Rows.
        rows: usize,
        /// Spacing between intersections, metres.
        spacing_m: f64,
        /// Lanes per direction.
        lanes: u8,
        /// Speed limit, m/s.
        speed_mps: f64,
    },
    /// The 3-intersection closed system of Fig. 1.
    Fig1Triangle {
        /// Segment length, metres.
        segment_m: f64,
        /// Speed limit, m/s.
        speed_mps: f64,
    },
    /// A fully one-way ring (one-way street extension).
    DirectedRing {
        /// Number of intersections.
        nodes: usize,
        /// Segment length, metres.
        spacing_m: f64,
        /// Speed limit, m/s.
        speed_mps: f64,
    },
    /// A random irregular city.
    Random(RandomCityConfig),
}

impl MapSpec {
    /// Builds the road network. `closed` removes all border interaction
    /// (the paper's "close the traffic lanes along the border").
    pub fn build(&self, closed: bool) -> RoadNetwork {
        let mut net = match self {
            MapSpec::Manhattan(cfg) => manhattan(cfg),
            MapSpec::Grid {
                cols,
                rows,
                spacing_m,
                lanes,
                speed_mps,
            } => grid(*cols, *rows, *spacing_m, *lanes, *speed_mps),
            MapSpec::Fig1Triangle {
                segment_m,
                speed_mps,
            } => fig1_triangle(*segment_m, 1, *speed_mps),
            MapSpec::DirectedRing {
                nodes,
                spacing_m,
                speed_mps,
            } => directed_ring(*nodes, *spacing_m, 1, *speed_mps),
            MapSpec::Random(cfg) => random_city(cfg),
        };
        if closed {
            net.close_border();
        }
        net
    }
}

/// Seed checkpoint selection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SeedSpec {
    /// `count` seeds drawn uniformly from all checkpoints (the paper:
    /// "randomly selected from the available checkpoints").
    Random {
        /// Number of seeds (the paper sweeps 1..=10).
        count: usize,
    },
    /// Explicit node indices.
    Explicit(Vec<u32>),
    /// Every border checkpoint is a seed/sink — the costly deployment the
    /// paper's observation 6 weighs against a single sink. Falls back to
    /// one random seed when the map has no border (closed system).
    AllBorder,
}

impl Default for SeedSpec {
    fn default() -> Self {
        SeedSpec::Random { count: 1 }
    }
}

/// How collection messages (reports, predecessor announcements) travel when
/// no vehicle can physically carry them along the required direction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TransportMode {
    /// Reports ride vehicles along the `u -> p(u)` segment when it exists;
    /// one-way reverse deliveries use the directional multi-hop V2V relay
    /// of ref \[7\], modelled as a distance-proportional delay.
    VehicleWithRelayFallback {
        /// Relay propagation speed, m/s (radio hops are much faster than
        /// traffic).
        relay_speed_mps: f64,
    },
    /// Everything via the relay (latency ablation).
    RelayOnly {
        /// Relay propagation speed, m/s.
        relay_speed_mps: f64,
    },
    /// One-way reverse deliveries wait for a patrol car (Alg. 4's
    /// circuitous route); requires patrol cars in the scenario.
    VehicleWithPatrolFallback,
}

impl Default for TransportMode {
    fn default() -> Self {
        TransportMode::VehicleWithRelayFallback {
            relay_speed_mps: 50.0,
        }
    }
}

/// Police patrol deployment (Theorems 3/4).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PatrolSpec {
    /// Number of patrol cars, evenly spaced along an edge-covering cycle.
    pub cars: usize,
}

/// A complete, reproducible run description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// The map.
    pub map: MapSpec,
    /// Close the border (overrides the map's interaction flags).
    pub closed: bool,
    /// Microsimulator parameters (incl. the traffic RNG seed).
    pub sim: SimConfig,
    /// Traffic demand (volume %).
    pub demand: Demand,
    /// Protocol options shared by every checkpoint.
    pub protocol: CheckpointConfig,
    /// Wireless loss model for label handoffs.
    pub channel: ChannelKind,
    /// Seed checkpoints.
    pub seeds: SeedSpec,
    /// Collection transport.
    pub transport: TransportMode,
    /// Patrol cars (0 = none).
    pub patrol: PatrolSpec,
    /// Give up after this much simulated time, seconds.
    pub max_time_s: f64,
}

impl Scenario {
    /// The paper's closed-system evaluation on the midtown map at a given
    /// traffic volume, seed count, and RNG seed: 30% lossy channel,
    /// extended protocol (Alg. 3 + Alg. 4). The 100%-volume density is
    /// calibrated to 30 vehicles per lane-km (a realistic Manhattan daily
    /// average; below ~15 the 10%-volume sweep point starves rare one-way
    /// directions of label carriers — see EXPERIMENTS.md).
    pub fn paper_closed(
        map: ManhattanConfig,
        volume_pct: f64,
        seeds: usize,
        rng_seed: u64,
    ) -> Self {
        Scenario {
            map: MapSpec::Manhattan(map),
            closed: true,
            sim: SimConfig {
                seed: rng_seed,
                ..Default::default()
            },
            demand: Demand {
                vehicles_per_lane_km: 30.0,
                ..Demand::at_volume(volume_pct)
            },
            protocol: CheckpointConfig::for_variant(vcount_core::ProtocolVariant::Extended),
            channel: ChannelKind::PAPER,
            seeds: SeedSpec::Random { count: seeds },
            transport: TransportMode::default(),
            patrol: PatrolSpec::default(),
            // Low-volume cells have a long starvation tail (rare one-way
            // directions wait for a label carrier); 8 simulated hours covers
            // the whole paper grid.
            max_time_s: 8.0 * 3600.0,
        }
    }

    /// The paper's open-system evaluation (Alg. 5 + Alg. 4).
    pub fn paper_open(map: ManhattanConfig, volume_pct: f64, seeds: usize, rng_seed: u64) -> Self {
        Scenario {
            closed: false,
            protocol: CheckpointConfig::for_variant(vcount_core::ProtocolVariant::Open),
            ..Scenario::paper_closed(map, volume_pct, seeds, rng_seed)
        }
    }

    /// The Fig. 1 walkthrough setting: the 3-intersection closed triangle
    /// with a perfect channel and an explicit seed at intersection 0 —
    /// shared by the `three_intersections` example, the golden-trace test,
    /// and the CLI's `fig1` preset.
    pub fn fig1_walkthrough(rng_seed: u64) -> Self {
        Scenario {
            map: MapSpec::Fig1Triangle {
                segment_m: 200.0,
                speed_mps: 6.7,
            },
            closed: true,
            sim: SimConfig {
                seed: rng_seed,
                ..Default::default()
            },
            demand: Demand::at_volume(60.0),
            protocol: CheckpointConfig::default(),
            channel: ChannelKind::Perfect,
            seeds: SeedSpec::Explicit(vec![0]),
            transport: TransportMode::default(),
            patrol: PatrolSpec::default(),
            max_time_s: 3600.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_build_removes_interaction() {
        let spec = MapSpec::Manhattan(ManhattanConfig::small());
        assert!(spec.build(false).is_open());
        assert!(!spec.build(true).is_open());
    }

    #[test]
    fn paper_scenarios_round_trip_through_json() {
        let s = Scenario::paper_open(ManhattanConfig::small(), 40.0, 3, 9);
        let js = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&js).unwrap();
        assert_eq!(back.demand.volume_pct, 40.0);
        assert!(matches!(back.seeds, SeedSpec::Random { count: 3 }));
        assert!(!back.closed);
    }

    #[test]
    fn every_map_spec_builds_valid_networks() {
        let specs = [
            MapSpec::Grid {
                cols: 3,
                rows: 3,
                spacing_m: 100.0,
                lanes: 1,
                speed_mps: 6.7,
            },
            MapSpec::Fig1Triangle {
                segment_m: 200.0,
                speed_mps: 6.7,
            },
            MapSpec::DirectedRing {
                nodes: 5,
                spacing_m: 100.0,
                speed_mps: 6.7,
            },
            MapSpec::Random(RandomCityConfig::default()),
            MapSpec::Manhattan(ManhattanConfig::small()),
        ];
        for spec in specs {
            spec.build(true).validate().unwrap();
        }
    }
}
