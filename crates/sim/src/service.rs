//! The `vcountd` service core: a multi-tenant run manager.
//!
//! [`RunManager`] multiplexes many independent deployments keyed by run
//! id. Each tenant is an externally fed [`Runner`] (built over an
//! [`crate::source::ExternalSource`]) plus a bounded ingest queue of
//! pushed [`ObservationBatch`]es. Commands arrive as [`ServiceRequest`]
//! values (one JSON object per line on the wire — see the `vcount serve`
//! subcommand) and every effect is reported back as [`ServiceResponse`]
//! values, including the run's protocol events: each tenant's sink
//! fan-out captures stamped event records, and the manager streams them
//! out as [`ServiceResponse::Event`] lines after every command.
//!
//! **Framing.** Every request yields zero or more
//! [`ServiceResponse::Event`] lines followed by exactly one terminal
//! (non-`Event`) response — a line-oriented client reads until the first
//! non-`Event` line and knows the request is fully answered.
//!
//! ## Contracts
//!
//! * **Transport is a deployment knob, never a semantics knob.** A
//!   scenario driven through the manager by a simulator-fed client
//!   produces a byte-identical event stream, counts, and checkpoint
//!   states to the same scenario under `vcount run` (pinned by
//!   `tests/service_identity.rs` and the `run_checks.sh` serve smoke).
//! * **Backpressure is explicit, never silent.** A batch that arrives
//!   with the tenant's queue full is rejected with
//!   [`ServiceResponse::Throttled`] — it is *not* enqueued and *not*
//!   dropped silently; the producer must resend it after draining.
//! * **Snapshots keep their schema.** A tenant freezes into the same
//!   [`EngineSnapshot`] (schema v4) a batch run produces, and a frozen
//!   run restarts via [`ServiceRequest::Resume`] to a byte-identical
//!   continuation.

use crate::engine::EngineSnapshot;
use crate::faults::FaultPlan;
use crate::metrics::RunMetrics;
use crate::runner::{Goal, Runner};
use crate::scenario::Scenario;
use crate::source::{ObservationBatch, TruthSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Mutex};
use vcount_obs::{EventFilter, EventRecord, EventSink, JsonlSink};
use vcount_traffic::SimSnapshot;

/// Default bound of each tenant's ingest queue, in batches.
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// Tuning knobs of a [`RunManager`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Ingest-queue bound per tenant; a batch arriving at a full queue is
    /// rejected with [`ServiceResponse::Throttled`].
    pub queue_capacity: usize,
    /// Batches ingested per tenant while handling one request. The
    /// default (`u64::MAX`) drains the queue inline; `0` makes ingest
    /// fully manual via [`ServiceRequest::Pump`] — deterministic
    /// backpressure tests use that. Kept as the wire's `u64` end to end
    /// so a 32-bit host cannot silently truncate a feeder's budget.
    pub pump_budget: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            pump_budget: u64::MAX,
        }
    }
}

/// One command to the service, addressed to a run id. On the wire each
/// request is one newline-terminated JSON object, externally tagged by
/// variant name.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ServiceRequest {
    /// Creates tenant `run` from a scenario and activates its seeds.
    Start {
        /// New run id (must not exist).
        run: String,
        /// The scenario to deploy (boxed — it dwarfs the other request
        /// payloads).
        scenario: Box<Scenario>,
        /// Goal the run drives toward (default: collection).
        #[serde(default)]
        goal: Option<Goal>,
        /// Engine shard count (0 or absent → 1).
        #[serde(default)]
        shards: usize,
        /// Disable lazy decode (a differential knob, not semantics).
        #[serde(default)]
        eager_decode: bool,
        /// Optional fault-injection plan.
        #[serde(default)]
        faults: Option<FaultPlan>,
        /// Optional server-side JSONL trace file for this tenant's
        /// protocol events — written and flushed by the daemon, so a
        /// feeder that dies mid-run still leaves a complete trace behind.
        #[serde(default)]
        trace: Option<String>,
    },
    /// Recreates tenant `run` from a frozen snapshot (service restart).
    Resume {
        /// New run id (must not exist).
        run: String,
        /// The frozen engine state (schema v4, scenario embedded; boxed —
        /// a snapshot dwarfs every other request).
        snapshot: Box<EngineSnapshot>,
        /// Goal the resumed run drives toward (default: collection).
        #[serde(default)]
        goal: Option<Goal>,
        /// Optional server-side JSONL trace file for the resumed tail.
        #[serde(default)]
        trace: Option<String>,
    },
    /// Pushes one observation batch into `run`'s ingest queue.
    Observe {
        /// Target run id.
        run: String,
        /// The step's observations, in producer order.
        batch: ObservationBatch,
    },
    /// Ingests up to `budget` queued batches per tenant (all tenants).
    Pump {
        /// Per-tenant batch budget (absent → drain fully).
        #[serde(default)]
        budget: Option<u64>,
    },
    /// Freezes `run` into an [`EngineSnapshot`]. The engine cannot see
    /// the feeder's traffic substrate, so the request carries its
    /// serialized state.
    Snapshot {
        /// Target run id.
        run: String,
        /// The feeder's traffic state at the current step boundary.
        #[serde(default)]
        sim: Option<SimSnapshot>,
    },
    /// Finishes `run`: drains its queue, evaluates metrics (against the
    /// supplied ground truth, if any), flushes sinks, and removes the
    /// tenant.
    Finish {
        /// Target run id.
        run: String,
        /// Ground truth for verification and the true population; without
        /// it the metrics report zero violations and population
        /// unverified.
        #[serde(default)]
        truth: Option<TruthSnapshot>,
    },
    /// Aborts `run` immediately, flushing its sinks (the drop guard).
    Stop {
        /// Target run id.
        run: String,
    },
}

/// One effect of handling a request. On the wire each response is one
/// newline-terminated JSON object, externally tagged by variant name.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ServiceResponse {
    /// Tenant created and seeds activated.
    Started {
        /// The new run id.
        run: String,
    },
    /// Tenant recreated from its snapshot.
    Resumed {
        /// The new run id.
        run: String,
    },
    /// Batch accepted into the ingest queue (and possibly already
    /// ingested, per the pump budget).
    Accepted {
        /// Target run id.
        run: String,
        /// Batches still queued after this request.
        queued: usize,
        /// Whether the run reached its goal (or time budget) — further
        /// batches are acknowledged but ignored, exactly like the steps
        /// `vcount run` never executes after its loop exits.
        done: bool,
    },
    /// Backpressure: the queue is full. The batch was NOT enqueued —
    /// resend it once the queue drains (never a silent drop).
    Throttled {
        /// Target run id.
        run: String,
        /// Batches currently queued (== capacity).
        queued: usize,
        /// The configured queue bound.
        capacity: usize,
    },
    /// Batches ingested across all tenants by an explicit pump.
    Pumped {
        /// Total batches ingested by this request.
        ingested: u64,
    },
    /// One stamped protocol event of a run, exactly as the run's JSONL
    /// trace would contain it (byte-identical line).
    Event {
        /// The emitting run id.
        run: String,
        /// The event record's canonical JSON line.
        line: String,
    },
    /// The frozen engine state.
    Snapshot {
        /// Target run id.
        run: String,
        /// The snapshot (schema v4, scenario embedded; boxed — it dwarfs
        /// every other response).
        snapshot: Box<EngineSnapshot>,
    },
    /// Final metrics of a finished run (tenant removed).
    Finished {
        /// The finished run id.
        run: String,
        /// The run's metrics, as `vcount run` would report them (boxed —
        /// the report dwarfs the other response payloads).
        metrics: Box<RunMetrics>,
    },
    /// Tenant aborted and removed.
    Stopped {
        /// The stopped run id.
        run: String,
    },
    /// A request that could not be honored (unknown run, duplicate id,
    /// malformed JSON, invalid fault plan, ...).
    Error {
        /// The run id concerned ("" when unattributable).
        run: String,
        /// Human-readable cause.
        message: String,
    },
}

/// Shared event-line buffer between a tenant's sink and the manager.
type SharedLines = Arc<Mutex<Vec<String>>>;

/// An [`EventSink`] that captures each record's canonical JSON line into
/// a shared buffer the manager drains into [`ServiceResponse::Event`]s.
struct BufferSink(SharedLines);

impl EventSink for BufferSink {
    fn record(&mut self, rec: &EventRecord) {
        self.0
            .lock()
            .expect("event buffer poisoned")
            .push(rec.to_json());
    }
}

/// One multiplexed run: an externally fed engine plus its bounded ingest
/// queue and captured event lines.
struct Tenant {
    runner: Runner,
    queue: VecDeque<ObservationBatch>,
    goal: Goal,
    max_time_s: f64,
    done: bool,
    events: SharedLines,
}

impl Tenant {
    /// Ingests up to `budget` queued batches, stopping at the goal (or
    /// the scenario's time budget) exactly where `vcount run`'s loop
    /// would; remaining batches are dropped then — they correspond to
    /// steps the batch run never executes.
    fn pump(&mut self, budget: u64) -> u64 {
        let mut ingested = 0u64;
        while ingested < budget && !self.done {
            let Some(batch) = self.queue.pop_front() else {
                break;
            };
            self.runner.ingest(&batch);
            ingested += 1;
            self.done =
                goal_reached(&self.runner, self.goal) || self.runner.time_s() >= self.max_time_s;
        }
        if self.done {
            self.queue.clear();
        }
        ingested
    }

    /// The dense-id population a newly arriving batch must announce from:
    /// what the engine has ingested plus what the queue already accepted
    /// (queued batches were acknowledged — their announcements are part of
    /// the run's committed history even though they are not ingested yet).
    fn announced_with_queue(&self) -> usize {
        self.runner.announced_vehicles()
            + self
                .queue
                .iter()
                .map(|b| b.new_classes.len())
                .sum::<usize>()
    }
}

/// Mirrors the completion predicate of the batch driver loops
/// ([`Runner::run`] and the CLI's progress-driven variant).
fn goal_reached(runner: &Runner, goal: Goal) -> bool {
    match goal {
        Goal::Constitution => runner.all_stable(),
        Goal::Collection => {
            runner.all_stable() && runner.all_collected() && !runner.reports_in_flight()
        }
    }
}

/// The multi-tenant run manager: applies [`ServiceRequest`]s to the runs
/// they address and reports every effect — including streamed protocol
/// events — as [`ServiceResponse`]s.
pub struct RunManager {
    cfg: ServiceConfig,
    tenants: BTreeMap<String, Tenant>,
}

impl RunManager {
    /// An empty manager with the given knobs.
    pub fn new(cfg: ServiceConfig) -> Self {
        RunManager {
            cfg,
            tenants: BTreeMap::new(),
        }
    }

    /// Active run ids, in lexicographic order.
    pub fn runs(&self) -> impl Iterator<Item = &str> {
        self.tenants.keys().map(String::as_str)
    }

    /// Parses one wire line and handles it; malformed JSON becomes an
    /// unattributable [`ServiceResponse::Error`].
    pub fn handle_line(&mut self, line: &str, out: &mut Vec<ServiceResponse>) {
        match serde_json::from_str::<ServiceRequest>(line) {
            Ok(req) => self.handle(req, out),
            Err(e) => out.push(ServiceResponse::Error {
                run: String::new(),
                message: format!("malformed request: {e}"),
            }),
        }
    }

    /// Applies one request, appending every resulting response (event
    /// lines included) to `out` in emission order.
    pub fn handle(&mut self, req: ServiceRequest, out: &mut Vec<ServiceResponse>) {
        match req {
            ServiceRequest::Start {
                run,
                scenario,
                goal,
                shards,
                eager_decode,
                faults,
                trace,
            } => self.start(
                run,
                scenario,
                goal,
                shards,
                eager_decode,
                faults,
                trace,
                out,
            ),
            ServiceRequest::Resume {
                run,
                snapshot,
                goal,
                trace,
            } => self.resume(run, snapshot, goal, trace, out),
            ServiceRequest::Observe { run, batch } => self.observe(run, batch, out),
            ServiceRequest::Pump { budget } => self.pump_all(budget, out),
            ServiceRequest::Snapshot { run, sim } => self.snapshot(run, sim, out),
            ServiceRequest::Finish { run, truth } => self.finish(run, truth, out),
            ServiceRequest::Stop { run } => self.stop(run, out),
        }
    }

    /// Flushes every tenant's sinks without removing anyone — the
    /// disconnect path: a feeder going away mid-run must leave complete
    /// trace files behind (runs stay resumable by a reconnecting feeder).
    pub fn flush_all(&mut self) {
        for tenant in self.tenants.values_mut() {
            tenant.runner.flush_sinks();
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn start(
        &mut self,
        run: String,
        scenario: Box<Scenario>,
        goal: Option<Goal>,
        shards: usize,
        eager_decode: bool,
        faults: Option<FaultPlan>,
        trace: Option<String>,
        out: &mut Vec<ServiceResponse>,
    ) {
        if self.tenants.contains_key(&run) {
            out.push(ServiceResponse::Error {
                message: format!("run {run:?} already exists"),
                run,
            });
            return;
        }
        let events: SharedLines = Arc::default();
        let trace_sink = match trace_sink(trace.as_deref()) {
            Ok(sink) => sink,
            Err(e) => {
                out.push(ServiceResponse::Error { message: e, run });
                return;
            }
        };
        // Scenario construction is a trust boundary: a wire scenario that
        // violates an internal contract (an invalid map, an out-of-range
        // explicit seed) must answer this request with an Error, not kill
        // the daemon and every other tenant with it.
        let buffer = events.clone();
        let built = catch_panic_message(AssertUnwindSafe(move || {
            let mut builder = Runner::builder(&scenario)
                .external(true)
                .shards(shards.max(1))
                .eager_decode(eager_decode)
                .sink(Box::new(BufferSink(buffer)));
            if let Some(sink) = trace_sink {
                builder = builder.sink(sink);
            }
            if let Some(plan) = faults {
                builder = builder.faults(plan);
            }
            builder
                .try_build()
                .map(|runner| (runner, scenario.max_time_s))
        }));
        let (runner, max_time_s) = match built {
            Ok(pair) => pair,
            Err(e) => {
                out.push(ServiceResponse::Error {
                    message: format!("start failed: {e}"),
                    run,
                });
                return;
            }
        };
        let tenant = Tenant {
            runner,
            queue: VecDeque::new(),
            goal: goal.unwrap_or(Goal::Collection),
            max_time_s,
            done: false,
            events,
        };
        drain_events(&tenant.events, &run, out);
        out.push(ServiceResponse::Started { run: run.clone() });
        self.tenants.insert(run, tenant);
    }

    fn resume(
        &mut self,
        run: String,
        snapshot: Box<EngineSnapshot>,
        goal: Option<Goal>,
        trace: Option<String>,
        out: &mut Vec<ServiceResponse>,
    ) {
        if self.tenants.contains_key(&run) {
            out.push(ServiceResponse::Error {
                message: format!("run {run:?} already exists"),
                run,
            });
            return;
        }
        let events: SharedLines = Arc::default();
        let trace_sink = match trace_sink(trace.as_deref()) {
            Ok(sink) => sink,
            Err(e) => {
                out.push(ServiceResponse::Error { message: e, run });
                return;
            }
        };
        let buffer = events.clone();
        // Same trust boundary as Start: a corrupt snapshot answers with an
        // Error instead of unwinding through the daemon.
        let built = catch_panic_message(AssertUnwindSafe(move || {
            let mut sinks: Vec<Box<dyn EventSink + Send>> = vec![Box::new(BufferSink(buffer))];
            if let Some(sink) = trace_sink {
                sinks.push(sink);
            }
            let max_time_s = snapshot.scenario.max_time_s;
            Ok((
                Runner::resume_external(&snapshot, sinks, crate::runner::DEFAULT_RING_CAPACITY),
                max_time_s,
            ))
        }));
        let (runner, max_time_s) = match built {
            Ok(pair) => pair,
            Err(e) => {
                out.push(ServiceResponse::Error {
                    message: format!("resume failed: {e}"),
                    run,
                });
                return;
            }
        };
        let tenant = Tenant {
            runner,
            queue: VecDeque::new(),
            goal: goal.unwrap_or(Goal::Collection),
            max_time_s,
            done: false,
            events,
        };
        drain_events(&tenant.events, &run, out);
        out.push(ServiceResponse::Resumed { run: run.clone() });
        self.tenants.insert(run, tenant);
    }

    fn observe(&mut self, run: String, batch: ObservationBatch, out: &mut Vec<ServiceResponse>) {
        let capacity = self.cfg.queue_capacity;
        let budget = self.cfg.pump_budget;
        let Some(tenant) = self.tenants.get_mut(&run) else {
            out.push(unknown_run(run));
            return;
        };
        if tenant.done {
            // Acknowledged but ignored: the batch run's loop exited here.
            out.push(ServiceResponse::Accepted {
                run,
                queued: 0,
                done: true,
            });
            return;
        }
        if tenant.queue.len() >= capacity {
            out.push(ServiceResponse::Throttled {
                run,
                queued: tenant.queue.len(),
                capacity,
            });
            return;
        }
        // The wire trust boundary: every indexing contract the engine
        // would otherwise enforce by panicking is checked here, and a
        // malformed batch poisons only this request — the tenant (and
        // every other tenant) keeps serving.
        if let Err(e) = batch.validate(
            tenant.announced_with_queue(),
            tenant.runner.net().node_count(),
            tenant.runner.net().edge_count(),
        ) {
            out.push(ServiceResponse::Error {
                message: format!("malformed batch: {e}"),
                run,
            });
            return;
        }
        tenant.queue.push_back(batch);
        tenant.pump(budget);
        drain_events(&tenant.events, &run, out);
        out.push(ServiceResponse::Accepted {
            run,
            queued: tenant.queue.len(),
            done: tenant.done,
        });
    }

    fn pump_all(&mut self, budget: Option<u64>, out: &mut Vec<ServiceResponse>) {
        // The budget stays u64 end to end: `as usize` here would silently
        // truncate a feeder's budget on a 32-bit host.
        let budget = budget.unwrap_or(u64::MAX);
        let mut ingested = 0u64;
        for (run, tenant) in &mut self.tenants {
            ingested += tenant.pump(budget);
            drain_events(&tenant.events, run, out);
        }
        out.push(ServiceResponse::Pumped { ingested });
    }

    fn snapshot(&mut self, run: String, sim: Option<SimSnapshot>, out: &mut Vec<ServiceResponse>) {
        let Some(tenant) = self.tenants.get_mut(&run) else {
            out.push(unknown_run(run));
            return;
        };
        // Drain the queue before freezing: queued batches were answered
        // Accepted, so they are committed history — a snapshot taken
        // behind them would silently lose them across a restart + Resume
        // (the feeder was told they were in). The feeder's sim state is
        // the post-production state, so draining first is also what keeps
        // the frozen engine and the frozen simulator at the same step.
        tenant.pump(u64::MAX);
        if let Some(sim) = sim {
            tenant.runner.provide_sim_state(sim);
        }
        drain_events(&tenant.events, &run, out);
        match tenant.runner.try_snapshot() {
            Ok(snapshot) => out.push(ServiceResponse::Snapshot {
                run,
                snapshot: Box::new(snapshot),
            }),
            Err(e) => out.push(ServiceResponse::Error {
                message: format!("snapshot failed: {e}"),
                run,
            }),
        }
    }

    fn finish(
        &mut self,
        run: String,
        truth: Option<TruthSnapshot>,
        out: &mut Vec<ServiceResponse>,
    ) {
        let Some(mut tenant) = self.tenants.remove(&run) else {
            out.push(unknown_run(run));
            return;
        };
        tenant.pump(u64::MAX);
        if let Some(truth) = truth {
            tenant.runner.provide_truth(truth);
        }
        tenant.runner.flush_sinks();
        let metrics = Box::new(tenant.runner.metrics_now());
        drain_events(&tenant.events, &run, out);
        out.push(ServiceResponse::Finished { run, metrics });
    }

    fn stop(&mut self, run: String, out: &mut Vec<ServiceResponse>) {
        let Some(tenant) = self.tenants.remove(&run) else {
            out.push(unknown_run(run));
            return;
        };
        // Dropping the tenant drops the runner, whose drop guard flushes
        // the sinks — the mid-run abort leaves no buffered tail behind.
        // The event buffer outlives the tenant (the Arc is cloned first)
        // so lines emitted *by* that flush are drained too, not silently
        // discarded.
        let events = tenant.events.clone();
        drop(tenant);
        drain_events(&events, &run, out);
        out.push(ServiceResponse::Stopped { run });
    }
}

/// Opens the optional server-side JSONL trace sink of a tenant.
fn trace_sink(path: Option<&str>) -> Result<Option<Box<dyn EventSink + Send>>, String> {
    match path {
        None => Ok(None),
        Some(p) => JsonlSink::to_file(std::path::Path::new(p), EventFilter::all())
            .map(|s| Some(Box::new(s) as Box<dyn EventSink + Send>))
            .map_err(|e| format!("trace {p}: {e}")),
    }
}

/// Runs fallible construction behind a panic boundary, converting an
/// unwind into the error message the wire expects. The daemon must survive
/// inputs that violate internal contracts deep inside construction — those
/// panics are debug aids for in-process callers, not a wire protocol.
fn catch_panic_message<T>(
    f: AssertUnwindSafe<impl FnOnce() -> Result<T, String>>,
) -> Result<T, String> {
    match std::panic::catch_unwind(f) {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "construction panicked".to_string());
            Err(msg)
        }
    }
}

/// Moves the tenant's captured event lines into the response stream, in
/// emission order.
fn drain_events(events: &SharedLines, run: &str, out: &mut Vec<ServiceResponse>) {
    let mut lines = events.lock().expect("event buffer poisoned");
    for line in lines.drain(..) {
        out.push(ServiceResponse::Event {
            run: run.to_string(),
            line,
        });
    }
}

fn unknown_run(run: String) -> ServiceResponse {
    ServiceResponse::Error {
        message: format!("unknown run {run:?}"),
        run,
    }
}
