//! The networked face of the `vcountd` service: listeners, connections,
//! and the concurrent accept loop.
//!
//! The [`crate::service::RunManager`] is a pure request → responses core;
//! this module is everything around it that touches a socket. Two
//! transports speak the same newline-delimited JSON framing contract —
//! Unix domain sockets and TCP — and the transport is a deployment knob,
//! never a semantics knob, exactly like the stdin mode.
//!
//! ## Concurrency model
//!
//! [`serve_connections`] accepts connections and serves each on its own
//! thread over one shared `Arc<Mutex<RunManager>>`:
//!
//! * **One lock per request.** A connection thread locks the manager,
//!   applies one request, and releases the lock before writing the
//!   responses — requests from concurrent feeders interleave at request
//!   granularity, and each tenant's event stream stays byte-identical to
//!   its solo run (tenants share the manager, never state).
//! * **Per-connection write serialization.** Every connection owns its
//!   stream writer exclusively: a request's Event lines and terminal
//!   response are written by the one thread that read the request, so
//!   interleaved tenants can never corrupt each other's framing.
//! * **Disconnect and shutdown guards.** When a connection ends — EOF,
//!   error, or a feeder killed mid-run — that thread flushes every
//!   tenant's sinks, so server-side trace files are complete and the
//!   runs stay alive for a reconnect. The accept loop itself joins every
//!   connection thread and flushes again before returning: graceful
//!   shutdown never leaves a buffered tail behind.
//!
//! A malformed or hostile feeder is answered with
//! [`ServiceResponse::Error`] by the manager's wire validation (see
//! [`crate::service`]) and at worst kills its own connection thread —
//! never the daemon, never another tenant.

use crate::service::{RunManager, ServiceRequest, ServiceResponse};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::{Arc, Mutex};

/// Consecutive `accept` failures tolerated before the loop gives up. A
/// transient error (EMFILE under load, an aborted handshake) must not
/// kill the daemon, but a persistently broken listener must not spin.
const MAX_CONSECUTIVE_ACCEPT_ERRORS: u32 = 16;

/// A bound service endpoint: Unix domain socket or TCP.
pub enum Listener {
    /// A Unix domain socket listener.
    Unix(UnixListener),
    /// A TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Binds a Unix domain socket at `path`. A stale socket file from a
    /// previous daemon is removed first — it cannot be a live listener we
    /// would disturb, because binding a bound path errors either way.
    pub fn bind_unix(path: &str) -> Result<Self, String> {
        let _ = std::fs::remove_file(path);
        UnixListener::bind(path)
            .map(Listener::Unix)
            .map_err(|e| format!("{path}: {e}"))
    }

    /// Binds a TCP listener at `addr` (`HOST:PORT`; port 0 picks a free
    /// port — read it back with [`Listener::local_addr`]).
    pub fn bind_tcp(addr: &str) -> Result<Self, String> {
        TcpListener::bind(addr)
            .map(Listener::Tcp)
            .map_err(|e| format!("{addr}: {e}"))
    }

    /// The bound address, printable (the socket path, or `IP:PORT`).
    pub fn local_addr(&self) -> String {
        match self {
            Listener::Unix(l) => l
                .local_addr()
                .ok()
                .and_then(|a| a.as_pathname().map(|p| p.display().to_string()))
                .unwrap_or_else(|| "<unix>".to_string()),
            Listener::Tcp(l) => l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "<tcp>".to_string()),
        }
    }

    fn accept(&self) -> std::io::Result<Conn> {
        match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
        }
    }
}

/// One accepted (or dialed) connection, transport-erased.
pub enum Conn {
    /// A Unix domain socket stream.
    Unix(UnixStream),
    /// A TCP stream.
    Tcp(TcpStream),
}

impl Conn {
    /// Dials a `vcountd` Unix socket.
    pub fn connect_unix(path: &str) -> Result<Self, String> {
        UnixStream::connect(path)
            .map(Conn::Unix)
            .map_err(|e| format!("{path}: {e}"))
    }

    /// Dials a `vcountd` TCP endpoint (`HOST:PORT`).
    pub fn connect_tcp(addr: &str) -> Result<Self, String> {
        TcpStream::connect(addr)
            .map(Conn::Tcp)
            .map_err(|e| format!("{addr}: {e}"))
    }

    /// A second handle onto the same stream (reader/writer split).
    pub fn try_clone(&self) -> std::io::Result<Self> {
        match self {
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

/// A feeder's line-framed connection to a service: send one request, read
/// zero or more `Event` lines closed by exactly one terminal response.
pub struct WireClient {
    reader: BufReader<Conn>,
    writer: Conn,
}

impl WireClient {
    /// Wraps a dialed connection into a framed client.
    pub fn new(conn: Conn) -> Result<Self, String> {
        let reader = BufReader::new(conn.try_clone().map_err(|e| format!("socket: {e}"))?);
        Ok(WireClient {
            reader,
            writer: conn,
        })
    }

    /// Sends one request and collects its full answer per the framing
    /// contract: zero or more [`ServiceResponse::Event`] lines followed by
    /// exactly one terminal (non-`Event`) response.
    pub fn call(&mut self, req: &ServiceRequest) -> Result<Vec<ServiceResponse>, String> {
        let json = serde_json::to_string(req).map_err(|e| e.to_string())?;
        writeln!(self.writer, "{json}").map_err(|e| format!("send: {e}"))?;
        self.writer.flush().map_err(|e| format!("send: {e}"))?;
        let mut out = Vec::new();
        loop {
            let mut line = String::new();
            let n = self
                .reader
                .read_line(&mut line)
                .map_err(|e| format!("receive: {e}"))?;
            if n == 0 {
                return Err("service closed the connection".into());
            }
            let resp: ServiceResponse =
                serde_json::from_str(line.trim_end()).map_err(|e| format!("bad response: {e}"))?;
            let is_event = matches!(resp, ServiceResponse::Event { .. });
            out.push(resp);
            if !is_event {
                return Ok(out);
            }
        }
    }
}

/// Answers newline-delimited requests from `reader` on `writer` until EOF,
/// then flushes every tenant's sinks — the disconnect guard: a feeder
/// going away mid-run leaves complete trace files behind. The manager is
/// locked once per request, released before the responses are written, so
/// concurrent connections interleave at request granularity.
pub fn serve_stream(
    mgr: &Mutex<RunManager>,
    reader: impl BufRead,
    writer: impl Write,
) -> Result<(), String> {
    let result = pump_requests(mgr, reader, writer);
    mgr.lock().expect("run manager poisoned").flush_all();
    result
}

fn pump_requests(
    mgr: &Mutex<RunManager>,
    reader: impl BufRead,
    mut writer: impl Write,
) -> Result<(), String> {
    let mut out = Vec::new();
    for line in reader.lines() {
        let line = line.map_err(|e| format!("read: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        out.clear();
        mgr.lock()
            .expect("run manager poisoned")
            .handle_line(&line, &mut out);
        for resp in &out {
            let json = serde_json::to_string(resp).map_err(|e| e.to_string())?;
            writeln!(writer, "{json}").map_err(|e| format!("write: {e}"))?;
        }
        // Flush per request: the client decides what to send next from
        // these responses (backpressure, done), so they cannot sit in a
        // buffer.
        writer.flush().map_err(|e| format!("write: {e}"))?;
    }
    Ok(())
}

/// The concurrent accept loop: serves each accepted connection on its own
/// thread over the shared manager, until `max_conns` connections have been
/// accepted (`None` = forever) or the listener breaks persistently. One
/// broken feeder kills at most its own connection thread. On the way out —
/// limit reached or listener dead — every connection thread is joined and
/// every tenant's sinks are flushed: graceful shutdown, complete traces.
pub fn serve_connections(
    listener: &Listener,
    mgr: &Arc<Mutex<RunManager>>,
    max_conns: Option<u64>,
) -> Result<(), String> {
    let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut accepted = 0u64;
    let mut consecutive_errors = 0u32;
    let mut fatal: Option<String> = None;
    while max_conns.is_none_or(|n| accepted < n) {
        let conn = match listener.accept() {
            Ok(conn) => {
                consecutive_errors = 0;
                conn
            }
            Err(e) => {
                // A transient accept failure must not kill the daemon (or
                // skip the shutdown path below) — log and keep accepting,
                // up to a persistence limit.
                eprintln!("accept error: {e}");
                consecutive_errors += 1;
                if consecutive_errors >= MAX_CONSECUTIVE_ACCEPT_ERRORS {
                    fatal = Some(format!("accept failed {consecutive_errors} times: {e}"));
                    break;
                }
                continue;
            }
        };
        accepted += 1;
        let mgr = Arc::clone(mgr);
        handles.push(std::thread::spawn(move || {
            let reader = match conn.try_clone() {
                Ok(r) => BufReader::new(r),
                Err(e) => {
                    eprintln!("connection error: socket: {e}");
                    return;
                }
            };
            if let Err(e) = serve_stream(&mgr, reader, conn) {
                eprintln!("connection error: {e}");
            }
        }));
    }
    // Graceful shutdown: every in-flight connection finishes, then every
    // tenant's sinks are flushed once more (connection threads flush on
    // their own exit too; flushing twice is harmless).
    for handle in handles {
        let _ = handle.join();
    }
    mgr.lock().expect("run manager poisoned").flush_all();
    match fatal {
        Some(e) => Err(e),
        None => Ok(()),
    }
}
