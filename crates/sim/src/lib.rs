//! # vcount-sim — deployment orchestration and evaluation harness
//!
//! Wires the three substrates (road network, traffic microsimulation, V2X
//! channel) to one [`vcount_core::Checkpoint`] per intersection, exactly as
//! the paper's simulation does, and adds what a reproduction needs on top:
//!
//! * [`runner::Runner`] — event-driven integration: labels ride vehicles,
//!   handoffs go through the lossy channel, segment watches convert
//!   overtakes into counter adjustments, reports ride vehicles (or the
//!   directional relay / patrol cars) back up the spanning tree;
//! * [`oracle::Oracle`] — per-vehicle ground-truth attribution proving the
//!   no-mis/double-counting claims on every run;
//! * [`scenario`] — serializable run descriptions, including the paper's
//!   closed and open midtown setups;
//! * [`experiment`] — the volume × seed-count sweep grid behind
//!   Figs. 2–5, parallelized across worker threads;
//! * [`metrics`] — the reported quantities;
//! * [`engine`] — the five named per-step stages (source, `observe`,
//!   `dispatch`, `exchange`, `audit`), the [`engine::Exchange`]
//!   message layer that owns every in-flight payload, and
//!   [`engine::EngineSnapshot`] for freezing and resuming runs;
//! * [`source`] — pluggable observation sources: the engine consumes
//!   [`source::ObservationBatch`]es and never asks who produced them —
//!   the in-process simulator ([`source::SimulatorSource`]) and pushed
//!   external streams ([`source::ExternalSource`]) are interchangeable,
//!   byte for byte;
//! * [`service`] — the `vcountd` multi-tenant run manager: many
//!   independent runs keyed by run id, newline-delimited JSON commands,
//!   bounded ingest queues with explicit backpressure, wire-input
//!   validation (a malformed feeder gets an `Error`, never a panic),
//!   live per-run snapshot/restart;
//! * [`server`] — the daemon around the manager: Unix-socket and TCP
//!   listeners behind one framing contract, a thread-per-connection
//!   accept loop over a shared `Mutex<RunManager>`, disconnect and
//!   shutdown flush guards;
//! * [`replay`] — action record/replay: a recorded run's protocol-input
//!   stream re-drives the pure machines without the simulator, pinning
//!   byte-identical dispatches and final counts.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod experiment;
pub mod faults;
pub mod metrics;
pub mod oracle;
pub mod replay;
pub mod runner;
pub mod scenario;
pub mod server;
pub mod service;
pub mod source;

pub use engine::{EngineSnapshot, Exchange};
pub use experiment::{sweep, sweep_with_faults, Cell, CellResult, SweepConfig};
pub use faults::{Blackout, ChaosFault, CrashFault, FaultCounters, FaultLayer, FaultPlan};
pub use metrics::{ProgressSnapshot, RunMetrics, RunTelemetry, Summary};
pub use oracle::{Attribution, Oracle, Violation};
pub use replay::{
    replay_trace, ActionRecord, ActionRecorder, ActionTrace, ReplayReport, TRACE_SCHEMA,
};
pub use runner::{Goal, Runner, RunnerBuilder};
pub use scenario::{MapSpec, PatrolSpec, Scenario, SeedSpec, TransportMode};
pub use server::{serve_connections, serve_stream, Conn, Listener, WireClient};
pub use service::{RunManager, ServiceConfig, ServiceRequest, ServiceResponse};
pub use source::{
    BatchIndex, ClassTable, ExternalSource, ObservationBatch, ObservationSource, SimulatorSource,
    TruthSnapshot,
};
