//! Parameter sweeps: the paper's evaluation grid (traffic volume ×
//! seed count), run in parallel across worker threads.

use crate::faults::FaultPlan;
use crate::metrics::{RunMetrics, RunTelemetry, Summary};
use crate::runner::{Goal, Runner};
use crate::scenario::Scenario;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// One cell of the evaluation grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Traffic volume, percent of the daily average (paper: 10..=100).
    pub volume_pct: f64,
    /// Number of seed checkpoints (paper: 1..=10).
    pub seeds: usize,
}

/// Aggregated replicate results for one grid cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellResult {
    /// The cell coordinates.
    pub cell: Cell,
    /// Constitution-time statistics across replicates, minutes.
    pub constitution_min: Option<Summary>,
    /// Collection-time statistics across replicates, minutes (collection
    /// goals only).
    pub collection_min: Option<Summary>,
    /// Per-checkpoint stabilization statistics pooled over replicates,
    /// minutes (the Fig. 2 max/min/avg reading).
    pub per_checkpoint_min: Option<Summary>,
    /// Total oracle violations across replicates (must be 0 — except under
    /// a fault plan, where violating replicates must be `degraded`).
    pub violations: usize,
    /// Replicates that failed to converge within the time limit.
    pub unconverged: usize,
    /// Replicates flagged degraded by fault injection (always 0 without a
    /// fault plan).
    #[serde(default)]
    pub degraded: usize,
    /// Protocol event counts and phase timings summed over replicates
    /// (absent in results serialized before the observability layer).
    #[serde(default)]
    pub telemetry: RunTelemetry,
    /// Panic message if this cell's worker panicked. The sweep records the
    /// failure here and keeps going instead of aborting the whole grid; a
    /// failed cell has no runs and counts every replicate as unconverged.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub failed: Option<String>,
    /// All replicate metrics, for deeper analysis.
    pub runs: Vec<RunMetrics>,
}

/// Sweep configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Volumes to test (percent).
    pub volumes: Vec<f64>,
    /// Seed counts to test.
    pub seed_counts: Vec<usize>,
    /// Replicates per cell (different traffic RNG seeds).
    pub replicates: u64,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
}

impl SweepConfig {
    /// The paper's full grid: volume ∈ {10,…,100} × seeds ∈ {1..=10}.
    pub fn paper_grid(replicates: u64) -> Self {
        SweepConfig {
            volumes: (1..=10).map(|v| v as f64 * 10.0).collect(),
            seed_counts: (1..=10).collect(),
            replicates,
            threads: 0,
        }
    }

    /// A reduced grid for quick runs and CI.
    pub fn quick() -> Self {
        SweepConfig {
            volumes: vec![20.0, 60.0, 100.0],
            seed_counts: vec![1, 4, 10],
            replicates: 2,
            threads: 0,
        }
    }
}

/// Runs `goal` for every cell of the grid. `make_scenario(cell, replicate)`
/// builds each run; cells execute in parallel on worker threads
/// (crossbeam-scoped, no unsafe, data-race-free by construction).
pub fn sweep<F>(cfg: &SweepConfig, goal: Goal, make_scenario: F) -> Vec<CellResult>
where
    F: Fn(Cell, u64) -> Scenario + Sync,
{
    sweep_with_faults(cfg, goal, None, make_scenario)
}

/// [`sweep`] with an optional fault axis: the same [`FaultPlan`] is
/// injected into every replicate (each replicate's fault RNG stream is
/// still decoupled from its traffic/protocol streams), and each cell
/// reports how many replicates ended degraded.
pub fn sweep_with_faults<F>(
    cfg: &SweepConfig,
    goal: Goal,
    faults: Option<FaultPlan>,
    make_scenario: F,
) -> Vec<CellResult>
where
    F: Fn(Cell, u64) -> Scenario + Sync,
{
    let cells: Vec<Cell> = cfg
        .volumes
        .iter()
        .flat_map(|&volume_pct| {
            cfg.seed_counts
                .iter()
                .map(move |&seeds| Cell { volume_pct, seeds })
        })
        .collect();

    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        cfg.threads
    };

    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Mutex<Vec<CellResult>> = Mutex::new(Vec::with_capacity(cells.len()));

    crossbeam::scope(|scope| {
        for _ in 0..threads.min(cells.len().max(1)) {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                let cell = cells[i];
                // One panicking cell (bad scenario, solver bug) must not
                // abort the rest of the grid: record the failure in its
                // result slot and keep draining cells.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_cell(cell, cfg.replicates, goal, faults.as_ref(), &make_scenario)
                }))
                .unwrap_or_else(|payload| failed_cell(cell, cfg.replicates, payload));
                results.lock().push(result);
            });
        }
    })
    .expect("sweep scope failed");

    let mut out = results.into_inner();
    out.sort_by(|a, b| {
        a.cell
            .volume_pct
            .total_cmp(&b.cell.volume_pct)
            .then(a.cell.seeds.cmp(&b.cell.seeds))
    });
    out
}

/// The result slot of a cell whose worker panicked.
fn failed_cell(cell: Cell, replicates: u64, payload: Box<dyn std::any::Any + Send>) -> CellResult {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    CellResult {
        cell,
        constitution_min: None,
        collection_min: None,
        per_checkpoint_min: None,
        violations: 0,
        unconverged: replicates as usize,
        degraded: 0,
        telemetry: RunTelemetry::default(),
        failed: Some(msg),
        runs: Vec::new(),
    }
}

fn run_cell<F>(
    cell: Cell,
    replicates: u64,
    goal: Goal,
    faults: Option<&FaultPlan>,
    make_scenario: &F,
) -> CellResult
where
    F: Fn(Cell, u64) -> Scenario,
{
    let mut runs = Vec::with_capacity(replicates as usize);
    for r in 0..replicates {
        let scenario = make_scenario(cell, r);
        let max = scenario.max_time_s;
        let mut builder = Runner::builder(&scenario);
        if let Some(plan) = faults {
            builder = builder.faults(plan.clone());
        }
        let mut runner = builder.build();
        runs.push(runner.run(goal, max));
    }
    let constitution_min = Summary::of(
        runs.iter()
            .filter_map(|r| r.constitution_done_s)
            .map(|s| s / 60.0),
    );
    let collection_min = Summary::of(
        runs.iter()
            .filter_map(|r| r.collection_done_s)
            .map(|s| s / 60.0),
    );
    let per_checkpoint_min = Summary::of(
        runs.iter()
            .flat_map(|r| r.checkpoint_stable_s.iter().map(|s| s / 60.0)),
    );
    let violations = runs.iter().map(|r| r.oracle_violations).sum();
    let unconverged = runs
        .iter()
        .filter(|r| match goal {
            Goal::Constitution => r.constitution_done_s.is_none(),
            Goal::Collection => r.collection_done_s.is_none(),
        })
        .count();
    let degraded = runs.iter().filter(|r| r.degraded).count();
    let mut telemetry = RunTelemetry::default();
    for r in &runs {
        telemetry.merge(&r.telemetry);
    }
    CellResult {
        cell,
        constitution_min,
        collection_min,
        per_checkpoint_min,
        violations,
        unconverged,
        degraded,
        telemetry,
        failed: None,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{MapSpec, Scenario, SeedSpec};
    use vcount_core::CheckpointConfig;
    use vcount_traffic::{Demand, SimConfig};
    use vcount_v2x::ChannelKind;

    fn tiny_scenario(cell: Cell, rep: u64) -> Scenario {
        Scenario {
            map: MapSpec::Grid {
                cols: 3,
                rows: 3,
                spacing_m: 120.0,
                lanes: 1,
                speed_mps: 10.0,
            },
            closed: true,
            sim: SimConfig {
                seed: rep.wrapping_mul(1000) + cell.seeds as u64,
                ..Default::default()
            },
            demand: Demand::at_volume(cell.volume_pct),
            protocol: CheckpointConfig::default(),
            channel: ChannelKind::Perfect,
            seeds: SeedSpec::Random { count: cell.seeds },
            transport: Default::default(),
            patrol: Default::default(),
            max_time_s: 1800.0,
        }
    }

    #[test]
    fn sweep_covers_grid_in_order() {
        let cfg = SweepConfig {
            volumes: vec![50.0, 100.0],
            seed_counts: vec![1, 2],
            replicates: 1,
            threads: 2,
        };
        let results = sweep(&cfg, Goal::Constitution, tiny_scenario);
        assert_eq!(results.len(), 4);
        let cells: Vec<(f64, usize)> = results
            .iter()
            .map(|r| (r.cell.volume_pct, r.cell.seeds))
            .collect();
        assert_eq!(cells, vec![(50.0, 1), (50.0, 2), (100.0, 1), (100.0, 2)]);
        for r in &results {
            assert_eq!(r.violations, 0, "oracle violation in sweep cell");
            assert_eq!(r.unconverged, 0);
            assert!(r.constitution_min.is_some());
            assert!(r.failed.is_none());
        }
    }

    #[test]
    fn sweep_survives_a_panicking_cell() {
        let cfg = SweepConfig {
            volumes: vec![50.0, 100.0],
            seed_counts: vec![1, 2],
            replicates: 1,
            threads: 2,
        };
        let results = sweep(&cfg, Goal::Constitution, |cell, rep| {
            if cell.volume_pct == 100.0 && cell.seeds == 1 {
                panic!("scenario construction exploded");
            }
            tiny_scenario(cell, rep)
        });
        assert_eq!(results.len(), 4, "failed cell must still occupy its slot");
        for r in &results {
            if r.cell.volume_pct == 100.0 && r.cell.seeds == 1 {
                let msg = r.failed.as_deref().expect("panicking cell marked failed");
                assert!(msg.contains("scenario construction exploded"), "{msg}");
                assert_eq!(r.unconverged, 1);
                assert!(r.runs.is_empty());
            } else {
                assert!(
                    r.failed.is_none(),
                    "healthy cell {:?} marked failed",
                    r.cell
                );
                assert!(r.constitution_min.is_some());
            }
        }
    }
}
