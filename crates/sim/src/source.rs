//! Pluggable observation sources: where the engine's surveillance events
//! come from.
//!
//! The engine (see [`crate::engine`]) is a step-driven core: each step it
//! consumes one [`ObservationBatch`] — the traffic events of one tick plus
//! the side information the protocol stages need — and it does not care
//! who produced it. [`ObservationSource`] is the supplier trait;
//! [`SimulatorSource`] wraps the traffic microsimulator (the classic
//! `vcount run` shape), and [`ExternalSource`] accepts batches pushed from
//! outside the process (the `vcountd` service shape, see
//! [`crate::service`]).
//!
//! The source is a deployment knob, never a semantics knob: a scenario
//! driven through an [`ExternalSource`] fed by a remote [`SimulatorSource`]
//! produces a byte-identical event stream to the same scenario run
//! in-process (pinned by `tests/service_identity.rs`).

use serde::{Deserialize, Serialize};
use vcount_roadnet::{edge_covering_cycle, EdgeId, NodeId};
use vcount_traffic::{SimSnapshot, Simulator, TrafficEvent};
use vcount_v2x::{ClassFilter, VehicleClass, VehicleId};

use crate::scenario::Scenario;

/// One step's observations, in the producer's deterministic order. This is
/// the unit that crosses the source boundary — serializable so a feeder
/// process can ship it as one JSON line.
///
/// All buffers are reused across steps via [`ObservationBatch::clear`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ObservationBatch {
    /// Simulated time at the end of the step, seconds (event timestamp).
    pub now: f64,
    /// Monotone step counter at the end of the step.
    pub steps: u64,
    /// The step's surveillance events, in deterministic order.
    pub events: Vec<TrafficEvent>,
    /// Classes of vehicles first observed this step, in id order. Vehicle
    /// ids are dense append-only indices, so each batch announces exactly
    /// the ids from the previous population size up to the new one.
    pub new_classes: Vec<(VehicleId, VehicleClass)>,
    /// Per-edge end-of-step in-transit capture: `(edge, start, len)` slices
    /// into [`ObservationBatch::in_transit_vehicles`], one entry per edge
    /// that appears as a departure target (`onto`) this step. The observe
    /// stage reconstructs segment-watch "ahead" sets from these (see the
    /// runner's module docs).
    pub in_transit_index: Vec<(EdgeId, u32, u32)>,
    /// Flat storage behind [`ObservationBatch::in_transit_index`], leader
    /// first within each slice.
    pub in_transit_vehicles: Vec<VehicleId>,
}

impl ObservationBatch {
    /// Resets the batch for reuse, keeping every buffer's capacity.
    pub fn clear(&mut self) {
        self.now = 0.0;
        self.steps = 0;
        self.events.clear();
        self.new_classes.clear();
        self.in_transit_index.clear();
        self.in_transit_vehicles.clear();
    }

    /// The captured end-of-step in-transit order on `edge`, leader first.
    /// Panics if the producer did not capture that edge — every `Departed
    /// { onto }` edge of the step must be covered. These panics are
    /// *debug contracts* against the in-process [`SimulatorSource`]; a
    /// batch arriving over the wire is checked first by
    /// [`ObservationBatch::validate`] at the service boundary.
    pub fn in_transit(&self, edge: EdgeId) -> &[VehicleId] {
        let (_, start, len) = self
            .in_transit_index
            .iter()
            .find(|(e, _, _)| *e == edge)
            .unwrap_or_else(|| panic!("batch carries no in-transit capture for edge {edge:?}"));
        // usize arithmetic: a hostile (start, len) pair must not overflow
        // u32 on its way to the slice bounds check.
        &self.in_transit_vehicles[*start as usize..*start as usize + *len as usize]
    }

    /// Validates a batch that crossed a trust boundary (the `vcountd`
    /// wire) against the engine's indexing contracts, so that a malformed
    /// feeder is answered with an error instead of panicking the process:
    ///
    /// * `now` is finite (event timestamps and the completion predicate
    ///   do arithmetic with it);
    /// * [`Self::new_classes`] announces dense vehicle ids in order,
    ///   starting at `announced` (the engine's current population);
    /// * every vehicle id referenced anywhere is below the announced-after
    ///   population, every node id below `nodes`, every edge id below
    ///   `edges`;
    /// * every [`Self::in_transit_index`] slice lies inside
    ///   [`Self::in_transit_vehicles`] (checked without u32 overflow);
    /// * every `Departed { onto }` edge of the step is covered by an
    ///   in-transit capture (the observe stage's reconstruction demands
    ///   it).
    ///
    /// The engine-internal panics on these same conditions remain as
    /// debug contracts for in-process sources, which are trusted.
    pub fn validate(&self, announced: usize, nodes: usize, edges: usize) -> Result<(), String> {
        if !self.now.is_finite() {
            return Err(format!("non-finite batch timestamp {:?}", self.now));
        }
        for (i, &(v, _)) in self.new_classes.iter().enumerate() {
            let expect = announced + i;
            if v.index() != expect {
                return Err(format!(
                    "class announcements must be dense and in id order: \
                     position {i} announces vehicle {} but {expect} is next",
                    v.index()
                ));
            }
        }
        let population = announced + self.new_classes.len();
        let check_vehicle = |v: VehicleId, what: &str| -> Result<(), String> {
            if v.index() >= population {
                return Err(format!(
                    "{what} references vehicle {} but only {population} are announced",
                    v.index()
                ));
            }
            Ok(())
        };
        let check_node = |n: NodeId, what: &str| -> Result<(), String> {
            if n.index() >= nodes {
                return Err(format!(
                    "{what} references node {} but the map has {nodes} nodes",
                    n.index()
                ));
            }
            Ok(())
        };
        let check_edge = |e: EdgeId, what: &str| -> Result<(), String> {
            if e.index() >= edges {
                return Err(format!(
                    "{what} references edge {} but the map has {edges} edges",
                    e.index()
                ));
            }
            Ok(())
        };
        for (i, ev) in self.events.iter().enumerate() {
            let what = format!("event {i}");
            match *ev {
                TrafficEvent::Entered {
                    vehicle,
                    node,
                    from,
                } => {
                    check_vehicle(vehicle, &what)?;
                    check_node(node, &what)?;
                    if let Some(e) = from {
                        check_edge(e, &what)?;
                    }
                }
                TrafficEvent::Departed {
                    vehicle,
                    node,
                    onto,
                } => {
                    check_vehicle(vehicle, &what)?;
                    check_node(node, &what)?;
                    check_edge(onto, &what)?;
                    if !self.in_transit_index.iter().any(|(e, _, _)| *e == onto) {
                        return Err(format!(
                            "{what} departs onto edge {} with no in-transit capture",
                            onto.index()
                        ));
                    }
                }
                TrafficEvent::Exited { vehicle, node } => {
                    check_vehicle(vehicle, &what)?;
                    check_node(node, &what)?;
                }
                TrafficEvent::Overtake {
                    edge,
                    overtaker,
                    overtaken,
                } => {
                    check_edge(edge, &what)?;
                    check_vehicle(overtaker, &what)?;
                    check_vehicle(overtaken, &what)?;
                }
            }
        }
        for &(edge, start, len) in &self.in_transit_index {
            check_edge(edge, "in-transit capture")?;
            // u64 arithmetic: `start + len` must not overflow u32 before
            // the bounds comparison.
            if u64::from(start) + u64::from(len) > self.in_transit_vehicles.len() as u64 {
                return Err(format!(
                    "in-transit capture for edge {} spans {start}..{start}+{len} \
                     but only {} vehicles are stored",
                    edge.index(),
                    self.in_transit_vehicles.len()
                ));
            }
        }
        for &v in &self.in_transit_vehicles {
            check_vehicle(v, "in-transit capture")?;
        }
        Ok(())
    }
}

/// Derived per-batch indices the observe stage needs for watch "ahead"
/// reconstruction. Rebuilt by the engine from the batch's event list (never
/// trusted from the wire), with flat reused buffers: a step carries few
/// events, so a linear filter beats a map of fresh vectors every step.
#[derive(Debug, Default)]
pub struct BatchIndex {
    /// Same-step `(edge, event index, vehicle)` departures onto each edge.
    pub departures_onto: Vec<(EdgeId, usize, VehicleId)>,
    /// Same-step `(edge, event index, vehicle)` entries via each edge.
    pub entries_via: Vec<(EdgeId, usize, VehicleId)>,
}

impl BatchIndex {
    /// Re-derives the indices from `events`, reusing the buffers.
    pub fn rebuild(&mut self, events: &[TrafficEvent]) {
        self.departures_onto.clear();
        self.entries_via.clear();
        for (i, ev) in events.iter().enumerate() {
            match *ev {
                TrafficEvent::Departed { vehicle, onto, .. } => {
                    self.departures_onto.push((onto, i, vehicle));
                }
                TrafficEvent::Entered {
                    vehicle,
                    from: Some(e),
                    ..
                } => {
                    self.entries_via.push((e, i, vehicle));
                }
                _ => {}
            }
        }
    }
}

/// The engine's view of every vehicle's camera-visible class, learned from
/// batch announcements ([`ObservationBatch::new_classes`]). Vehicle ids are
/// dense indices, so the table is a plain `Vec` and a lookup is one index.
#[derive(Debug, Default)]
pub struct ClassTable {
    classes: Vec<VehicleClass>,
}

impl ClassTable {
    /// An empty table (vehicles are announced by the first batches).
    pub fn new() -> Self {
        ClassTable::default()
    }

    /// Rebuilds the table from a snapshot's vehicle list (resume path).
    pub fn from_snapshot(snap: &SimSnapshot) -> Self {
        ClassTable {
            classes: snap.vehicles.iter().map(|v| v.class).collect(),
        }
    }

    /// Number of vehicles ever announced.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether no vehicle was announced yet.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Absorbs one batch's announcements. Ids must arrive dense and in
    /// order — each new vehicle's id is exactly the previous population
    /// size, which is what a well-formed producer emits.
    pub fn learn(&mut self, new_classes: &[(VehicleId, VehicleClass)]) {
        for &(v, class) in new_classes {
            assert_eq!(
                v.index(),
                self.classes.len(),
                "vehicle classes must be announced densely in id order"
            );
            self.classes.push(class);
        }
    }

    /// The class of `v`. Panics if `v` was never announced — the engine
    /// must not observe a vehicle before its class.
    pub fn class(&self, v: VehicleId) -> VehicleClass {
        self.classes[v.index()]
    }
}

/// Ground truth at one instant: every matching civilian vehicle the
/// producer ever created, with its currently-inside flag. Feeds the
/// [`crate::oracle::Oracle`] verification and the reported true
/// population; serializable so a feeder can ship it with the final
/// metrics request.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TruthSnapshot {
    /// `(vehicle, currently inside)` for every civilian vehicle matching
    /// the scenario's class filter.
    pub vehicles: Vec<(VehicleId, bool)>,
}

impl TruthSnapshot {
    /// Matching civilian vehicles currently inside the region.
    pub fn population(&self) -> usize {
        self.vehicles.iter().filter(|(_, inside)| *inside).count()
    }
}

/// A supplier of observation batches driving the engine.
///
/// `next_batch` is the pull face (used by [`crate::Runner::step`]);
/// externally fed runners skip it and push batches straight into
/// [`crate::Runner::ingest`]. The remaining methods expose what only the
/// observation side can know: ground truth (for verification) and the
/// traffic substrate's serialized state (for snapshots).
pub trait ObservationSource: Send {
    /// Produces the next step's batch into `batch` (cleared first).
    /// Returns `false` when this source cannot advance on its own — the
    /// pull loop ends and batches must be pushed via
    /// [`crate::Runner::ingest`] instead.
    fn next_batch(&mut self, batch: &mut ObservationBatch) -> bool;

    /// Ground truth at the current instant, if this source knows it.
    fn truth(&self) -> Option<TruthSnapshot>;

    /// The traffic substrate's serialized state, if this source holds it
    /// (needed to freeze the run into an [`crate::EngineSnapshot`]).
    fn sim_state(&self) -> Option<SimSnapshot>;

    /// Supplies ground truth from outside (push-fed sources only).
    fn provide_truth(&mut self, _truth: TruthSnapshot) {}

    /// Supplies traffic state from outside (push-fed sources only).
    fn provide_sim_state(&mut self, _snap: SimSnapshot) {}

    /// Read access to the in-process simulator, when there is one
    /// (examples and benches that inspect the population).
    fn simulator(&self) -> Option<&Simulator> {
        None
    }
}

/// The in-process source: owns the traffic [`Simulator`] and produces one
/// batch per tick — the classic `vcount run` deployment shape.
pub struct SimulatorSource {
    sim: Simulator,
    filter: ClassFilter,
    /// Vehicles announced so far; ids are dense, so the tail
    /// `sim.vehicles()[announced..]` is exactly the new arrivals.
    announced: usize,
    /// Scratch: unique departure-target edges of the current step.
    edge_scratch: Vec<EdgeId>,
    /// Scratch: one edge's in-transit order before batch append.
    order_scratch: Vec<VehicleId>,
}

impl SimulatorSource {
    /// Builds the simulator a scenario describes — map, demand, patrol
    /// cars, detection shards — ready to produce batch 1.
    pub fn from_scenario(scenario: &Scenario, shards: usize) -> Self {
        let net = scenario.map.build(scenario.closed);
        net.validate().expect("scenario map must be valid");
        let mut sim = Simulator::new(net, scenario.sim.clone(), scenario.demand.clone());
        sim.set_detect_shards(shards.max(1));
        if scenario.patrol.cars > 0 {
            let cycle = edge_covering_cycle(sim.net(), NodeId(0))
                .expect("validated map admits an edge-covering patrol cycle");
            for off in cycle.even_offsets(scenario.patrol.cars) {
                sim.add_patrol_car(cycle.edges.clone(), off);
            }
        }
        // The pre-placed population was never announced: batch 1 carries
        // it, so an externally fed engine learns the same classes the same
        // way an in-process one does.
        SimulatorSource::wrap(sim, scenario.protocol.filter, 0)
    }

    /// Restores the simulator from a snapshot (resume path). The restored
    /// population counts as already announced — the engine rebuilds its
    /// class table from the same snapshot.
    pub fn resume_from(scenario: &Scenario, snap: &SimSnapshot, shards: usize) -> Self {
        let net = scenario.map.build(scenario.closed);
        net.validate().expect("snapshot scenario map must be valid");
        let mut sim = Simulator::restore(net, scenario.sim.clone(), scenario.demand.clone(), snap);
        sim.set_detect_shards(shards.max(1));
        let announced = sim.vehicles().len();
        SimulatorSource::wrap(sim, scenario.protocol.filter, announced)
    }

    fn wrap(sim: Simulator, filter: ClassFilter, announced: usize) -> Self {
        SimulatorSource {
            sim,
            filter,
            announced,
            edge_scratch: Vec::new(),
            order_scratch: Vec::new(),
        }
    }
}

impl ObservationSource for SimulatorSource {
    fn next_batch(&mut self, batch: &mut ObservationBatch) -> bool {
        batch.clear();
        let events = self.sim.step();
        batch.events.extend_from_slice(events);
        batch.now = self.sim.time_s();
        batch.steps = self.sim.steps();
        let vehicles = self.sim.vehicles();
        for v in &vehicles[self.announced..] {
            batch.new_classes.push((v.id, v.class));
        }
        self.announced = vehicles.len();
        // Capture the end-of-step in-transit order of every edge departed
        // onto this step — the conservative superset of what the observe
        // stage's watch reconstruction may need (whether a watch opens
        // depends on engine-side channel draws the producer cannot see).
        self.edge_scratch.clear();
        for ev in &batch.events {
            if let TrafficEvent::Departed { onto, .. } = *ev {
                if !self.edge_scratch.contains(&onto) {
                    self.edge_scratch.push(onto);
                }
            }
        }
        let mut edges = std::mem::take(&mut self.edge_scratch);
        let mut order = std::mem::take(&mut self.order_scratch);
        for &edge in &edges {
            self.sim.in_transit_into(edge, &mut order);
            let start = batch.in_transit_vehicles.len() as u32;
            batch.in_transit_vehicles.extend_from_slice(&order);
            batch
                .in_transit_index
                .push((edge, start, order.len() as u32));
        }
        edges.clear();
        self.edge_scratch = edges;
        self.order_scratch = order;
        true
    }

    fn truth(&self) -> Option<TruthSnapshot> {
        let filter = self.filter;
        Some(TruthSnapshot {
            vehicles: self
                .sim
                .vehicles()
                .iter()
                .filter(|v| !v.is_patrol() && filter.matches(&v.class))
                .map(|v| (v.id, v.is_inside()))
                .collect(),
        })
    }

    fn sim_state(&self) -> Option<SimSnapshot> {
        Some(self.sim.snapshot())
    }

    fn simulator(&self) -> Option<&Simulator> {
        Some(&self.sim)
    }
}

/// The push-fed source: produces nothing on its own ([`Self::next_batch`]
/// returns `false`); batches arrive from outside via
/// [`crate::Runner::ingest`]. Ground truth and traffic state are whatever
/// the feeder last supplied — `None` until then, so snapshots and
/// verification require the feeder's cooperation.
#[derive(Debug, Default)]
pub struct ExternalSource {
    truth: Option<TruthSnapshot>,
    sim_state: Option<SimSnapshot>,
}

impl ExternalSource {
    /// A source with no truth and no traffic state yet.
    pub fn new() -> Self {
        ExternalSource::default()
    }

    /// A source seeded with a snapshot's traffic state (service resume:
    /// the restored run can be re-frozen before the feeder's first
    /// refresh).
    pub fn with_sim_state(snap: SimSnapshot) -> Self {
        ExternalSource {
            truth: None,
            sim_state: Some(snap),
        }
    }
}

impl ObservationSource for ExternalSource {
    fn next_batch(&mut self, _batch: &mut ObservationBatch) -> bool {
        false
    }

    fn truth(&self) -> Option<TruthSnapshot> {
        self.truth.clone()
    }

    fn sim_state(&self) -> Option<SimSnapshot> {
        self.sim_state.clone()
    }

    fn provide_truth(&mut self, truth: TruthSnapshot) {
        self.truth = Some(truth);
    }

    fn provide_sim_state(&mut self, snap: SimSnapshot) {
        self.sim_state = Some(snap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_table_learns_densely() {
        let mut t = ClassTable::new();
        t.learn(&[
            (VehicleId(0), VehicleClass::WHITE_VAN),
            (VehicleId(1), VehicleClass::WHITE_VAN),
        ]);
        assert_eq!(t.len(), 2);
        t.learn(&[(VehicleId(2), VehicleClass::WHITE_VAN)]);
        assert_eq!(t.class(VehicleId(2)), VehicleClass::WHITE_VAN);
    }

    #[test]
    #[should_panic(expected = "densely")]
    fn class_table_rejects_gaps() {
        let mut t = ClassTable::new();
        t.learn(&[(VehicleId(5), VehicleClass::WHITE_VAN)]);
    }

    #[test]
    fn truth_population_counts_inside_only() {
        let truth = TruthSnapshot {
            vehicles: vec![
                (VehicleId(0), true),
                (VehicleId(1), false),
                (VehicleId(2), true),
            ],
        };
        assert_eq!(truth.population(), 2);
    }

    #[test]
    fn batch_round_trips_through_json() {
        let mut batch = ObservationBatch {
            now: 12.5,
            steps: 25,
            events: vec![TrafficEvent::Departed {
                vehicle: VehicleId(3),
                node: vcount_roadnet::NodeId(1),
                onto: EdgeId(4),
            }],
            new_classes: vec![(VehicleId(3), VehicleClass::WHITE_VAN)],
            in_transit_index: vec![(EdgeId(4), 0, 2)],
            in_transit_vehicles: vec![VehicleId(7), VehicleId(3)],
        };
        let json = serde_json::to_string(&batch).expect("batch serializes");
        let back: ObservationBatch = serde_json::from_str(&json).expect("batch parses");
        assert_eq!(back.events, batch.events);
        assert_eq!(back.in_transit(EdgeId(4)), &[VehicleId(7), VehicleId(3)]);
        batch.clear();
        assert!(batch.events.is_empty() && batch.in_transit_index.is_empty());
    }
}
