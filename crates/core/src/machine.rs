//! The pure protocol state machine: `process(state, action) → dispatches`.
//!
//! This module is the IO-free core of the counting protocol (Algorithms
//! 1, 3 and 5). Everything effectful — clocks, channel outcomes, RNG
//! draws, recovery images — is carried *inside* the [`Action`] by the
//! caller, so [`CheckpointMachine::process`] is a total function of
//! `(topology, state, action)`:
//!
//! * the machine topology ([`CheckpointMachine`]) is an immutable pure
//!   function of the road network, built once per checkpoint;
//! * the dynamic state ([`CheckpointState`]) is plain serializable data;
//! * the outputs ([`Dispatches`]) are appended to caller-owned buffers —
//!   transport [`Command`]s and timestamped [`ProtocolEvent`]s — and the
//!   effectful shell (`Checkpoint`, the engine stages) translates them
//!   into wire messages and sink records.
//!
//! Because every input is in the action, a recorded action stream replays
//! the protocol exactly, without the simulator: [`Replayer`] re-drives the
//! machines from a trace and folds each action's dispatches into a
//! [`DispatchDigest`], a determinism pin that runs in milliseconds. The
//! no-IO property is enforced by a unit test that scans this module's
//! source for clock/RNG/IO imports.

use crate::command::Command;
use crate::config::{CheckpointConfig, ProtocolVariant};
use crate::counter::Counters;
use crate::observation::Observation;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use vcount_obs::ProtocolEvent;
use vcount_roadnet::{EdgeId, Interaction, NodeId, RoadNetwork};
use vcount_v2x::{Label, PatrolStatus, VehicleClass, VehicleId};

/// Counting state of one inbound direction `u ← v` (phase 1/3/4/5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InboundState {
    /// Not yet activated (checkpoint inactive).
    Idle,
    /// Counting every unlabeled matching vehicle (phase 5).
    Counting,
    /// Counting ended: the direction's label arrived (phase 4), or the
    /// direction comes from the predecessor and never started (phase 3).
    Stopped,
}

/// Labelling state of one outbound direction (phase 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LabelState {
    /// Checkpoint inactive — nothing to propagate yet.
    Idle,
    /// Waiting for the next vehicle to join this direction (retrying after
    /// failed handoffs, Alg. 3 line 3).
    Pending,
    /// Exactly one label was delivered on this direction.
    Done,
}

/// Serializable dynamic state of one checkpoint at a step boundary,
/// produced by `Checkpoint::export_state` and re-applied with
/// `Checkpoint::restore_state`. The topology view (inbound/outbound
/// directions, one-way neighbours, interaction flags) is *not* included —
/// it is a pure function of the network and is rebuilt by
/// [`CheckpointMachine::new`] on restore.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointState {
    /// Whether the checkpoint has been activated (phase 1/3).
    pub active: bool,
    /// Whether it was activated as a seed.
    pub is_seed: bool,
    /// `p(u)` — the spanning-tree predecessor.
    pub pred: Option<NodeId>,
    /// The seed whose wave activated this checkpoint.
    pub wave_seed: Option<NodeId>,
    /// Per-inbound-direction counting state.
    pub inbound_state: BTreeMap<EdgeId, InboundState>,
    /// Per-outbound-direction labelling state.
    pub label_state: BTreeMap<EdgeId, LabelState>,
    /// The local counter components `c(u)`.
    pub counters: Counters,
    /// Learned predecessor per neighbour.
    pub known_preds: BTreeMap<NodeId, Option<NodeId>>,
    /// Highest-sequence report per child: `(seq, total)`.
    pub child_reports: BTreeMap<NodeId, (u32, i64)>,
    /// Last subtree total reported upward.
    pub last_report: Option<i64>,
    /// Next outgoing report sequence number.
    pub report_seq: u32,
    /// Collected tree total (seeds only).
    pub tree_total: Option<i64>,
    /// Activation time, if activated.
    pub activated_at: Option<f64>,
    /// Local stabilization time, if stable.
    pub stable_at: Option<f64>,
    /// Collection time (seeds only).
    pub collected_at: Option<f64>,
}

/// One protocol input with every effectful ingredient resolved by the
/// caller: the event timestamp and the [`ActionKind`] payload (channel
/// outcomes, recovery images, patrol snapshots). Serializable, so a
/// per-checkpoint action stream can be recorded and replayed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Action {
    /// Event timestamp, simulated seconds. Carried in the action — the
    /// machine never reads a clock.
    pub at_s: f64,
    /// What happened.
    pub kind: ActionKind,
}

/// The protocol's action taxonomy: the seven observation arrivals (label
/// deliveries and handoffs, report/patrol deliveries, border crossings,
/// overtake adjustments), seed activation, and the fault transitions.
/// Mirrors [`Observation`] plus the inputs that used to bypass
/// `Checkpoint::handle` (seeding, crash/recover).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ActionKind {
    /// Phase 1: activate this checkpoint as a seed (and data sink).
    Seed,
    /// A vehicle entered the intersection (phases 3/4/5, Alg. 5 inbound
    /// interaction when `via` is `None`).
    Entered {
        /// The entering vehicle.
        vehicle: VehicleId,
        /// The inbound direction, or `None` for a border entry.
        via: Option<EdgeId>,
        /// Observed vehicle class.
        class: VehicleClass,
        /// The label the vehicle surrendered, if it carried one.
        label: Option<Label>,
    },
    /// A pending label handoff was attempted on a departure (phase 2); the
    /// channel outcome is resolved by the caller and carried here.
    Departed {
        /// The departing vehicle.
        vehicle: VehicleId,
        /// The outbound direction joined.
        onto: EdgeId,
        /// Whether the handoff was acknowledged (the effectful channel
        /// draw, made outside the machine).
        delivered: bool,
        /// Whether the vehicle matches the counting filter (for the −1
        /// compensation of Alg. 3 line 3).
        matches_filter: bool,
    },
    /// A vehicle left the system at this border checkpoint (Alg. 5).
    BorderExit {
        /// The exiting vehicle.
        vehicle: VehicleId,
        /// Observed vehicle class.
        class: VehicleClass,
    },
    /// A patrol car delivered its status snapshot (Alg. 4 / Theorem 3).
    PatrolStatus {
        /// The patrol vehicle.
        vehicle: VehicleId,
        /// The carried activity snapshot.
        status: PatrolStatus,
    },
    /// A predecessor announcement arrived (one-way streets).
    Announce {
        /// The announcing checkpoint.
        from: NodeId,
        /// Its predecessor.
        pred: Option<NodeId>,
    },
    /// A child's subtree report arrived (Alg. 2).
    Report {
        /// The reporting child.
        from: NodeId,
        /// Its subtree total.
        total: i64,
        /// Report sequence number (highest wins).
        seq: u32,
    },
    /// A finalized segment watch applied its overtake adjustment
    /// (Alg. 3 lines 5–8).
    Adjust {
        /// Matching vehicles that moved ahead of the label.
        plus: usize,
        /// Matching vehicles the label moved ahead of.
        minus: usize,
    },
    /// The checkpoint crashed. A pure no-op on the state (the crash's
    /// effects — queue drops, downtime — live in the effectful engine);
    /// recorded so a trace documents the full fault schedule.
    Crash,
    /// The checkpoint recovered, rolling back to its last recovery image
    /// (carried in the action — the machine holds no image store). `None`
    /// means no image existed yet: the state is kept as-is.
    Recover {
        /// The image to restore, captured by the effectful fault layer.
        image: Option<Box<CheckpointState>>,
    },
}

impl From<Observation> for ActionKind {
    fn from(obs: Observation) -> ActionKind {
        match obs {
            Observation::Entered {
                vehicle,
                via,
                class,
                label,
            } => ActionKind::Entered {
                vehicle,
                via,
                class,
                label,
            },
            Observation::Departed {
                vehicle,
                onto,
                delivered,
                matches_filter,
            } => ActionKind::Departed {
                vehicle,
                onto,
                delivered,
                matches_filter,
            },
            Observation::BorderExit { vehicle, class } => ActionKind::BorderExit { vehicle, class },
            Observation::PatrolStatus { vehicle, status } => {
                ActionKind::PatrolStatus { vehicle, status }
            }
            Observation::Announce { from, pred } => ActionKind::Announce { from, pred },
            Observation::Report { from, total, seq } => ActionKind::Report { from, total, seq },
            Observation::Adjust { plus, minus } => ActionKind::Adjust { plus, minus },
        }
    }
}

/// Caller-owned output buffers one [`CheckpointMachine::process`] call
/// appends to: transport commands and timestamped protocol events, both
/// in emission order. The machine only ever pushes — draining, routing,
/// and sink fan-out are the effectful shell's job.
pub struct Dispatches<'a> {
    /// Transport commands for the effectful dispatcher.
    pub commands: &'a mut Vec<Command>,
    /// Buffered `(time, event)` pairs for the audit stage.
    pub events: &'a mut Vec<(f64, ProtocolEvent)>,
}

impl Dispatches<'_> {
    #[inline]
    fn emit(&mut self, now: f64, event: ProtocolEvent) {
        self.events.push((now, event));
    }
}

/// The pure per-checkpoint machine: the immutable local topology view
/// (inbound/outbound directions, one-way neighbours, interaction flags)
/// plus the shared protocol configuration. All dynamic state lives in a
/// separate [`CheckpointState`], so `process` borrows topology and state
/// independently and performs no allocation beyond map inserts.
#[derive(Debug, Clone)]
pub struct CheckpointMachine {
    id: NodeId,
    cfg: CheckpointConfig,
    /// Inbound directions `(edge v->u, v)`.
    inbound: Vec<(EdgeId, NodeId)>,
    /// Outbound directions `(edge u->v, v)`.
    outbound: Vec<(EdgeId, NodeId)>,
    /// Inbound neighbours unreachable by our label (no edge `u -> w`):
    /// they learn our predecessor via `SendPredAnnounce`.
    oneway_in: Vec<NodeId>,
    /// Outbound neighbours with no reverse edge: their labels cannot reach
    /// us, so we learn their predecessor from announcements instead.
    oneway_out: Vec<NodeId>,
    interaction: Interaction,
}

impl CheckpointMachine {
    /// Extracts the local topology view for intersection `node`.
    pub fn new(net: &RoadNetwork, node: NodeId, cfg: CheckpointConfig) -> Self {
        let inbound: Vec<(EdgeId, NodeId)> = net
            .in_edges(node)
            .iter()
            .map(|&e| (e, net.edge(e).from))
            .collect();
        let outbound: Vec<(EdgeId, NodeId)> = net
            .out_edges(node)
            .iter()
            .map(|&e| (e, net.edge(e).to))
            .collect();
        let oneway_in = inbound
            .iter()
            .filter(|(_, w)| net.edge_between(node, *w).is_none())
            .map(|(_, w)| *w)
            .collect();
        let oneway_out = outbound
            .iter()
            .filter(|(_, v)| net.edge_between(*v, node).is_none())
            .map(|(_, v)| *v)
            .collect();
        CheckpointMachine {
            id: node,
            cfg,
            inbound,
            outbound,
            oneway_in,
            oneway_out,
            interaction: net.interaction(node),
        }
    }

    /// The pristine pre-activation state for this machine's topology.
    pub fn initial_state(&self) -> CheckpointState {
        CheckpointState {
            active: false,
            is_seed: false,
            pred: None,
            wave_seed: None,
            inbound_state: self
                .inbound
                .iter()
                .map(|(e, _)| (*e, InboundState::Idle))
                .collect(),
            label_state: self
                .outbound
                .iter()
                .map(|(e, _)| (*e, LabelState::Idle))
                .collect(),
            counters: Counters::default(),
            known_preds: BTreeMap::new(),
            child_reports: BTreeMap::new(),
            last_report: None,
            report_seq: 0,
            tree_total: None,
            activated_at: None,
            stable_at: None,
            collected_at: None,
        }
    }

    /// Processes one [`Action`] against `st`, appending the resulting
    /// commands and events to `out`. Pure: no IO, no RNG, no clock — the
    /// timestamp and every channel outcome arrive inside the action.
    pub fn process(&self, st: &mut CheckpointState, action: &Action, out: &mut Dispatches<'_>) {
        let now = action.at_s;
        match &action.kind {
            ActionKind::Seed => {
                assert!(
                    !st.active,
                    "seed activation on an already active checkpoint"
                );
                st.is_seed = true;
                st.wave_seed = Some(self.id);
                self.activate(st, now, None, out);
            }
            ActionKind::Entered {
                vehicle,
                via,
                class,
                label,
            } => self.enter(st, now, *vehicle, *via, class, *label, out),
            ActionKind::Departed {
                vehicle,
                onto,
                delivered,
                matches_filter,
            } => self.depart(st, now, *vehicle, *onto, *delivered, *matches_filter, out),
            ActionKind::BorderExit { vehicle, class } => {
                self.border_exit(st, now, *vehicle, class, out)
            }
            ActionKind::PatrolStatus { vehicle, status } => {
                self.patrol(st, now, *vehicle, status, out)
            }
            ActionKind::Announce { from, pred } => {
                learn_pred(st, *from, *pred);
                self.after_change(st, now, out);
            }
            ActionKind::Report { from, total, seq } => {
                self.report(st, now, *from, *total, *seq, out)
            }
            ActionKind::Adjust { plus, minus } => self.adjust(st, now, *plus, *minus, out),
            ActionKind::Crash => {}
            ActionKind::Recover { image } => {
                if let Some(img) = image {
                    *st = (**img).clone();
                }
            }
        }
    }

    /// Phase 2: the label to hand a vehicle joining outbound direction
    /// `onto`, when one is pending. A pure query — the caller performs the
    /// lossy handoff and reports the outcome with [`ActionKind::Departed`].
    pub fn offer_label(&self, st: &CheckpointState, onto: EdgeId) -> Option<Label> {
        if st.active && st.label_state.get(&onto) == Some(&LabelState::Pending) {
            Some(Label {
                origin: self.id,
                origin_pred: st.pred,
                seed: st.wave_seed.expect("active checkpoint has a wave seed"),
            })
        } else {
            None
        }
    }

    fn activate(
        &self,
        st: &mut CheckpointState,
        now: f64,
        pred: Option<NodeId>,
        out: &mut Dispatches<'_>,
    ) {
        st.active = true;
        st.pred = pred;
        st.activated_at = Some(now);
        out.emit(
            now,
            ProtocolEvent::CheckpointActivated {
                node: self.id.0,
                pred: pred.map(|p| p.0),
                wave_seed: st.wave_seed.expect("wave seed set before activation").0,
                is_seed: st.is_seed,
            },
        );
        for (e, origin) in &self.inbound {
            let state = if Some(*origin) == pred {
                // Traffic from the predecessor is already counted upstream
                // (phase 3 activates only `s(u)` directions).
                InboundState::Stopped
            } else {
                InboundState::Counting
            };
            st.inbound_state.insert(*e, state);
        }
        for (e, _) in &self.outbound {
            st.label_state.insert(*e, LabelState::Pending);
        }
        // Upstream one-way neighbours cannot receive our label; announce
        // our predecessor so their spanning-tree child discovery completes.
        for w in &self.oneway_in {
            out.commands
                .push(Command::SendPredAnnounce { to: *w, pred });
        }
        self.after_change(st, now, out);
    }

    #[allow(clippy::too_many_arguments)]
    fn enter(
        &self,
        st: &mut CheckpointState,
        now: f64,
        vehicle: VehicleId,
        via: Option<EdgeId>,
        class: &VehicleClass,
        label: Option<Label>,
        out: &mut Dispatches<'_>,
    ) {
        match via {
            None => {
                // Inbound interaction (Alg. 5): active border checkpoints
                // count every matching vehicle coming in from outside.
                if st.active
                    && self.cfg.variant.counts_interaction()
                    && self.interaction.inbound
                    && self.cfg.filter.matches(class)
                {
                    st.counters.count_interaction_in();
                    out.emit(
                        now,
                        ProtocolEvent::BorderEntry {
                            node: self.id.0,
                            vehicle: vehicle.0,
                        },
                    );
                }
            }
            Some(e) => {
                debug_assert!(
                    st.inbound_state.contains_key(&e),
                    "entry via unknown inbound edge {e}"
                );
                if let Some(label) = label {
                    learn_pred(st, label.origin, label.origin_pred);
                    if !st.active {
                        // Phase 3: propagation to an inactive checkpoint.
                        st.wave_seed = Some(label.seed);
                        self.activate(st, now, Some(label.origin), out);
                        return; // activate() ran after_change already
                    } else if st.inbound_state.get(&e) == Some(&InboundState::Counting) {
                        // Phase 4: the backwash stops this direction.
                        st.inbound_state.insert(e, InboundState::Stopped);
                        out.emit(
                            now,
                            ProtocolEvent::InboundStopped {
                                node: self.id.0,
                                edge: e.0,
                            },
                        );
                    }
                    // The labeled vehicle itself is never counted (phase 5
                    // counts unlabeled vehicles only).
                } else if st.active
                    && st.inbound_state.get(&e) == Some(&InboundState::Counting)
                    && self.cfg.filter.matches(class)
                {
                    // Phase 5: count the unlabeled matching vehicle.
                    st.counters.count_inbound(e);
                    out.emit(
                        now,
                        ProtocolEvent::VehicleCounted {
                            node: self.id.0,
                            edge: e.0,
                            vehicle: vehicle.0,
                        },
                    );
                }
            }
        }
        self.after_change(st, now, out);
    }

    #[allow(clippy::too_many_arguments)]
    fn depart(
        &self,
        st: &mut CheckpointState,
        now: f64,
        vehicle: VehicleId,
        onto: EdgeId,
        delivered: bool,
        matches_filter: bool,
        out: &mut Dispatches<'_>,
    ) {
        debug_assert_eq!(
            st.label_state.get(&onto),
            Some(&LabelState::Pending),
            "departure handoff without a pending label"
        );
        out.emit(
            now,
            ProtocolEvent::LabelEmitted {
                node: self.id.0,
                edge: onto.0,
                vehicle: vehicle.0,
            },
        );
        if delivered {
            // Exactly one label is now in flight on that direction.
            st.label_state.insert(onto, LabelState::Done);
            out.emit(
                now,
                ProtocolEvent::LabelHandoffAcked {
                    node: self.id.0,
                    edge: onto.0,
                    vehicle: vehicle.0,
                },
            );
        } else {
            // Alg. 3 line 3: the labelling retries with the next vehicle;
            // when the escaping vehicle is one we count, compensate the
            // future double count with −1.
            out.emit(
                now,
                ProtocolEvent::LabelHandoffFailed {
                    node: self.id.0,
                    edge: onto.0,
                    vehicle: vehicle.0,
                },
            );
            if matches_filter && self.cfg.compensate_loss {
                st.counters.compensate_loss();
                out.emit(
                    now,
                    ProtocolEvent::LossCompensation {
                        node: self.id.0,
                        edge: onto.0,
                        vehicle: vehicle.0,
                    },
                );
                self.after_change(st, now, out);
            }
        }
    }

    fn border_exit(
        &self,
        st: &mut CheckpointState,
        now: f64,
        vehicle: VehicleId,
        class: &VehicleClass,
        out: &mut Dispatches<'_>,
    ) {
        let counted = st.active
            && self.cfg.variant.counts_interaction()
            && self.interaction.outbound
            && self.cfg.filter.matches(class);
        if counted {
            st.counters.count_interaction_out();
            out.emit(
                now,
                ProtocolEvent::BorderExit {
                    node: self.id.0,
                    vehicle: vehicle.0,
                },
            );
        }
        let commands_before = out.commands.len();
        self.after_change(st, now, out);
        debug_assert_eq!(
            out.commands.len(),
            commands_before,
            "exit cannot complete collection"
        );
    }

    fn adjust(
        &self,
        st: &mut CheckpointState,
        now: f64,
        plus: usize,
        minus: usize,
        out: &mut Dispatches<'_>,
    ) {
        st.counters.adjust_overtake(plus as i64 - minus as i64);
        out.emit(
            now,
            ProtocolEvent::OvertakeAdjustment {
                node: self.id.0,
                plus: plus as u32,
                minus: minus as u32,
            },
        );
        self.after_change(st, now, out);
    }

    fn patrol(
        &self,
        st: &mut CheckpointState,
        now: f64,
        vehicle: VehicleId,
        status: &PatrolStatus,
        out: &mut Dispatches<'_>,
    ) {
        // In the default integration patrol cars act as label carriers and
        // this only harvests predecessor knowledge; with
        // `patrol_stale_stop` it additionally stops any counting direction
        // whose origin the patrol saw active (the paper's literal
        // Theorem 3 reading — unsafe under slow traffic, see DESIGN.md §4).
        out.emit(
            now,
            ProtocolEvent::PatrolStatusRelay {
                node: self.id.0,
                vehicle: vehicle.0,
                observed: status.observations.len() as u32,
            },
        );
        if self.cfg.patrol_stale_stop {
            for &(e, origin) in &self.inbound {
                if st.inbound_state.get(&e) == Some(&InboundState::Counting)
                    && status.status_of(origin) == Some(true)
                {
                    st.inbound_state.insert(e, InboundState::Stopped);
                    out.emit(
                        now,
                        ProtocolEvent::InboundStopped {
                            node: self.id.0,
                            edge: e.0,
                        },
                    );
                }
            }
        }
        self.after_change(st, now, out);
    }

    fn report(
        &self,
        st: &mut CheckpointState,
        now: f64,
        from: NodeId,
        total: i64,
        seq: u32,
        out: &mut Dispatches<'_>,
    ) {
        // A report is itself proof that `from` chose us as predecessor.
        // Reports may be re-issued when late adjustments land after
        // phase 6; the highest sequence number wins, so out-of-order
        // transport is safe.
        learn_pred(st, from, Some(self.id));
        match st.child_reports.get(&from).copied() {
            Some((old_seq, _)) if seq >= old_seq => {
                if seq > old_seq {
                    out.emit(
                        now,
                        ProtocolEvent::ReportSuperseded {
                            node: self.id.0,
                            child: from.0,
                            old_seq,
                            new_seq: seq,
                        },
                    );
                }
                st.child_reports.insert(from, (seq, total));
            }
            Some(_) => {} // Stale (lower-sequence) report: ignore.
            None => {
                st.child_reports.insert(from, (seq, total));
            }
        }
        self.after_change(st, now, out);
    }

    /// Phase 6 + Alg. 2: stabilization and collection, re-evaluated after
    /// every state change.
    fn after_change(&self, st: &mut CheckpointState, now: f64, out: &mut Dispatches<'_>) {
        if st.active && st.stable_at.is_none() && all_stopped(st) {
            st.stable_at = Some(now);
            out.emit(now, ProtocolEvent::CheckpointStable { node: self.id.0 });
        }
        if st.stable_at.is_some() && self.children_known(st) {
            let children = self.children(st);
            if children.iter().all(|c| st.child_reports.contains_key(c)) {
                let total: i64 = st.counters.local_count()
                    + children.iter().map(|c| st.child_reports[c].1).sum::<i64>();
                if st.tree_total != Some(total) {
                    st.tree_total = Some(total);
                    if st.collected_at.is_none() {
                        st.collected_at = Some(now);
                    }
                    if let Some(p) = st.pred {
                        if st.last_report != Some(total) {
                            st.report_seq += 1;
                            st.last_report = Some(total);
                            out.commands.push(Command::SendReport {
                                to: p,
                                total,
                                seq: st.report_seq,
                            });
                            out.emit(
                                now,
                                ProtocolEvent::ReportSent {
                                    node: self.id.0,
                                    to: p.0,
                                    total,
                                    seq: st.report_seq,
                                },
                            );
                        }
                    }
                }
            }
        }
    }

    /// Whether all outbound neighbours' predecessors are known, i.e. the
    /// spanning-tree children set is final.
    fn children_known(&self, st: &CheckpointState) -> bool {
        self.outbound
            .iter()
            .all(|(_, v)| st.known_preds.contains_key(v))
    }

    /// The spanning-tree children discovered so far (outbound neighbours
    /// that chose us as predecessor).
    pub fn children(&self, st: &CheckpointState) -> Vec<NodeId> {
        self.outbound
            .iter()
            .filter(|(_, v)| st.known_preds.get(v) == Some(&Some(self.id)))
            .map(|(_, v)| *v)
            .collect()
    }

    /// This machine's intersection.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Protocol configuration in force.
    pub fn config(&self) -> &CheckpointConfig {
        &self.cfg
    }

    /// The variant this deployment runs.
    pub fn variant(&self) -> ProtocolVariant {
        self.cfg.variant
    }

    /// Whether this checkpoint sits on the open-system border.
    pub fn is_border(&self) -> bool {
        self.interaction.any()
    }

    /// Upstream neighbours our label cannot reach; they receive
    /// [`Command::SendPredAnnounce`] at activation instead.
    pub fn oneway_in_neighbors(&self) -> &[NodeId] {
        &self.oneway_in
    }

    /// Downstream neighbours whose labels cannot reach us (one-way
    /// segments); their predecessors arrive via announcements instead.
    pub fn oneway_out_neighbors(&self) -> &[NodeId] {
        &self.oneway_out
    }
}

fn learn_pred(st: &mut CheckpointState, node: NodeId, pred: Option<NodeId>) {
    st.known_preds.entry(node).or_insert(pred);
}

fn all_stopped(st: &CheckpointState) -> bool {
    st.inbound_state
        .values()
        .all(|s| *s == InboundState::Stopped)
}

/// Incremental FNV-1a digest over a per-action rendering of the dispatch
/// stream. Each processed action contributes two lines — the emitted
/// events, then the emitted commands — so a recorded run and a machine-only
/// replay agree iff every action produced byte-identical dispatches in the
/// same order. The same offset/prime as the engine's event-stream digests.
#[derive(Debug, Clone)]
pub struct DispatchDigest {
    hash: u64,
    /// Reused rendering buffer (no per-absorb allocation after warm-up).
    line: String,
}

impl Default for DispatchDigest {
    fn default() -> Self {
        DispatchDigest::new()
    }
}

impl DispatchDigest {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        DispatchDigest {
            hash: 0xcbf2_9ce4_8422_2325,
            line: String::new(),
        }
    }

    /// Folds in the events one action emitted at `node` (first line of the
    /// action's contribution).
    pub fn absorb_events(&mut self, node: NodeId, events: &[(f64, ProtocolEvent)]) {
        self.line.clear();
        let _ = write!(self.line, "E n{} {events:?}", node.0);
        self.eat_line();
    }

    /// Folds in the commands one action emitted at `node` (second line of
    /// the action's contribution).
    pub fn absorb_commands(&mut self, node: NodeId, commands: &[Command]) {
        self.line.clear();
        let _ = write!(self.line, "C n{} {commands:?}", node.0);
        self.eat_line();
    }

    fn eat_line(&mut self) {
        let mut h = self.hash;
        for &b in self.line.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= u64::from(b'\n');
        self.hash = h.wrapping_mul(0x0000_0100_0000_01b3);
    }

    /// The digest so far.
    pub fn value(&self) -> u64 {
        self.hash
    }
}

/// Re-drives the pure machines from a recorded action stream — no
/// simulator, no channel, no RNG — folding every action's dispatches into
/// a [`DispatchDigest`]. Byte-identical digests and final counters between
/// the recording engine and this replayer pin the protocol's determinism.
pub struct Replayer {
    machines: Vec<CheckpointMachine>,
    states: Vec<CheckpointState>,
    digest: DispatchDigest,
    applied: u64,
    cmds: Vec<Command>,
    events: Vec<(f64, ProtocolEvent)>,
}

impl Replayer {
    /// One machine per intersection of `net`, all in the pristine state.
    pub fn new(net: &RoadNetwork, cfg: CheckpointConfig) -> Self {
        let machines: Vec<CheckpointMachine> = net
            .node_ids()
            .map(|n| CheckpointMachine::new(net, n, cfg))
            .collect();
        let states = machines
            .iter()
            .map(CheckpointMachine::initial_state)
            .collect();
        Replayer {
            machines,
            states,
            digest: DispatchDigest::new(),
            applied: 0,
            cmds: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Applies one recorded action at `node` and absorbs its dispatches
    /// into the digest (events line first, commands line second — the
    /// order the recording engine uses).
    pub fn apply(&mut self, node: NodeId, action: &Action) {
        self.cmds.clear();
        self.events.clear();
        let mut out = Dispatches {
            commands: &mut self.cmds,
            events: &mut self.events,
        };
        self.machines[node.index()].process(&mut self.states[node.index()], action, &mut out);
        self.digest.absorb_events(node, &self.events);
        self.digest.absorb_commands(node, &self.cmds);
        self.applied += 1;
    }

    /// The label a pending outbound direction would hand out (pure query,
    /// for hand-scripted traces).
    pub fn offer_label(&self, node: NodeId, onto: EdgeId) -> Option<Label> {
        self.machines[node.index()].offer_label(&self.states[node.index()], onto)
    }

    /// The dispatch-stream digest over every action applied so far.
    pub fn digest(&self) -> u64 {
        self.digest.value()
    }

    /// How many actions have been applied.
    pub fn actions_applied(&self) -> u64 {
        self.applied
    }

    /// A node's replayed state.
    pub fn state(&self, node: NodeId) -> &CheckpointState {
        &self.states[node.index()]
    }

    /// All replayed states, in node order.
    pub fn states(&self) -> &[CheckpointState] {
        &self.states
    }

    /// Final non-interaction local counts, in node order.
    pub fn local_counts(&self) -> Vec<i64> {
        self.states
            .iter()
            .map(|s| s.counters.local_count())
            .collect()
    }

    /// Final net border interactions, in node order.
    pub fn interaction_nets(&self) -> Vec<i64> {
        self.states
            .iter()
            .map(|s| s.counters.interaction_net())
            .collect()
    }

    /// Final collected tree totals, in node order.
    pub fn tree_totals(&self) -> Vec<Option<i64>> {
        self.states.iter().map(|s| s.tree_total).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcount_roadnet::builders::fig1_triangle;

    const CAR: VehicleClass = VehicleClass {
        color: vcount_v2x::Color::Red,
        brand: vcount_v2x::Brand::Apex,
        body: vcount_v2x::BodyType::Sedan,
    };

    /// The no-IO pin: `process()` must draw no RNG, read no clock, and do
    /// no IO. Everything effectful arrives inside the `Action`, so this
    /// module must not even *import* the std IO/clock facilities or an RNG
    /// crate. The needles are assembled at runtime so this test's own
    /// source cannot trip the scan.
    #[test]
    fn machine_module_is_io_free() {
        let source = include_str!("machine.rs");
        let needles: Vec<String> = [
            ["std::", "io"],
            ["std::", "time"],
            ["std::", "fs"],
            ["std::", "net"],
            ["std::", "process"],
            ["std::", "env"],
            ["ra", "nd::"],
            ["Inst", "ant"],
            ["System", "Time"],
            ["thread_", "rng"],
        ]
        .iter()
        .map(|parts| parts.concat())
        .collect();
        for needle in &needles {
            // Only flag identifier-boundary matches: `Brand::Apex` must not
            // trip the RNG-crate needle.
            let violated = source.match_indices(needle.as_str()).any(|(pos, _)| {
                pos == 0
                    || !source[..pos]
                        .chars()
                        .next_back()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_')
            });
            assert!(
                !violated,
                "pure machine module must not reference `{needle}`"
            );
        }
    }

    /// Determinism: the same action sequence applied twice produces the
    /// same dispatch digest and the same final state.
    #[test]
    fn identical_action_streams_replay_to_identical_digests() {
        let net = fig1_triangle(200.0, 1, 6.7);
        let cfg = CheckpointConfig::default();
        let e10 = net.edge_between(NodeId(1), NodeId(0)).unwrap();
        let actions: Vec<(NodeId, Action)> = vec![
            (
                NodeId(0),
                Action {
                    at_s: 0.0,
                    kind: ActionKind::Seed,
                },
            ),
            (
                NodeId(0),
                Action {
                    at_s: 1.0,
                    kind: ActionKind::Entered {
                        vehicle: VehicleId(1),
                        via: Some(e10),
                        class: CAR,
                        label: None,
                    },
                },
            ),
            (
                NodeId(0),
                Action {
                    at_s: 2.0,
                    kind: ActionKind::Adjust { plus: 1, minus: 0 },
                },
            ),
        ];
        let mut a = Replayer::new(&net, cfg);
        let mut b = Replayer::new(&net, cfg);
        for (node, action) in &actions {
            a.apply(*node, action);
            b.apply(*node, action);
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.states(), b.states());
        assert_eq!(a.local_counts()[0], 2);
    }

    /// Crash is a pure no-op; Recover rolls the state back to the carried
    /// image (or keeps it when no image exists yet).
    #[test]
    fn crash_is_noop_and_recover_restores_carried_image() {
        let net = fig1_triangle(200.0, 1, 6.7);
        let cfg = CheckpointConfig::default();
        let e10 = net.edge_between(NodeId(1), NodeId(0)).unwrap();
        let mut rp = Replayer::new(&net, cfg);
        rp.apply(
            NodeId(0),
            &Action {
                at_s: 0.0,
                kind: ActionKind::Seed,
            },
        );
        let image = rp.state(NodeId(0)).clone();
        rp.apply(
            NodeId(0),
            &Action {
                at_s: 1.0,
                kind: ActionKind::Entered {
                    vehicle: VehicleId(9),
                    via: Some(e10),
                    class: CAR,
                    label: None,
                },
            },
        );
        assert_eq!(rp.local_counts()[0], 1);
        let before = rp.state(NodeId(0)).clone();
        rp.apply(
            NodeId(0),
            &Action {
                at_s: 2.0,
                kind: ActionKind::Crash,
            },
        );
        assert_eq!(rp.state(NodeId(0)), &before, "crash mutates nothing");
        rp.apply(
            NodeId(0),
            &Action {
                at_s: 3.0,
                kind: ActionKind::Recover {
                    image: Some(Box::new(image.clone())),
                },
            },
        );
        assert_eq!(rp.state(NodeId(0)), &image, "recover applies the image");
        rp.apply(
            NodeId(0),
            &Action {
                at_s: 4.0,
                kind: ActionKind::Recover { image: None },
            },
        );
        assert_eq!(rp.state(NodeId(0)), &image, "imageless recover keeps state");
    }

    /// Actions round-trip through serde (the trace file format).
    #[test]
    fn actions_round_trip_through_serde() {
        let action = Action {
            at_s: 12.5,
            kind: ActionKind::Entered {
                vehicle: VehicleId(3),
                via: Some(EdgeId(1)),
                class: CAR,
                label: Some(Label {
                    origin: NodeId(0),
                    origin_pred: None,
                    seed: NodeId(0),
                }),
            },
        };
        let json = serde_json::to_string(&action).unwrap();
        let back: Action = serde_json::from_str(&json).unwrap();
        assert_eq!(back, action);
    }
}
