//! The unified checkpoint input: everything real checkpoint equipment can
//! observe, as one enum consumed by [`crate::Checkpoint::handle`].
//!
//! Collapsing the per-event entry points into a single dispatch keeps the
//! protocol surface one function wide: harnesses construct observations,
//! the state machine reacts, and every reaction can emit structured
//! [`vcount_obs::ProtocolEvent`]s from exactly one place.

use vcount_roadnet::{EdgeId, NodeId};
use vcount_v2x::{Label, PatrolStatus, VehicleClass, VehicleId};

/// One observation made at a checkpoint, fed to
/// [`crate::Checkpoint::handle`] together with the current time.
#[derive(Debug, Clone, PartialEq)]
pub enum Observation {
    /// A vehicle entered the checkpoint's surveillance: `via` is the
    /// inbound direction (`None` for an entry from outside the region at a
    /// border checkpoint), `label` any label it carries — now delivered.
    Entered {
        /// The entering vehicle.
        vehicle: VehicleId,
        /// The inbound direction, or `None` for a border entry.
        via: Option<EdgeId>,
        /// The vehicle's exterior class as recognised by the cameras.
        class: VehicleClass,
        /// A carried activation label, if any.
        label: Option<Label>,
    },
    /// A vehicle departed onto `onto` while a label was pending there, and
    /// the handoff exchange completed with the given outcome. The caller
    /// first checks [`crate::Checkpoint::offer_label`] and performs the
    /// (lossy) exchange; this observation reports the result.
    Departed {
        /// The departing vehicle (the label carrier, or the escapee).
        vehicle: VehicleId,
        /// The outbound direction it joined.
        onto: EdgeId,
        /// Whether the handoff was delivered and acknowledged.
        delivered: bool,
        /// Whether the vehicle is one this deployment counts (drives the
        /// −1 compensation on failure, Alg. 3 line 3).
        matches_filter: bool,
    },
    /// A vehicle left the region through this border checkpoint
    /// (outbound interaction, Alg. 5).
    BorderExit {
        /// The leaving vehicle.
        vehicle: VehicleId,
        /// Its exterior class.
        class: VehicleClass,
    },
    /// A patrol car arrived carrying a status snapshot (Theorem 3).
    PatrolStatus {
        /// The patrol car.
        vehicle: VehicleId,
        /// The snapshot it carries.
        status: PatrolStatus,
    },
    /// A relayed (or patrol-carried) predecessor announcement from a
    /// one-way downstream neighbour.
    Announce {
        /// The announcing checkpoint.
        from: NodeId,
        /// Its predecessor (`None` at a seed).
        pred: Option<NodeId>,
    },
    /// A child's subtree report arrived (Alg. 2 phase 1 / Alg. 4 phase 2).
    Report {
        /// The reporting child.
        from: NodeId,
        /// Its subtree total.
        total: i64,
        /// The report's sequence number (highest wins).
        seq: u32,
    },
    /// A finalized segment-watch adjustment for `c(u)` (Alg. 3 lines 5–8);
    /// `plus` and `minus` count matching vehicles only.
    Adjust {
        /// Vehicles that fell behind the label after being counted.
        plus: usize,
        /// Vehicles that jumped ahead of the label uncounted.
        minus: usize,
    },
}
