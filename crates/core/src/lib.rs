//! # vcount-core — the infrastructure-less vehicle counting protocol
//!
//! Reproduction of the primary contribution of Wu, Sabatino, Tsan, Jiang —
//! *An Infrastructure-less Vehicle Counting without Disruption* (ICPP
//! 2014): a fully-distributed, Chandy–Lamport-style protocol that counts
//! every vehicle in a region exactly once using only checkpoint
//! surveillance and the traffic flow as the message carrier.
//!
//! * [`machine::CheckpointMachine`] — the pure per-intersection state
//!   machine covering Alg. 1 (simple closed systems), Alg. 3 (overtakes,
//!   lossy channels, one-way streets, patrol) and Alg. 5 (open systems),
//!   plus the collection logic of Alg. 2/4 (spanning-tree aggregation to
//!   the seed). `process(state, action) → dispatches` performs no IO,
//!   draws no RNG and reads no clock; every effectful input arrives
//!   inside the [`machine::Action`].
//! * [`checkpoint::Checkpoint`] — the effectful shell deployments drive:
//!   it mints actions from [`observation::Observation`]s and buffers the
//!   emitted events.
//! * [`machine::Replayer`] — re-drives recorded action streams without
//!   any simulator, pinning determinism via [`machine::DispatchDigest`].
//! * [`config`] — protocol variants and the specified-type filter.
//! * [`counter::Counters`] — `c(u, v)` with overtake/loss/interaction
//!   components.
//! * [`baseline`] — the unsynchronized baselines the paper argues against.
//!
//! A harness feeds [`observation::Observation`]s to
//! [`checkpoint::Checkpoint::handle`] and performs the transport
//! [`command::Command`]s appended to its scratch buffer; alongside, the
//! machine buffers structured [`vcount_obs::ProtocolEvent`]s for
//! observability sinks. `vcount-sim` wires it to the traffic and V2X
//! substrates; the unit tests here drive it directly.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baseline;
pub mod checkpoint;
pub mod command;
pub mod config;
pub mod counter;
pub mod machine;
pub mod observation;

pub use baseline::{ClassDedupCounter, NaiveIntervalCounter};
pub use checkpoint::{Checkpoint, CheckpointState, InboundState, LabelState};
pub use command::Command;
pub use config::{CheckpointConfig, ProtocolVariant};
pub use counter::Counters;
pub use machine::{Action, ActionKind, CheckpointMachine, DispatchDigest, Dispatches, Replayer};
pub use observation::Observation;
pub use vcount_obs::{EventKind, ProtocolEvent};
