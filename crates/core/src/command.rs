//! Commands a checkpoint asks its communication layer to perform.
//!
//! The checkpoint state machine is pure: it consumes observations and
//! returns [`Command`]s; the harness (or real roadside hardware) performs
//! the transport. This keeps Alg. 1/3/5 testable without any simulator.

use serde::{Deserialize, Serialize};
use vcount_roadnet::NodeId;

/// A transport request emitted by the checkpoint state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Command {
    /// Announce this checkpoint's predecessor choice to an upstream
    /// neighbour that cannot receive our label because the connecting
    /// street is one-way toward us (delivered via the directional V2V
    /// relay of ref \[7\], or by patrol under Alg. 4).
    SendPredAnnounce {
        /// The neighbour that needs to learn our predecessor.
        to: NodeId,
        /// Our predecessor (`None` at a seed).
        pred: Option<NodeId>,
    },
    /// Carry the stabilized subtree total to the predecessor (Alg. 2
    /// phase 2 / Alg. 4 phase 4). Re-issued with a higher sequence number
    /// when a late adjustment (lossy-handoff compensation or overtake
    /// correction landing after phase 6) changes the subtree total; the
    /// receiver keeps the highest-sequence value per child.
    SendReport {
        /// Destination: `p(u)`.
        to: NodeId,
        /// `c(u) + Σ_{v ∈ children} subtree(v)`.
        total: i64,
        /// Monotone per-sender sequence number (last writer wins).
        seq: u32,
    },
}
