//! Baseline counters the paper argues against (Section II).
//!
//! Neither baseline synchronizes checkpoints, so both fail in exactly the
//! ways the paper predicts; the `ablation_baseline` bench quantifies the
//! error against the synchronized protocol.
//!
//! * [`NaiveIntervalCounter`] — every checkpoint independently counts every
//!   matching vehicle entering during an observation window. "Some vehicles
//!   might have traveled many sites and may have been counted multiple
//!   times, i.e., double-counting."
//! * [`ClassDedupCounter`] — a central aggregator deduplicates sightings by
//!   exterior characteristics (the image-recognition approach): vehicles of
//!   the same color/brand/type collapse into one, so it *undercounts*;
//!   "adopting image recognition to avoid double-counting is costly and
//!   cannot ensure 100% accuracy."

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use vcount_v2x::{ClassFilter, VehicleClass};

/// Independent per-checkpoint interval counting (double-counts).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NaiveIntervalCounter {
    filter: ClassFilter,
    total: u64,
}

impl NaiveIntervalCounter {
    /// Creates the baseline with a class filter.
    pub fn new(filter: ClassFilter) -> Self {
        NaiveIntervalCounter { filter, total: 0 }
    }

    /// Observes one vehicle entering any checkpoint.
    pub fn observe(&mut self, class: &VehicleClass) {
        if self.filter.matches(class) {
            self.total += 1;
        }
    }

    /// The (inflated) count.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// Central dedup-by-appearance counting (undercounts on class collisions).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ClassDedupCounter {
    filter: ClassFilter,
    seen: BTreeSet<VehicleClass>,
}

impl ClassDedupCounter {
    /// Creates the baseline with a class filter.
    pub fn new(filter: ClassFilter) -> Self {
        ClassDedupCounter {
            filter,
            seen: BTreeSet::new(),
        }
    }

    /// Observes one vehicle entering any checkpoint.
    pub fn observe(&mut self, class: &VehicleClass) {
        if self.filter.matches(class) {
            self.seen.insert(*class);
        }
    }

    /// The (deflated) count of distinct appearances.
    pub fn total(&self) -> u64 {
        self.seen.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcount_v2x::{BodyType, Brand, Color};

    const CAR: VehicleClass = VehicleClass {
        color: Color::Red,
        brand: Brand::Apex,
        body: BodyType::Sedan,
    };
    const OTHER: VehicleClass = VehicleClass {
        color: Color::Blue,
        brand: Brand::Apex,
        body: BodyType::Suv,
    };

    #[test]
    fn naive_counter_double_counts_repeat_sightings() {
        let mut n = NaiveIntervalCounter::new(ClassFilter::ALL);
        for _ in 0..3 {
            n.observe(&CAR); // same physical vehicle at three checkpoints
        }
        assert_eq!(n.total(), 3);
    }

    #[test]
    fn dedup_counter_collapses_identical_classes() {
        let mut d = ClassDedupCounter::new(ClassFilter::ALL);
        d.observe(&CAR);
        d.observe(&CAR); // a *different* red Apex sedan — lost
        d.observe(&OTHER);
        assert_eq!(d.total(), 2);
    }

    #[test]
    fn both_respect_the_filter_and_skip_patrol() {
        let mut n = NaiveIntervalCounter::new(ClassFilter::white_vans());
        let mut d = ClassDedupCounter::new(ClassFilter::white_vans());
        n.observe(&CAR);
        d.observe(&CAR);
        n.observe(&VehicleClass::PATROL);
        d.observe(&VehicleClass::PATROL);
        n.observe(&VehicleClass::WHITE_VAN);
        d.observe(&VehicleClass::WHITE_VAN);
        assert_eq!(n.total(), 1);
        assert_eq!(d.total(), 1);
    }
}
