//! Checkpoint counters — the local view `c(u)` of Table I, split into the
//! components the extensions adjust.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vcount_roadnet::EdgeId;

/// All counter state of one checkpoint.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// `c(u, v)` — raw phase-5 counts per inbound direction.
    per_inbound: BTreeMap<EdgeId, u64>,
    /// Net overtake corrections (Alg. 3 lines 5–8), may be negative.
    overtake_adjust: i64,
    /// −1 per failed label handoff (Alg. 3 line 3).
    loss_compensation: u64,
    /// +1 per vehicle entering from outside at this border checkpoint
    /// (Alg. 5, inbound interaction). Never stops.
    interaction_in: u64,
    /// +1 per vehicle leaving to the outside here (applied as −1 to the
    /// population view). Never stops.
    interaction_out: u64,
}

impl Counters {
    /// Increments `c(u, via)` for a phase-5 count.
    pub fn count_inbound(&mut self, via: EdgeId) {
        *self.per_inbound.entry(via).or_insert(0) += 1;
    }

    /// Raw count of one inbound direction.
    pub fn inbound(&self, via: EdgeId) -> u64 {
        self.per_inbound.get(&via).copied().unwrap_or(0)
    }

    /// Applies a net overtake adjustment.
    pub fn adjust_overtake(&mut self, delta: i64) {
        self.overtake_adjust += delta;
    }

    /// Records one failed label handoff (−1 compensation).
    pub fn compensate_loss(&mut self) {
        self.loss_compensation += 1;
    }

    /// Records an inbound interaction (+1).
    pub fn count_interaction_in(&mut self) {
        self.interaction_in += 1;
    }

    /// Records an outbound interaction (−1 to the population view).
    pub fn count_interaction_out(&mut self) {
        self.interaction_out += 1;
    }

    /// The stabilizable non-interaction local count:
    /// `Σ_v c(u,v) + overtake adjustments − loss compensations`.
    pub fn local_count(&self) -> i64 {
        let raw: u64 = self.per_inbound.values().sum();
        raw as i64 + self.overtake_adjust - self.loss_compensation as i64
    }

    /// Net interaction contribution to the live population
    /// (`in − out`; Alg. 5).
    pub fn interaction_net(&self) -> i64 {
        self.interaction_in as i64 - self.interaction_out as i64
    }

    /// Raw interaction counters `(in, out)`.
    pub fn interaction_raw(&self) -> (u64, u64) {
        (self.interaction_in, self.interaction_out)
    }

    /// Total overtake adjustment applied so far.
    pub fn overtake_total(&self) -> i64 {
        self.overtake_adjust
    }

    /// Number of loss compensations applied so far.
    pub fn loss_total(&self) -> u64 {
        self.loss_compensation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_count_combines_components() {
        let mut c = Counters::default();
        c.count_inbound(EdgeId(0));
        c.count_inbound(EdgeId(0));
        c.count_inbound(EdgeId(1));
        assert_eq!(c.inbound(EdgeId(0)), 2);
        assert_eq!(c.inbound(EdgeId(1)), 1);
        assert_eq!(c.local_count(), 3);
        c.adjust_overtake(2);
        c.adjust_overtake(-1);
        assert_eq!(c.local_count(), 4);
        c.compensate_loss();
        assert_eq!(c.local_count(), 3);
        assert_eq!(c.overtake_total(), 1);
        assert_eq!(c.loss_total(), 1);
    }

    #[test]
    fn interaction_is_separate_from_local_count() {
        let mut c = Counters::default();
        c.count_interaction_in();
        c.count_interaction_in();
        c.count_interaction_out();
        assert_eq!(c.local_count(), 0);
        assert_eq!(c.interaction_net(), 1);
        assert_eq!(c.interaction_raw(), (2, 1));
    }

    #[test]
    fn local_count_can_go_negative_transiently() {
        let mut c = Counters::default();
        c.compensate_loss();
        assert_eq!(c.local_count(), -1);
    }

    #[test]
    fn unknown_edge_counts_zero() {
        let c = Counters::default();
        assert_eq!(c.inbound(EdgeId(9)), 0);
    }
}
