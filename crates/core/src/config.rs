//! Protocol configuration.

use serde::{Deserialize, Serialize};
use vcount_v2x::{AdjustMode, ClassFilter};

/// Which of the paper's algorithm stacks a checkpoint runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ProtocolVariant {
    /// Alg. 1 + Alg. 2: closed, simple road model (FIFO traffic,
    /// bidirectional segments, lossless exchanges).
    Simple,
    /// Alg. 3 + Alg. 4: closed system with overtakes, multi-lane, lossy
    /// communication, one-way streets, optional patrol support.
    #[default]
    Extended,
    /// Alg. 5 (+ Alg. 4 for collection): open road system with border
    /// interaction counting.
    Open,
}

impl ProtocolVariant {
    /// Whether border interaction counters are active in this variant.
    pub fn counts_interaction(self) -> bool {
        matches!(self, ProtocolVariant::Open)
    }
}

/// Per-checkpoint protocol options. One config is shared by every
/// checkpoint in a deployment ("everyone" model: each site runs the same
/// generic process).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointConfig {
    /// Algorithm stack.
    pub variant: ProtocolVariant,
    /// Which vehicles to count (the specified-type extension); defaults to
    /// every civilian vehicle.
    pub filter: ClassFilter,
    /// Overtake-adjustment accounting mode (used by the harness when
    /// finalizing segment watches; recorded here so a deployment is fully
    /// described by one config value).
    pub adjust_mode: AdjustMode,
    /// Apply the −1 compensation of Alg. 3 line 3 on failed label
    /// handoffs. Disabling this is an ablation reproducing the
    /// double-counting the paper's lossy-communication extension exists to
    /// prevent.
    pub compensate_loss: bool,
    /// Stop an inbound counter from any patrol-carried *status* snapshot
    /// (the paper's literal Theorem 3 reading). Off by default: the safe
    /// integration lets patrol cars act as label carriers instead; see
    /// DESIGN.md §4. Enabling this is an ablation that can miscount
    /// vehicles still in transit on the segment.
    pub patrol_stale_stop: bool,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig {
            variant: ProtocolVariant::Extended,
            filter: ClassFilter::ALL,
            adjust_mode: AdjustMode::NetInversion,
            compensate_loss: true,
            patrol_stale_stop: false,
        }
    }
}

impl CheckpointConfig {
    /// Convenience constructor for a variant with default options.
    pub fn for_variant(variant: ProtocolVariant) -> Self {
        CheckpointConfig {
            variant,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_open_counts_interaction() {
        assert!(!ProtocolVariant::Simple.counts_interaction());
        assert!(!ProtocolVariant::Extended.counts_interaction());
        assert!(ProtocolVariant::Open.counts_interaction());
    }

    #[test]
    fn default_config_is_extended_net_mode() {
        let c = CheckpointConfig::default();
        assert_eq!(c.variant, ProtocolVariant::Extended);
        assert_eq!(c.adjust_mode, AdjustMode::NetInversion);
        assert!(c.compensate_loss);
        assert!(!c.patrol_stale_stop);
    }
}
