//! The checkpoint state machine — Algorithms 1, 3 and 5 under the
//! "everyone" model: every intersection runs this same generic process.
//!
//! The machine is pure and event-driven. It consumes exactly what real
//! checkpoint equipment observes — one [`Observation`] at a time, fed to
//! [`Checkpoint::handle`] — and produces counter updates, transport
//! [`Command`]s, and structured [`ProtocolEvent`]s (buffered until the
//! harness drains them with [`Checkpoint::take_events`]). All timing comes
//! from the caller-provided `now` values, so the machine is equally at
//! home under the simulator or on a wall clock.

use crate::command::Command;
use crate::config::{CheckpointConfig, ProtocolVariant};
use crate::counter::Counters;
use crate::observation::Observation;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vcount_obs::ProtocolEvent;
use vcount_roadnet::{EdgeId, Interaction, NodeId, RoadNetwork};
use vcount_v2x::{Label, PatrolStatus, VehicleClass, VehicleId};

/// Counting state of one inbound direction `u ← v` (phase 1/3/4/5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InboundState {
    /// Not yet activated (checkpoint inactive).
    Idle,
    /// Counting every unlabeled matching vehicle (phase 5).
    Counting,
    /// Counting ended: the direction's label arrived (phase 4), or the
    /// direction comes from the predecessor and never started (phase 3).
    Stopped,
}

/// Labelling state of one outbound direction (phase 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LabelState {
    /// Checkpoint inactive — nothing to propagate yet.
    Idle,
    /// Waiting for the next vehicle to join this direction (retrying after
    /// failed handoffs, Alg. 3 line 3).
    Pending,
    /// Exactly one label was delivered on this direction.
    Done,
}

/// Serializable dynamic state of a [`Checkpoint`] at a step boundary,
/// produced by [`Checkpoint::export_state`] and re-applied with
/// [`Checkpoint::restore_state`]. The topology view (inbound/outbound
/// directions, one-way neighbours, interaction flags) is *not* included —
/// it is a pure function of the network and is rebuilt by
/// [`Checkpoint::new`] on restore. The event buffer is excluded too: the
/// engine drains it after every observation, so it is provably empty at
/// snapshot points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointState {
    /// Whether the checkpoint has been activated (phase 1/3).
    pub active: bool,
    /// Whether it was activated as a seed.
    pub is_seed: bool,
    /// `p(u)` — the spanning-tree predecessor.
    pub pred: Option<NodeId>,
    /// The seed whose wave activated this checkpoint.
    pub wave_seed: Option<NodeId>,
    /// Per-inbound-direction counting state.
    pub inbound_state: BTreeMap<EdgeId, InboundState>,
    /// Per-outbound-direction labelling state.
    pub label_state: BTreeMap<EdgeId, LabelState>,
    /// The local counter components `c(u)`.
    pub counters: Counters,
    /// Learned predecessor per neighbour.
    pub known_preds: BTreeMap<NodeId, Option<NodeId>>,
    /// Highest-sequence report per child: `(seq, total)`.
    pub child_reports: BTreeMap<NodeId, (u32, i64)>,
    /// Last subtree total reported upward.
    pub last_report: Option<i64>,
    /// Next outgoing report sequence number.
    pub report_seq: u32,
    /// Collected tree total (seeds only).
    pub tree_total: Option<i64>,
    /// Activation time, if activated.
    pub activated_at: Option<f64>,
    /// Local stabilization time, if stable.
    pub stable_at: Option<f64>,
    /// Collection time (seeds only).
    pub collected_at: Option<f64>,
}

/// One checkpoint of the deployment. See module docs.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    id: NodeId,
    cfg: CheckpointConfig,
    /// Inbound directions `(edge v->u, v)`.
    inbound: Vec<(EdgeId, NodeId)>,
    /// Outbound directions `(edge u->v, v)`.
    outbound: Vec<(EdgeId, NodeId)>,
    /// Inbound neighbours unreachable by our label (no edge `u -> w`):
    /// they learn our predecessor via `SendPredAnnounce`.
    oneway_in: Vec<NodeId>,
    /// Outbound neighbours with no reverse edge: their labels cannot reach
    /// us, so we learn their predecessor from announcements instead.
    oneway_out: Vec<NodeId>,
    interaction: Interaction,

    active: bool,
    is_seed: bool,
    pred: Option<NodeId>,
    wave_seed: Option<NodeId>,
    inbound_state: BTreeMap<EdgeId, InboundState>,
    label_state: BTreeMap<EdgeId, LabelState>,
    counters: Counters,

    /// Learned predecessor of each neighbour (from labels, announcements,
    /// patrol snapshots, or reports).
    known_preds: BTreeMap<NodeId, Option<NodeId>>,
    /// Highest-sequence report received per child: `(seq, total)`.
    child_reports: BTreeMap<NodeId, (u32, i64)>,
    /// Last subtree total reported to the predecessor, if any.
    last_report: Option<i64>,
    /// Sequence number of the next outgoing report.
    report_seq: u32,
    tree_total: Option<i64>,

    activated_at: Option<f64>,
    stable_at: Option<f64>,
    collected_at: Option<f64>,

    /// Buffered protocol events `(time, event)`, drained by the harness.
    events: Vec<(f64, ProtocolEvent)>,
}

impl Checkpoint {
    /// Builds the checkpoint for intersection `node`, extracting its local
    /// topology view from the network.
    pub fn new(net: &RoadNetwork, node: NodeId, cfg: CheckpointConfig) -> Self {
        let inbound: Vec<(EdgeId, NodeId)> = net
            .in_edges(node)
            .iter()
            .map(|&e| (e, net.edge(e).from))
            .collect();
        let outbound: Vec<(EdgeId, NodeId)> = net
            .out_edges(node)
            .iter()
            .map(|&e| (e, net.edge(e).to))
            .collect();
        let oneway_in = inbound
            .iter()
            .filter(|(_, w)| net.edge_between(node, *w).is_none())
            .map(|(_, w)| *w)
            .collect();
        let oneway_out = outbound
            .iter()
            .filter(|(_, v)| net.edge_between(*v, node).is_none())
            .map(|(_, v)| *v)
            .collect();
        let inbound_state = inbound
            .iter()
            .map(|(e, _)| (*e, InboundState::Idle))
            .collect();
        let label_state = outbound
            .iter()
            .map(|(e, _)| (*e, LabelState::Idle))
            .collect();
        Checkpoint {
            id: node,
            cfg,
            inbound,
            outbound,
            oneway_in,
            oneway_out,
            interaction: net.interaction(node),
            active: false,
            is_seed: false,
            pred: None,
            wave_seed: None,
            inbound_state,
            label_state,
            counters: Counters::default(),
            known_preds: BTreeMap::new(),
            child_reports: BTreeMap::new(),
            last_report: None,
            report_seq: 0,
            tree_total: None,
            activated_at: None,
            stable_at: None,
            collected_at: None,
            events: Vec::new(),
        }
    }

    /// Captures the dynamic protocol state for snapshot/resume. Must be
    /// called with the event buffer drained (i.e. at a step boundary).
    pub fn export_state(&self) -> CheckpointState {
        debug_assert!(
            self.events.is_empty(),
            "export_state with undrained protocol events"
        );
        CheckpointState {
            active: self.active,
            is_seed: self.is_seed,
            pred: self.pred,
            wave_seed: self.wave_seed,
            inbound_state: self.inbound_state.clone(),
            label_state: self.label_state.clone(),
            counters: self.counters.clone(),
            known_preds: self.known_preds.clone(),
            child_reports: self.child_reports.clone(),
            last_report: self.last_report,
            report_seq: self.report_seq,
            tree_total: self.tree_total,
            activated_at: self.activated_at,
            stable_at: self.stable_at,
            collected_at: self.collected_at,
        }
    }

    /// Re-applies state captured by [`Checkpoint::export_state`] onto a
    /// freshly built checkpoint (same network, same node).
    pub fn restore_state(&mut self, state: CheckpointState) {
        self.active = state.active;
        self.is_seed = state.is_seed;
        self.pred = state.pred;
        self.wave_seed = state.wave_seed;
        self.inbound_state = state.inbound_state;
        self.label_state = state.label_state;
        self.counters = state.counters;
        self.known_preds = state.known_preds;
        self.child_reports = state.child_reports;
        self.last_report = state.last_report;
        self.report_seq = state.report_seq;
        self.tree_total = state.tree_total;
        self.activated_at = state.activated_at;
        self.stable_at = state.stable_at;
        self.collected_at = state.collected_at;
    }

    // ------------------------------------------------------------------
    // Unified dispatch
    // ------------------------------------------------------------------

    /// Processes one [`Observation`] at time `now` and returns the
    /// transport commands it produced. This is the protocol's single entry
    /// point; side effects beyond the returned commands are counter
    /// updates and buffered [`ProtocolEvent`]s (see
    /// [`Checkpoint::take_events`]).
    pub fn handle(&mut self, obs: Observation, now: f64) -> Vec<Command> {
        let mut cmds = Vec::new();
        match obs {
            Observation::Entered {
                vehicle,
                via,
                class,
                label,
            } => self.enter(now, vehicle, via, &class, label, &mut cmds),
            Observation::Departed {
                vehicle,
                onto,
                delivered,
                matches_filter,
            } => self.depart(now, vehicle, onto, delivered, matches_filter, &mut cmds),
            Observation::BorderExit { vehicle, class } => {
                self.border_exit(now, vehicle, &class, &mut cmds)
            }
            Observation::PatrolStatus { vehicle, status } => {
                self.patrol(now, vehicle, &status, &mut cmds)
            }
            Observation::Announce { from, pred } => {
                self.learn_pred(from, pred);
                self.after_change(now, &mut cmds);
            }
            Observation::Report { from, total, seq } => {
                self.report(now, from, total, seq, &mut cmds)
            }
            Observation::Adjust { plus, minus } => self.adjust(now, plus, minus, &mut cmds),
        }
        cmds
    }

    /// Drains the buffered protocol events, oldest first.
    pub fn take_events(&mut self) -> Vec<(f64, ProtocolEvent)> {
        std::mem::take(&mut self.events)
    }

    /// Appends the buffered protocol events to `out` and clears the
    /// buffer (allocation-free when the buffer is empty).
    pub fn drain_events_into(&mut self, out: &mut Vec<(f64, ProtocolEvent)>) {
        out.append(&mut self.events);
    }

    /// The buffered, not-yet-drained protocol events.
    pub fn pending_events(&self) -> &[(f64, ProtocolEvent)] {
        &self.events
    }

    #[inline]
    fn emit(&mut self, now: f64, event: ProtocolEvent) {
        self.events.push((now, event));
    }

    // ------------------------------------------------------------------
    // Phase 1 & 3: activation
    // ------------------------------------------------------------------

    /// Phase 1: initialize this checkpoint as a seed (and data sink). All
    /// inbound counting starts; labels become pending on every outbound
    /// direction.
    pub fn activate_as_seed(&mut self, now: f64) -> Vec<Command> {
        assert!(
            !self.active,
            "seed activation on an already active checkpoint"
        );
        self.is_seed = true;
        self.wave_seed = Some(self.id);
        let mut cmds = Vec::new();
        self.activate(now, None, &mut cmds);
        cmds
    }

    fn activate(&mut self, now: f64, pred: Option<NodeId>, cmds: &mut Vec<Command>) {
        self.active = true;
        self.pred = pred;
        self.activated_at = Some(now);
        self.emit(
            now,
            ProtocolEvent::CheckpointActivated {
                node: self.id.0,
                pred: pred.map(|p| p.0),
                wave_seed: self.wave_seed.expect("wave seed set before activation").0,
                is_seed: self.is_seed,
            },
        );
        for (e, origin) in &self.inbound {
            let state = if Some(*origin) == pred {
                // Traffic from the predecessor is already counted upstream
                // (phase 3 activates only `s(u)` directions).
                InboundState::Stopped
            } else {
                InboundState::Counting
            };
            self.inbound_state.insert(*e, state);
        }
        for (e, _) in &self.outbound {
            self.label_state.insert(*e, LabelState::Pending);
        }
        // Upstream one-way neighbours cannot receive our label; announce
        // our predecessor so their spanning-tree child discovery completes.
        for w in self.oneway_in.clone() {
            cmds.push(Command::SendPredAnnounce { to: w, pred });
        }
        self.after_change(now, cmds);
    }

    // ------------------------------------------------------------------
    // Phases 3, 4, 5: vehicle entry
    // ------------------------------------------------------------------

    fn enter(
        &mut self,
        now: f64,
        vehicle: VehicleId,
        via: Option<EdgeId>,
        class: &VehicleClass,
        label: Option<Label>,
        cmds: &mut Vec<Command>,
    ) {
        match via {
            None => {
                // Inbound interaction (Alg. 5): active border checkpoints
                // count every matching vehicle coming in from outside.
                if self.active
                    && self.cfg.variant.counts_interaction()
                    && self.interaction.inbound
                    && self.cfg.filter.matches(class)
                {
                    self.counters.count_interaction_in();
                    self.emit(
                        now,
                        ProtocolEvent::BorderEntry {
                            node: self.id.0,
                            vehicle: vehicle.0,
                        },
                    );
                }
            }
            Some(e) => {
                debug_assert!(
                    self.inbound_state.contains_key(&e),
                    "entry via unknown inbound edge {e}"
                );
                if let Some(label) = label {
                    self.learn_pred(label.origin, label.origin_pred);
                    if !self.active {
                        // Phase 3: propagation to an inactive checkpoint.
                        self.wave_seed = Some(label.seed);
                        self.activate(now, Some(label.origin), cmds);
                        return; // activate() ran after_change already
                    } else if self.inbound_state.get(&e) == Some(&InboundState::Counting) {
                        // Phase 4: the backwash stops this direction.
                        self.inbound_state.insert(e, InboundState::Stopped);
                        self.emit(
                            now,
                            ProtocolEvent::InboundStopped {
                                node: self.id.0,
                                edge: e.0,
                            },
                        );
                    }
                    // The labeled vehicle itself is never counted (phase 5
                    // counts unlabeled vehicles only).
                } else if self.active
                    && self.inbound_state.get(&e) == Some(&InboundState::Counting)
                    && self.cfg.filter.matches(class)
                {
                    // Phase 5: count the unlabeled matching vehicle.
                    self.counters.count_inbound(e);
                    self.emit(
                        now,
                        ProtocolEvent::VehicleCounted {
                            node: self.id.0,
                            edge: e.0,
                            vehicle: vehicle.0,
                        },
                    );
                }
            }
        }
        self.after_change(now, cmds);
    }

    // ------------------------------------------------------------------
    // Phase 2: labelling departures
    // ------------------------------------------------------------------

    /// Phase 2: a vehicle is joining outbound direction `onto`; returns the
    /// label to hand it when one is pending. The caller performs the lossy
    /// handoff exchange and reports the outcome with an
    /// [`Observation::Departed`].
    pub fn offer_label(&self, onto: EdgeId) -> Option<Label> {
        if self.active && self.label_state.get(&onto) == Some(&LabelState::Pending) {
            Some(Label {
                origin: self.id,
                origin_pred: self.pred,
                seed: self.wave_seed.expect("active checkpoint has a wave seed"),
            })
        } else {
            None
        }
    }

    fn depart(
        &mut self,
        now: f64,
        vehicle: VehicleId,
        onto: EdgeId,
        delivered: bool,
        matches_filter: bool,
        cmds: &mut Vec<Command>,
    ) {
        debug_assert_eq!(
            self.label_state.get(&onto),
            Some(&LabelState::Pending),
            "departure handoff without a pending label"
        );
        self.emit(
            now,
            ProtocolEvent::LabelEmitted {
                node: self.id.0,
                edge: onto.0,
                vehicle: vehicle.0,
            },
        );
        if delivered {
            // Exactly one label is now in flight on that direction.
            self.label_state.insert(onto, LabelState::Done);
            self.emit(
                now,
                ProtocolEvent::LabelHandoffAcked {
                    node: self.id.0,
                    edge: onto.0,
                    vehicle: vehicle.0,
                },
            );
        } else {
            // Alg. 3 line 3: the labelling retries with the next vehicle;
            // when the escaping vehicle is one we count, compensate the
            // future double count with −1.
            self.emit(
                now,
                ProtocolEvent::LabelHandoffFailed {
                    node: self.id.0,
                    edge: onto.0,
                    vehicle: vehicle.0,
                },
            );
            if matches_filter && self.cfg.compensate_loss {
                self.counters.compensate_loss();
                self.emit(
                    now,
                    ProtocolEvent::LossCompensation {
                        node: self.id.0,
                        edge: onto.0,
                        vehicle: vehicle.0,
                    },
                );
                self.after_change(now, cmds);
            }
        }
    }

    // ------------------------------------------------------------------
    // Alg. 5: border exits
    // ------------------------------------------------------------------

    fn border_exit(
        &mut self,
        now: f64,
        vehicle: VehicleId,
        class: &VehicleClass,
        cmds: &mut Vec<Command>,
    ) {
        let counted = self.active
            && self.cfg.variant.counts_interaction()
            && self.interaction.outbound
            && self.cfg.filter.matches(class);
        if counted {
            self.counters.count_interaction_out();
            self.emit(
                now,
                ProtocolEvent::BorderExit {
                    node: self.id.0,
                    vehicle: vehicle.0,
                },
            );
        }
        self.after_change(now, cmds);
        debug_assert!(cmds.is_empty(), "exit cannot complete collection");
    }

    // ------------------------------------------------------------------
    // Alg. 3 lines 5-8: overtake adjustment
    // ------------------------------------------------------------------

    fn adjust(&mut self, now: f64, plus: usize, minus: usize, cmds: &mut Vec<Command>) {
        self.counters.adjust_overtake(plus as i64 - minus as i64);
        self.emit(
            now,
            ProtocolEvent::OvertakeAdjustment {
                node: self.id.0,
                plus: plus as u32,
                minus: minus as u32,
            },
        );
        self.after_change(now, cmds);
    }

    // ------------------------------------------------------------------
    // Theorem 3 (ablation) and collection transport inputs
    // ------------------------------------------------------------------

    fn patrol(
        &mut self,
        now: f64,
        vehicle: VehicleId,
        status: &PatrolStatus,
        cmds: &mut Vec<Command>,
    ) {
        // In the default integration patrol cars act as label carriers and
        // this only harvests predecessor knowledge; with
        // `patrol_stale_stop` it additionally stops any counting direction
        // whose origin the patrol saw active (the paper's literal
        // Theorem 3 reading — unsafe under slow traffic, see DESIGN.md §4).
        self.emit(
            now,
            ProtocolEvent::PatrolStatusRelay {
                node: self.id.0,
                vehicle: vehicle.0,
                observed: status.observations.len() as u32,
            },
        );
        if self.cfg.patrol_stale_stop {
            for (e, origin) in self.inbound.clone() {
                if self.inbound_state.get(&e) == Some(&InboundState::Counting)
                    && status.status_of(origin) == Some(true)
                {
                    self.inbound_state.insert(e, InboundState::Stopped);
                    self.emit(
                        now,
                        ProtocolEvent::InboundStopped {
                            node: self.id.0,
                            edge: e.0,
                        },
                    );
                }
            }
        }
        self.after_change(now, cmds);
    }

    fn report(&mut self, now: f64, from: NodeId, total: i64, seq: u32, cmds: &mut Vec<Command>) {
        // A report is itself proof that `from` chose us as predecessor.
        // Reports may be re-issued when late adjustments land after
        // phase 6; the highest sequence number wins, so out-of-order
        // transport is safe.
        self.learn_pred(from, Some(self.id));
        match self.child_reports.get(&from).copied() {
            Some((old_seq, _)) if seq >= old_seq => {
                if seq > old_seq {
                    self.emit(
                        now,
                        ProtocolEvent::ReportSuperseded {
                            node: self.id.0,
                            child: from.0,
                            old_seq,
                            new_seq: seq,
                        },
                    );
                }
                self.child_reports.insert(from, (seq, total));
            }
            Some(_) => {} // Stale (lower-sequence) report: ignore.
            None => {
                self.child_reports.insert(from, (seq, total));
            }
        }
        self.after_change(now, cmds);
    }

    fn learn_pred(&mut self, node: NodeId, pred: Option<NodeId>) {
        self.known_preds.entry(node).or_insert(pred);
    }

    // ------------------------------------------------------------------
    // Phase 6 + Alg. 2: stabilization and collection
    // ------------------------------------------------------------------

    fn after_change(&mut self, now: f64, cmds: &mut Vec<Command>) {
        if self.active && self.stable_at.is_none() && self.all_stopped() {
            self.stable_at = Some(now);
            self.emit(now, ProtocolEvent::CheckpointStable { node: self.id.0 });
        }
        if self.stable_at.is_some() && self.children_known() {
            let children = self.children();
            if children.iter().all(|c| self.child_reports.contains_key(c)) {
                let total: i64 = self.counters.local_count()
                    + children
                        .iter()
                        .map(|c| self.child_reports[c].1)
                        .sum::<i64>();
                if self.tree_total != Some(total) {
                    self.tree_total = Some(total);
                    if self.collected_at.is_none() {
                        self.collected_at = Some(now);
                    }
                    if let Some(p) = self.pred {
                        if self.last_report != Some(total) {
                            self.report_seq += 1;
                            self.last_report = Some(total);
                            cmds.push(Command::SendReport {
                                to: p,
                                total,
                                seq: self.report_seq,
                            });
                            self.emit(
                                now,
                                ProtocolEvent::ReportSent {
                                    node: self.id.0,
                                    to: p.0,
                                    total,
                                    seq: self.report_seq,
                                },
                            );
                        }
                    }
                }
            }
        }
    }

    fn all_stopped(&self) -> bool {
        self.inbound_state
            .values()
            .all(|s| *s == InboundState::Stopped)
    }

    /// Whether all outbound neighbours' predecessors are known, i.e. the
    /// spanning-tree children set is final.
    fn children_known(&self) -> bool {
        self.outbound
            .iter()
            .all(|(_, v)| self.known_preds.contains_key(v))
    }

    /// The spanning-tree children discovered so far (outbound neighbours
    /// that chose us as predecessor).
    pub fn children(&self) -> Vec<NodeId> {
        self.outbound
            .iter()
            .filter(|(_, v)| self.known_preds.get(v) == Some(&Some(self.id)))
            .map(|(_, v)| *v)
            .collect()
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// This checkpoint's intersection.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Whether the local counting has been activated.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Whether this checkpoint is a seed.
    pub fn is_seed(&self) -> bool {
        self.is_seed
    }

    /// `p(u)` — the predecessor whose label activated us.
    pub fn pred(&self) -> Option<NodeId> {
        self.pred
    }

    /// Phase 6: the local non-interaction count has stabilized (every
    /// activated inbound direction has ended).
    pub fn is_stable(&self) -> bool {
        self.stable_at.is_some()
    }

    /// When the checkpoint activated (simulated seconds).
    pub fn activated_at(&self) -> Option<f64> {
        self.activated_at
    }

    /// When the local view stabilized (simulated seconds).
    pub fn stable_at(&self) -> Option<f64> {
        self.stable_at
    }

    /// When the subtree total was finalized / reported (simulated seconds).
    pub fn collected_at(&self) -> Option<f64> {
        self.collected_at
    }

    /// The stabilizable local count `c(u)` (non-interaction).
    pub fn local_count(&self) -> i64 {
        self.counters.local_count()
    }

    /// Net border interaction (`in − out`, Alg. 5).
    pub fn interaction_net(&self) -> i64 {
        self.counters.interaction_net()
    }

    /// Raw counter state (diagnostics).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// The aggregated subtree total, available once all children reported.
    /// At a seed this is the tree's share of the global view.
    pub fn tree_total(&self) -> Option<i64> {
        self.tree_total
    }

    /// Counting state of an inbound direction.
    pub fn inbound_state(&self, e: EdgeId) -> InboundState {
        self.inbound_state
            .get(&e)
            .copied()
            .unwrap_or(InboundState::Idle)
    }

    /// Label state of an outbound direction.
    pub fn label_state(&self, e: EdgeId) -> LabelState {
        self.label_state
            .get(&e)
            .copied()
            .unwrap_or(LabelState::Idle)
    }

    /// Downstream neighbours whose labels cannot reach us (one-way
    /// segments); their predecessors arrive via announcements instead.
    pub fn oneway_out_neighbors(&self) -> &[NodeId] {
        &self.oneway_out
    }

    /// Upstream neighbours our label cannot reach; they receive
    /// [`Command::SendPredAnnounce`] at activation instead.
    pub fn oneway_in_neighbors(&self) -> &[NodeId] {
        &self.oneway_in
    }

    /// Whether this checkpoint sits on the open-system border.
    pub fn is_border(&self) -> bool {
        self.interaction.any()
    }

    /// Protocol configuration in force.
    pub fn config(&self) -> &CheckpointConfig {
        &self.cfg
    }

    /// The variant this deployment runs.
    pub fn variant(&self) -> ProtocolVariant {
        self.cfg.variant
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcount_obs::EventKind;
    use vcount_roadnet::builders::fig1_triangle;
    use vcount_v2x::{ClassFilter, VehicleClass};

    const CAR: VehicleClass = VehicleClass {
        color: vcount_v2x::Color::Red,
        brand: vcount_v2x::Brand::Apex,
        body: vcount_v2x::BodyType::Sedan,
    };

    fn triangle_checkpoints(cfg: CheckpointConfig) -> (RoadNetwork, Vec<Checkpoint>) {
        let net = fig1_triangle(200.0, 1, 6.7);
        let cps = net
            .node_ids()
            .map(|n| Checkpoint::new(&net, n, cfg))
            .collect();
        (net, cps)
    }

    /// Feeds an entry observation with a throwaway vehicle id.
    fn enter(
        cp: &mut Checkpoint,
        now: f64,
        via: Option<EdgeId>,
        class: VehicleClass,
        label: Option<Label>,
    ) -> Vec<Command> {
        cp.handle(
            Observation::Entered {
                vehicle: VehicleId(77),
                via,
                class,
                label,
            },
            now,
        )
    }

    /// Kinds of the events a call buffered, in order.
    fn kinds_since(cp: &mut Checkpoint) -> Vec<EventKind> {
        cp.take_events().iter().map(|(_, e)| e.kind()).collect()
    }

    #[test]
    fn seed_activation_starts_all_inbound_counting() {
        let (net, mut cps) = triangle_checkpoints(CheckpointConfig::default());
        let cmds = cps[0].activate_as_seed(0.0);
        assert!(cmds.is_empty(), "bidirectional triangle needs no announces");
        assert!(cps[0].is_active() && cps[0].is_seed());
        assert_eq!(kinds_since(&mut cps[0]), [EventKind::CheckpointActivated]);
        for &e in net.in_edges(NodeId(0)) {
            assert_eq!(cps[0].inbound_state(e), InboundState::Counting);
        }
        for &e in net.out_edges(NodeId(0)) {
            assert_eq!(cps[0].label_state(e), LabelState::Pending);
            assert!(cps[0].offer_label(e).is_some());
        }
    }

    #[test]
    fn unlabeled_vehicle_is_counted_once_active() {
        let (net, mut cps) = triangle_checkpoints(CheckpointConfig::default());
        let e = net.edge_between(NodeId(1), NodeId(0)).unwrap();
        // Inactive: not counted, no event.
        enter(&mut cps[0], 0.0, Some(e), CAR, None);
        assert!(kinds_since(&mut cps[0]).is_empty());
        cps[0].activate_as_seed(1.0);
        cps[0].take_events();
        enter(&mut cps[0], 2.0, Some(e), CAR, None);
        assert_eq!(kinds_since(&mut cps[0]), [EventKind::VehicleCounted]);
        assert_eq!(cps[0].local_count(), 1);
        assert_eq!(cps[0].counters().inbound(e), 1);
    }

    #[test]
    fn label_activates_inactive_checkpoint_and_skips_pred_direction() {
        let (net, mut cps) = triangle_checkpoints(CheckpointConfig::default());
        cps[0].activate_as_seed(0.0);
        let label = cps[0]
            .offer_label(net.edge_between(NodeId(0), NodeId(1)).unwrap())
            .unwrap();
        let via = net.edge_between(NodeId(0), NodeId(1)).unwrap();
        enter(&mut cps[1], 5.0, Some(via), CAR, Some(label));
        let events = cps[1].take_events();
        assert!(matches!(
            events[0].1,
            ProtocolEvent::CheckpointActivated {
                node: 1,
                pred: Some(0),
                wave_seed: 0,
                is_seed: false,
            }
        ));
        assert!(
            !events
                .iter()
                .any(|(_, e)| e.kind() == EventKind::VehicleCounted),
            "labeled vehicle is never counted"
        );
        assert_eq!(cps[1].pred(), Some(NodeId(0)));
        // Direction from the predecessor never counts.
        assert_eq!(cps[1].inbound_state(via), InboundState::Stopped);
        // Direction from node 2 counts.
        let from2 = net.edge_between(NodeId(2), NodeId(1)).unwrap();
        assert_eq!(cps[1].inbound_state(from2), InboundState::Counting);
    }

    #[test]
    fn label_stops_counting_at_active_checkpoint() {
        let (net, mut cps) = triangle_checkpoints(CheckpointConfig::default());
        cps[0].activate_as_seed(0.0);
        let from1 = net.edge_between(NodeId(1), NodeId(0)).unwrap();
        // Count two cars first.
        enter(&mut cps[0], 1.0, Some(from1), CAR, None);
        enter(&mut cps[0], 2.0, Some(from1), CAR, None);
        cps[0].take_events();
        // Node 1's backwash label arrives.
        let label = Label {
            origin: NodeId(1),
            origin_pred: Some(NodeId(0)),
            seed: NodeId(0),
        };
        enter(&mut cps[0], 3.0, Some(from1), CAR, Some(label));
        let events = cps[0].take_events();
        assert!(matches!(
            events[0].1,
            ProtocolEvent::InboundStopped { node: 0, edge } if edge == from1.0
        ));
        // Further arrivals on that direction are not counted.
        enter(&mut cps[0], 4.0, Some(from1), CAR, None);
        assert!(kinds_since(&mut cps[0]).is_empty());
        assert_eq!(cps[0].local_count(), 2);
    }

    #[test]
    fn stability_requires_all_directions_stopped() {
        let (net, mut cps) = triangle_checkpoints(CheckpointConfig::default());
        cps[0].activate_as_seed(0.0);
        assert!(!cps[0].is_stable());
        let from1 = net.edge_between(NodeId(1), NodeId(0)).unwrap();
        let from2 = net.edge_between(NodeId(2), NodeId(0)).unwrap();
        let l1 = Label {
            origin: NodeId(1),
            origin_pred: Some(NodeId(0)),
            seed: NodeId(0),
        };
        enter(&mut cps[0], 5.0, Some(from1), CAR, Some(l1));
        assert!(!cps[0].is_stable());
        let l2 = Label {
            origin: NodeId(2),
            origin_pred: Some(NodeId(1)),
            seed: NodeId(0),
        };
        cps[0].take_events();
        enter(&mut cps[0], 7.0, Some(from2), CAR, Some(l2));
        assert!(cps[0].is_stable());
        assert_eq!(cps[0].stable_at(), Some(7.0));
        assert_eq!(
            kinds_since(&mut cps[0]),
            [EventKind::InboundStopped, EventKind::CheckpointStable]
        );
    }

    #[test]
    fn full_wave_and_collection_on_triangle() {
        // Hand-drive Fig. 1 end to end: seed 0, wave 0→1→2, backwash,
        // reports 2→1→0, global view at the seed.
        let (net, mut cps) = triangle_checkpoints(CheckpointConfig::default());
        let e = |a: u32, b: u32| net.edge_between(NodeId(a), NodeId(b)).unwrap();
        let deliver = |cp: &mut Checkpoint, onto: EdgeId, t: f64| {
            let label = cp.offer_label(onto).unwrap();
            cp.handle(
                Observation::Departed {
                    vehicle: VehicleId(7),
                    onto,
                    delivered: true,
                    matches_filter: true,
                },
                t,
            );
            label
        };
        cps[0].activate_as_seed(0.0);

        // Seed counts one car from each side.
        enter(&mut cps[0], 1.0, Some(e(1, 0)), CAR, None);
        enter(&mut cps[0], 1.0, Some(e(2, 0)), CAR, None);

        // Wave to 1.
        let l01 = deliver(&mut cps[0], e(0, 1), 2.0);
        enter(&mut cps[1], 3.0, Some(e(0, 1)), CAR, Some(l01));
        // 1 counts a car arriving from 2.
        enter(&mut cps[1], 4.0, Some(e(2, 1)), CAR, None);

        // Wave to 2 (from 1).
        let l12 = deliver(&mut cps[1], e(1, 2), 4.5);
        enter(&mut cps[2], 5.0, Some(e(1, 2)), CAR, Some(l12));
        // Seed's label on 0→2 stops 2's remaining counting direction and
        // completes 2's child discovery: 2 reports (no children).
        let l02 = deliver(&mut cps[0], e(0, 2), 5.2);
        let cmds2 = enter(&mut cps[2], 5.5, Some(e(0, 2)), CAR, Some(l02));
        assert!(cps[2].is_stable());
        assert_eq!(
            cmds2,
            vec![Command::SendReport {
                to: NodeId(1),
                total: 0,
                seq: 1
            }]
        );
        assert!(cps[2]
            .take_events()
            .iter()
            .any(|(_, ev)| matches!(ev, ProtocolEvent::ReportSent { node: 2, to: 1, .. })));

        // Backwash labels: 1→0, 2→0, 2→1.
        let l10 = deliver(&mut cps[1], e(1, 0), 5.8);
        enter(&mut cps[0], 6.0, Some(e(1, 0)), CAR, Some(l10));
        let l20 = deliver(&mut cps[2], e(2, 0), 6.5);
        enter(&mut cps[0], 7.0, Some(e(2, 0)), CAR, Some(l20));
        let l21 = deliver(&mut cps[2], e(2, 1), 7.5);
        let cmds = enter(&mut cps[1], 8.0, Some(e(2, 1)), CAR, Some(l21));
        assert!(cps[0].is_stable() && cps[1].is_stable());
        assert!(cmds.is_empty(), "1 still waits for 2's report");
        assert_eq!(cps[2].tree_total(), Some(0));

        // Transport 2's report to 1, then 1's to the seed.
        let cmds = cps[1].handle(
            Observation::Report {
                from: NodeId(2),
                total: 0,
                seq: 1,
            },
            9.0,
        );
        assert_eq!(
            cmds,
            vec![Command::SendReport {
                to: NodeId(0),
                total: 1,
                seq: 1
            }]
        );
        cps[0].handle(
            Observation::Report {
                from: NodeId(1),
                total: 1,
                seq: 1,
            },
            10.0,
        );
        // Global view at the seed: 2 counted at 0, 1 at 1, 0 at 2.
        assert_eq!(cps[0].tree_total(), Some(3));
        assert_eq!(cps[0].collected_at(), Some(10.0));
    }

    #[test]
    fn failed_handoff_compensates_and_retries() {
        let (net, mut cps) = triangle_checkpoints(CheckpointConfig::default());
        cps[0].activate_as_seed(0.0);
        let e01 = net.edge_between(NodeId(0), NodeId(1)).unwrap();
        assert!(cps[0].offer_label(e01).is_some());
        cps[0].take_events();
        cps[0].handle(
            Observation::Departed {
                vehicle: VehicleId(3),
                onto: e01,
                delivered: false,
                matches_filter: true,
            },
            0.5,
        );
        assert_eq!(cps[0].local_count(), -1, "Alg. 3 line 3 compensation");
        assert_eq!(
            kinds_since(&mut cps[0]),
            [
                EventKind::LabelEmitted,
                EventKind::LabelHandoffFailed,
                EventKind::LossCompensation
            ]
        );
        // Still pending: retry with the next vehicle.
        assert!(cps[0].offer_label(e01).is_some());
        cps[0].handle(
            Observation::Departed {
                vehicle: VehicleId(4),
                onto: e01,
                delivered: true,
                matches_filter: true,
            },
            0.9,
        );
        assert!(
            cps[0].offer_label(e01).is_none(),
            "exactly one label per direction"
        );
        assert_eq!(
            kinds_since(&mut cps[0]),
            [EventKind::LabelEmitted, EventKind::LabelHandoffAcked]
        );
    }

    #[test]
    fn failed_handoff_to_non_matching_vehicle_costs_nothing() {
        let (net, mut cps) = triangle_checkpoints(CheckpointConfig {
            filter: ClassFilter::white_vans(),
            ..Default::default()
        });
        cps[0].activate_as_seed(0.0);
        let e01 = net.edge_between(NodeId(0), NodeId(1)).unwrap();
        cps[0].handle(
            Observation::Departed {
                vehicle: VehicleId(3),
                onto: e01,
                delivered: false,
                matches_filter: false,
            },
            0.5,
        );
        assert_eq!(cps[0].local_count(), 0);
    }

    #[test]
    fn filter_limits_counting_to_matching_vehicles() {
        let (net, mut cps) = triangle_checkpoints(CheckpointConfig {
            filter: ClassFilter::white_vans(),
            ..Default::default()
        });
        cps[0].activate_as_seed(0.0);
        let from1 = net.edge_between(NodeId(1), NodeId(0)).unwrap();
        enter(&mut cps[0], 1.0, Some(from1), CAR, None);
        enter(&mut cps[0], 2.0, Some(from1), VehicleClass::WHITE_VAN, None);
        assert_eq!(cps[0].local_count(), 1);
    }

    #[test]
    fn patrol_cars_are_never_counted() {
        let (net, mut cps) = triangle_checkpoints(CheckpointConfig::default());
        cps[0].activate_as_seed(0.0);
        cps[0].take_events();
        let from1 = net.edge_between(NodeId(1), NodeId(0)).unwrap();
        enter(&mut cps[0], 1.0, Some(from1), VehicleClass::PATROL, None);
        assert!(kinds_since(&mut cps[0]).is_empty());
        assert_eq!(cps[0].local_count(), 0);
    }

    #[test]
    fn overtake_adjustments_shift_local_count() {
        let (_, mut cps) = triangle_checkpoints(CheckpointConfig::default());
        cps[0].activate_as_seed(0.0);
        cps[0].take_events();
        cps[0].handle(Observation::Adjust { plus: 2, minus: 1 }, 1.0);
        assert_eq!(cps[0].local_count(), 1);
        cps[0].handle(Observation::Adjust { plus: 0, minus: 3 }, 2.0);
        assert_eq!(cps[0].local_count(), -2);
        let events = cps[0].take_events();
        assert!(matches!(
            events[0].1,
            ProtocolEvent::OvertakeAdjustment {
                node: 0,
                plus: 2,
                minus: 1
            }
        ));
    }

    #[test]
    fn open_variant_counts_interaction_at_active_border() {
        let net = {
            let mut net = fig1_triangle(200.0, 1, 6.7);
            net.set_interaction(
                NodeId(0),
                Interaction {
                    inbound: true,
                    outbound: true,
                },
            );
            net
        };
        let cfg = CheckpointConfig::for_variant(ProtocolVariant::Open);
        let mut cp = Checkpoint::new(&net, NodeId(0), cfg);
        let exit = |cp: &mut Checkpoint, t: f64| {
            cp.handle(
                Observation::BorderExit {
                    vehicle: VehicleId(9),
                    class: CAR,
                },
                t,
            );
        };
        // Inactive: escapes are allowed (Cor. 2).
        exit(&mut cp, 0.0);
        enter(&mut cp, 0.5, None, CAR, None);
        assert_eq!(cp.interaction_net(), 0);
        assert!(kinds_since(&mut cp).is_empty(), "inactive: no events");
        cp.activate_as_seed(1.0);
        cp.take_events();
        enter(&mut cp, 2.0, None, CAR, None);
        exit(&mut cp, 3.0);
        enter(&mut cp, 4.0, None, CAR, None);
        assert_eq!(
            kinds_since(&mut cp),
            [
                EventKind::BorderEntry,
                EventKind::BorderExit,
                EventKind::BorderEntry
            ]
        );
        assert_eq!(cp.interaction_net(), 1);
        assert_eq!(cp.local_count(), 0, "interaction is separate");
    }

    #[test]
    fn closed_variant_ignores_interaction_flags() {
        let mut net = fig1_triangle(200.0, 1, 6.7);
        net.set_interaction(
            NodeId(0),
            Interaction {
                inbound: true,
                outbound: true,
            },
        );
        let mut cp = Checkpoint::new(&net, NodeId(0), CheckpointConfig::default());
        cp.activate_as_seed(0.0);
        enter(&mut cp, 1.0, None, CAR, None);
        cp.handle(
            Observation::BorderExit {
                vehicle: VehicleId(9),
                class: CAR,
            },
            2.0,
        );
        assert_eq!(cp.interaction_net(), 0);
    }

    #[test]
    fn duplicate_labels_on_stopped_direction_are_idempotent() {
        let (net, mut cps) = triangle_checkpoints(CheckpointConfig::default());
        cps[0].activate_as_seed(0.0);
        let from1 = net.edge_between(NodeId(1), NodeId(0)).unwrap();
        let l = Label {
            origin: NodeId(1),
            origin_pred: Some(NodeId(0)),
            seed: NodeId(0),
        };
        enter(&mut cps[0], 1.0, Some(from1), CAR, Some(l));
        let before = cps[0].local_count();
        cps[0].take_events();
        enter(&mut cps[0], 2.0, Some(from1), CAR, Some(l));
        assert!(
            kinds_since(&mut cps[0]).is_empty(),
            "no second stop, no count"
        );
        assert_eq!(cps[0].local_count(), before);
    }

    #[test]
    fn patrol_stale_stop_mode_stops_from_status() {
        let (net, _) = triangle_checkpoints(CheckpointConfig::default());
        let cfg = CheckpointConfig {
            patrol_stale_stop: true,
            ..Default::default()
        };
        let mut cp = Checkpoint::new(&net, NodeId(0), cfg);
        cp.activate_as_seed(0.0);
        cp.take_events();
        let mut status = PatrolStatus::default();
        status.observe(NodeId(1), true);
        status.observe(NodeId(2), true);
        cp.handle(
            Observation::PatrolStatus {
                vehicle: VehicleId(2),
                status,
            },
            5.0,
        );
        assert!(cp.is_stable(), "statuses stopped every inbound direction");
        assert_eq!(
            kinds_since(&mut cp),
            [
                EventKind::PatrolStatusRelay,
                EventKind::InboundStopped,
                EventKind::InboundStopped,
                EventKind::CheckpointStable
            ]
        );
    }

    #[test]
    fn stale_stop_disabled_by_default() {
        let (_net, mut cps) = triangle_checkpoints(CheckpointConfig::default());
        cps[0].activate_as_seed(0.0);
        let mut status = PatrolStatus::default();
        status.observe(NodeId(1), true);
        status.observe(NodeId(2), true);
        cps[0].handle(
            Observation::PatrolStatus {
                vehicle: VehicleId(2),
                status,
            },
            5.0,
        );
        assert!(!cps[0].is_stable());
    }

    #[test]
    fn seed_with_no_children_finishes_immediately_on_stability() {
        // A 2-node network: seed 0 and node 1.
        let mut net = RoadNetwork::new();
        let a = net.add_node(vcount_roadnet::Point::new(0.0, 0.0));
        let b = net.add_node(vcount_roadnet::Point::new(100.0, 0.0));
        net.add_two_way(a, b, 1, 6.7);
        let cfg = CheckpointConfig::default();
        let mut cp0 = Checkpoint::new(&net, a, cfg);
        let mut cp1 = Checkpoint::new(&net, b, cfg);
        cp0.activate_as_seed(0.0);
        // Wave to 1 and backwash.
        let e01 = net.edge_between(a, b).unwrap();
        let e10 = net.edge_between(b, a).unwrap();
        let l = cp0.offer_label(e01).unwrap();
        cp0.handle(
            Observation::Departed {
                vehicle: VehicleId(1),
                onto: e01,
                delivered: true,
                matches_filter: true,
            },
            0.5,
        );
        enter(&mut cp1, 1.0, Some(e01), CAR, Some(l));
        let l_back = cp1.offer_label(e10).unwrap();
        cp1.handle(
            Observation::Departed {
                vehicle: VehicleId(2),
                onto: e10,
                delivered: true,
                matches_filter: true,
            },
            1.5,
        );
        enter(&mut cp0, 2.0, Some(e10), CAR, Some(l_back));
        assert!(cp0.is_stable());
        // 1 is also stable (its only non-pred inbound set is empty).
        assert!(cp1.is_stable());
        // 1 reports 0 vehicles; 0 aggregates.
        cp0.handle(
            Observation::Report {
                from: b,
                total: 0,
                seq: 1,
            },
            3.0,
        );
        assert_eq!(cp0.tree_total(), Some(0));
    }

    #[test]
    fn higher_sequence_report_supersedes_and_is_observable() {
        let (net, mut cps) = triangle_checkpoints(CheckpointConfig::default());
        let _ = net;
        cps[0].activate_as_seed(0.0);
        cps[0].take_events();
        cps[0].handle(
            Observation::Report {
                from: NodeId(1),
                total: 5,
                seq: 1,
            },
            1.0,
        );
        assert!(kinds_since(&mut cps[0]).is_empty(), "first report: no dup");
        // Stale report is ignored, no event.
        cps[0].handle(
            Observation::Report {
                from: NodeId(1),
                total: 99,
                seq: 0,
            },
            2.0,
        );
        assert!(kinds_since(&mut cps[0]).is_empty());
        // Higher sequence supersedes.
        cps[0].handle(
            Observation::Report {
                from: NodeId(1),
                total: 4,
                seq: 2,
            },
            3.0,
        );
        let events = cps[0].take_events();
        assert!(matches!(
            events[0].1,
            ProtocolEvent::ReportSuperseded {
                node: 0,
                child: 1,
                old_seq: 1,
                new_seq: 2
            }
        ));
    }
}
