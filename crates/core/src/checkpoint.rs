//! The checkpoint state machine — Algorithms 1, 3 and 5 under the
//! "everyone" model: every intersection runs this same generic process.
//!
//! The machine is pure and event-driven. It consumes exactly what real
//! checkpoint equipment observes — vehicle entries (with carried label, if
//! any), departures (label handoff opportunities), border exits, patrol
//! status snapshots, relayed announcements and reports — and produces
//! counter updates plus transport [`Command`]s. All timing comes from the
//! caller-provided `now` values, so the machine is equally at home under
//! the simulator or on a wall clock.

use crate::command::{Command, EnterOutcome};
use crate::config::{CheckpointConfig, ProtocolVariant};
use crate::counter::Counters;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vcount_roadnet::{EdgeId, Interaction, NodeId, RoadNetwork};
use vcount_v2x::{Label, PatrolStatus, VehicleClass};

/// Counting state of one inbound direction `u ← v` (phase 1/3/4/5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InboundState {
    /// Not yet activated (checkpoint inactive).
    Idle,
    /// Counting every unlabeled matching vehicle (phase 5).
    Counting,
    /// Counting ended: the direction's label arrived (phase 4), or the
    /// direction comes from the predecessor and never started (phase 3).
    Stopped,
}

/// Labelling state of one outbound direction (phase 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LabelState {
    /// Checkpoint inactive — nothing to propagate yet.
    Idle,
    /// Waiting for the next vehicle to join this direction (retrying after
    /// failed handoffs, Alg. 3 line 3).
    Pending,
    /// Exactly one label was delivered on this direction.
    Done,
}

/// One checkpoint of the deployment. See module docs.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    id: NodeId,
    cfg: CheckpointConfig,
    /// Inbound directions `(edge v->u, v)`.
    inbound: Vec<(EdgeId, NodeId)>,
    /// Outbound directions `(edge u->v, v)`.
    outbound: Vec<(EdgeId, NodeId)>,
    /// Inbound neighbours unreachable by our label (no edge `u -> w`):
    /// they learn our predecessor via `SendPredAnnounce`.
    oneway_in: Vec<NodeId>,
    /// Outbound neighbours with no reverse edge: their labels cannot reach
    /// us, so we learn their predecessor from announcements instead.
    oneway_out: Vec<NodeId>,
    interaction: Interaction,

    active: bool,
    is_seed: bool,
    pred: Option<NodeId>,
    wave_seed: Option<NodeId>,
    inbound_state: BTreeMap<EdgeId, InboundState>,
    label_state: BTreeMap<EdgeId, LabelState>,
    counters: Counters,

    /// Learned predecessor of each neighbour (from labels, announcements,
    /// patrol snapshots, or reports).
    known_preds: BTreeMap<NodeId, Option<NodeId>>,
    /// Highest-sequence report received per child: `(seq, total)`.
    child_reports: BTreeMap<NodeId, (u32, i64)>,
    /// Last subtree total reported to the predecessor, if any.
    last_report: Option<i64>,
    /// Sequence number of the next outgoing report.
    report_seq: u32,
    tree_total: Option<i64>,

    activated_at: Option<f64>,
    stable_at: Option<f64>,
    collected_at: Option<f64>,
}

impl Checkpoint {
    /// Builds the checkpoint for intersection `node`, extracting its local
    /// topology view from the network.
    pub fn new(net: &RoadNetwork, node: NodeId, cfg: CheckpointConfig) -> Self {
        let inbound: Vec<(EdgeId, NodeId)> = net
            .in_edges(node)
            .iter()
            .map(|&e| (e, net.edge(e).from))
            .collect();
        let outbound: Vec<(EdgeId, NodeId)> = net
            .out_edges(node)
            .iter()
            .map(|&e| (e, net.edge(e).to))
            .collect();
        let oneway_in = inbound
            .iter()
            .filter(|(_, w)| net.edge_between(node, *w).is_none())
            .map(|(_, w)| *w)
            .collect();
        let oneway_out = outbound
            .iter()
            .filter(|(_, v)| net.edge_between(*v, node).is_none())
            .map(|(_, v)| *v)
            .collect();
        let inbound_state = inbound
            .iter()
            .map(|(e, _)| (*e, InboundState::Idle))
            .collect();
        let label_state = outbound
            .iter()
            .map(|(e, _)| (*e, LabelState::Idle))
            .collect();
        Checkpoint {
            id: node,
            cfg,
            inbound,
            outbound,
            oneway_in,
            oneway_out,
            interaction: net.interaction(node),
            active: false,
            is_seed: false,
            pred: None,
            wave_seed: None,
            inbound_state,
            label_state,
            counters: Counters::default(),
            known_preds: BTreeMap::new(),
            child_reports: BTreeMap::new(),
            last_report: None,
            report_seq: 0,
            tree_total: None,
            activated_at: None,
            stable_at: None,
            collected_at: None,
        }
    }

    // ------------------------------------------------------------------
    // Phase 1 & 3: activation
    // ------------------------------------------------------------------

    /// Phase 1: initialize this checkpoint as a seed (and data sink). All
    /// inbound counting starts; labels become pending on every outbound
    /// direction.
    pub fn activate_as_seed(&mut self, now: f64) -> Vec<Command> {
        assert!(
            !self.active,
            "seed activation on an already active checkpoint"
        );
        self.is_seed = true;
        self.wave_seed = Some(self.id);
        let mut cmds = Vec::new();
        self.activate(now, None, &mut cmds);
        cmds
    }

    fn activate(&mut self, now: f64, pred: Option<NodeId>, cmds: &mut Vec<Command>) {
        self.active = true;
        self.pred = pred;
        self.activated_at = Some(now);
        for (e, origin) in &self.inbound {
            let state = if Some(*origin) == pred {
                // Traffic from the predecessor is already counted upstream
                // (phase 3 activates only `s(u)` directions).
                InboundState::Stopped
            } else {
                InboundState::Counting
            };
            self.inbound_state.insert(*e, state);
        }
        for (e, _) in &self.outbound {
            self.label_state.insert(*e, LabelState::Pending);
        }
        // Upstream one-way neighbours cannot receive our label; announce
        // our predecessor so their spanning-tree child discovery completes.
        for w in self.oneway_in.clone() {
            cmds.push(Command::SendPredAnnounce { to: w, pred });
        }
        self.after_change(now, cmds);
    }

    // ------------------------------------------------------------------
    // Phases 3, 4, 5: vehicle entry
    // ------------------------------------------------------------------

    /// A vehicle entered the surveillance: `via` is the inbound direction
    /// (`None` for an entry from outside the region at a border
    /// checkpoint), `label` any label it carries (now delivered).
    pub fn on_vehicle_entered(
        &mut self,
        now: f64,
        via: Option<EdgeId>,
        class: &VehicleClass,
        label: Option<Label>,
    ) -> EnterOutcome {
        let mut out = EnterOutcome::default();
        match via {
            None => {
                // Inbound interaction (Alg. 5): active border checkpoints
                // count every matching vehicle coming in from outside.
                if self.active
                    && self.cfg.variant.counts_interaction()
                    && self.interaction.inbound
                    && self.cfg.filter.matches(class)
                {
                    self.counters.count_interaction_in();
                    out.counted = true;
                }
            }
            Some(e) => {
                debug_assert!(
                    self.inbound_state.contains_key(&e),
                    "entry via unknown inbound edge {e}"
                );
                if let Some(label) = label {
                    self.learn_pred(label.origin, label.origin_pred);
                    if !self.active {
                        // Phase 3: propagation to an inactive checkpoint.
                        self.wave_seed = Some(label.seed);
                        out.activated = true;
                        let mut cmds = std::mem::take(&mut out.commands);
                        self.activate(now, Some(label.origin), &mut cmds);
                        out.commands = cmds;
                    } else if self.inbound_state.get(&e) == Some(&InboundState::Counting) {
                        // Phase 4: the backwash stops this direction.
                        self.inbound_state.insert(e, InboundState::Stopped);
                        out.stopped = Some(e);
                    }
                    // The labeled vehicle itself is never counted (phase 5
                    // counts unlabeled vehicles only).
                } else if self.active
                    && self.inbound_state.get(&e) == Some(&InboundState::Counting)
                    && self.cfg.filter.matches(class)
                {
                    // Phase 5: count the unlabeled matching vehicle.
                    self.counters.count_inbound(e);
                    out.counted = true;
                }
            }
        }
        let mut cmds = std::mem::take(&mut out.commands);
        self.after_change(now, &mut cmds);
        out.commands = cmds;
        out
    }

    // ------------------------------------------------------------------
    // Phase 2: labelling departures
    // ------------------------------------------------------------------

    /// Phase 2: a vehicle is joining outbound direction `onto`; returns the
    /// label to hand it when one is pending. The caller performs the lossy
    /// handoff and reports the outcome via [`Checkpoint::label_delivered`]
    /// or [`Checkpoint::label_handoff_failed`].
    pub fn offer_label(&self, onto: EdgeId) -> Option<Label> {
        if self.active && self.label_state.get(&onto) == Some(&LabelState::Pending) {
            Some(Label {
                origin: self.id,
                origin_pred: self.pred,
                seed: self.wave_seed.expect("active checkpoint has a wave seed"),
            })
        } else {
            None
        }
    }

    /// The handoff for `onto` was acknowledged: exactly one label is now in
    /// flight on that direction.
    pub fn label_delivered(&mut self, onto: EdgeId) {
        debug_assert_eq!(self.label_state.get(&onto), Some(&LabelState::Pending));
        self.label_state.insert(onto, LabelState::Done);
    }

    /// The handoff failed (Alg. 3 line 3): the labelling will retry with
    /// the next vehicle; when the escaping vehicle is one we count
    /// (`matches_filter`), compensate the future double count with −1.
    pub fn label_handoff_failed(
        &mut self,
        now: f64,
        onto: EdgeId,
        matches_filter: bool,
    ) -> Vec<Command> {
        debug_assert_eq!(self.label_state.get(&onto), Some(&LabelState::Pending));
        let mut cmds = Vec::new();
        if matches_filter && self.cfg.compensate_loss {
            self.counters.compensate_loss();
            self.after_change(now, &mut cmds);
        }
        cmds
    }

    // ------------------------------------------------------------------
    // Alg. 5: border exits
    // ------------------------------------------------------------------

    /// A vehicle left the region through this border checkpoint (outbound
    /// interaction): −1 to the live population view when we are active.
    /// Returns whether the exit was counted.
    pub fn on_vehicle_exited(&mut self, now: f64, class: &VehicleClass) -> bool {
        let counted = self.active
            && self.cfg.variant.counts_interaction()
            && self.interaction.outbound
            && self.cfg.filter.matches(class);
        if counted {
            self.counters.count_interaction_out();
        }
        let mut cmds = Vec::new();
        self.after_change(now, &mut cmds);
        debug_assert!(cmds.is_empty(), "exit cannot complete collection");
        counted
    }

    // ------------------------------------------------------------------
    // Alg. 3 lines 5-8: overtake adjustment
    // ------------------------------------------------------------------

    /// Applies a finalized segment-watch adjustment to `c(u)` — `plus` and
    /// `minus` are the counts *after* filtering to matching vehicles.
    /// Returns re-report commands when the adjustment lands after the
    /// subtree total was already sent.
    pub fn apply_overtake_adjustment(
        &mut self,
        now: f64,
        plus: usize,
        minus: usize,
    ) -> Vec<Command> {
        self.counters.adjust_overtake(plus as i64 - minus as i64);
        let mut cmds = Vec::new();
        self.after_change(now, &mut cmds);
        cmds
    }

    // ------------------------------------------------------------------
    // Theorem 3 (ablation) and collection transport inputs
    // ------------------------------------------------------------------

    /// A patrol car arrived carrying a status snapshot. In the default
    /// integration patrol cars act as label carriers and this only harvests
    /// predecessor knowledge; with `patrol_stale_stop` it additionally
    /// stops any counting direction whose origin the patrol saw active
    /// (the paper's literal Theorem 3 reading — unsafe under slow traffic,
    /// see DESIGN.md §4).
    pub fn on_patrol_status(&mut self, now: f64, status: &PatrolStatus) -> Vec<Command> {
        let mut cmds = Vec::new();
        if self.cfg.patrol_stale_stop {
            for (e, origin) in self.inbound.clone() {
                if self.inbound_state.get(&e) == Some(&InboundState::Counting)
                    && status.status_of(origin) == Some(true)
                {
                    self.inbound_state.insert(e, InboundState::Stopped);
                }
            }
        }
        self.after_change(now, &mut cmds);
        cmds
    }

    /// A relayed (or patrol-carried) predecessor announcement from a
    /// one-way downstream neighbour.
    pub fn on_pred_announce(
        &mut self,
        now: f64,
        from: NodeId,
        pred: Option<NodeId>,
    ) -> Vec<Command> {
        self.learn_pred(from, pred);
        let mut cmds = Vec::new();
        self.after_change(now, &mut cmds);
        cmds
    }

    /// A child's subtree report arrived (Alg. 2 phase 1 / Alg. 4 phase 2).
    /// Reports may be re-issued when late adjustments land after phase 6;
    /// the highest sequence number wins, so out-of-order transport is safe.
    pub fn on_report(&mut self, now: f64, from: NodeId, total: i64, seq: u32) -> Vec<Command> {
        // A report is itself proof that `from` chose us as predecessor.
        self.learn_pred(from, Some(self.id));
        let entry = self.child_reports.entry(from).or_insert((seq, total));
        if seq >= entry.0 {
            *entry = (seq, total);
        }
        let mut cmds = Vec::new();
        self.after_change(now, &mut cmds);
        cmds
    }

    fn learn_pred(&mut self, node: NodeId, pred: Option<NodeId>) {
        self.known_preds.entry(node).or_insert(pred);
    }

    // ------------------------------------------------------------------
    // Phase 6 + Alg. 2: stabilization and collection
    // ------------------------------------------------------------------

    fn after_change(&mut self, now: f64, cmds: &mut Vec<Command>) {
        if self.active && self.stable_at.is_none() && self.all_stopped() {
            self.stable_at = Some(now);
        }
        if self.stable_at.is_some() && self.children_known() {
            let children = self.children();
            if children.iter().all(|c| self.child_reports.contains_key(c)) {
                let total: i64 = self.counters.local_count()
                    + children
                        .iter()
                        .map(|c| self.child_reports[c].1)
                        .sum::<i64>();
                if self.tree_total != Some(total) {
                    self.tree_total = Some(total);
                    if self.collected_at.is_none() {
                        self.collected_at = Some(now);
                    }
                    if let Some(p) = self.pred {
                        if self.last_report != Some(total) {
                            self.report_seq += 1;
                            self.last_report = Some(total);
                            cmds.push(Command::SendReport {
                                to: p,
                                total,
                                seq: self.report_seq,
                            });
                        }
                    }
                }
            }
        }
    }

    fn all_stopped(&self) -> bool {
        self.inbound_state
            .values()
            .all(|s| *s == InboundState::Stopped)
    }

    /// Whether all outbound neighbours' predecessors are known, i.e. the
    /// spanning-tree children set is final.
    fn children_known(&self) -> bool {
        self.outbound
            .iter()
            .all(|(_, v)| self.known_preds.contains_key(v))
    }

    /// The spanning-tree children discovered so far (outbound neighbours
    /// that chose us as predecessor).
    pub fn children(&self) -> Vec<NodeId> {
        self.outbound
            .iter()
            .filter(|(_, v)| self.known_preds.get(v) == Some(&Some(self.id)))
            .map(|(_, v)| *v)
            .collect()
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// This checkpoint's intersection.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Whether the local counting has been activated.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Whether this checkpoint is a seed.
    pub fn is_seed(&self) -> bool {
        self.is_seed
    }

    /// `p(u)` — the predecessor whose label activated us.
    pub fn pred(&self) -> Option<NodeId> {
        self.pred
    }

    /// Phase 6: the local non-interaction count has stabilized (every
    /// activated inbound direction has ended).
    pub fn is_stable(&self) -> bool {
        self.stable_at.is_some()
    }

    /// When the checkpoint activated (simulated seconds).
    pub fn activated_at(&self) -> Option<f64> {
        self.activated_at
    }

    /// When the local view stabilized (simulated seconds).
    pub fn stable_at(&self) -> Option<f64> {
        self.stable_at
    }

    /// When the subtree total was finalized / reported (simulated seconds).
    pub fn collected_at(&self) -> Option<f64> {
        self.collected_at
    }

    /// The stabilizable local count `c(u)` (non-interaction).
    pub fn local_count(&self) -> i64 {
        self.counters.local_count()
    }

    /// Net border interaction (`in − out`, Alg. 5).
    pub fn interaction_net(&self) -> i64 {
        self.counters.interaction_net()
    }

    /// Raw counter state (diagnostics).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// The aggregated subtree total, available once all children reported.
    /// At a seed this is the tree's share of the global view.
    pub fn tree_total(&self) -> Option<i64> {
        self.tree_total
    }

    /// Counting state of an inbound direction.
    pub fn inbound_state(&self, e: EdgeId) -> InboundState {
        self.inbound_state
            .get(&e)
            .copied()
            .unwrap_or(InboundState::Idle)
    }

    /// Label state of an outbound direction.
    pub fn label_state(&self, e: EdgeId) -> LabelState {
        self.label_state
            .get(&e)
            .copied()
            .unwrap_or(LabelState::Idle)
    }

    /// Downstream neighbours whose labels cannot reach us (one-way
    /// segments); their predecessors arrive via announcements instead.
    pub fn oneway_out_neighbors(&self) -> &[NodeId] {
        &self.oneway_out
    }

    /// Upstream neighbours our label cannot reach; they receive
    /// [`Command::SendPredAnnounce`] at activation instead.
    pub fn oneway_in_neighbors(&self) -> &[NodeId] {
        &self.oneway_in
    }

    /// Whether this checkpoint sits on the open-system border.
    pub fn is_border(&self) -> bool {
        self.interaction.any()
    }

    /// Protocol configuration in force.
    pub fn config(&self) -> &CheckpointConfig {
        &self.cfg
    }

    /// The variant this deployment runs.
    pub fn variant(&self) -> ProtocolVariant {
        self.cfg.variant
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcount_roadnet::builders::fig1_triangle;
    use vcount_v2x::{ClassFilter, VehicleClass};

    const CAR: VehicleClass = VehicleClass {
        color: vcount_v2x::Color::Red,
        brand: vcount_v2x::Brand::Apex,
        body: vcount_v2x::BodyType::Sedan,
    };

    fn triangle_checkpoints(cfg: CheckpointConfig) -> (RoadNetwork, Vec<Checkpoint>) {
        let net = fig1_triangle(200.0, 1, 6.7);
        let cps = net
            .node_ids()
            .map(|n| Checkpoint::new(&net, n, cfg))
            .collect();
        (net, cps)
    }

    #[test]
    fn seed_activation_starts_all_inbound_counting() {
        let (net, mut cps) = triangle_checkpoints(CheckpointConfig::default());
        let cmds = cps[0].activate_as_seed(0.0);
        assert!(cmds.is_empty(), "bidirectional triangle needs no announces");
        assert!(cps[0].is_active() && cps[0].is_seed());
        for &e in net.in_edges(NodeId(0)) {
            assert_eq!(cps[0].inbound_state(e), InboundState::Counting);
        }
        for &e in net.out_edges(NodeId(0)) {
            assert_eq!(cps[0].label_state(e), LabelState::Pending);
            assert!(cps[0].offer_label(e).is_some());
        }
    }

    #[test]
    fn unlabeled_vehicle_is_counted_once_active() {
        let (net, mut cps) = triangle_checkpoints(CheckpointConfig::default());
        let e = net.edge_between(NodeId(1), NodeId(0)).unwrap();
        // Inactive: not counted.
        let out = cps[0].on_vehicle_entered(0.0, Some(e), &CAR, None);
        assert!(!out.counted);
        cps[0].activate_as_seed(1.0);
        let out = cps[0].on_vehicle_entered(2.0, Some(e), &CAR, None);
        assert!(out.counted);
        assert_eq!(cps[0].local_count(), 1);
        assert_eq!(cps[0].counters().inbound(e), 1);
    }

    #[test]
    fn label_activates_inactive_checkpoint_and_skips_pred_direction() {
        let (net, mut cps) = triangle_checkpoints(CheckpointConfig::default());
        cps[0].activate_as_seed(0.0);
        let label = cps[0]
            .offer_label(net.edge_between(NodeId(0), NodeId(1)).unwrap())
            .unwrap();
        let via = net.edge_between(NodeId(0), NodeId(1)).unwrap();
        let out = cps[1].on_vehicle_entered(5.0, Some(via), &CAR, Some(label));
        assert!(out.activated);
        assert!(!out.counted, "labeled vehicle is never counted");
        assert_eq!(cps[1].pred(), Some(NodeId(0)));
        // Direction from the predecessor never counts.
        assert_eq!(cps[1].inbound_state(via), InboundState::Stopped);
        // Direction from node 2 counts.
        let from2 = net.edge_between(NodeId(2), NodeId(1)).unwrap();
        assert_eq!(cps[1].inbound_state(from2), InboundState::Counting);
    }

    #[test]
    fn label_stops_counting_at_active_checkpoint() {
        let (net, mut cps) = triangle_checkpoints(CheckpointConfig::default());
        cps[0].activate_as_seed(0.0);
        let from1 = net.edge_between(NodeId(1), NodeId(0)).unwrap();
        // Count two cars first.
        cps[0].on_vehicle_entered(1.0, Some(from1), &CAR, None);
        cps[0].on_vehicle_entered(2.0, Some(from1), &CAR, None);
        // Node 1's backwash label arrives.
        let label = Label {
            origin: NodeId(1),
            origin_pred: Some(NodeId(0)),
            seed: NodeId(0),
        };
        let out = cps[0].on_vehicle_entered(3.0, Some(from1), &CAR, Some(label));
        assert_eq!(out.stopped, Some(from1));
        // Further arrivals on that direction are not counted.
        let out = cps[0].on_vehicle_entered(4.0, Some(from1), &CAR, None);
        assert!(!out.counted);
        assert_eq!(cps[0].local_count(), 2);
    }

    #[test]
    fn stability_requires_all_directions_stopped() {
        let (net, mut cps) = triangle_checkpoints(CheckpointConfig::default());
        cps[0].activate_as_seed(0.0);
        assert!(!cps[0].is_stable());
        let from1 = net.edge_between(NodeId(1), NodeId(0)).unwrap();
        let from2 = net.edge_between(NodeId(2), NodeId(0)).unwrap();
        let l1 = Label {
            origin: NodeId(1),
            origin_pred: Some(NodeId(0)),
            seed: NodeId(0),
        };
        cps[0].on_vehicle_entered(5.0, Some(from1), &CAR, Some(l1));
        assert!(!cps[0].is_stable());
        let l2 = Label {
            origin: NodeId(2),
            origin_pred: Some(NodeId(1)),
            seed: NodeId(0),
        };
        cps[0].on_vehicle_entered(7.0, Some(from2), &CAR, Some(l2));
        assert!(cps[0].is_stable());
        assert_eq!(cps[0].stable_at(), Some(7.0));
    }

    #[test]
    fn full_wave_and_collection_on_triangle() {
        // Hand-drive Fig. 1 end to end: seed 0, wave 0→1→2, backwash,
        // reports 2→1→0, global view at the seed.
        let (net, mut cps) = triangle_checkpoints(CheckpointConfig::default());
        let e = |a: u32, b: u32| net.edge_between(NodeId(a), NodeId(b)).unwrap();
        cps[0].activate_as_seed(0.0);

        // Seed counts one car from each side.
        cps[0].on_vehicle_entered(1.0, Some(e(1, 0)), &CAR, None);
        cps[0].on_vehicle_entered(1.0, Some(e(2, 0)), &CAR, None);

        // Wave to 1.
        let l01 = cps[0].offer_label(e(0, 1)).unwrap();
        cps[0].label_delivered(e(0, 1));
        cps[1].on_vehicle_entered(3.0, Some(e(0, 1)), &CAR, Some(l01));
        // 1 counts a car arriving from 2.
        cps[1].on_vehicle_entered(4.0, Some(e(2, 1)), &CAR, None);

        // Wave to 2 (from 1).
        let l12 = cps[1].offer_label(e(1, 2)).unwrap();
        cps[1].label_delivered(e(1, 2));
        cps[2].on_vehicle_entered(5.0, Some(e(1, 2)), &CAR, Some(l12));
        // Seed's label on 0→2 stops 2's remaining counting direction and
        // completes 2's child discovery: 2 reports (no children).
        let l02 = cps[0].offer_label(e(0, 2)).unwrap();
        cps[0].label_delivered(e(0, 2));
        let out2 = cps[2].on_vehicle_entered(5.5, Some(e(0, 2)), &CAR, Some(l02));
        assert!(cps[2].is_stable());
        assert_eq!(
            out2.commands,
            vec![Command::SendReport {
                to: NodeId(1),
                total: 0,
                seq: 1
            }]
        );

        // Backwash labels: 1→0, 2→0, 2→1.
        let l10 = cps[1].offer_label(e(1, 0)).unwrap();
        cps[1].label_delivered(e(1, 0));
        cps[0].on_vehicle_entered(6.0, Some(e(1, 0)), &CAR, Some(l10));
        let l20 = cps[2].offer_label(e(2, 0)).unwrap();
        cps[2].label_delivered(e(2, 0));
        cps[0].on_vehicle_entered(7.0, Some(e(2, 0)), &CAR, Some(l20));
        let l21 = cps[2].offer_label(e(2, 1)).unwrap();
        cps[2].label_delivered(e(2, 1));
        let out = cps[1].on_vehicle_entered(8.0, Some(e(2, 1)), &CAR, Some(l21));
        assert!(cps[0].is_stable() && cps[1].is_stable());
        assert!(out.commands.is_empty(), "1 still waits for 2's report");
        assert_eq!(cps[2].tree_total(), Some(0));

        // Transport 2's report to 1, then 1's to the seed.
        let cmds = cps[1].on_report(9.0, NodeId(2), 0, 1);
        assert_eq!(
            cmds,
            vec![Command::SendReport {
                to: NodeId(0),
                total: 1,
                seq: 1
            }]
        );
        cps[0].on_report(10.0, NodeId(1), 1, 1);
        // Global view at the seed: 2 counted at 0, 1 at 1, 0 at 2.
        assert_eq!(cps[0].tree_total(), Some(3));
        assert_eq!(cps[0].collected_at(), Some(10.0));
    }

    #[test]
    fn failed_handoff_compensates_and_retries() {
        let (net, mut cps) = triangle_checkpoints(CheckpointConfig::default());
        cps[0].activate_as_seed(0.0);
        let e01 = net.edge_between(NodeId(0), NodeId(1)).unwrap();
        assert!(cps[0].offer_label(e01).is_some());
        cps[0].label_handoff_failed(0.5, e01, true);
        assert_eq!(cps[0].local_count(), -1, "Alg. 3 line 3 compensation");
        // Still pending: retry with the next vehicle.
        assert!(cps[0].offer_label(e01).is_some());
        cps[0].label_delivered(e01);
        assert!(
            cps[0].offer_label(e01).is_none(),
            "exactly one label per direction"
        );
    }

    #[test]
    fn failed_handoff_to_non_matching_vehicle_costs_nothing() {
        let (net, mut cps) = triangle_checkpoints(CheckpointConfig {
            filter: ClassFilter::white_vans(),
            ..Default::default()
        });
        cps[0].activate_as_seed(0.0);
        let e01 = net.edge_between(NodeId(0), NodeId(1)).unwrap();
        cps[0].label_handoff_failed(0.5, e01, false);
        assert_eq!(cps[0].local_count(), 0);
    }

    #[test]
    fn filter_limits_counting_to_matching_vehicles() {
        let (net, mut cps) = triangle_checkpoints(CheckpointConfig {
            filter: ClassFilter::white_vans(),
            ..Default::default()
        });
        cps[0].activate_as_seed(0.0);
        let from1 = net.edge_between(NodeId(1), NodeId(0)).unwrap();
        cps[0].on_vehicle_entered(1.0, Some(from1), &CAR, None);
        cps[0].on_vehicle_entered(2.0, Some(from1), &VehicleClass::WHITE_VAN, None);
        assert_eq!(cps[0].local_count(), 1);
    }

    #[test]
    fn patrol_cars_are_never_counted() {
        let (net, mut cps) = triangle_checkpoints(CheckpointConfig::default());
        cps[0].activate_as_seed(0.0);
        let from1 = net.edge_between(NodeId(1), NodeId(0)).unwrap();
        let out = cps[0].on_vehicle_entered(1.0, Some(from1), &VehicleClass::PATROL, None);
        assert!(!out.counted);
        assert_eq!(cps[0].local_count(), 0);
    }

    #[test]
    fn overtake_adjustments_shift_local_count() {
        let (_, mut cps) = triangle_checkpoints(CheckpointConfig::default());
        cps[0].activate_as_seed(0.0);
        cps[0].apply_overtake_adjustment(1.0, 2, 1);
        assert_eq!(cps[0].local_count(), 1);
        cps[0].apply_overtake_adjustment(2.0, 0, 3);
        assert_eq!(cps[0].local_count(), -2);
    }

    #[test]
    fn open_variant_counts_interaction_at_active_border() {
        let net = {
            let mut net = fig1_triangle(200.0, 1, 6.7);
            net.set_interaction(
                NodeId(0),
                Interaction {
                    inbound: true,
                    outbound: true,
                },
            );
            net
        };
        let cfg = CheckpointConfig::for_variant(ProtocolVariant::Open);
        let mut cp = Checkpoint::new(&net, NodeId(0), cfg);
        // Inactive: escapes are allowed (Cor. 2).
        assert!(!cp.on_vehicle_exited(0.0, &CAR));
        cp.on_vehicle_entered(0.5, None, &CAR, None);
        assert_eq!(cp.interaction_net(), 0);
        cp.activate_as_seed(1.0);
        cp.on_vehicle_entered(2.0, None, &CAR, None);
        assert!(cp.on_vehicle_exited(3.0, &CAR));
        cp.on_vehicle_entered(4.0, None, &CAR, None);
        assert_eq!(cp.interaction_net(), 1);
        assert_eq!(cp.local_count(), 0, "interaction is separate");
    }

    #[test]
    fn closed_variant_ignores_interaction_flags() {
        let mut net = fig1_triangle(200.0, 1, 6.7);
        net.set_interaction(
            NodeId(0),
            Interaction {
                inbound: true,
                outbound: true,
            },
        );
        let mut cp = Checkpoint::new(&net, NodeId(0), CheckpointConfig::default());
        cp.activate_as_seed(0.0);
        cp.on_vehicle_entered(1.0, None, &CAR, None);
        assert!(!cp.on_vehicle_exited(2.0, &CAR));
        assert_eq!(cp.interaction_net(), 0);
    }

    #[test]
    fn duplicate_labels_on_stopped_direction_are_idempotent() {
        let (net, mut cps) = triangle_checkpoints(CheckpointConfig::default());
        cps[0].activate_as_seed(0.0);
        let from1 = net.edge_between(NodeId(1), NodeId(0)).unwrap();
        let l = Label {
            origin: NodeId(1),
            origin_pred: Some(NodeId(0)),
            seed: NodeId(0),
        };
        cps[0].on_vehicle_entered(1.0, Some(from1), &CAR, Some(l));
        let before = cps[0].local_count();
        let out = cps[0].on_vehicle_entered(2.0, Some(from1), &CAR, Some(l));
        assert_eq!(out.stopped, None);
        assert_eq!(cps[0].local_count(), before);
    }

    #[test]
    fn patrol_stale_stop_mode_stops_from_status() {
        let (net, _) = triangle_checkpoints(CheckpointConfig::default());
        let cfg = CheckpointConfig {
            patrol_stale_stop: true,
            ..Default::default()
        };
        let mut cp = Checkpoint::new(&net, NodeId(0), cfg);
        cp.activate_as_seed(0.0);
        let mut status = PatrolStatus::default();
        status.observe(NodeId(1), true);
        status.observe(NodeId(2), true);
        cp.on_patrol_status(5.0, &status);
        assert!(cp.is_stable(), "statuses stopped every inbound direction");
    }

    #[test]
    fn stale_stop_disabled_by_default() {
        let (_net, mut cps) = triangle_checkpoints(CheckpointConfig::default());
        cps[0].activate_as_seed(0.0);
        let mut status = PatrolStatus::default();
        status.observe(NodeId(1), true);
        status.observe(NodeId(2), true);
        cps[0].on_patrol_status(5.0, &status);
        assert!(!cps[0].is_stable());
    }

    #[test]
    fn seed_with_no_children_finishes_immediately_on_stability() {
        // A 2-node network: seed 0 and node 1.
        let mut net = RoadNetwork::new();
        let a = net.add_node(vcount_roadnet::Point::new(0.0, 0.0));
        let b = net.add_node(vcount_roadnet::Point::new(100.0, 0.0));
        net.add_two_way(a, b, 1, 6.7);
        let cfg = CheckpointConfig::default();
        let mut cp0 = Checkpoint::new(&net, a, cfg);
        let mut cp1 = Checkpoint::new(&net, b, cfg);
        cp0.activate_as_seed(0.0);
        // Wave to 1 and backwash.
        let e01 = net.edge_between(a, b).unwrap();
        let e10 = net.edge_between(b, a).unwrap();
        let l = cp0.offer_label(e01).unwrap();
        cp0.label_delivered(e01);
        cp1.on_vehicle_entered(1.0, Some(e01), &CAR, Some(l));
        let l_back = cp1.offer_label(e10).unwrap();
        cp1.label_delivered(e10);
        cp0.on_vehicle_entered(2.0, Some(e10), &CAR, Some(l_back));
        assert!(cp0.is_stable());
        // 1 is also stable (its only non-pred inbound set is empty).
        assert!(cp1.is_stable());
        // 1 reports 0 vehicles; 0 aggregates.
        cp0.on_report(3.0, b, 0, 1);
        assert_eq!(cp0.tree_total(), Some(0));
    }
}
