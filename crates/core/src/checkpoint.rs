//! The effectful checkpoint shell around the pure protocol machine.
//!
//! All protocol logic lives in [`crate::machine`]: an immutable
//! [`CheckpointMachine`] topology view plus a serializable
//! [`CheckpointState`], driven by `process(state, action) → dispatches`.
//! This module keeps the deployment-facing [`Checkpoint`] type: it owns
//! one machine + state pair and the event buffer, mints [`Action`]s from
//! caller [`Observation`]s (the caller supplies `now` and every channel
//! outcome), and buffers emitted [`ProtocolEvent`]s until the harness
//! drains them with [`Checkpoint::drain_events_into`]. Commands are
//! appended to a caller-provided scratch vector, keeping the hot path
//! allocation-free.

use crate::command::Command;
use crate::config::{CheckpointConfig, ProtocolVariant};
use crate::counter::Counters;
use crate::machine::{Action, CheckpointMachine, Dispatches};
use crate::observation::Observation;
use vcount_obs::ProtocolEvent;
use vcount_roadnet::{EdgeId, NodeId, RoadNetwork};
use vcount_v2x::Label;

pub use crate::machine::{CheckpointState, InboundState, LabelState};

/// One checkpoint of the deployment: the pure machine, its dynamic state,
/// and the buffered event stream. See module docs.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    machine: CheckpointMachine,
    state: CheckpointState,
    /// Buffered protocol events `(time, event)`, drained by the harness.
    events: Vec<(f64, ProtocolEvent)>,
}

impl Checkpoint {
    /// Builds the checkpoint for intersection `node`, extracting its local
    /// topology view from the network.
    pub fn new(net: &RoadNetwork, node: NodeId, cfg: CheckpointConfig) -> Self {
        let machine = CheckpointMachine::new(net, node, cfg);
        let state = machine.initial_state();
        Checkpoint {
            machine,
            state,
            events: Vec::new(),
        }
    }

    /// Captures the dynamic protocol state for snapshot/resume. Must be
    /// called with the event buffer drained (i.e. at a step boundary).
    pub fn export_state(&self) -> CheckpointState {
        debug_assert!(
            self.events.is_empty(),
            "export_state with undrained protocol events"
        );
        self.state.clone()
    }

    /// Re-applies state captured by [`Checkpoint::export_state`] onto a
    /// freshly built checkpoint (same network, same node).
    pub fn restore_state(&mut self, state: CheckpointState) {
        self.state = state;
    }

    // ------------------------------------------------------------------
    // Unified dispatch
    // ------------------------------------------------------------------

    /// Processes one [`Observation`] at time `now`, appending the
    /// transport commands it produced to `cmds` (nothing is cleared — the
    /// caller owns and drains the scratch). This is the protocol's single
    /// entry point; side effects beyond the appended commands are counter
    /// updates and buffered [`ProtocolEvent`]s (see
    /// [`Checkpoint::drain_events_into`]).
    pub fn handle(&mut self, obs: Observation, now: f64, cmds: &mut Vec<Command>) {
        self.apply(
            &Action {
                at_s: now,
                kind: obs.into(),
            },
            cmds,
        );
    }

    /// Feeds one pre-built [`Action`] to the pure machine, appending the
    /// commands it dispatched to `cmds` and buffering its events. This is
    /// what the engine's record/replay path drives; [`Checkpoint::handle`]
    /// is a thin [`Observation`]-minting wrapper over it.
    pub fn apply(&mut self, action: &Action, cmds: &mut Vec<Command>) {
        let mut out = Dispatches {
            commands: cmds,
            events: &mut self.events,
        };
        self.machine.process(&mut self.state, action, &mut out);
    }

    /// Appends the buffered protocol events to `out` and clears the
    /// buffer (allocation-free when the buffer is empty). This is the only
    /// event-drain API; events are buffered in emission order.
    pub fn drain_events_into(&mut self, out: &mut Vec<(f64, ProtocolEvent)>) {
        out.append(&mut self.events);
    }

    // ------------------------------------------------------------------
    // Phase 1 & 3: activation
    // ------------------------------------------------------------------

    /// Phase 1: initialize this checkpoint as a seed (and data sink). All
    /// inbound counting starts; labels become pending on every outbound
    /// direction. Commands (pred announces on one-way topologies) are
    /// appended to `cmds`.
    pub fn activate_as_seed(&mut self, now: f64, cmds: &mut Vec<Command>) {
        self.apply(
            &Action {
                at_s: now,
                kind: crate::machine::ActionKind::Seed,
            },
            cmds,
        );
    }

    // ------------------------------------------------------------------
    // Phase 2: labelling departures
    // ------------------------------------------------------------------

    /// Phase 2: a vehicle is joining outbound direction `onto`; returns the
    /// label to hand it when one is pending. The caller performs the lossy
    /// handoff exchange and reports the outcome with an
    /// [`Observation::Departed`].
    pub fn offer_label(&self, onto: EdgeId) -> Option<Label> {
        self.machine.offer_label(&self.state, onto)
    }

    /// The spanning-tree children discovered so far (outbound neighbours
    /// that chose us as predecessor).
    pub fn children(&self) -> Vec<NodeId> {
        self.machine.children(&self.state)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// This checkpoint's intersection.
    pub fn id(&self) -> NodeId {
        self.machine.id()
    }

    /// Whether the local counting has been activated.
    pub fn is_active(&self) -> bool {
        self.state.active
    }

    /// Whether this checkpoint is a seed.
    pub fn is_seed(&self) -> bool {
        self.state.is_seed
    }

    /// `p(u)` — the predecessor whose label activated us.
    pub fn pred(&self) -> Option<NodeId> {
        self.state.pred
    }

    /// Phase 6: the local non-interaction count has stabilized (every
    /// activated inbound direction has ended).
    pub fn is_stable(&self) -> bool {
        self.state.stable_at.is_some()
    }

    /// When the checkpoint activated (simulated seconds).
    pub fn activated_at(&self) -> Option<f64> {
        self.state.activated_at
    }

    /// When the local view stabilized (simulated seconds).
    pub fn stable_at(&self) -> Option<f64> {
        self.state.stable_at
    }

    /// When the subtree total was finalized / reported (simulated seconds).
    pub fn collected_at(&self) -> Option<f64> {
        self.state.collected_at
    }

    /// The stabilizable local count `c(u)` (non-interaction).
    pub fn local_count(&self) -> i64 {
        self.state.counters.local_count()
    }

    /// Net border interaction (`in − out`, Alg. 5).
    pub fn interaction_net(&self) -> i64 {
        self.state.counters.interaction_net()
    }

    /// Raw counter state (diagnostics).
    pub fn counters(&self) -> &Counters {
        &self.state.counters
    }

    /// The aggregated subtree total, available once all children reported.
    /// At a seed this is the tree's share of the global view.
    pub fn tree_total(&self) -> Option<i64> {
        self.state.tree_total
    }

    /// Counting state of an inbound direction.
    pub fn inbound_state(&self, e: EdgeId) -> InboundState {
        self.state
            .inbound_state
            .get(&e)
            .copied()
            .unwrap_or(InboundState::Idle)
    }

    /// Label state of an outbound direction.
    pub fn label_state(&self, e: EdgeId) -> LabelState {
        self.state
            .label_state
            .get(&e)
            .copied()
            .unwrap_or(LabelState::Idle)
    }

    /// Downstream neighbours whose labels cannot reach us (one-way
    /// segments); their predecessors arrive via announcements instead.
    pub fn oneway_out_neighbors(&self) -> &[NodeId] {
        self.machine.oneway_out_neighbors()
    }

    /// Upstream neighbours our label cannot reach; they receive
    /// [`Command::SendPredAnnounce`] at activation instead.
    pub fn oneway_in_neighbors(&self) -> &[NodeId] {
        self.machine.oneway_in_neighbors()
    }

    /// Whether this checkpoint sits on the open-system border.
    pub fn is_border(&self) -> bool {
        self.machine.is_border()
    }

    /// Protocol configuration in force.
    pub fn config(&self) -> &CheckpointConfig {
        self.machine.config()
    }

    /// The variant this deployment runs.
    pub fn variant(&self) -> ProtocolVariant {
        self.machine.variant()
    }

    /// The immutable pure-machine topology view this shell drives.
    pub fn machine(&self) -> &CheckpointMachine {
        &self.machine
    }

    /// The current dynamic protocol state (read-only).
    pub fn state(&self) -> &CheckpointState {
        &self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcount_obs::EventKind;
    use vcount_roadnet::builders::fig1_triangle;
    use vcount_roadnet::Interaction;
    use vcount_v2x::{ClassFilter, PatrolStatus, VehicleClass, VehicleId};

    const CAR: VehicleClass = VehicleClass {
        color: vcount_v2x::Color::Red,
        brand: vcount_v2x::Brand::Apex,
        body: vcount_v2x::BodyType::Sedan,
    };

    fn triangle_checkpoints(cfg: CheckpointConfig) -> (RoadNetwork, Vec<Checkpoint>) {
        let net = fig1_triangle(200.0, 1, 6.7);
        let cps = net
            .node_ids()
            .map(|n| Checkpoint::new(&net, n, cfg))
            .collect();
        (net, cps)
    }

    /// Drives one observation through a fresh command scratch (tests value
    /// readability over scratch reuse).
    fn handle(cp: &mut Checkpoint, obs: Observation, now: f64) -> Vec<Command> {
        let mut cmds = Vec::new();
        cp.handle(obs, now, &mut cmds);
        cmds
    }

    /// Seed activation through a fresh command scratch.
    fn seed(cp: &mut Checkpoint, now: f64) -> Vec<Command> {
        let mut cmds = Vec::new();
        cp.activate_as_seed(now, &mut cmds);
        cmds
    }

    /// Feeds an entry observation with a throwaway vehicle id.
    fn enter(
        cp: &mut Checkpoint,
        now: f64,
        via: Option<EdgeId>,
        class: VehicleClass,
        label: Option<Label>,
    ) -> Vec<Command> {
        handle(
            cp,
            Observation::Entered {
                vehicle: VehicleId(77),
                via,
                class,
                label,
            },
            now,
        )
    }

    /// Drains the buffered events into a fresh vector.
    fn drain(cp: &mut Checkpoint) -> Vec<(f64, ProtocolEvent)> {
        let mut evs = Vec::new();
        cp.drain_events_into(&mut evs);
        evs
    }

    /// Kinds of the events buffered since the last drain, in order.
    fn kinds_since(cp: &mut Checkpoint) -> Vec<EventKind> {
        drain(cp).iter().map(|(_, e)| e.kind()).collect()
    }

    #[test]
    fn seed_activation_starts_all_inbound_counting() {
        let (net, mut cps) = triangle_checkpoints(CheckpointConfig::default());
        let cmds = seed(&mut cps[0], 0.0);
        assert!(cmds.is_empty(), "bidirectional triangle needs no announces");
        assert!(cps[0].is_active() && cps[0].is_seed());
        assert_eq!(kinds_since(&mut cps[0]), [EventKind::CheckpointActivated]);
        for &e in net.in_edges(NodeId(0)) {
            assert_eq!(cps[0].inbound_state(e), InboundState::Counting);
        }
        for &e in net.out_edges(NodeId(0)) {
            assert_eq!(cps[0].label_state(e), LabelState::Pending);
            assert!(cps[0].offer_label(e).is_some());
        }
    }

    #[test]
    fn unlabeled_vehicle_is_counted_once_active() {
        let (net, mut cps) = triangle_checkpoints(CheckpointConfig::default());
        let e = net.edge_between(NodeId(1), NodeId(0)).unwrap();
        // Inactive: not counted, no event.
        enter(&mut cps[0], 0.0, Some(e), CAR, None);
        assert!(kinds_since(&mut cps[0]).is_empty());
        seed(&mut cps[0], 1.0);
        drain(&mut cps[0]);
        enter(&mut cps[0], 2.0, Some(e), CAR, None);
        assert_eq!(kinds_since(&mut cps[0]), [EventKind::VehicleCounted]);
        assert_eq!(cps[0].local_count(), 1);
        assert_eq!(cps[0].counters().inbound(e), 1);
    }

    #[test]
    fn label_activates_inactive_checkpoint_and_skips_pred_direction() {
        let (net, mut cps) = triangle_checkpoints(CheckpointConfig::default());
        seed(&mut cps[0], 0.0);
        let label = cps[0]
            .offer_label(net.edge_between(NodeId(0), NodeId(1)).unwrap())
            .unwrap();
        let via = net.edge_between(NodeId(0), NodeId(1)).unwrap();
        enter(&mut cps[1], 5.0, Some(via), CAR, Some(label));
        let events = drain(&mut cps[1]);
        assert!(matches!(
            events[0].1,
            ProtocolEvent::CheckpointActivated {
                node: 1,
                pred: Some(0),
                wave_seed: 0,
                is_seed: false,
            }
        ));
        assert!(
            !events
                .iter()
                .any(|(_, e)| e.kind() == EventKind::VehicleCounted),
            "labeled vehicle is never counted"
        );
        assert_eq!(cps[1].pred(), Some(NodeId(0)));
        // Direction from the predecessor never counts.
        assert_eq!(cps[1].inbound_state(via), InboundState::Stopped);
        // Direction from node 2 counts.
        let from2 = net.edge_between(NodeId(2), NodeId(1)).unwrap();
        assert_eq!(cps[1].inbound_state(from2), InboundState::Counting);
    }

    #[test]
    fn label_stops_counting_at_active_checkpoint() {
        let (net, mut cps) = triangle_checkpoints(CheckpointConfig::default());
        seed(&mut cps[0], 0.0);
        let from1 = net.edge_between(NodeId(1), NodeId(0)).unwrap();
        // Count two cars first.
        enter(&mut cps[0], 1.0, Some(from1), CAR, None);
        enter(&mut cps[0], 2.0, Some(from1), CAR, None);
        drain(&mut cps[0]);
        // Node 1's backwash label arrives.
        let label = Label {
            origin: NodeId(1),
            origin_pred: Some(NodeId(0)),
            seed: NodeId(0),
        };
        enter(&mut cps[0], 3.0, Some(from1), CAR, Some(label));
        let events = drain(&mut cps[0]);
        assert!(matches!(
            events[0].1,
            ProtocolEvent::InboundStopped { node: 0, edge } if edge == from1.0
        ));
        // Further arrivals on that direction are not counted.
        enter(&mut cps[0], 4.0, Some(from1), CAR, None);
        assert!(kinds_since(&mut cps[0]).is_empty());
        assert_eq!(cps[0].local_count(), 2);
    }

    #[test]
    fn stability_requires_all_directions_stopped() {
        let (net, mut cps) = triangle_checkpoints(CheckpointConfig::default());
        seed(&mut cps[0], 0.0);
        assert!(!cps[0].is_stable());
        let from1 = net.edge_between(NodeId(1), NodeId(0)).unwrap();
        let from2 = net.edge_between(NodeId(2), NodeId(0)).unwrap();
        let l1 = Label {
            origin: NodeId(1),
            origin_pred: Some(NodeId(0)),
            seed: NodeId(0),
        };
        enter(&mut cps[0], 5.0, Some(from1), CAR, Some(l1));
        assert!(!cps[0].is_stable());
        let l2 = Label {
            origin: NodeId(2),
            origin_pred: Some(NodeId(1)),
            seed: NodeId(0),
        };
        drain(&mut cps[0]);
        enter(&mut cps[0], 7.0, Some(from2), CAR, Some(l2));
        assert!(cps[0].is_stable());
        assert_eq!(cps[0].stable_at(), Some(7.0));
        assert_eq!(
            kinds_since(&mut cps[0]),
            [EventKind::InboundStopped, EventKind::CheckpointStable]
        );
    }

    #[test]
    fn full_wave_and_collection_on_triangle() {
        // Hand-drive Fig. 1 end to end: seed 0, wave 0→1→2, backwash,
        // reports 2→1→0, global view at the seed.
        let (net, mut cps) = triangle_checkpoints(CheckpointConfig::default());
        let e = |a: u32, b: u32| net.edge_between(NodeId(a), NodeId(b)).unwrap();
        let deliver = |cp: &mut Checkpoint, onto: EdgeId, t: f64| {
            let label = cp.offer_label(onto).unwrap();
            let mut cmds = Vec::new();
            cp.handle(
                Observation::Departed {
                    vehicle: VehicleId(7),
                    onto,
                    delivered: true,
                    matches_filter: true,
                },
                t,
                &mut cmds,
            );
            label
        };
        seed(&mut cps[0], 0.0);

        // Seed counts one car from each side.
        enter(&mut cps[0], 1.0, Some(e(1, 0)), CAR, None);
        enter(&mut cps[0], 1.0, Some(e(2, 0)), CAR, None);

        // Wave to 1.
        let l01 = deliver(&mut cps[0], e(0, 1), 2.0);
        enter(&mut cps[1], 3.0, Some(e(0, 1)), CAR, Some(l01));
        // 1 counts a car arriving from 2.
        enter(&mut cps[1], 4.0, Some(e(2, 1)), CAR, None);

        // Wave to 2 (from 1).
        let l12 = deliver(&mut cps[1], e(1, 2), 4.5);
        enter(&mut cps[2], 5.0, Some(e(1, 2)), CAR, Some(l12));
        // Seed's label on 0→2 stops 2's remaining counting direction and
        // completes 2's child discovery: 2 reports (no children).
        let l02 = deliver(&mut cps[0], e(0, 2), 5.2);
        let cmds2 = enter(&mut cps[2], 5.5, Some(e(0, 2)), CAR, Some(l02));
        assert!(cps[2].is_stable());
        assert_eq!(
            cmds2,
            vec![Command::SendReport {
                to: NodeId(1),
                total: 0,
                seq: 1
            }]
        );
        assert!(drain(&mut cps[2])
            .iter()
            .any(|(_, ev)| matches!(ev, ProtocolEvent::ReportSent { node: 2, to: 1, .. })));

        // Backwash labels: 1→0, 2→0, 2→1.
        let l10 = deliver(&mut cps[1], e(1, 0), 5.8);
        enter(&mut cps[0], 6.0, Some(e(1, 0)), CAR, Some(l10));
        let l20 = deliver(&mut cps[2], e(2, 0), 6.5);
        enter(&mut cps[0], 7.0, Some(e(2, 0)), CAR, Some(l20));
        let l21 = deliver(&mut cps[2], e(2, 1), 7.5);
        let cmds = enter(&mut cps[1], 8.0, Some(e(2, 1)), CAR, Some(l21));
        assert!(cps[0].is_stable() && cps[1].is_stable());
        assert!(cmds.is_empty(), "1 still waits for 2's report");
        assert_eq!(cps[2].tree_total(), Some(0));

        // Transport 2's report to 1, then 1's to the seed.
        let cmds = handle(
            &mut cps[1],
            Observation::Report {
                from: NodeId(2),
                total: 0,
                seq: 1,
            },
            9.0,
        );
        assert_eq!(
            cmds,
            vec![Command::SendReport {
                to: NodeId(0),
                total: 1,
                seq: 1
            }]
        );
        handle(
            &mut cps[0],
            Observation::Report {
                from: NodeId(1),
                total: 1,
                seq: 1,
            },
            10.0,
        );
        // Global view at the seed: 2 counted at 0, 1 at 1, 0 at 2.
        assert_eq!(cps[0].tree_total(), Some(3));
        assert_eq!(cps[0].collected_at(), Some(10.0));
    }

    #[test]
    fn failed_handoff_compensates_and_retries() {
        let (net, mut cps) = triangle_checkpoints(CheckpointConfig::default());
        seed(&mut cps[0], 0.0);
        let e01 = net.edge_between(NodeId(0), NodeId(1)).unwrap();
        assert!(cps[0].offer_label(e01).is_some());
        drain(&mut cps[0]);
        handle(
            &mut cps[0],
            Observation::Departed {
                vehicle: VehicleId(3),
                onto: e01,
                delivered: false,
                matches_filter: true,
            },
            0.5,
        );
        assert_eq!(cps[0].local_count(), -1, "Alg. 3 line 3 compensation");
        assert_eq!(
            kinds_since(&mut cps[0]),
            [
                EventKind::LabelEmitted,
                EventKind::LabelHandoffFailed,
                EventKind::LossCompensation
            ]
        );
        // Still pending: retry with the next vehicle.
        assert!(cps[0].offer_label(e01).is_some());
        handle(
            &mut cps[0],
            Observation::Departed {
                vehicle: VehicleId(4),
                onto: e01,
                delivered: true,
                matches_filter: true,
            },
            0.9,
        );
        assert!(
            cps[0].offer_label(e01).is_none(),
            "exactly one label per direction"
        );
        assert_eq!(
            kinds_since(&mut cps[0]),
            [EventKind::LabelEmitted, EventKind::LabelHandoffAcked]
        );
    }

    #[test]
    fn failed_handoff_to_non_matching_vehicle_costs_nothing() {
        let (net, mut cps) = triangle_checkpoints(CheckpointConfig {
            filter: ClassFilter::white_vans(),
            ..Default::default()
        });
        seed(&mut cps[0], 0.0);
        let e01 = net.edge_between(NodeId(0), NodeId(1)).unwrap();
        handle(
            &mut cps[0],
            Observation::Departed {
                vehicle: VehicleId(3),
                onto: e01,
                delivered: false,
                matches_filter: false,
            },
            0.5,
        );
        assert_eq!(cps[0].local_count(), 0);
    }

    #[test]
    fn filter_limits_counting_to_matching_vehicles() {
        let (net, mut cps) = triangle_checkpoints(CheckpointConfig {
            filter: ClassFilter::white_vans(),
            ..Default::default()
        });
        seed(&mut cps[0], 0.0);
        let from1 = net.edge_between(NodeId(1), NodeId(0)).unwrap();
        enter(&mut cps[0], 1.0, Some(from1), CAR, None);
        enter(&mut cps[0], 2.0, Some(from1), VehicleClass::WHITE_VAN, None);
        assert_eq!(cps[0].local_count(), 1);
    }

    #[test]
    fn patrol_cars_are_never_counted() {
        let (net, mut cps) = triangle_checkpoints(CheckpointConfig::default());
        seed(&mut cps[0], 0.0);
        drain(&mut cps[0]);
        let from1 = net.edge_between(NodeId(1), NodeId(0)).unwrap();
        enter(&mut cps[0], 1.0, Some(from1), VehicleClass::PATROL, None);
        assert!(kinds_since(&mut cps[0]).is_empty());
        assert_eq!(cps[0].local_count(), 0);
    }

    #[test]
    fn overtake_adjustments_shift_local_count() {
        let (_, mut cps) = triangle_checkpoints(CheckpointConfig::default());
        seed(&mut cps[0], 0.0);
        drain(&mut cps[0]);
        handle(&mut cps[0], Observation::Adjust { plus: 2, minus: 1 }, 1.0);
        assert_eq!(cps[0].local_count(), 1);
        handle(&mut cps[0], Observation::Adjust { plus: 0, minus: 3 }, 2.0);
        assert_eq!(cps[0].local_count(), -2);
        let events = drain(&mut cps[0]);
        assert!(matches!(
            events[0].1,
            ProtocolEvent::OvertakeAdjustment {
                node: 0,
                plus: 2,
                minus: 1
            }
        ));
    }

    #[test]
    fn open_variant_counts_interaction_at_active_border() {
        let net = {
            let mut net = fig1_triangle(200.0, 1, 6.7);
            net.set_interaction(
                NodeId(0),
                Interaction {
                    inbound: true,
                    outbound: true,
                },
            );
            net
        };
        let cfg = CheckpointConfig::for_variant(ProtocolVariant::Open);
        let mut cp = Checkpoint::new(&net, NodeId(0), cfg);
        let exit = |cp: &mut Checkpoint, t: f64| {
            handle(
                cp,
                Observation::BorderExit {
                    vehicle: VehicleId(9),
                    class: CAR,
                },
                t,
            );
        };
        // Inactive: escapes are allowed (Cor. 2).
        exit(&mut cp, 0.0);
        enter(&mut cp, 0.5, None, CAR, None);
        assert_eq!(cp.interaction_net(), 0);
        assert!(kinds_since(&mut cp).is_empty(), "inactive: no events");
        seed(&mut cp, 1.0);
        drain(&mut cp);
        enter(&mut cp, 2.0, None, CAR, None);
        exit(&mut cp, 3.0);
        enter(&mut cp, 4.0, None, CAR, None);
        assert_eq!(
            kinds_since(&mut cp),
            [
                EventKind::BorderEntry,
                EventKind::BorderExit,
                EventKind::BorderEntry
            ]
        );
        assert_eq!(cp.interaction_net(), 1);
        assert_eq!(cp.local_count(), 0, "interaction is separate");
    }

    #[test]
    fn closed_variant_ignores_interaction_flags() {
        let mut net = fig1_triangle(200.0, 1, 6.7);
        net.set_interaction(
            NodeId(0),
            Interaction {
                inbound: true,
                outbound: true,
            },
        );
        let mut cp = Checkpoint::new(&net, NodeId(0), CheckpointConfig::default());
        seed(&mut cp, 0.0);
        enter(&mut cp, 1.0, None, CAR, None);
        handle(
            &mut cp,
            Observation::BorderExit {
                vehicle: VehicleId(9),
                class: CAR,
            },
            2.0,
        );
        assert_eq!(cp.interaction_net(), 0);
    }

    #[test]
    fn duplicate_labels_on_stopped_direction_are_idempotent() {
        let (net, mut cps) = triangle_checkpoints(CheckpointConfig::default());
        seed(&mut cps[0], 0.0);
        let from1 = net.edge_between(NodeId(1), NodeId(0)).unwrap();
        let l = Label {
            origin: NodeId(1),
            origin_pred: Some(NodeId(0)),
            seed: NodeId(0),
        };
        enter(&mut cps[0], 1.0, Some(from1), CAR, Some(l));
        let before = cps[0].local_count();
        drain(&mut cps[0]);
        enter(&mut cps[0], 2.0, Some(from1), CAR, Some(l));
        assert!(
            kinds_since(&mut cps[0]).is_empty(),
            "no second stop, no count"
        );
        assert_eq!(cps[0].local_count(), before);
    }

    #[test]
    fn patrol_stale_stop_mode_stops_from_status() {
        let (net, _) = triangle_checkpoints(CheckpointConfig::default());
        let cfg = CheckpointConfig {
            patrol_stale_stop: true,
            ..Default::default()
        };
        let mut cp = Checkpoint::new(&net, NodeId(0), cfg);
        seed(&mut cp, 0.0);
        drain(&mut cp);
        let mut status = PatrolStatus::default();
        status.observe(NodeId(1), true);
        status.observe(NodeId(2), true);
        handle(
            &mut cp,
            Observation::PatrolStatus {
                vehicle: VehicleId(2),
                status,
            },
            5.0,
        );
        assert!(cp.is_stable(), "statuses stopped every inbound direction");
        assert_eq!(
            kinds_since(&mut cp),
            [
                EventKind::PatrolStatusRelay,
                EventKind::InboundStopped,
                EventKind::InboundStopped,
                EventKind::CheckpointStable
            ]
        );
    }

    #[test]
    fn stale_stop_disabled_by_default() {
        let (_net, mut cps) = triangle_checkpoints(CheckpointConfig::default());
        seed(&mut cps[0], 0.0);
        let mut status = PatrolStatus::default();
        status.observe(NodeId(1), true);
        status.observe(NodeId(2), true);
        handle(
            &mut cps[0],
            Observation::PatrolStatus {
                vehicle: VehicleId(2),
                status,
            },
            5.0,
        );
        assert!(!cps[0].is_stable());
    }

    #[test]
    fn seed_with_no_children_finishes_immediately_on_stability() {
        // A 2-node network: seed 0 and node 1.
        let mut net = RoadNetwork::new();
        let a = net.add_node(vcount_roadnet::Point::new(0.0, 0.0));
        let b = net.add_node(vcount_roadnet::Point::new(100.0, 0.0));
        net.add_two_way(a, b, 1, 6.7);
        let cfg = CheckpointConfig::default();
        let mut cp0 = Checkpoint::new(&net, a, cfg);
        let mut cp1 = Checkpoint::new(&net, b, cfg);
        seed(&mut cp0, 0.0);
        // Wave to 1 and backwash.
        let e01 = net.edge_between(a, b).unwrap();
        let e10 = net.edge_between(b, a).unwrap();
        let l = cp0.offer_label(e01).unwrap();
        handle(
            &mut cp0,
            Observation::Departed {
                vehicle: VehicleId(1),
                onto: e01,
                delivered: true,
                matches_filter: true,
            },
            0.5,
        );
        enter(&mut cp1, 1.0, Some(e01), CAR, Some(l));
        let l_back = cp1.offer_label(e10).unwrap();
        handle(
            &mut cp1,
            Observation::Departed {
                vehicle: VehicleId(2),
                onto: e10,
                delivered: true,
                matches_filter: true,
            },
            1.5,
        );
        enter(&mut cp0, 2.0, Some(e10), CAR, Some(l_back));
        assert!(cp0.is_stable());
        // 1 is also stable (its only non-pred inbound set is empty).
        assert!(cp1.is_stable());
        // 1 reports 0 vehicles; 0 aggregates.
        handle(
            &mut cp0,
            Observation::Report {
                from: b,
                total: 0,
                seq: 1,
            },
            3.0,
        );
        assert_eq!(cp0.tree_total(), Some(0));
    }

    #[test]
    fn higher_sequence_report_supersedes_and_is_observable() {
        let (net, mut cps) = triangle_checkpoints(CheckpointConfig::default());
        let _ = net;
        seed(&mut cps[0], 0.0);
        drain(&mut cps[0]);
        handle(
            &mut cps[0],
            Observation::Report {
                from: NodeId(1),
                total: 5,
                seq: 1,
            },
            1.0,
        );
        assert!(kinds_since(&mut cps[0]).is_empty(), "first report: no dup");
        // Stale report is ignored, no event.
        handle(
            &mut cps[0],
            Observation::Report {
                from: NodeId(1),
                total: 99,
                seq: 0,
            },
            2.0,
        );
        assert!(kinds_since(&mut cps[0]).is_empty());
        // Higher sequence supersedes.
        handle(
            &mut cps[0],
            Observation::Report {
                from: NodeId(1),
                total: 4,
                seq: 2,
            },
            3.0,
        );
        let events = drain(&mut cps[0]);
        assert!(matches!(
            events[0].1,
            ProtocolEvent::ReportSuperseded {
                node: 0,
                child: 1,
                old_seq: 1,
                new_seq: 2
            }
        ));
    }
}
