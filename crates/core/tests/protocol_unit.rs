//! Hand-driven protocol scenarios exercising the extensions: one-way
//! streets (Theorem 2), multi-seed waves, report re-issue ordering, and
//! open-system interaction accounting — all through the unified
//! [`Checkpoint::handle`] entry point.

use vcount_core::{
    Checkpoint, CheckpointConfig, Command, InboundState, Observation, ProtocolEvent,
    ProtocolVariant,
};
use vcount_roadnet::{EdgeId, Interaction, NodeId, Point, RoadNetwork};
use vcount_v2x::{BodyType, Brand, Color, Label, VehicleClass, VehicleId};

const CAR: VehicleClass = VehicleClass {
    color: Color::Black,
    brand: Brand::Everest,
    body: BodyType::Suv,
};

/// Drives one observation through a fresh command scratch.
fn handle(cp: &mut Checkpoint, obs: Observation, now: f64) -> Vec<Command> {
    let mut cmds = Vec::new();
    cp.handle(obs, now, &mut cmds);
    cmds
}

/// Seed activation through a fresh command scratch.
fn seed(cp: &mut Checkpoint, now: f64) -> Vec<Command> {
    let mut cmds = Vec::new();
    cp.activate_as_seed(now, &mut cmds);
    cmds
}

/// Drains the buffered events into a fresh vector.
fn drain(cp: &mut Checkpoint) -> Vec<(f64, ProtocolEvent)> {
    let mut evs = Vec::new();
    cp.drain_events_into(&mut evs);
    evs
}

/// What one `Entered` observation did, reconstructed from the event
/// stream rather than returned by the protocol API.
struct Entry {
    counted: bool,
    activated: bool,
    stopped: Option<EdgeId>,
    commands: Vec<Command>,
}

fn enter(cp: &mut Checkpoint, now: f64, via: Option<EdgeId>, label: Option<Label>) -> Entry {
    drain(cp);
    let commands = handle(
        cp,
        Observation::Entered {
            vehicle: VehicleId(1),
            via,
            class: CAR,
            label,
        },
        now,
    );
    let mut out = Entry {
        counted: false,
        activated: false,
        stopped: None,
        commands,
    };
    for (_, ev) in drain(cp) {
        match ev {
            ProtocolEvent::VehicleCounted { .. } | ProtocolEvent::BorderEntry { .. } => {
                out.counted = true
            }
            ProtocolEvent::CheckpointActivated { .. } => out.activated = true,
            ProtocolEvent::InboundStopped { edge, .. } => out.stopped = Some(EdgeId(edge)),
            _ => {}
        }
    }
    out
}

/// Offers the pending label on `onto` and acknowledges its delivery.
fn deliver(cp: &mut Checkpoint, now: f64, onto: EdgeId) -> Label {
    let label = cp.offer_label(onto).unwrap();
    handle(
        cp,
        Observation::Departed {
            vehicle: VehicleId(1),
            onto,
            delivered: true,
            matches_filter: true,
        },
        now,
    );
    label
}

/// u --> v one-way, plus a return path v -> w -> u (all one-way): the
/// minimal network exercising Alg. 3's one-way handling end to end.
fn oneway_triangle() -> (RoadNetwork, [NodeId; 3]) {
    let mut net = RoadNetwork::new();
    let u = net.add_node(Point::new(0.0, 0.0));
    let v = net.add_node(Point::new(100.0, 0.0));
    let w = net.add_node(Point::new(50.0, 80.0));
    net.add_one_way(u, v, 1, 7.0);
    net.add_one_way(v, w, 1, 7.0);
    net.add_one_way(w, u, 1, 7.0);
    net.validate().unwrap();
    (net, [u, v, w])
}

#[test]
fn one_way_wave_propagates_and_stabilizes() {
    let (net, [u, v, w]) = oneway_triangle();
    let cfg = CheckpointConfig::default();
    let mut cu = Checkpoint::new(&net, u, cfg);
    let mut cv = Checkpoint::new(&net, v, cfg);
    let mut cw = Checkpoint::new(&net, w, cfg);
    let e = |a: NodeId, b: NodeId| net.edge_between(a, b).unwrap();

    // Seed at u. Its only inbound is w->u; outbound u->v.
    let cmds = seed(&mut cu, 0.0);
    // u cannot label back to w (no edge u->w): it announces its pred to w.
    assert_eq!(cmds, vec![Command::SendPredAnnounce { to: w, pred: None }]);

    // Wave u -> v.
    let l_uv = deliver(&mut cu, 9.0, e(u, v));
    let out = enter(&mut cv, 10.0, Some(e(u, v)), Some(l_uv));
    assert!(out.activated);
    assert_eq!(cv.pred(), Some(u));
    // v's only inbound came from its predecessor: v is stable immediately
    // (Theorem 2: no labeling needed on the opposite direction).
    assert!(cv.is_stable());
    // v announces its pred to u (edge v->u missing).
    assert_eq!(
        out.commands,
        vec![Command::SendPredAnnounce {
            to: u,
            pred: Some(u)
        }]
    );

    // Wave v -> w.
    let l_vw = deliver(&mut cv, 19.0, e(v, w));
    let out = enter(&mut cw, 20.0, Some(e(v, w)), Some(l_vw));
    assert!(out.activated && cw.is_stable());
    assert_eq!(
        out.commands,
        vec![Command::SendPredAnnounce {
            to: v,
            pred: Some(v)
        }]
    );

    // Wave w -> u closes the loop and stops u's counting.
    let l_wu = deliver(&mut cw, 29.0, e(w, u));
    let out = enter(&mut cu, 30.0, Some(e(w, u)), Some(l_wu));
    assert_eq!(out.stopped, Some(e(w, u)));
    assert!(cu.is_stable());

    // Child discovery across one-way links: deliver the announces.
    handle(
        &mut cu,
        Observation::Announce {
            from: v,
            pred: Some(u),
        },
        35.0,
    );
    handle(
        &mut cv,
        Observation::Announce {
            from: w,
            pred: Some(v),
        },
        35.0,
    );
    let cmds = handle(
        &mut cw,
        Observation::Announce {
            from: u,
            pred: None,
        },
        35.0,
    );
    // w has no children (u's pred is None): its report goes to pred v.
    assert!(matches!(
        cmds.as_slice(),
        [Command::SendReport { to, .. }] if *to == v
    ));
}

#[test]
fn two_seeds_stop_each_other() {
    // Line u - v (bidirectional), both ends seeds: each stops the other's
    // counting; both trees are singletons.
    let mut net = RoadNetwork::new();
    let u = net.add_node(Point::new(0.0, 0.0));
    let v = net.add_node(Point::new(100.0, 0.0));
    net.add_two_way(u, v, 1, 7.0);
    let cfg = CheckpointConfig::default();
    let mut cu = Checkpoint::new(&net, u, cfg);
    let mut cv = Checkpoint::new(&net, v, cfg);
    seed(&mut cu, 0.0);
    seed(&mut cv, 0.0);
    let e = |a: NodeId, b: NodeId| net.edge_between(a, b).unwrap();

    // Count one vehicle at each side first.
    assert!(enter(&mut cu, 1.0, Some(e(v, u)), None).counted);
    assert!(enter(&mut cv, 1.0, Some(e(u, v)), None).counted);

    // Exchange labels.
    let l_uv = deliver(&mut cu, 4.0, e(u, v));
    let out = enter(&mut cv, 5.0, Some(e(u, v)), Some(l_uv));
    assert_eq!(out.stopped, Some(e(u, v)));
    assert!(!out.activated, "an active seed does not re-activate");
    let l_vu = deliver(&mut cv, 4.0, e(v, u));
    enter(&mut cu, 5.0, Some(e(v, u)), Some(l_vu));

    assert!(cu.is_stable() && cv.is_stable());
    // Forest: both remain roots; no reports flow; totals are local.
    assert_eq!(cu.pred(), None);
    assert_eq!(cv.pred(), None);
    assert_eq!(cu.tree_total(), Some(1));
    assert_eq!(cv.tree_total(), Some(1));
}

#[test]
fn late_loss_compensation_triggers_re_report() {
    // Star: seed s with child u; u has an outbound one-way spur u -> x
    // whose label fails repeatedly after u already reported.
    let mut net = RoadNetwork::new();
    let s = net.add_node(Point::new(0.0, 0.0));
    let u = net.add_node(Point::new(100.0, 0.0));
    let x = net.add_node(Point::new(200.0, 0.0));
    net.add_two_way(s, u, 1, 7.0);
    net.add_two_way(u, x, 1, 7.0);
    let cfg = CheckpointConfig::default();
    let mut cs = Checkpoint::new(&net, s, cfg);
    let mut cu = Checkpoint::new(&net, u, cfg);
    let e = |a: NodeId, b: NodeId| net.edge_between(a, b).unwrap();

    seed(&mut cs, 0.0);
    let l = deliver(&mut cs, 0.5, e(s, u));
    enter(&mut cu, 1.0, Some(e(s, u)), Some(l));
    // u's backwash label stops the seed's counting of s<-u.
    let l_us = deliver(&mut cu, 1.2, e(u, s));
    enter(&mut cs, 1.5, Some(e(u, s)), Some(l_us));
    assert!(cs.is_stable());
    // u counts one vehicle from x, then x's backwash label stops it.
    enter(&mut cu, 2.0, Some(e(x, u)), None);
    let lx = Label {
        origin: x,
        origin_pred: Some(u),
        seed: s,
    };
    let out = enter(&mut cu, 3.0, Some(e(x, u)), Some(lx));
    assert!(cu.is_stable());
    // u knows x is its child; x reports 0: u reports 1 to s.
    assert!(out.commands.is_empty());
    let cmds = handle(
        &mut cu,
        Observation::Report {
            from: x,
            total: 0,
            seq: 1,
        },
        4.0,
    );
    assert_eq!(
        cmds,
        vec![Command::SendReport {
            to: s,
            total: 1,
            seq: 1
        }]
    );
    handle(
        &mut cs,
        Observation::Report {
            from: u,
            total: 1,
            seq: 1,
        },
        5.0,
    );
    assert_eq!(cs.tree_total(), Some(1 /* at u */));

    // NOW a label handoff on u -> x fails (it was still pending): the
    // compensation lands after u's report, so u must re-report.
    let cmds = handle(
        &mut cu,
        Observation::Departed {
            vehicle: VehicleId(2),
            onto: e(u, x),
            delivered: false,
            matches_filter: true,
        },
        6.0,
    );
    assert_eq!(
        cmds,
        vec![Command::SendReport {
            to: s,
            total: 0,
            seq: 2
        }]
    );
    // An out-of-order stale report (seq 1) must not clobber seq 2.
    handle(
        &mut cs,
        Observation::Report {
            from: u,
            total: 1,
            seq: 1,
        },
        7.0,
    );
    handle(
        &mut cs,
        Observation::Report {
            from: u,
            total: 0,
            seq: 2,
        },
        8.0,
    );
    assert_eq!(cs.tree_total(), Some(0));
    // Replaying the stale one after the fresh one is ignored.
    handle(
        &mut cs,
        Observation::Report {
            from: u,
            total: 1,
            seq: 1,
        },
        9.0,
    );
    assert_eq!(cs.tree_total(), Some(0));
}

#[test]
fn open_border_checkpoint_full_lifecycle() {
    let mut net = RoadNetwork::new();
    let b = net.add_node(Point::new(0.0, 0.0));
    let i = net.add_node(Point::new(100.0, 0.0));
    net.add_two_way(b, i, 1, 7.0);
    net.set_interaction(
        b,
        Interaction {
            inbound: true,
            outbound: true,
        },
    );
    let cfg = CheckpointConfig::for_variant(ProtocolVariant::Open);
    let mut cb = Checkpoint::new(&net, b, cfg);
    let e = |a: NodeId, bb: NodeId| net.edge_between(a, bb).unwrap();

    seed(&mut cb, 0.0);
    // Interior counting runs alongside interaction counting.
    assert!(enter(&mut cb, 1.0, Some(e(i, b)), None).counted);
    assert!(enter(&mut cb, 2.0, None, None).counted); // from outside
    handle(
        &mut cb,
        Observation::BorderExit {
            vehicle: VehicleId(1),
            class: CAR,
        },
        3.0,
    );
    assert_eq!(cb.local_count(), 1);
    assert_eq!(cb.interaction_net(), 0);

    // Stability concerns only the non-interaction inbound directions.
    let li = Label {
        origin: i,
        origin_pred: Some(b),
        seed: b,
    };
    enter(&mut cb, 4.0, Some(e(i, b)), Some(li));
    assert!(cb.is_stable());
    // Interaction counting NEVER stops (Alg. 5): more border traffic still
    // counts after stability.
    assert!(enter(&mut cb, 5.0, None, None).counted);
    assert_eq!(cb.interaction_net(), 1);
}

#[test]
fn inbound_state_accessor_tracks_lifecycle() {
    let (net, [u, v, _w]) = oneway_triangle();
    let mut cu = Checkpoint::new(&net, u, CheckpointConfig::default());
    let inbound = net.in_edges(u)[0];
    assert_eq!(cu.inbound_state(inbound), InboundState::Idle);
    seed(&mut cu, 0.0);
    assert_eq!(cu.inbound_state(inbound), InboundState::Counting);
    // Unknown edge (an outbound one) reads Idle.
    let out = net.edge_between(u, v).unwrap();
    assert_eq!(cu.inbound_state(out), InboundState::Idle);
}
