//! Property-based ordering invariance of the pure protocol machine.
//!
//! The paper's exactness claim ("never a silent miscount") must not hinge
//! on the order in which *commutative* protocol inputs happen to arrive:
//! counted entries and overtake adjustments at an active checkpoint are
//! additive, so every permutation of the same action bag must land on the
//! same checkpoint state and the exact expected count — or fail loudly
//! (the machine asserts its invariants), never drift silently.

use proptest::prelude::*;
use vcount_core::{Action, ActionKind, CheckpointConfig, ProtocolVariant, Replayer};
use vcount_roadnet::builders::fig1_triangle;
use vcount_roadnet::NodeId;
use vcount_v2x::{BodyType, Brand, Color, VehicleClass, VehicleId};

const CAR: VehicleClass = VehicleClass {
    color: Color::Red,
    brand: Brand::Apex,
    body: BodyType::Sedan,
};

/// One commutative protocol input at the seed checkpoint.
#[derive(Debug, Clone)]
enum Input {
    /// An uncounted matching vehicle entering via one of the seed's
    /// inbound directions (`which` picks it).
    Entry { vehicle: u64, which: usize },
    /// An overtake adjustment.
    Adjust { plus: usize, minus: usize },
}

fn arb_inputs() -> impl Strategy<Value = Vec<Input>> {
    prop::collection::vec(
        prop_oneof![
            (1u64..1000, 0usize..2).prop_map(|(vehicle, which)| Input::Entry { vehicle, which }),
            (0usize..3, 0usize..3).prop_map(|(plus, minus)| Input::Adjust { plus, minus }),
        ],
        1..24,
    )
}

/// Applies `inputs` in the given order to a fresh seed-activated machine
/// and returns the replayer.
fn drive(inputs: &[Input]) -> Replayer {
    let net = fig1_triangle(250.0, 1, 6.7);
    let cfg = CheckpointConfig::for_variant(ProtocolVariant::Simple);
    let mut rp = Replayer::new(&net, cfg);
    let seed = NodeId(0);
    let inbound = [
        net.edge_between(NodeId(1), seed).unwrap(),
        net.edge_between(NodeId(2), seed).unwrap(),
    ];
    rp.apply(
        seed,
        &Action {
            at_s: 0.0,
            kind: ActionKind::Seed,
        },
    );
    for input in inputs {
        let kind = match *input {
            Input::Entry { vehicle, which } => ActionKind::Entered {
                vehicle: VehicleId(vehicle),
                via: Some(inbound[which % inbound.len()]),
                class: CAR,
                label: None,
            },
            Input::Adjust { plus, minus } => ActionKind::Adjust { plus, minus },
        };
        rp.apply(seed, &Action { at_s: 1.0, kind });
    }
    rp
}

/// The exact count the bag must produce: every distinct matching entry
/// counts once, adjustments are additive.
fn expected_count(inputs: &[Input]) -> i64 {
    let mut count = 0i64;
    for input in inputs {
        match *input {
            Input::Entry { .. } => count += 1,
            Input::Adjust { plus, minus } => count += plus as i64 - minus as i64,
        }
    }
    count
}

proptest! {
    /// Reversing a commutative action bag lands on the same final
    /// checkpoint state and the exact expected count.
    #[test]
    fn count_is_invariant_under_reversal(inputs in arb_inputs()) {
        let baseline = drive(&inputs);
        let expect = expected_count(&inputs);
        prop_assert_eq!(baseline.local_counts()[0], expect);

        let mut reversed = inputs.clone();
        reversed.reverse();
        let other = drive(&reversed);
        prop_assert_eq!(other.local_counts()[0], expect);
        prop_assert_eq!(other.state(NodeId(0)), baseline.state(NodeId(0)));
    }
}

proptest! {
    /// An arbitrary generated permutation (not just reversal) agrees with
    /// the identity ordering: exact, or a loud failure — never a silent
    /// miscount.
    #[test]
    fn shuffled_bag_matches_identity_ordering(
        inputs in arb_inputs(),
        perm_seed in any::<u64>(),
    ) {
        // Fisher–Yates driven by a splitmix-style stream over `perm_seed`.
        let mut shuffled = inputs.clone();
        let mut state = perm_seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for i in (1..shuffled.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            shuffled.swap(i, j);
        }
        let a = drive(&inputs);
        let b = drive(&shuffled);
        prop_assert_eq!(a.local_counts(), b.local_counts());
        prop_assert_eq!(a.state(NodeId(0)), b.state(NodeId(0)));
        prop_assert_eq!(a.local_counts()[0], expected_count(&inputs));
    }
}
