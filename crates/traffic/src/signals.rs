//! Fixed-time traffic signals.
//!
//! Urban intersections are signalised; signals change *when* vehicles may
//! enter an intersection but not the per-direction FIFO order the counting
//! protocol relies on, so the protocol must stay exact with signals on
//! (covered by integration tests). Signal plans here are the simplest
//! realistic kind: approaches are split into two phase groups by compass
//! heading (north–south vs east–west), greens alternate with a fixed
//! period, and each intersection gets a deterministic phase offset so a
//! whole corridor is not synchronised.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use vcount_roadnet::{EdgeId, NodeId, NodeKind, RoadNetwork};

/// Signal timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SignalTiming {
    /// Green duration per phase group, seconds.
    pub green_s: f64,
    /// All-red clearance between phases, seconds.
    pub all_red_s: f64,
}

impl Default for SignalTiming {
    fn default() -> Self {
        SignalTiming {
            green_s: 30.0,
            all_red_s: 2.0,
        }
    }
}

impl SignalTiming {
    /// Full cycle length (two phases), seconds.
    pub fn cycle_s(&self) -> f64 {
        2.0 * (self.green_s + self.all_red_s)
    }
}

/// A built signal plan for one network.
#[derive(Debug, Clone)]
pub struct SignalPlan {
    timing: SignalTiming,
    /// Phase group (0 or 1) per inbound edge; edges absent are unsignalised.
    group: HashMap<EdgeId, u8>,
    /// Per-node phase offset in seconds.
    offset: Vec<f64>,
    /// Nodes that are signalised at all (roundabouts and degree-≤2 nodes
    /// are not).
    signalised: Vec<bool>,
}

impl SignalPlan {
    /// Builds the plan: two phase groups split by approach heading, a
    /// deterministic per-node offset derived from the node id.
    pub fn build(net: &RoadNetwork, timing: SignalTiming) -> SignalPlan {
        let mut group = HashMap::new();
        let mut signalised = vec![false; net.node_count()];
        let mut offset = vec![0.0; net.node_count()];
        for node in net.node_ids() {
            let in_edges = net.in_edges(node);
            let is_roundabout = matches!(net.node(node).kind, NodeKind::Roundabout { .. });
            if in_edges.len() < 3 || is_roundabout {
                continue; // unsignalised: minor or self-regulating junction
            }
            signalised[node.index()] = true;
            offset[node.index()] = (node.0 as f64 * 7.3) % timing.cycle_s();
            for &e in in_edges {
                let a = net.node(net.edge(e).from).pos;
                let b = net.node(node).pos;
                let ew = (b.x - a.x).abs() >= (b.y - a.y).abs();
                group.insert(e, u8::from(!ew));
            }
        }
        SignalPlan {
            timing,
            group,
            offset,
            signalised,
        }
    }

    /// Whether a vehicle arriving at `node` via `from` faces a green light
    /// at `time_s`. Unsignalised approaches are always green.
    pub fn is_green(&self, node: NodeId, from: EdgeId, time_s: f64) -> bool {
        if !self.signalised[node.index()] {
            return true;
        }
        let Some(&g) = self.group.get(&from) else {
            return true;
        };
        let cycle = self.timing.cycle_s();
        let t = (time_s + self.offset[node.index()]).rem_euclid(cycle);
        let phase_len = self.timing.green_s + self.timing.all_red_s;
        let (phase, within) = if t < phase_len {
            (0u8, t)
        } else {
            (1u8, t - phase_len)
        };
        phase == g && within < self.timing.green_s
    }

    /// Whether `node` is signal-controlled.
    pub fn is_signalised(&self, node: NodeId) -> bool {
        self.signalised[node.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcount_roadnet::builders::grid;

    #[test]
    fn interior_nodes_are_signalised_corners_are_not() {
        let net = grid(3, 3, 100.0, 1, 9.0);
        let plan = SignalPlan::build(&net, SignalTiming::default());
        assert!(plan.is_signalised(NodeId(4)), "centre has 4 approaches");
        assert!(!plan.is_signalised(NodeId(0)), "corner has only 2");
    }

    #[test]
    fn greens_alternate_between_groups() {
        let net = grid(3, 3, 100.0, 1, 9.0);
        let timing = SignalTiming {
            green_s: 10.0,
            all_red_s: 0.0,
        };
        let plan = SignalPlan::build(&net, timing);
        let centre = NodeId(4);
        let ew = net.edge_between(NodeId(3), centre).unwrap(); // west approach
        let ns = net.edge_between(NodeId(1), centre).unwrap(); // south approach
        let off = -((centre.0 as f64 * 7.3) % timing.cycle_s());
        // At phase start (offset-corrected t=0): east-west group is green.
        assert!(plan.is_green(centre, ew, off));
        assert!(!plan.is_green(centre, ns, off));
        // Half a cycle later the groups swap.
        assert!(!plan.is_green(centre, ew, off + 10.0));
        assert!(plan.is_green(centre, ns, off + 10.0));
    }

    #[test]
    fn all_red_blocks_both_groups() {
        let net = grid(3, 3, 100.0, 1, 9.0);
        let timing = SignalTiming {
            green_s: 10.0,
            all_red_s: 5.0,
        };
        let plan = SignalPlan::build(&net, timing);
        let centre = NodeId(4);
        let ew = net.edge_between(NodeId(3), centre).unwrap();
        let ns = net.edge_between(NodeId(1), centre).unwrap();
        let off = -((centre.0 as f64 * 7.3) % timing.cycle_s());
        // t = 12 s: inside the first all-red window.
        assert!(!plan.is_green(centre, ew, off + 12.0));
        assert!(!plan.is_green(centre, ns, off + 12.0));
    }

    #[test]
    fn unsignalised_nodes_are_always_green() {
        let net = grid(2, 2, 100.0, 1, 9.0);
        let plan = SignalPlan::build(&net, SignalTiming::default());
        for node in net.node_ids() {
            for &e in net.in_edges(node) {
                for t in [0.0, 13.0, 31.0, 64.0] {
                    assert!(plan.is_green(node, e, t));
                }
            }
        }
    }

    #[test]
    fn every_approach_gets_green_within_a_cycle() {
        let net = grid(4, 4, 100.0, 1, 9.0);
        let timing = SignalTiming::default();
        let plan = SignalPlan::build(&net, timing);
        for node in net.node_ids() {
            for &e in net.in_edges(node) {
                let mut saw_green = false;
                let mut t = 0.0;
                while t < timing.cycle_s() {
                    if plan.is_green(node, e, t) {
                        saw_green = true;
                        break;
                    }
                    t += 0.5;
                }
                assert!(saw_green, "approach {e} of {node} never green");
            }
        }
    }
}
