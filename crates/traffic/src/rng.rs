//! Draw-counting RNG wrapper enabling exact snapshot/resume.
//!
//! The workspace RNG ([`StdRng`]) is a pure function of its seed whose every
//! `Rng` operation advances the internal state a whole number of times
//! (`next_u32` and `next_u64` once, `fill_bytes` once per started 8-byte
//! chunk). [`ReplayRng`] counts those advances, so a stream can be captured
//! as `(seed, draws)` and replayed by reseeding and fast-forwarding —
//! without exposing or serializing generator internals.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// An [`StdRng`] that knows how many state advances it has performed.
///
/// Produces bit-identical streams to a bare `StdRng` with the same seed; the
/// only addition is the [`ReplayRng::draws`] counter and the
/// [`ReplayRng::resume`] constructor that fast-forwards to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayRng {
    inner: StdRng,
    seed: u64,
    draws: u64,
}

impl ReplayRng {
    /// The seed this stream started from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// State advances performed so far.
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Reconstructs the stream position captured by `(seed, draws)`:
    /// reseeds and fast-forwards, after which the stream continues exactly
    /// where the captured one left off.
    pub fn resume(seed: u64, draws: u64) -> Self {
        let mut inner = StdRng::seed_from_u64(seed);
        for _ in 0..draws {
            let _ = inner.next_u64();
        }
        ReplayRng { inner, seed, draws }
    }
}

impl SeedableRng for ReplayRng {
    fn seed_from_u64(seed: u64) -> Self {
        ReplayRng {
            inner: StdRng::seed_from_u64(seed),
            seed,
            draws: 0,
        }
    }
}

impl RngCore for ReplayRng {
    fn next_u32(&mut self) -> u32 {
        self.draws += 1;
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.draws += (dest.len() as u64).div_ceil(8);
        self.inner.fill_bytes(dest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn matches_bare_stdrng_stream() {
        let mut bare = StdRng::seed_from_u64(42);
        let mut counted = ReplayRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(bare.next_u64(), counted.next_u64());
        }
        assert_eq!(bare.next_u32(), counted.next_u32());
        let mut a = [0u8; 13];
        let mut b = [0u8; 13];
        bare.fill_bytes(&mut a);
        counted.fill_bytes(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn resume_continues_exactly() {
        let mut original = ReplayRng::seed_from_u64(7);
        for _ in 0..19 {
            let _: f64 = original.gen_range(0.0..1.0);
        }
        let _ = original.gen_range(0usize..10);
        let mut buf = [0u8; 5];
        original.fill_bytes(&mut buf);
        let mut resumed = ReplayRng::resume(original.seed(), original.draws());
        for _ in 0..50 {
            assert_eq!(original.next_u64(), resumed.next_u64());
        }
        assert_eq!(original.draws(), resumed.draws());
    }

    #[test]
    fn draw_count_tracks_every_rng_operation() {
        let mut rng = ReplayRng::seed_from_u64(1);
        let _: bool = rng.gen_bool(0.5);
        assert_eq!(rng.draws(), 1);
        let _: u64 = rng.gen_range(3..900);
        assert_eq!(rng.draws(), 2);
        let mut buf = [0u8; 17]; // three 8-byte chunks started
        rng.fill_bytes(&mut buf);
        assert_eq!(rng.draws(), 5);
    }
}
