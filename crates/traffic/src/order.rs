//! Order maintenance for overtake detection: allocation-free inversion
//! counting over per-edge vehicle orders.
//!
//! An overtake between two simulator steps is an *inversion* between the
//! edge's previous and current leader-first orders: a pair that was
//! `(a ahead of b)` and is now `(b ahead of a)`. The simulator maps the
//! previous order to current ranks and hands the rank sequence to
//! [`count_inversions`] — an O(n log n) bottom-up merge count over
//! caller-provided scratch, replacing the all-pairs O(n²) scan. Only on
//! the (rare) steps where the count is non-zero does it enumerate the
//! inverted pairs with [`for_each_inversion`], which emits them in exactly
//! the reference all-pairs order so the event stream is unchanged.

/// Counts inversions in `seq` — pairs `i < j` with `seq[j] < seq[i]` — in
/// O(n log n) with a bottom-up merge sort. **`seq` is sorted in place**;
/// pass a scratch copy. `scratch` is the merge buffer, resized (never
/// shrunk) to `seq.len()`: reusing it across calls makes the steady state
/// allocation-free.
pub fn count_inversions(seq: &mut [u32], scratch: &mut Vec<u32>) -> u64 {
    let n = seq.len();
    if n < 2 {
        return 0;
    }
    if scratch.len() < n {
        scratch.resize(n, 0);
    }
    let mut inversions = 0u64;
    let mut width = 1usize;
    while width < n {
        let mut lo = 0usize;
        while lo + width < n {
            let mid = lo + width;
            let hi = (lo + 2 * width).min(n);
            let (mut i, mut j, mut k) = (lo, mid, lo);
            while i < mid && j < hi {
                if seq[j] < seq[i] {
                    // seq[j] jumps ahead of every remaining left element.
                    inversions += (mid - i) as u64;
                    scratch[k] = seq[j];
                    j += 1;
                } else {
                    scratch[k] = seq[i];
                    i += 1;
                }
                k += 1;
            }
            while i < mid {
                scratch[k] = seq[i];
                i += 1;
                k += 1;
            }
            while j < hi {
                scratch[k] = seq[j];
                j += 1;
                k += 1;
            }
            seq[lo..hi].copy_from_slice(&scratch[lo..hi]);
            lo += 2 * width;
        }
        width *= 2;
    }
    inversions
}

/// Calls `f(i, j)` for every inverted pair `i < j`, `seq[j] < seq[i]`, in
/// lexicographic `(i, j)` order — the exact emission order of the
/// historical all-pairs scan, so downstream event streams stay
/// byte-identical. Stops after `limit` pairs (pass the
/// [`count_inversions`] result so the scan ends as soon as the last
/// inversion is found).
pub fn for_each_inversion(seq: &[u32], limit: u64, mut f: impl FnMut(usize, usize)) {
    let mut remaining = limit;
    if remaining == 0 {
        return;
    }
    for i in 0..seq.len() {
        for j in (i + 1)..seq.len() {
            if seq[j] < seq[i] {
                f(i, j);
                remaining -= 1;
                if remaining == 0 {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The historical reference: the all-pairs inversion scan.
    fn all_pairs(seq: &[u32]) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..seq.len() {
            for j in (i + 1)..seq.len() {
                if seq[j] < seq[i] {
                    out.push((i, j));
                }
            }
        }
        out
    }

    #[test]
    fn counts_match_all_pairs_on_edge_cases() {
        let mut scratch = Vec::new();
        for seq in [
            vec![],
            vec![5],
            vec![1, 2, 3, 4],
            vec![4, 3, 2, 1],
            vec![2, 1],
            vec![1, 3, 2, 4, 0],
        ] {
            let expect = all_pairs(&seq).len() as u64;
            let mut copy = seq.clone();
            assert_eq!(
                count_inversions(&mut copy, &mut scratch),
                expect,
                "sequence {seq:?}"
            );
            assert!(copy.windows(2).all(|w| w[0] <= w[1]), "sorted after count");
        }
    }

    #[test]
    fn enumeration_matches_all_pairs_order_on_random_sequences() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut scratch = Vec::new();
        for _ in 0..500 {
            let n = rng.gen_range(0..40usize);
            let seq: Vec<u32> = (0..n).map(|_| rng.gen_range(0..30u32)).collect();
            let expect = all_pairs(&seq);
            let mut copy = seq.clone();
            let k = count_inversions(&mut copy, &mut scratch);
            assert_eq!(k, expect.len() as u64, "count over {seq:?}");
            let mut got = Vec::new();
            for_each_inversion(&seq, k, |i, j| got.push((i, j)));
            assert_eq!(got, expect, "pair order over {seq:?}");
        }
    }

    #[test]
    fn scratch_is_reused_without_growth() {
        let mut scratch = Vec::new();
        let mut seq: Vec<u32> = (0..64u32).rev().collect();
        count_inversions(&mut seq, &mut scratch);
        let cap = scratch.capacity();
        for _ in 0..10 {
            let mut again: Vec<u32> = (0..64u32).rev().collect();
            assert_eq!(count_inversions(&mut again, &mut scratch), 64 * 63 / 2);
        }
        assert_eq!(scratch.capacity(), cap, "steady state must not reallocate");
    }
}
