//! Simulator and demand configuration.

use crate::signals::SignalTiming;
use serde::{Deserialize, Serialize};

/// Microsimulator parameters.
///
/// The defaults reproduce the paper's extended road model: multiple lanes
/// with overtakes, several vehicles admitted into an intersection per step,
/// and heterogeneous driver speeds (slow trucks get overtaken). Set
/// [`SimConfig::simple_model`] for the Alg. 1 setting (single admission,
/// FIFO, homogeneous speeds).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Time step, seconds.
    pub dt_s: f64,
    /// Vehicles admitted into a plain intersection per step and per node.
    /// 1 reproduces the simple model's "only one vehicle is allowed to
    /// enter the intersection" rule when combined with a large `dt_s`.
    pub admit_per_step: usize,
    /// Vehicles admitted into a roundabout per step (multi-target
    /// tracking allows several simultaneously).
    pub admit_per_step_roundabout: usize,
    /// Minimum bumper-to-bumper spacing, metres.
    pub min_gap_m: f64,
    /// Probability per step that a blocked vehicle attempts a lane change
    /// (0 disables overtaking regardless of lane count).
    pub lane_change_prob: f64,
    /// Desired-speed factor range `[lo, hi]` (multiplies the edge speed
    /// limit). A spread below 1.0 creates slow vehicles that get overtaken.
    pub speed_factor_range: (f64, f64),
    /// Probability that a vehicle admitted at an outbound-interaction node
    /// leaves the open system.
    pub exit_prob: f64,
    /// Probability that a vehicle takes an immediate U-turn even when other
    /// directions exist. Real traffic contains occasional U-turns; with 0,
    /// a segment whose tail intersection is fed only by its own twin is a
    /// structural "orphan" no vehicle ever joins — the odd-traffic-pattern
    /// deadlock of Section IV-B that requires patrol support (Theorem 3).
    pub u_turn_prob: f64,
    /// Poisson arrival rate per inbound-interaction node, vehicles/second,
    /// at 100% volume (scaled linearly with volume).
    pub spawn_rate_hz: f64,
    /// Emit [`crate::events::TrafficEvent::Overtake`] events (needed only
    /// by the per-event adjustment ablation; costs extra bookkeeping).
    pub detect_overtakes: bool,
    /// Fixed-time traffic signals at major intersections (`None` =
    /// unsignalised network, the default). Signals delay admissions but
    /// preserve per-direction FIFO order, so counting stays exact.
    pub signals: Option<SignalTiming>,
    /// RNG seed: identical config + seed ⇒ identical trajectory stream.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            dt_s: 0.5,
            admit_per_step: 2,
            admit_per_step_roundabout: 4,
            min_gap_m: 7.0,
            lane_change_prob: 0.25,
            speed_factor_range: (0.6, 1.0),
            exit_prob: 0.25,
            u_turn_prob: 0.02,
            spawn_rate_hz: 0.05,
            detect_overtakes: false,
            signals: None,
            seed: 1,
        }
    }
}

impl SimConfig {
    /// The simple road model of Alg. 1: strictly FIFO traffic. One vehicle
    /// enters an intersection at a time, no lane changes, and homogeneous
    /// speeds so no vehicle ever catches up with another on a segment.
    pub fn simple_model(seed: u64) -> Self {
        SimConfig {
            admit_per_step: 1,
            lane_change_prob: 0.0,
            speed_factor_range: (1.0, 1.0),
            seed,
            ..Default::default()
        }
    }

    /// Validates parameter ranges; called by the simulator constructor.
    pub fn validate(&self) -> Result<(), String> {
        if self.dt_s.is_nan() || self.dt_s <= 0.0 {
            return Err("dt_s must be positive".into());
        }
        if self.admit_per_step == 0 || self.admit_per_step_roundabout == 0 {
            return Err("admission rates must be at least 1".into());
        }
        if self.min_gap_m.is_nan() || self.min_gap_m <= 0.0 {
            return Err("min_gap_m must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.lane_change_prob) {
            return Err("lane_change_prob must be in [0,1]".into());
        }
        let (lo, hi) = self.speed_factor_range;
        if !(lo > 0.0 && hi >= lo) {
            return Err("speed_factor_range must satisfy 0 < lo <= hi".into());
        }
        if !(0.0..=1.0).contains(&self.exit_prob) {
            return Err("exit_prob must be in [0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.u_turn_prob) {
            return Err("u_turn_prob must be in [0,1]".into());
        }
        if self.spawn_rate_hz < 0.0 {
            return Err("spawn_rate_hz must be non-negative".into());
        }
        Ok(())
    }
}

/// Traffic demand: how many vehicles populate the network.
///
/// The paper sweeps "traffic volumes changing from 10% to 100% of the
/// average"; [`Demand::volume_pct`] is that knob. The initial population is
/// `volume_pct/100 × vehicles_per_lane_km × total lane-km`, and open-system
/// arrival rates scale the same way.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Demand {
    /// Percentage of the average daily traffic (the paper sweeps 10..=100).
    pub volume_pct: f64,
    /// Density at 100% volume, vehicles per lane-kilometre.
    pub vehicles_per_lane_km: f64,
    /// Fraction of spawned/placed vehicles that are white vans (for the
    /// specified-type extension; the rest draw from a generic mix).
    pub white_van_fraction: f64,
}

impl Default for Demand {
    fn default() -> Self {
        Demand {
            volume_pct: 50.0,
            vehicles_per_lane_km: 12.0,
            white_van_fraction: 0.05,
        }
    }
}

impl Demand {
    /// Demand at a given volume percentage with default density.
    pub fn at_volume(volume_pct: f64) -> Self {
        Demand {
            volume_pct,
            ..Default::default()
        }
    }

    /// Initial vehicle count for a network with `lane_km` total lane-km.
    pub fn initial_vehicles(&self, lane_km: f64) -> usize {
        ((self.volume_pct / 100.0) * self.vehicles_per_lane_km * lane_km).round() as usize
    }

    /// Volume scaling factor applied to spawn rates.
    pub fn volume_factor(&self) -> f64 {
        self.volume_pct / 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        SimConfig::default().validate().unwrap();
        SimConfig::simple_model(7).validate().unwrap();
    }

    #[test]
    fn simple_model_is_fifo() {
        let c = SimConfig::simple_model(1);
        assert_eq!(c.admit_per_step, 1);
        assert_eq!(c.lane_change_prob, 0.0);
        assert_eq!(c.speed_factor_range, (1.0, 1.0));
    }

    #[test]
    fn bad_configs_are_rejected() {
        let c = SimConfig {
            dt_s: 0.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = SimConfig {
            admit_per_step: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = SimConfig {
            speed_factor_range: (0.8, 0.5),
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = SimConfig {
            exit_prob: 1.5,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn demand_scales_linearly() {
        let d = Demand::at_volume(100.0);
        let n100 = d.initial_vehicles(100.0);
        let d = Demand::at_volume(10.0);
        let n10 = d.initial_vehicles(100.0);
        assert_eq!(n100, 1200);
        assert_eq!(n10, 120);
        assert!((d.volume_factor() - 0.1).abs() < 1e-12);
    }
}
