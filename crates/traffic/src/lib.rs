//! # vcount-traffic — traffic microsimulation substrate
//!
//! A deterministic, seeded, time-stepped microsimulator standing in for the
//! SUMO trace generation the paper uses (see DESIGN.md §2). It produces
//! exactly the observables the counting protocol consumes:
//!
//! * intersection entry/departure/exit events (checkpoint surveillance),
//! * overtake (order-inversion) events on segments (V2V collaboration),
//! * unpredictable trajectories (uniform random turns), heterogeneous
//!   speeds, multi-lane overtaking, per-node admission control, open-border
//!   Poisson demand, and police patrol cars on fixed cycles.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod events;
pub mod order;
pub mod rng;
pub mod signals;
pub mod simulator;
pub mod vehicle;

pub use config::{Demand, SimConfig};
pub use events::TrafficEvent;
pub use rng::ReplayRng;
pub use signals::{SignalPlan, SignalTiming};
pub use simulator::{SimSnapshot, Simulator};
pub use vehicle::{sample_class, RoutePolicy, VehState, Vehicle};
