//! The observation stream the simulator emits — exactly what real
//! checkpoint surveillance plus the V2V collaboration would observe, and
//! nothing more. The counting layer is driven solely by these events.

use serde::{Deserialize, Serialize};
use vcount_roadnet::{EdgeId, NodeId};
use vcount_v2x::VehicleId;

/// One observable traffic occurrence, stamped with the simulation step it
/// happened in (events within a step are emitted in deterministic order).
///
/// Serializable so an observation batch can cross a process boundary: the
/// service mode ships these events as JSON lines from a feeder client to
/// the engine (see `vcount-sim`'s `source` module).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrafficEvent {
    /// A vehicle entered the surveillance of intersection `node` —
    /// admitted from segment `from`, or from outside the region
    /// (`from == None`, inbound interaction at a border checkpoint).
    Entered {
        /// The vehicle under surveillance.
        vehicle: VehicleId,
        /// The checkpoint it entered.
        node: NodeId,
        /// Arrival segment direction, `None` for border entries.
        from: Option<EdgeId>,
    },
    /// The vehicle left intersection `node` onto segment `onto` ("joining
    /// an outbound traffic" — the labelling opportunity of Alg. 1 phase 2).
    Departed {
        /// The departing vehicle.
        vehicle: VehicleId,
        /// The checkpoint it departs.
        node: NodeId,
        /// The outbound segment direction joined.
        onto: EdgeId,
    },
    /// The vehicle left the open system at border checkpoint `node`
    /// (outbound interaction, observed by the border surveillance).
    Exited {
        /// The leaving vehicle.
        vehicle: VehicleId,
        /// The border checkpoint it left through.
        node: NodeId,
    },
    /// `overtaker` passed `overtaken` on segment `edge` (emitted only when
    /// [`crate::SimConfig::detect_overtakes`] is on; used by the per-event
    /// adjustment ablation).
    Overtake {
        /// Segment where the pass completed.
        edge: EdgeId,
        /// The faster vehicle, now ahead.
        overtaker: VehicleId,
        /// The slower vehicle, now behind.
        overtaken: VehicleId,
    },
}

impl TrafficEvent {
    /// The vehicle primarily concerned by the event (the overtaker for
    /// overtake events).
    pub fn vehicle(&self) -> VehicleId {
        match *self {
            TrafficEvent::Entered { vehicle, .. }
            | TrafficEvent::Departed { vehicle, .. }
            | TrafficEvent::Exited { vehicle, .. } => vehicle,
            TrafficEvent::Overtake { overtaker, .. } => overtaker,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vehicle_accessor_covers_all_variants() {
        let v = VehicleId(3);
        let w = VehicleId(4);
        assert_eq!(
            TrafficEvent::Entered {
                vehicle: v,
                node: NodeId(0),
                from: None
            }
            .vehicle(),
            v
        );
        assert_eq!(
            TrafficEvent::Departed {
                vehicle: v,
                node: NodeId(0),
                onto: EdgeId(1)
            }
            .vehicle(),
            v
        );
        assert_eq!(
            TrafficEvent::Exited {
                vehicle: v,
                node: NodeId(0)
            }
            .vehicle(),
            v
        );
        assert_eq!(
            TrafficEvent::Overtake {
                edge: EdgeId(0),
                overtaker: v,
                overtaken: w
            }
            .vehicle(),
            v
        );
    }
}
