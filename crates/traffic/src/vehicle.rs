//! Vehicles: state, routing policy, and class sampling.

use rand::Rng;
use serde::{Deserialize, Serialize};
use vcount_roadnet::{EdgeId, NodeId};
use vcount_v2x::{BodyType, Brand, Color, VehicleClass, VehicleId};

/// Where a vehicle currently is.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum VehState {
    /// Driving along a segment direction, `pos_m` metres from its start,
    /// in lane `lane` (0 = rightmost).
    OnEdge {
        /// Current segment direction.
        edge: EdgeId,
        /// Lane index.
        lane: u8,
        /// Distance driven from the segment start, metres.
        pos_m: f64,
    },
    /// Waiting at the stop line of `node`, having arrived via `from`.
    Queued {
        /// Intersection whose admission the vehicle awaits.
        node: NodeId,
        /// Arrival segment direction.
        from: EdgeId,
    },
    /// Outside the open system (exited, or never spawned).
    Outside,
}

/// How a vehicle chooses its next segment at an intersection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RoutePolicy {
    /// Uniformly random outbound direction, avoiding an immediate U-turn
    /// when possible — the paper's "unpredictable speed, trajectory, and
    /// direction".
    RandomTurn,
    /// A fixed closed walk, looped forever (patrol cars, Theorem 3/4).
    FixedLoop {
        /// Edge sequence of the loop.
        edges: Vec<EdgeId>,
        /// Index of the next edge to take.
        next: usize,
    },
}

/// A simulated vehicle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vehicle {
    /// VANET radio identity.
    pub id: VehicleId,
    /// Exterior characteristics seen by checkpoint cameras.
    pub class: VehicleClass,
    /// Desired speed as a fraction of the segment speed limit.
    pub speed_factor: f64,
    /// Routing behaviour.
    pub policy: RoutePolicy,
    /// Current location.
    pub state: VehState,
    /// Current speed, m/s.
    pub speed_mps: f64,
}

impl Vehicle {
    /// Whether the vehicle is inside the region (driving or queued).
    pub fn is_inside(&self) -> bool {
        !matches!(self.state, VehState::Outside)
    }

    /// Whether this is a police patrol car.
    pub fn is_patrol(&self) -> bool {
        self.class.is_patrol()
    }
}

/// Samples a civilian vehicle class: a white van with probability
/// `white_van_fraction`, otherwise a uniform draw over a generic mix that
/// never collides with [`VehicleClass::WHITE_VAN`] or patrol cars.
pub fn sample_class<R: Rng + ?Sized>(rng: &mut R, white_van_fraction: f64) -> VehicleClass {
    if rng.gen_bool(white_van_fraction.clamp(0.0, 1.0)) {
        return VehicleClass::WHITE_VAN;
    }
    const COLORS: [Color; 6] = [
        Color::Black,
        Color::Silver,
        Color::Red,
        Color::Blue,
        Color::Green,
        Color::Yellow,
    ];
    const BRANDS: [Brand; 5] = [
        Brand::Apex,
        Brand::Borealis,
        Brand::Cascade,
        Brand::Dynamo,
        Brand::Everest,
    ];
    const BODIES: [BodyType; 5] = [
        BodyType::Sedan,
        BodyType::Suv,
        BodyType::Van,
        BodyType::BoxTruck,
        BodyType::Pickup,
    ];
    VehicleClass {
        color: COLORS[rng.gen_range(0..COLORS.len())],
        brand: BRANDS[rng.gen_range(0..BRANDS.len())],
        body: BODIES[rng.gen_range(0..BODIES.len())],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampled_classes_are_never_patrol() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let c = sample_class(&mut rng, 0.1);
            assert!(!c.is_patrol());
        }
    }

    #[test]
    fn white_van_fraction_is_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let vans = (0..n)
            .filter(|_| sample_class(&mut rng, 0.2) == VehicleClass::WHITE_VAN)
            .count();
        let frac = vans as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.02, "observed van fraction {frac}");
    }

    #[test]
    fn zero_fraction_yields_no_target_vans() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            // Generic vans of other colors may appear, but never the exact
            // white-van target class.
            assert_ne!(sample_class(&mut rng, 0.0), VehicleClass::WHITE_VAN);
        }
    }

    #[test]
    fn vehicle_inside_tracking() {
        let mut v = Vehicle {
            id: VehicleId(0),
            class: VehicleClass::WHITE_VAN,
            speed_factor: 1.0,
            policy: RoutePolicy::RandomTurn,
            state: VehState::Outside,
            speed_mps: 0.0,
        };
        assert!(!v.is_inside());
        v.state = VehState::Queued {
            node: NodeId(0),
            from: EdgeId(0),
        };
        assert!(v.is_inside());
    }
}
