//! The time-stepped traffic microsimulator (SUMO substitute).
//!
//! Per step: (1) lane changes by blocked vehicles on multi-lane segments,
//! (2) gap-constrained car following, (3) optional overtake detection,
//! (4) intersection admission with routing, (5) open-border Poisson
//! arrivals. Everything draws from one seeded RNG in a fixed iteration
//! order, so a `(network, config, demand, seed)` tuple reproduces the exact
//! event stream.

use crate::config::{Demand, SimConfig};
use crate::events::TrafficEvent;
use crate::order::{count_inversions, for_each_inversion};
use crate::rng::ReplayRng;
use crate::signals::SignalPlan;
use crate::vehicle::{sample_class, RoutePolicy, VehState, Vehicle};
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use vcount_roadnet::{EdgeId, NodeId, NodeKind, RoadNetwork};
use vcount_v2x::{VehicleClass, VehicleId};

/// Serializable dynamic state of a [`Simulator`], produced by
/// [`Simulator::snapshot`] and consumed by [`Simulator::restore`]. The
/// static inputs (network, config, demand) are *not* included — the caller
/// re-supplies them, and the RNG stream is captured as its draw count (see
/// [`ReplayRng`]), so a restored simulator replays bit-identically.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimSnapshot {
    /// RNG state advances performed so far (seed comes from the config).
    pub rng_draws: u64,
    /// Simulated time, seconds.
    pub time_s: f64,
    /// Steps executed.
    pub steps: u64,
    /// Every vehicle ever created, including exited ones.
    pub vehicles: Vec<Vehicle>,
    /// edge -> lane -> vehicles ordered leader-first.
    pub lanes: Vec<Vec<Vec<VehicleId>>>,
    /// node -> FIFO of (vehicle, arrival edge) at the stop line.
    pub queues: Vec<Vec<(VehicleId, EdgeId)>>,
    /// Previous cross-lane order per edge (overtake detection).
    pub prev_order: Vec<Vec<VehicleId>>,
}

/// The microsimulator. See module docs for the step structure.
pub struct Simulator {
    net: RoadNetwork,
    cfg: SimConfig,
    demand: Demand,
    rng: ReplayRng,
    time_s: f64,
    steps: u64,
    vehicles: Vec<Vehicle>,
    /// edge -> lane -> vehicles ordered leader-first (descending position).
    lanes: Vec<Vec<Vec<VehicleId>>>,
    /// node -> FIFO of (vehicle, arrival edge) waiting at the stop line.
    queues: Vec<VecDeque<(VehicleId, EdgeId)>>,
    events: Vec<TrafficEvent>,
    /// Previous cross-lane order per edge (overtake detection only).
    prev_order: Vec<Vec<VehicleId>>,
    /// Fixed-time signal plan, when configured.
    signals: Option<SignalPlan>,
    /// Scratch buffer reused across steps.
    scratch_pos: Vec<f64>,
    /// Per-worker overtake-detection scratch, one entry per detection
    /// shard (lazily grown; see [`Simulator::set_detect_shards`]).
    detect: Vec<DetectScratch>,
    /// Worker threads overtake detection fans out over (1 = inline).
    detect_shards: usize,
    /// Minimum in-transit population before sharded detection actually
    /// spawns threads; below it the same ranges run inline.
    detect_parallel_min: usize,
    /// Scratch: route candidates under consideration at an intersection.
    route_scratch: Vec<EdgeId>,
}

/// Default in-transit population below which sharded overtake detection
/// runs inline instead of spawning scoped threads: under roughly this many
/// vehicles the per-step spawn/join overhead exceeds the detection work.
pub const DETECT_PARALLEL_MIN: usize = 4096;

/// Per-worker scratch for overtake detection: everything
/// [`DetectScratch::detect_range`] needs besides the shared simulator
/// view. Excluded from snapshots like every other scratch buffer — the
/// epoch-stamped rank table is self-validating, so a fresh instance
/// produces the same events as a warmed one.
#[derive(Debug, Default)]
struct DetectScratch {
    /// The current per-edge order being built; swapped with
    /// `prev_order[e]` each edge so both buffers keep their capacity.
    order: Vec<VehicleId>,
    /// Rank table keyed by vehicle index, validated by epoch stamp
    /// (no per-edge clearing or hashing).
    rank_of: Vec<u32>,
    /// Epoch stamp per vehicle slot; a rank is live iff its stamp equals
    /// `rank_epoch`.
    rank_stamp: Vec<u64>,
    /// Current rank-table epoch (bumped per edge per step).
    rank_epoch: u64,
    /// Scratch: current ranks of the previous order's surviving vehicles.
    inv_ranks: Vec<u32>,
    /// Scratch: the vehicles parallel to `inv_ranks`.
    inv_vehicles: Vec<VehicleId>,
    /// Scratch: sort copy of `inv_ranks` consumed by the merge count.
    inv_sort: Vec<u32>,
    /// Scratch: merge buffer of the inversion count.
    inv_merge: Vec<u32>,
    /// Overtake events found in this shard's edge range, in edge order;
    /// drained into the simulator's event list after the join.
    events: Vec<TrafficEvent>,
}

impl DetectScratch {
    /// Detects overtakes over the contiguous edge range starting at
    /// `first_edge`, whose previous-order slots are `prev_range`, pushing
    /// events (in edge order) into `self.events`. Per-edge detection
    /// depends only on that edge's previous order and the simulator's
    /// current state, read through a shared borrow — so disjoint ranges
    /// run concurrently, and concatenating the shard buffers in range
    /// order reproduces the sequential scan byte for byte.
    fn detect_range(
        &mut self,
        sim: &Simulator,
        first_edge: usize,
        prev_range: &mut [Vec<VehicleId>],
    ) {
        self.events.clear();
        if self.rank_of.len() < sim.vehicles.len() {
            self.rank_of.resize(sim.vehicles.len(), 0);
            self.rank_stamp.resize(sim.vehicles.len(), 0);
        }
        let mut order = std::mem::take(&mut self.order);
        for (off, slot) in prev_range.iter_mut().enumerate() {
            let edge = EdgeId((first_edge + off) as u32);
            sim.in_transit_into(edge, &mut order);
            // `slot` now holds the current order; `order` holds the
            // previous one (and donates its capacity to the next edge).
            std::mem::swap(slot, &mut order);
            let (prev, now) = (&order, &*slot);
            if prev.len() < 2 || now.len() < 2 {
                continue;
            }
            // Rank of each vehicle now, stamped with a fresh epoch.
            self.rank_epoch += 1;
            for (i, v) in now.iter().enumerate() {
                self.rank_of[v.index()] = i as u32;
                self.rank_stamp[v.index()] = self.rank_epoch;
            }
            // The previous order, projected onto current ranks (vehicles
            // that left the edge drop out, preserving relative order).
            self.inv_ranks.clear();
            self.inv_vehicles.clear();
            for &v in prev {
                if self.rank_stamp[v.index()] == self.rank_epoch {
                    self.inv_ranks.push(self.rank_of[v.index()]);
                    self.inv_vehicles.push(v);
                }
            }
            self.inv_sort.clear();
            self.inv_sort.extend_from_slice(&self.inv_ranks);
            let inversions = count_inversions(&mut self.inv_sort, &mut self.inv_merge);
            if inversions == 0 {
                continue;
            }
            let (vehicles, events) = (&self.inv_vehicles, &mut self.events);
            for_each_inversion(&self.inv_ranks, inversions, |i, j| {
                // prev: i ahead of j; inversion means j is now ahead.
                events.push(TrafficEvent::Overtake {
                    edge,
                    overtaker: vehicles[j],
                    overtaken: vehicles[i],
                });
            });
        }
        self.order = order;
    }
}

impl Simulator {
    /// Builds a simulator and places the initial population according to
    /// `demand` (uniformly over lane-metres). Panics on invalid config.
    pub fn new(net: RoadNetwork, cfg: SimConfig, demand: Demand) -> Self {
        cfg.validate().expect("invalid simulator config");
        let rng = ReplayRng::seed_from_u64(cfg.seed);
        let lanes = net
            .edges()
            .map(|e| vec![Vec::new(); e.lanes as usize])
            .collect();
        let queues = vec![VecDeque::new(); net.node_count()];
        let prev_order = vec![Vec::new(); net.edge_count()];
        let signals = cfg.signals.map(|t| SignalPlan::build(&net, t));
        let mut sim = Simulator {
            net,
            cfg,
            demand,
            rng,
            time_s: 0.0,
            steps: 0,
            vehicles: Vec::new(),
            lanes,
            queues,
            events: Vec::new(),
            prev_order,
            signals,
            scratch_pos: Vec::new(),
            detect: Vec::new(),
            detect_shards: 1,
            detect_parallel_min: DETECT_PARALLEL_MIN,
            route_scratch: Vec::new(),
        };
        sim.populate();
        sim
    }

    /// Captures the dynamic state at a step boundary. Scratch buffers and
    /// the per-step event list are excluded: both are rebuilt from scratch
    /// by the next [`Simulator::step`] regardless.
    pub fn snapshot(&self) -> SimSnapshot {
        SimSnapshot {
            rng_draws: self.rng.draws(),
            time_s: self.time_s,
            steps: self.steps,
            vehicles: self.vehicles.clone(),
            lanes: self.lanes.clone(),
            queues: self
                .queues
                .iter()
                .map(|q| q.iter().copied().collect())
                .collect(),
            prev_order: self.prev_order.clone(),
        }
    }

    /// Rebuilds a simulator from static inputs plus a [`SimSnapshot`]. The
    /// initial population draw is skipped; the RNG is fast-forwarded to the
    /// captured position, so the restored simulator produces the exact
    /// event stream the original would have from this point on.
    pub fn restore(net: RoadNetwork, cfg: SimConfig, demand: Demand, snap: &SimSnapshot) -> Self {
        cfg.validate().expect("invalid simulator config");
        assert_eq!(
            snap.lanes.len(),
            net.edge_count(),
            "snapshot was taken on a different network"
        );
        assert_eq!(snap.queues.len(), net.node_count());
        let signals = cfg.signals.map(|t| SignalPlan::build(&net, t));
        Simulator {
            rng: ReplayRng::resume(cfg.seed, snap.rng_draws),
            time_s: snap.time_s,
            steps: snap.steps,
            vehicles: snap.vehicles.clone(),
            lanes: snap.lanes.clone(),
            queues: snap
                .queues
                .iter()
                .map(|q| q.iter().copied().collect())
                .collect(),
            prev_order: snap.prev_order.clone(),
            events: Vec::new(),
            signals,
            net,
            cfg,
            demand,
            scratch_pos: Vec::new(),
            detect: Vec::new(),
            detect_shards: 1,
            detect_parallel_min: DETECT_PARALLEL_MIN,
            route_scratch: Vec::new(),
        }
    }

    /// Sets how many worker threads overtake detection fans out over
    /// (contiguous edge ranges; 1 runs inline with no threads spawned).
    /// Purely a throughput knob: the event stream is byte-identical for
    /// every value, and the setting is not part of [`SimSnapshot`].
    pub fn set_detect_shards(&mut self, shards: usize) {
        self.detect_shards = shards.max(1);
    }

    /// Worker threads overtake detection currently fans out over.
    pub fn detect_shards(&self) -> usize {
        self.detect_shards
    }

    /// Overrides the in-transit population below which sharded detection
    /// runs its ranges inline instead of spawning threads (default
    /// [`DETECT_PARALLEL_MIN`]). Like the shard count itself, purely a
    /// throughput knob: the event stream is identical either way. Tests
    /// set it to 0 to force the threaded path on tiny fixtures.
    pub fn set_detect_parallel_min(&mut self, min_vehicles: usize) {
        self.detect_parallel_min = min_vehicles;
    }

    /// The road network being simulated.
    pub fn net(&self) -> &RoadNetwork {
        &self.net
    }

    /// Simulated time, seconds.
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// Steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// All vehicles ever created (including exited ones).
    pub fn vehicles(&self) -> &[Vehicle] {
        &self.vehicles
    }

    /// A vehicle by id.
    pub fn vehicle(&self, id: VehicleId) -> &Vehicle {
        &self.vehicles[id.index()]
    }

    /// Number of vehicles currently inside the region (excluding patrol
    /// cars, which the paper exempts from counting).
    pub fn civilian_population(&self) -> usize {
        self.vehicles
            .iter()
            .filter(|v| v.is_inside() && !v.is_patrol())
            .count()
    }

    /// Civilian vehicles inside matching a predicate on their class.
    pub fn civilian_population_where(&self, pred: impl Fn(&VehicleClass) -> bool) -> usize {
        self.vehicles
            .iter()
            .filter(|v| v.is_inside() && !v.is_patrol() && pred(&v.class))
            .count()
    }

    /// Vehicles currently in transit on `edge` — queued at the stop line of
    /// its head (earliest first) followed by on-segment vehicles
    /// leader-first. Exactly the set ahead of a vehicle departing onto
    /// `edge` right now.
    pub fn in_transit(&self, edge: EdgeId) -> Vec<VehicleId> {
        let mut out = Vec::new();
        self.in_transit_into(edge, &mut out);
        out
    }

    /// [`Simulator::in_transit`] into a caller-provided buffer (cleared
    /// first). Reusing the buffer keeps per-step order maintenance
    /// allocation-free; the sort is unstable (no heap) over a total order,
    /// so the result is still deterministic.
    pub fn in_transit_into(&self, edge: EdgeId, out: &mut Vec<VehicleId>) {
        out.clear();
        let head = self.net.edge(edge).to;
        out.extend(
            self.queues[head.index()]
                .iter()
                .filter(|(_, from)| *from == edge)
                .map(|(v, _)| *v),
        );
        let queued = out.len();
        for lane in &self.lanes[edge.index()] {
            out.extend_from_slice(lane);
        }
        // Merge lanes by position, leader first; lane lists hold only
        // on-edge vehicles, so every position lookup succeeds.
        let vehicles = &self.vehicles;
        let pos = |v: VehicleId| match vehicles[v.index()].state {
            VehState::OnEdge { pos_m, .. } => pos_m,
            _ => f64::MAX,
        };
        out[queued..].sort_unstable_by(|a, b| pos(*b).total_cmp(&pos(*a)).then(a.cmp(b)));
    }

    /// Adds a police patrol car driving `route` (a closed walk of edges)
    /// starting at the tail of `route[start_index]`. Returns its id.
    pub fn add_patrol_car(&mut self, route: Vec<EdgeId>, start_index: usize) -> VehicleId {
        assert!(!route.is_empty(), "patrol route must not be empty");
        let start = start_index % route.len();
        let edge = route[start];
        let id = VehicleId(self.vehicles.len() as u64);
        let vehicle = Vehicle {
            id,
            class: VehicleClass::PATROL,
            speed_factor: 1.0,
            policy: RoutePolicy::FixedLoop {
                edges: route,
                next: (start + 1) % usize::MAX, // fixed below
            },
            state: VehState::OnEdge {
                edge,
                lane: 0,
                pos_m: 0.0,
            },
            speed_mps: 0.0,
        };
        self.vehicles.push(vehicle);
        if let RoutePolicy::FixedLoop { edges, next } = &mut self.vehicles[id.index()].policy {
            *next = (start + 1) % edges.len();
        }
        self.lanes[edge.index()][0].push(id);
        self.sort_lane(edge, 0);
        id
    }

    /// Places a civilian vehicle on `edge` at `pos_m` (testing and
    /// scenario construction). Returns its id.
    pub fn add_vehicle_on_edge(
        &mut self,
        edge: EdgeId,
        lane: u8,
        pos_m: f64,
        class: VehicleClass,
        speed_factor: f64,
    ) -> VehicleId {
        let id = VehicleId(self.vehicles.len() as u64);
        assert!((lane as usize) < self.lanes[edge.index()].len());
        debug_assert!(pos_m.is_finite(), "vehicle position must be finite");
        assert!(pos_m >= 0.0 && pos_m <= self.net.edge(edge).length_m);
        self.vehicles.push(Vehicle {
            id,
            class,
            speed_factor,
            policy: RoutePolicy::RandomTurn,
            state: VehState::OnEdge { edge, lane, pos_m },
            speed_mps: 0.0,
        });
        self.lanes[edge.index()][lane as usize].push(id);
        self.sort_lane(edge, lane);
        id
    }

    fn populate(&mut self) {
        let lane_km: f64 = self
            .net
            .edges()
            .map(|e| e.length_m * e.lanes as f64 / 1000.0)
            .sum();
        let n = self.demand.initial_vehicles(lane_km);
        // Cumulative lane-metre weights over (edge, lane) slots.
        let mut slots: Vec<(EdgeId, u8, f64)> = Vec::new();
        let mut total = 0.0;
        for e in self.net.edges() {
            for lane in 0..e.lanes {
                total += e.length_m;
                slots.push((e.id, lane, total));
            }
        }
        for _ in 0..n {
            let x = self.rng.gen_range(0.0..total);
            let idx = slots
                .partition_point(|&(_, _, cum)| cum < x)
                .min(slots.len() - 1);
            let (edge, lane, _) = slots[idx];
            let pos = self.rng.gen_range(0.0..self.net.edge(edge).length_m);
            let (lo, hi) = self.cfg.speed_factor_range;
            let factor = if hi > lo {
                self.rng.gen_range(lo..hi)
            } else {
                lo
            };
            let class = sample_class(&mut self.rng, self.demand.white_van_fraction);
            self.add_vehicle_on_edge(edge, lane, pos, class, factor);
        }
    }

    fn sort_lane(&mut self, edge: EdgeId, lane: u8) {
        let vehicles = &self.vehicles;
        // Unstable sort: no heap allocation, and the comparator is a total
        // order (position, then id), so the result is deterministic.
        // `total_cmp` keeps a rogue NaN from panicking the simulation.
        self.lanes[edge.index()][lane as usize].sort_unstable_by(|a, b| {
            let pa = match vehicles[a.index()].state {
                VehState::OnEdge { pos_m, .. } => pos_m,
                _ => f64::MAX,
            };
            let pb = match vehicles[b.index()].state {
                VehState::OnEdge { pos_m, .. } => pos_m,
                _ => f64::MAX,
            };
            pb.total_cmp(&pa).then(a.cmp(b))
        });
    }

    /// Advances one time step and returns the events it produced, in
    /// deterministic order.
    pub fn step(&mut self) -> &[TrafficEvent] {
        self.events.clear();
        if self.cfg.lane_change_prob > 0.0 {
            self.lane_changes();
        }
        self.move_vehicles();
        if self.cfg.detect_overtakes {
            self.detect_overtakes();
        }
        self.admissions();
        self.spawns();
        self.time_s += self.cfg.dt_s;
        self.steps += 1;
        &self.events
    }

    /// Runs until `time_s` reaches `until_s`, discarding events (useful for
    /// warm-up phases in tests and benches).
    pub fn run_until(&mut self, until_s: f64) {
        while self.time_s < until_s {
            self.step();
        }
    }

    fn lane_changes(&mut self) {
        for ei in 0..self.lanes.len() {
            let edge = EdgeId(ei as u32);
            let n_lanes = self.lanes[ei].len();
            if n_lanes < 2 {
                continue;
            }
            for li in 0..n_lanes {
                // Walk followers (index >= 1): leaders have nobody to pass.
                let mut idx = 1;
                while idx < self.lanes[ei][li].len() {
                    let vid = self.lanes[ei][li][idx];
                    let lead = self.lanes[ei][li][idx - 1];
                    let (my_pos, my_factor) = match self.vehicles[vid.index()].state {
                        VehState::OnEdge { pos_m, .. } => {
                            (pos_m, self.vehicles[vid.index()].speed_factor)
                        }
                        _ => {
                            idx += 1;
                            continue;
                        }
                    };
                    let lead_speed = self.vehicles[lead.index()].speed_mps;
                    let lead_pos = match self.vehicles[lead.index()].state {
                        VehState::OnEdge { pos_m, .. } => pos_m,
                        _ => {
                            idx += 1;
                            continue;
                        }
                    };
                    let limit = self.net.edge(edge).speed_mps;
                    let desired = my_factor * limit;
                    let blocked =
                        lead_pos - my_pos < 3.0 * self.cfg.min_gap_m && lead_speed + 0.1 < desired;
                    if !blocked || !self.rng.gen_bool(self.cfg.lane_change_prob) {
                        idx += 1;
                        continue;
                    }
                    // Try adjacent lanes in a deterministic order.
                    let mut moved = false;
                    for target in [li.wrapping_sub(1), li + 1] {
                        if target >= n_lanes || target == li {
                            continue;
                        }
                        if self.lane_has_space(ei, target, my_pos) {
                            let v = self.lanes[ei][li].remove(idx);
                            if let VehState::OnEdge { lane, .. } =
                                &mut self.vehicles[v.index()].state
                            {
                                *lane = target as u8;
                            }
                            self.lanes[ei][target].push(v);
                            self.sort_lane(edge, target as u8);
                            moved = true;
                            break;
                        }
                    }
                    if !moved {
                        idx += 1;
                    }
                }
            }
        }
    }

    fn lane_has_space(&self, ei: usize, lane: usize, pos: f64) -> bool {
        let gap = self.cfg.min_gap_m;
        for &other in &self.lanes[ei][lane] {
            if let VehState::OnEdge { pos_m, .. } = self.vehicles[other.index()].state {
                if (pos_m - pos).abs() < gap {
                    return false;
                }
            }
        }
        true
    }

    fn move_vehicles(&mut self) {
        let dt = self.cfg.dt_s;
        let gap_min = self.cfg.min_gap_m;
        for ei in 0..self.lanes.len() {
            let edge_len = self.net.edge(EdgeId(ei as u32)).length_m;
            let limit = self.net.edge(EdgeId(ei as u32)).speed_mps;
            for li in 0..self.lanes[ei].len() {
                // Compute new positions leader-first against *old* leader
                // positions (synchronous update).
                self.scratch_pos.clear();
                let lane = &self.lanes[ei][li];
                for (i, &vid) in lane.iter().enumerate() {
                    let veh = &self.vehicles[vid.index()];
                    let pos = match veh.state {
                        VehState::OnEdge { pos_m, .. } => pos_m,
                        _ => unreachable!("lane list holds only on-edge vehicles"),
                    };
                    let desired = (veh.speed_factor * limit).min(limit);
                    let v = if i == 0 {
                        desired
                    } else {
                        let lead = &self.vehicles[lane[i - 1].index()];
                        let lead_pos = match lead.state {
                            VehState::OnEdge { pos_m, .. } => pos_m,
                            _ => unreachable!(),
                        };
                        let gap = lead_pos - pos - gap_min;
                        desired.min((gap / dt).max(0.0))
                    };
                    self.scratch_pos.push(pos + v * dt);
                }
                // Apply: crossers leave the lane into the head queue.
                // Survivors are compacted in place (retain-style) so the
                // lane vector keeps its capacity across steps.
                let head = self.net.edge(EdgeId(ei as u32)).to;
                let lane_len = self.lanes[ei][li].len();
                let mut kept = 0usize;
                for i in 0..lane_len {
                    let vid = self.lanes[ei][li][i];
                    let new_pos = self.scratch_pos[i];
                    debug_assert!(new_pos.is_finite(), "non-finite position for {vid:?}");
                    let veh = &mut self.vehicles[vid.index()];
                    let old_pos = match veh.state {
                        VehState::OnEdge { pos_m, .. } => pos_m,
                        _ => unreachable!(),
                    };
                    veh.speed_mps = (new_pos - old_pos) / dt;
                    if new_pos >= edge_len {
                        veh.state = VehState::Queued {
                            node: head,
                            from: EdgeId(ei as u32),
                        };
                        veh.speed_mps = 0.0;
                        self.queues[head.index()].push_back((vid, EdgeId(ei as u32)));
                    } else {
                        if let VehState::OnEdge { pos_m, .. } = &mut veh.state {
                            *pos_m = new_pos;
                        }
                        self.lanes[ei][li][kept] = vid;
                        kept += 1;
                    }
                }
                self.lanes[ei][li].truncate(kept);
            }
        }
    }

    /// Overtake detection without steady-state allocation: each edge's
    /// order is rebuilt into a reusable buffer and swapped with the cached
    /// previous order; previous-order vehicles are mapped to current ranks
    /// through an epoch-stamped table (no per-step `HashMap`), and an
    /// O(n log n) merge-based inversion count decides whether anything
    /// changed. Only on steps with inversions — rare by construction —
    /// are the inverted pairs enumerated, in the exact order of the
    /// historical all-pairs scan so the event stream is byte-identical.
    ///
    /// With `detect_shards > 1` the edge space is split into that many
    /// contiguous ranges, each detected by its own scoped worker thread
    /// against the shared (immutable) simulator state; the per-shard event
    /// buffers are then concatenated in range order, which reproduces the
    /// sequential scan exactly (see [`DetectScratch::detect_range`]).
    fn detect_overtakes(&mut self) {
        let n_edges = self.prev_order.len();
        let mut shards = self.detect_shards.clamp(1, n_edges.max(1));
        // Per-step thread spawn costs tens of microseconds; below a few
        // thousand in-transit vehicles that overhead dwarfs the detection
        // work itself, so run the whole range inline. The fallback cannot
        // change the event stream — a single whole-range scan emits exactly
        // what the concatenated shard ranges would.
        if shards > 1 {
            let in_transit: usize = self.prev_order.iter().map(Vec::len).sum();
            if in_transit < self.detect_parallel_min {
                shards = 1;
            }
        }
        while self.detect.len() < shards {
            self.detect.push(DetectScratch::default());
        }
        // Take the mutable pieces out so the simulator itself can be
        // reborrowed immutably and shared across the workers.
        let mut prev = std::mem::take(&mut self.prev_order);
        let mut scratches = std::mem::take(&mut self.detect);
        if shards == 1 {
            scratches[0].detect_range(self, 0, &mut prev);
        } else {
            let sim: &Simulator = self;
            std::thread::scope(|scope| {
                let mut rest = &mut prev[..];
                let mut first = 0usize;
                for (s, scratch) in scratches.iter_mut().take(shards).enumerate() {
                    let len = n_edges / shards + usize::from(s < n_edges % shards);
                    let (chunk, tail) = rest.split_at_mut(len);
                    rest = tail;
                    let start = first;
                    first += len;
                    scope.spawn(move || scratch.detect_range(sim, start, chunk));
                }
            });
        }
        for scratch in scratches.iter_mut().take(shards) {
            self.events.append(&mut scratch.events);
        }
        self.detect = scratches;
        self.prev_order = prev;
    }

    fn admissions(&mut self) {
        for ni in 0..self.queues.len() {
            let node = NodeId(ni as u32);
            let quota = match self.net.node(node).kind {
                NodeKind::Roundabout { .. } => self.cfg.admit_per_step_roundabout,
                NodeKind::Plain => self.cfg.admit_per_step,
            };
            let mut admitted = 0;
            while admitted < quota {
                // With signals, serve the first queued vehicle whose
                // approach is green; per-approach FIFO order (what the
                // label wave relies on) is preserved because same-edge
                // vehicles keep their relative positions.
                let Some(pos) = self.queues[ni].iter().position(|&(_, from)| {
                    self.signals
                        .as_ref()
                        .is_none_or(|p| p.is_green(node, from, self.time_s))
                }) else {
                    break;
                };
                let (vid, from_edge) = self.queues[ni][pos];
                match self.decide_route(vid, node, Some(from_edge)) {
                    RouteDecision::Exit => {
                        self.queues[ni].remove(pos);
                        self.events.push(TrafficEvent::Entered {
                            vehicle: vid,
                            node,
                            from: Some(from_edge),
                        });
                        self.events
                            .push(TrafficEvent::Exited { vehicle: vid, node });
                        self.vehicles[vid.index()].state = VehState::Outside;
                    }
                    RouteDecision::Onto(edge, lane) => {
                        self.queues[ni].remove(pos);
                        self.events.push(TrafficEvent::Entered {
                            vehicle: vid,
                            node,
                            from: Some(from_edge),
                        });
                        self.events.push(TrafficEvent::Departed {
                            vehicle: vid,
                            node,
                            onto: edge,
                        });
                        self.place_on_edge(vid, edge, lane);
                    }
                    RouteDecision::Blocked => break, // head-of-line waits; FIFO kept
                }
                admitted += 1;
            }
        }
    }

    fn place_on_edge(&mut self, vid: VehicleId, edge: EdgeId, lane: u8) {
        let veh = &mut self.vehicles[vid.index()];
        veh.state = VehState::OnEdge {
            edge,
            lane,
            pos_m: 0.0,
        };
        veh.speed_mps = 0.0;
        self.lanes[edge.index()][lane as usize].push(vid);
        self.sort_lane(edge, lane);
    }

    fn decide_route(
        &mut self,
        vid: VehicleId,
        node: NodeId,
        from_edge: Option<EdgeId>,
    ) -> RouteDecision {
        // Patrol cars follow their loop and are always admitted (emergency
        // priority; overlaps at pos 0 resolve via car following).
        if let RoutePolicy::FixedLoop { .. } = self.vehicles[vid.index()].policy {
            let next_edge = {
                let RoutePolicy::FixedLoop { edges, next } = &mut self.vehicles[vid.index()].policy
                else {
                    unreachable!()
                };
                let e = edges[*next];
                *next = (*next + 1) % edges.len();
                e
            };
            debug_assert_eq!(self.net.edge(next_edge).from, node);
            return RouteDecision::Onto(next_edge, 0);
        }

        // Exit the open system?
        let interaction = self.net.interaction(node);
        if interaction.outbound && self.rng.gen_bool(self.cfg.exit_prob) {
            return RouteDecision::Exit;
        }

        // Random turn among outbound edges with entry space, avoiding an
        // immediate U-turn when possible — but occasionally (u_turn_prob) a
        // driver deliberately turns around and takes the twin directly (see
        // SimConfig docs).
        let twin_back = from_edge.and_then(|e| self.net.edge(e).twin);
        if let Some(back) = twin_back {
            if self.cfg.u_turn_prob > 0.0 && self.rng.gen_bool(self.cfg.u_turn_prob) {
                if let Some(lane) = self.entry_lane(back) {
                    return RouteDecision::Onto(back, lane);
                }
            }
        }
        let forbidden = twin_back;
        let out = self.net.out_edges(node);
        // Reused candidate buffer: route decisions happen for every
        // admission every step, so this must not allocate.
        let mut candidates = std::mem::take(&mut self.route_scratch);
        candidates.clear();
        candidates.extend(out.iter().copied().filter(|e| Some(*e) != forbidden));
        if candidates.is_empty() {
            candidates.extend_from_slice(out);
        }
        // Fisher-Yates shuffle for unbiased random preference order.
        for i in (1..candidates.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            candidates.swap(i, j);
        }
        let mut decision = RouteDecision::Blocked;
        for &e in &candidates {
            if let Some(lane) = self.entry_lane(e) {
                decision = RouteDecision::Onto(e, lane);
                break;
            }
        }
        self.route_scratch = candidates;
        decision
    }

    /// The entry lane with the most rear space, or `None` when every lane's
    /// rearmost vehicle is within the minimum gap of the stop line.
    fn entry_lane(&self, edge: EdgeId) -> Option<u8> {
        let mut best: Option<(f64, u8)> = None;
        for (li, lane) in self.lanes[edge.index()].iter().enumerate() {
            let rear_space = lane
                .last()
                .map(|v| match self.vehicles[v.index()].state {
                    VehState::OnEdge { pos_m, .. } => pos_m,
                    _ => f64::MAX,
                })
                .unwrap_or(f64::MAX);
            if rear_space >= self.cfg.min_gap_m {
                match best {
                    Some((s, _)) if s >= rear_space => {}
                    _ => best = Some((rear_space, li as u8)),
                }
            }
        }
        best.map(|(_, l)| l)
    }

    fn spawns(&mut self) {
        if self.cfg.spawn_rate_hz <= 0.0 {
            return;
        }
        let lambda = self.cfg.spawn_rate_hz * self.demand.volume_factor() * self.cfg.dt_s;
        if lambda <= 0.0 {
            return;
        }
        for ni in 0..self.net.node_count() {
            let node = NodeId(ni as u32);
            if !self.net.interaction(node).inbound {
                continue;
            }
            let k = poisson(&mut self.rng, lambda);
            for _ in 0..k {
                // Route first: a blocked border drops the arrival (the
                // outside world balks), so we never emit a phantom entry.
                let id = VehicleId(self.vehicles.len() as u64);
                let (lo, hi) = self.cfg.speed_factor_range;
                let factor = if hi > lo {
                    self.rng.gen_range(lo..hi)
                } else {
                    lo
                };
                let class = sample_class(&mut self.rng, self.demand.white_van_fraction);
                self.vehicles.push(Vehicle {
                    id,
                    class,
                    speed_factor: factor,
                    policy: RoutePolicy::RandomTurn,
                    state: VehState::Outside,
                    speed_mps: 0.0,
                });
                match self.decide_route(id, node, None) {
                    RouteDecision::Onto(edge, lane) => {
                        self.events.push(TrafficEvent::Entered {
                            vehicle: id,
                            node,
                            from: None,
                        });
                        self.events.push(TrafficEvent::Departed {
                            vehicle: id,
                            node,
                            onto: edge,
                        });
                        self.place_on_edge(id, edge, lane);
                    }
                    RouteDecision::Exit | RouteDecision::Blocked => {
                        // Balked arrival: vehicle never entered; keep the
                        // record as Outside so ids stay dense.
                    }
                }
            }
        }
    }
}

enum RouteDecision {
    Onto(EdgeId, u8),
    Exit,
    Blocked,
}

/// Knuth's Poisson sampler (fine for the small per-step rates used here).
fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> usize {
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // defensive cap; unreachable for sane lambda
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcount_roadnet::builders::{fig1_triangle, grid, manhattan, ManhattanConfig};

    fn sim_on_grid(seed: u64) -> Simulator {
        let net = grid(4, 4, 200.0, 2, 10.0);
        Simulator::new(
            net,
            SimConfig {
                seed,
                ..Default::default()
            },
            Demand::at_volume(50.0),
        )
    }

    #[test]
    fn population_matches_demand() {
        let net = grid(4, 4, 200.0, 2, 10.0);
        let lane_km: f64 = net
            .edges()
            .map(|e| e.length_m * e.lanes as f64 / 1000.0)
            .sum();
        let demand = Demand::at_volume(50.0);
        let expect = demand.initial_vehicles(lane_km);
        let sim = Simulator::new(net, SimConfig::default(), demand);
        assert_eq!(sim.civilian_population(), expect);
        assert!(expect > 0);
    }

    #[test]
    fn steps_are_deterministic_per_seed() {
        let run = |seed| {
            let mut sim = sim_on_grid(seed);
            let mut log = Vec::new();
            for _ in 0..200 {
                log.extend(sim.step().iter().copied());
            }
            log
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn snapshot_restore_replays_identical_events() {
        let net = grid(4, 4, 200.0, 2, 10.0);
        let cfg = SimConfig {
            seed: 21,
            detect_overtakes: true,
            spawn_rate_hz: 0.1,
            speed_factor_range: (0.5, 1.0),
            ..Default::default()
        };
        let mut full = Simulator::new(net.clone(), cfg.clone(), Demand::at_volume(60.0));
        let mut interrupted = Simulator::new(net.clone(), cfg.clone(), Demand::at_volume(60.0));
        for _ in 0..150 {
            full.step();
            interrupted.step();
        }
        let snap = interrupted.snapshot();
        // Round-trip through JSON like the engine snapshot does.
        let json = serde_json::to_string(&snap).unwrap();
        let snap: SimSnapshot = serde_json::from_str(&json).unwrap();
        let mut resumed = Simulator::restore(net, cfg, Demand::at_volume(60.0), &snap);
        for _ in 0..250 {
            let a = full.step().to_vec();
            let b = resumed.step().to_vec();
            assert_eq!(a, b, "resumed stream diverged at step {}", resumed.steps());
        }
    }

    #[test]
    fn detect_shards_do_not_change_the_event_stream() {
        // `parallel_min: 0` forces real scoped threads even on this tiny
        // fixture; the default threshold exercises the inline fallback.
        let run = |shards: usize, parallel_min: usize| {
            let net = grid(4, 4, 200.0, 2, 10.0);
            let mut sim = Simulator::new(
                net,
                SimConfig {
                    seed: 31,
                    detect_overtakes: true,
                    speed_factor_range: (0.4, 1.0),
                    ..Default::default()
                },
                Demand::at_volume(80.0),
            );
            sim.set_detect_shards(shards);
            sim.set_detect_parallel_min(parallel_min);
            let mut log = Vec::new();
            for _ in 0..300 {
                log.extend(sim.step().iter().copied());
            }
            log
        };
        let base = run(1, 0);
        assert!(
            base.iter()
                .any(|e| matches!(e, TrafficEvent::Overtake { .. })),
            "fixture must actually exercise overtake detection"
        );
        // 64 exceeds the edge count, exercising the clamp to n_edges.
        for shards in [2usize, 3, 4, 64] {
            for parallel_min in [0usize, DETECT_PARALLEL_MIN] {
                assert_eq!(
                    run(shards, parallel_min),
                    base,
                    "{shards} shards (parallel_min {parallel_min}) diverged"
                );
            }
        }
    }

    #[test]
    fn closed_system_conserves_population() {
        let mut sim = sim_on_grid(2);
        let before = sim.civilian_population();
        for _ in 0..500 {
            sim.step();
        }
        assert_eq!(sim.civilian_population(), before);
    }

    #[test]
    fn vehicles_keep_moving_and_entering_intersections() {
        let mut sim = sim_on_grid(3);
        let mut entered = 0usize;
        for _ in 0..600 {
            entered += sim
                .step()
                .iter()
                .filter(|e| matches!(e, TrafficEvent::Entered { .. }))
                .count();
        }
        assert!(
            entered > sim.civilian_population(),
            "expected sustained intersection traffic, saw {entered} entries"
        );
    }

    #[test]
    fn entered_and_departed_pair_up_in_closed_system() {
        let mut sim = sim_on_grid(4);
        for _ in 0..300 {
            let events = sim.step();
            let entered = events
                .iter()
                .filter(|e| matches!(e, TrafficEvent::Entered { .. }))
                .count();
            let departed = events
                .iter()
                .filter(|e| matches!(e, TrafficEvent::Departed { .. }))
                .count();
            assert_eq!(entered, departed, "closed system: every entry departs");
        }
    }

    #[test]
    fn no_overtakes_in_simple_model() {
        let net = fig1_triangle(300.0, 1, 6.7);
        let mut sim = Simulator::new(
            net,
            SimConfig {
                detect_overtakes: true,
                ..SimConfig::simple_model(8)
            },
            Demand::at_volume(80.0),
        );
        for _ in 0..2000 {
            for ev in sim.step() {
                assert!(
                    !matches!(ev, TrafficEvent::Overtake { .. }),
                    "simple model must be FIFO"
                );
            }
        }
    }

    #[test]
    fn heterogeneous_speeds_produce_overtakes_on_multilane() {
        let net = grid(3, 3, 400.0, 3, 12.0);
        let mut sim = Simulator::new(
            net,
            SimConfig {
                detect_overtakes: true,
                speed_factor_range: (0.4, 1.0),
                seed: 11,
                ..Default::default()
            },
            Demand {
                volume_pct: 100.0,
                vehicles_per_lane_km: 18.0,
                white_van_fraction: 0.0,
            },
        );
        let mut overtakes = 0usize;
        for _ in 0..1500 {
            overtakes += sim
                .step()
                .iter()
                .filter(|e| matches!(e, TrafficEvent::Overtake { .. }))
                .count();
        }
        assert!(
            overtakes > 0,
            "multi-lane heterogeneous traffic must overtake"
        );
    }

    #[test]
    fn open_system_exchanges_vehicles_with_outside() {
        let net = manhattan(&ManhattanConfig::small());
        let mut sim = Simulator::new(
            net,
            SimConfig {
                seed: 13,
                spawn_rate_hz: 0.2,
                ..Default::default()
            },
            Demand::at_volume(60.0),
        );
        let mut spawned = 0usize;
        let mut exited = 0usize;
        for _ in 0..1200 {
            for ev in sim.step() {
                match ev {
                    TrafficEvent::Entered { from: None, .. } => spawned += 1,
                    TrafficEvent::Exited { .. } => exited += 1,
                    _ => {}
                }
            }
        }
        assert!(spawned > 0, "border must admit outside arrivals");
        assert!(exited > 0, "border must let vehicles leave");
    }

    #[test]
    fn patrol_car_follows_its_loop() {
        let net = grid(3, 3, 150.0, 1, 10.0);
        let cycle = vcount_roadnet::covering_cycle(&net, NodeId(0)).unwrap();
        let mut sim = Simulator::new(
            net,
            SimConfig {
                seed: 17,
                ..Default::default()
            },
            Demand::at_volume(0.0),
        );
        let pid = sim.add_patrol_car(cycle.edges.clone(), 0);
        // Drive long enough for a full lap; the patrol must visit every
        // node on the cycle.
        let mut visited = std::collections::BTreeSet::new();
        for _ in 0..5000 {
            for ev in sim.step() {
                if let TrafficEvent::Entered { vehicle, node, .. } = ev {
                    if *vehicle == pid {
                        visited.insert(*node);
                    }
                }
            }
        }
        assert_eq!(visited.len(), sim.net().node_count());
        assert!(sim.vehicle(pid).is_patrol());
    }

    #[test]
    fn in_transit_orders_queued_before_on_edge() {
        let net = grid(2, 2, 100.0, 1, 10.0);
        let e = net.edge_between(NodeId(0), NodeId(1)).unwrap();
        let mut sim = Simulator::new(
            net,
            SimConfig {
                seed: 19,
                admit_per_step: 1,
                ..SimConfig::simple_model(19)
            },
            Demand::at_volume(0.0),
        );
        let a = sim.add_vehicle_on_edge(e, 0, 95.0, VehicleClass::WHITE_VAN, 1.0);
        let b = sim.add_vehicle_on_edge(e, 0, 50.0, VehicleClass::WHITE_VAN, 1.0);
        let c = sim.add_vehicle_on_edge(e, 0, 5.0, VehicleClass::WHITE_VAN, 1.0);
        // a crosses into the queue and is admitted in the same step.
        let events = sim.step().to_vec();
        assert!(events
            .iter()
            .any(|ev| matches!(ev, TrafficEvent::Entered { vehicle, .. } if *vehicle == a)));
        let order = sim.in_transit(e);
        assert!(order.contains(&b) && order.contains(&c) && !order.contains(&a));
        let ib = order.iter().position(|v| *v == b).unwrap();
        let ic = order.iter().position(|v| *v == c).unwrap();
        assert!(ib < ic, "b is ahead of c on the segment");
    }

    #[test]
    fn followers_never_pass_leaders_within_a_lane() {
        let net = grid(2, 2, 500.0, 1, 15.0);
        let e = net.edge_between(NodeId(0), NodeId(1)).unwrap();
        let mut sim = Simulator::new(
            net,
            SimConfig {
                seed: 23,
                lane_change_prob: 0.0,
                speed_factor_range: (0.3, 1.0),
                ..Default::default()
            },
            Demand::at_volume(0.0),
        );
        // Slow leader, fast follower.
        let lead = sim.add_vehicle_on_edge(e, 0, 50.0, VehicleClass::WHITE_VAN, 0.3);
        let chase = sim.add_vehicle_on_edge(e, 0, 0.0, VehicleClass::WHITE_VAN, 1.0);
        for _ in 0..200 {
            sim.step();
            // Compare only while both are still on the original segment.
            let lp = match sim.vehicle(lead).state {
                VehState::OnEdge { edge, pos_m, .. } if edge == e => pos_m,
                _ => break,
            };
            let cp = match sim.vehicle(chase).state {
                VehState::OnEdge { edge, pos_m, .. } if edge == e => pos_m,
                _ => break,
            };
            assert!(cp < lp, "single-lane follower overtook its leader");
        }
    }

    #[test]
    fn poisson_mean_is_lambda() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let lambda = 2.5;
        let n = 50_000;
        let total: usize = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - lambda).abs() < 0.05, "poisson mean {mean}");
    }

    #[test]
    fn zero_volume_spawns_nothing_initially() {
        let sim = sim_with_volume(0.0);
        assert_eq!(sim.civilian_population(), 0);
    }

    fn sim_with_volume(v: f64) -> Simulator {
        let net = grid(3, 3, 100.0, 1, 10.0);
        Simulator::new(net, SimConfig::default(), Demand::at_volume(v))
    }
}

#[cfg(test)]
mod extended_tests {
    use super::*;
    use crate::signals::SignalTiming;
    use vcount_roadnet::builders::grid;
    use vcount_roadnet::{NodeKind, Point};

    /// A tiny cross with a roundabout in the middle.
    fn roundabout_cross() -> RoadNetwork {
        let mut net = RoadNetwork::new();
        let c = net.add_node_kind(
            Point::new(0.0, 0.0),
            NodeKind::Roundabout { radius_m: 20.0 },
        );
        let arms = [
            net.add_node(Point::new(150.0, 0.0)),
            net.add_node(Point::new(-150.0, 0.0)),
            net.add_node(Point::new(0.0, 150.0)),
            net.add_node(Point::new(0.0, -150.0)),
        ];
        for a in arms {
            net.add_two_way(c, a, 1, 9.0);
        }
        net
    }

    #[test]
    fn roundabout_admits_more_vehicles_per_step() {
        let cfg = SimConfig {
            admit_per_step: 1,
            admit_per_step_roundabout: 4,
            seed: 3,
            ..Default::default()
        };
        let mut sim = Simulator::new(roundabout_cross(), cfg, Demand::at_volume(0.0));
        // Queue four vehicles at the roundabout simultaneously.
        let centre = NodeId(0);
        for (i, arm) in [1u32, 2, 3, 4].into_iter().enumerate() {
            let e = sim.net().edge_between(NodeId(arm), centre).unwrap();
            let len = sim.net().edge(e).length_m;
            sim.add_vehicle_on_edge(e, 0, len - 1.0, VehicleClass::WHITE_VAN, 1.0);
            let _ = i;
        }
        let events = sim.step().to_vec();
        let admitted = events
            .iter()
            .filter(|ev| matches!(ev, TrafficEvent::Entered { node, .. } if *node == centre))
            .count();
        assert_eq!(admitted, 4, "roundabout handles simultaneous entries");
    }

    #[test]
    fn plain_intersection_respects_admission_quota() {
        let net = grid(2, 2, 100.0, 1, 9.0);
        // Give node 3 (two inbound edges) four queued vehicles.
        let cfg = SimConfig {
            admit_per_step: 1,
            lane_change_prob: 0.0,
            seed: 5,
            ..Default::default()
        };
        let mut sim = Simulator::new(net, cfg, Demand::at_volume(0.0));
        let n3 = NodeId(3);
        for from in [NodeId(1), NodeId(2)] {
            let e = sim.net().edge_between(from, n3).unwrap();
            let len = sim.net().edge(e).length_m;
            sim.add_vehicle_on_edge(e, 0, len - 1.0, VehicleClass::WHITE_VAN, 1.0);
            sim.add_vehicle_on_edge(e, 0, len - 9.0, VehicleClass::WHITE_VAN, 1.0);
        }
        let admitted: usize = (0..2)
            .map(|_| {
                sim.step()
                    .iter()
                    .filter(|ev| matches!(ev, TrafficEvent::Entered { node, .. } if *node == n3))
                    .count()
            })
            .sum();
        assert!(
            admitted <= 2,
            "one admission per step allowed, got {admitted} over 2 steps"
        );
    }

    #[test]
    fn signalised_simulation_still_moves_traffic() {
        let net = grid(4, 4, 150.0, 2, 9.0);
        let cfg = SimConfig {
            signals: Some(SignalTiming::default()),
            seed: 7,
            ..Default::default()
        };
        let mut sim = Simulator::new(net, cfg, Demand::at_volume(60.0));
        let mut entered = 0usize;
        for _ in 0..1200 {
            entered += sim
                .step()
                .iter()
                .filter(|e| matches!(e, TrafficEvent::Entered { .. }))
                .count();
        }
        assert!(entered > 100, "signals must not freeze the network");
    }
}
