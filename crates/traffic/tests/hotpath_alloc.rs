//! Guards the allocation-free steady state of the simulation hot path.
//!
//! A counting global allocator measures heap activity across a window of
//! `step()` calls after a warm-up period. Once every scratch buffer has
//! grown to its working-set size, a closed-network simulation must not
//! touch the allocator at all — overtake detection, lane sorting, routing,
//! and event emission all run on reused buffers.
//!
//! This is the only test in this file on purpose: the allocator counts
//! process-wide, so a concurrently running test would pollute the window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use vcount_roadnet::builders::grid;
use vcount_traffic::{Demand, SimConfig, Simulator};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct Counting;

// SAFETY: delegates directly to the system allocator; the counter is a
// relaxed atomic with no other side effects.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

#[test]
fn steady_state_step_does_not_allocate() {
    // Overtake-heavy configuration: multi-lane closed grid, heterogeneous
    // speeds, detection on. Same shape as the bench cases.
    let net = grid(5, 5, 150.0, 3, 10.0);
    let cfg = SimConfig {
        detect_overtakes: true,
        speed_factor_range: (0.5, 1.0),
        seed: 77,
        ..Default::default()
    };
    let mut sim = Simulator::new(net, cfg, Demand::at_volume(100.0));

    // Warm-up: grow event buffers, per-edge order snapshots, rank tables,
    // and merge scratch to their working-set sizes.
    let mut events = 0u64;
    for _ in 0..2500 {
        events += sim.step().len() as u64;
    }
    assert!(events > 0, "warm-up produced no events; test is vacuous");

    let before = ALLOCS.load(Ordering::Relaxed);
    let mut measured_events = 0u64;
    for _ in 0..400 {
        measured_events += sim.step().len() as u64;
    }
    let delta = ALLOCS.load(Ordering::Relaxed) - before;

    assert!(
        measured_events > 0,
        "measurement window produced no events; test is vacuous"
    );
    // Exactly zero is not achievable on any finite warm-up: a lane vector
    // reallocates whenever an edge sets a new record occupancy, and the
    // occupancy distribution has a long tail. What the refactor guarantees
    // is *amortized* zero — no allocation that recurs per step. The old
    // detector built a HashMap per edge per step (hundreds of allocations
    // every step); a handful over 400 steps is high-water-mark growth, not
    // a regression.
    assert!(
        delta <= 8,
        "hot path allocated {delta} times over 400 steady-state steps \
         ({measured_events} events) — a per-step allocation crept back in"
    );
}
