//! Golden event-stream digests pinning the overtake refactor.
//!
//! The digests below were captured from the pre-refactor simulator, whose
//! `detect_overtakes` was the all-pairs O(n²) inversion scan. The merge-based
//! detector must reproduce the *byte-identical* event stream (same events,
//! same order, same fields), so these FNV-1a digests over the
//! `Debug`-formatted events must never change. If a legitimate semantic
//! change to the simulator is intended, regenerate them with the same digest
//! recipe and say so loudly in the commit message.

use vcount_roadnet::builders::grid;
use vcount_traffic::{Demand, SimConfig, Simulator};

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

fn digest(cols: usize, rows: usize, lanes: u8, demand: f64, seed: u64, steps: u64) -> (u64, u64) {
    let net = grid(cols, rows, 150.0, lanes, 10.0);
    let cfg = SimConfig {
        detect_overtakes: true,
        speed_factor_range: (0.5, 1.0),
        seed,
        ..Default::default()
    };
    let mut sim = Simulator::new(net, cfg, Demand::at_volume(demand));
    let mut h = 0xcbf29ce484222325u64;
    let mut n = 0u64;
    for _ in 0..steps {
        for ev in sim.step() {
            fnv1a(&mut h, format!("{ev:?}").as_bytes());
            n += 1;
        }
    }
    (h, n)
}

/// One pinned configuration and its expected digest, captured from the
/// all-pairs reference implementation.
struct Golden {
    cols: usize,
    rows: usize,
    lanes: u8,
    demand: f64,
    seed: u64,
    steps: u64,
    events: u64,
    fnv: u64,
}

const GOLDENS: [Golden; 3] = [
    Golden {
        cols: 4,
        rows: 4,
        lanes: 2,
        demand: 60.0,
        seed: 7,
        steps: 800,
        events: 4620,
        fnv: 0x8c11f72e6f0865c7,
    },
    Golden {
        cols: 5,
        rows: 5,
        lanes: 3,
        demand: 100.0,
        seed: 11,
        steps: 600,
        events: 16239,
        fnv: 0x8751f0aac578ae99,
    },
    Golden {
        cols: 3,
        rows: 3,
        lanes: 1,
        demand: 80.0,
        seed: 23,
        steps: 1000,
        events: 1628,
        fnv: 0xb734512cc6613166,
    },
];

#[test]
fn event_stream_matches_all_pairs_reference_goldens() {
    for Golden {
        cols,
        rows,
        lanes,
        demand,
        seed,
        steps,
        events: want_n,
        fnv: want_h,
    } in GOLDENS
    {
        let (h, n) = digest(cols, rows, lanes, demand, seed, steps);
        assert_eq!(
            n, want_n,
            "event count drifted for grid {cols}x{rows} lanes={lanes} \
             demand={demand} seed={seed}"
        );
        assert_eq!(
            h, want_h,
            "event stream digest drifted for grid {cols}x{rows} lanes={lanes} \
             demand={demand} seed={seed} — the overtake detector no longer \
             reproduces the all-pairs reference byte-for-byte"
        );
    }
}
