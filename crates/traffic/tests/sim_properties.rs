//! Property tests of the microsimulator's physical invariants.

use proptest::prelude::*;
use vcount_roadnet::builders::{grid, random_city, RandomCityConfig};
use vcount_traffic::{Demand, SimConfig, Simulator, TrafficEvent, VehState};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Closed systems conserve the civilian population across any horizon.
    #[test]
    fn population_conservation(seed in any::<u64>(), cols in 2usize..5, rows in 2usize..5, vol in 10.0f64..120.0) {
        let net = grid(cols, rows, 150.0, 2, 9.0);
        let mut sim = Simulator::new(
            net,
            SimConfig { seed, ..Default::default() },
            Demand::at_volume(vol),
        );
        let before = sim.civilian_population();
        for _ in 0..300 {
            sim.step();
        }
        prop_assert_eq!(sim.civilian_population(), before);
    }

    /// Vehicles never leave the road: every inside vehicle is either on a
    /// valid lane position within its edge or queued at the edge's head.
    #[test]
    fn positions_stay_on_road(seed in any::<u64>()) {
        let net = random_city(&RandomCityConfig { nodes: 15, seed, ..Default::default() });
        let mut sim = Simulator::new(
            net,
            SimConfig { seed, ..Default::default() },
            Demand::at_volume(60.0),
        );
        for _ in 0..200 {
            sim.step();
            for v in sim.vehicles() {
                match v.state {
                    VehState::OnEdge { edge, lane, pos_m } => {
                        let e = sim.net().edge(edge);
                        prop_assert!((lane as usize) < e.lanes as usize);
                        prop_assert!(pos_m >= 0.0 && pos_m < e.length_m + 1e-9);
                        prop_assert!(v.speed_mps <= e.speed_mps + 1e-9);
                    }
                    VehState::Queued { node, from } => {
                        prop_assert_eq!(sim.net().edge(from).to, node);
                    }
                    VehState::Outside => {}
                }
            }
        }
    }

    /// Every Departed event leaves on an edge that really starts at the
    /// node, and every Entered-from edge really ends there.
    #[test]
    fn events_are_topologically_consistent(seed in any::<u64>()) {
        let net = grid(3, 3, 120.0, 2, 9.0);
        let mut sim = Simulator::new(
            net,
            SimConfig { seed, ..Default::default() },
            Demand::at_volume(70.0),
        );
        for _ in 0..200 {
            for ev in sim.step().to_vec() {
                match ev {
                    TrafficEvent::Departed { node, onto, .. } => {
                        prop_assert_eq!(sim.net().edge(onto).from, node);
                    }
                    TrafficEvent::Entered { node, from: Some(e), .. } => {
                        prop_assert_eq!(sim.net().edge(e).to, node);
                    }
                    _ => {}
                }
            }
        }
    }

    /// The simple model is strictly FIFO: with overtake detection enabled
    /// it emits no overtake events, ever.
    #[test]
    fn simple_model_never_overtakes(seed in any::<u64>()) {
        let net = grid(3, 3, 200.0, 1, 9.0);
        let mut sim = Simulator::new(
            net,
            SimConfig { detect_overtakes: true, ..SimConfig::simple_model(seed) },
            Demand::at_volume(80.0),
        );
        for _ in 0..300 {
            for ev in sim.step() {
                let is_overtake = matches!(ev, TrafficEvent::Overtake { .. });
                prop_assert!(!is_overtake);
            }
        }
    }
}
