//! Criterion counterparts of the design-choice ablations: wall-clock cost
//! of the two overtake-adjustment modes and of loss compensation, each on
//! one representative cell (accuracy numbers come from the `ablations`
//! binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vcount_core::CheckpointConfig;
use vcount_roadnet::builders::ManhattanConfig;
use vcount_sim::{Goal, Runner, Scenario};
use vcount_v2x::{AdjustMode, ChannelKind};

fn scenario(adjust_mode: AdjustMode, p_fail: f64, compensate: bool) -> Scenario {
    let mut s = Scenario::paper_closed(ManhattanConfig::small(), 60.0, 1, 21);
    s.protocol = CheckpointConfig {
        adjust_mode,
        compensate_loss: compensate,
        ..s.protocol
    };
    s.sim.detect_overtakes = adjust_mode == AdjustMode::PerEvent;
    s.channel = ChannelKind::Bernoulli(p_fail);
    s
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);

    for (name, mode) in [
        ("net_inversion", AdjustMode::NetInversion),
        ("per_event", AdjustMode::PerEvent),
    ] {
        g.bench_function(BenchmarkId::new("adjust_mode", name), |b| {
            let s = scenario(mode, 0.3, true);
            b.iter(|| {
                let mut r = Runner::builder(&s).build();
                let m = r.run(Goal::Constitution, s.max_time_s);
                assert!(m.constitution_done_s.is_some());
                m.overtake_adjustments
            });
        });
    }

    for (name, p, compensate) in [
        ("lossless", 0.0, true),
        ("paper_30pct", 0.3, true),
        ("uncompensated_30pct", 0.3, false),
    ] {
        g.bench_function(BenchmarkId::new("loss", name), |b| {
            let s = scenario(AdjustMode::NetInversion, p, compensate);
            b.iter(|| {
                let mut r = Runner::builder(&s).build();
                let m = r.run(Goal::Constitution, s.max_time_s);
                m.handoff_failures
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
