//! Micro-benchmarks of the substrates: simulator step throughput vs map
//! size (the paper's scalability observation 4), protocol event
//! processing, wire codec, channel draws, and patrol cycle construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vcount_core::{Checkpoint, CheckpointConfig, Observation};
use vcount_obs::{EventRecord, EventSink, NullSink, ProtocolEvent};
use vcount_roadnet::builders::{grid, manhattan, ManhattanConfig};
use vcount_roadnet::{covering_cycle, edge_covering_cycle, shortest_path, NodeId};
use vcount_traffic::{Demand, SimConfig, Simulator};
use vcount_v2x::{Bernoulli, Label, LossModel, Message, Report, VehicleClass, VehicleId};

fn bench_sim_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_step");
    for (name, cols, rows) in [
        ("small_5x5", 5usize, 5usize),
        ("mid_10x10", 10, 10),
        ("large_20x20", 20, 20),
    ] {
        let net = grid(cols, rows, 120.0, 2, 9.0);
        let vehicles = Demand::at_volume(80.0);
        g.throughput(Throughput::Elements((cols * rows) as u64));
        g.bench_function(BenchmarkId::new("grid", name), |b| {
            let mut sim = Simulator::new(net.clone(), SimConfig::default(), vehicles.clone());
            b.iter(|| {
                sim.step();
            });
        });
    }
    let net = manhattan(&ManhattanConfig::default());
    g.bench_function(BenchmarkId::new("manhattan", "12x37"), |b| {
        let mut sim = Simulator::new(
            net.clone(),
            SimConfig::default(),
            Demand {
                vehicles_per_lane_km: 30.0,
                ..Demand::at_volume(80.0)
            },
        );
        b.iter(|| {
            sim.step();
        });
    });
    // The overtake-detection hot path: multi-lane, heterogeneous speeds,
    // detection on — the configuration BENCH_hotpath.json tracks. The
    // warm-up lets every scratch buffer reach its working-set size so the
    // measurement sees the allocation-free steady state.
    g.bench_function(BenchmarkId::new("grid", "overtakes_10x10"), |b| {
        let net = grid(10, 10, 150.0, 2, 10.0);
        let cfg = SimConfig {
            detect_overtakes: true,
            speed_factor_range: (0.5, 1.0),
            seed: 42,
            ..Default::default()
        };
        let mut sim = Simulator::new(net, cfg, Demand::at_volume(100.0));
        for _ in 0..300 {
            sim.step();
        }
        b.iter(|| {
            sim.step();
        });
    });
    g.finish();
}

fn bench_protocol_events(c: &mut Criterion) {
    let net = grid(3, 3, 100.0, 1, 9.0);
    let center = NodeId(4);
    let via = net.in_edges(center)[0];
    let car = VehicleClass::WHITE_VAN;
    c.bench_function("checkpoint_count_event", |b| {
        let mut cp = Checkpoint::new(&net, center, CheckpointConfig::default());
        let mut cmds = Vec::new();
        let mut events = Vec::new();
        cp.activate_as_seed(0.0, &mut cmds);
        cp.drain_events_into(&mut events);
        let mut t = 1.0;
        let mut veh = 0u64;
        b.iter(|| {
            t += 1.0;
            veh += 1;
            cmds.clear();
            cp.handle(
                Observation::Entered {
                    vehicle: VehicleId(veh),
                    via: Some(via),
                    class: car,
                    label: None,
                },
                t,
                &mut cmds,
            );
            events.clear();
            cp.drain_events_into(&mut events);
            (cmds.len(), events.len())
        });
    });
    // Acceptance guard for the observability layer: routing the same event
    // stream through a NullSink must cost nothing measurable over draining
    // the events and throwing them away.
    let mut g = c.benchmark_group("event_sink");
    for (name, with_sink) in [("drain_only", false), ("null_sink", true)] {
        g.bench_function(BenchmarkId::new("count_event", name), |b| {
            let mut cp = Checkpoint::new(&net, center, CheckpointConfig::default());
            let mut cmds = Vec::new();
            let mut events = Vec::new();
            cp.activate_as_seed(0.0, &mut cmds);
            cp.drain_events_into(&mut events);
            let mut sink = NullSink;
            let mut t = 1.0;
            let mut veh = 0u64;
            b.iter(|| {
                t += 1.0;
                veh += 1;
                cmds.clear();
                cp.handle(
                    Observation::Entered {
                        vehicle: VehicleId(veh),
                        via: Some(via),
                        class: car,
                        label: None,
                    },
                    t,
                    &mut cmds,
                );
                let mut n = 0usize;
                events.clear();
                cp.drain_events_into(&mut events);
                for &(time_s, event) in &events {
                    n += 1;
                    if with_sink {
                        sink.record(&EventRecord {
                            time_s,
                            seed_epoch: 0,
                            event,
                        });
                    } else {
                        std::hint::black_box::<(f64, ProtocolEvent)>((time_s, event));
                    }
                }
                n
            });
        });
    }
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let msgs = vec![
        Message::Label(Label {
            origin: NodeId(7),
            origin_pred: Some(NodeId(3)),
            seed: NodeId(0),
        }),
        Message::Report(Report {
            from: NodeId(12),
            to: NodeId(4),
            subtree_total: -3,
            seq: 2,
        }),
        Message::Ack {
            vehicle: VehicleId(99),
        },
    ];
    c.bench_function("message_roundtrip", |b| {
        b.iter(|| {
            for m in &msgs {
                let mut wire = m.encode();
                let back = Message::decode(&mut wire).unwrap();
                assert_eq!(&back, m);
            }
        });
    });
}

fn bench_channel(c: &mut Criterion) {
    c.bench_function("bernoulli_channel_1k_attempts", |b| {
        let ch = Bernoulli::PAPER;
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let mut delivered = 0u32;
            for _ in 0..1000 {
                if ch.attempt(&mut rng).delivered() {
                    delivered += 1;
                }
            }
            delivered
        });
    });
}

fn bench_roadnet(c: &mut Criterion) {
    let net = manhattan(&ManhattanConfig::default());
    c.bench_function("manhattan_build", |b| {
        b.iter(|| manhattan(&ManhattanConfig::default()).node_count());
    });
    c.bench_function("dijkstra_midtown_corner_to_corner", |b| {
        let from = NodeId(0);
        let to = NodeId((net.node_count() - 1) as u32);
        b.iter(|| shortest_path(&net, from, to).unwrap().edges.len());
    });
    c.bench_function("node_covering_cycle_midtown", |b| {
        b.iter(|| covering_cycle(&net, NodeId(0)).unwrap().edges.len());
    });
    let small = manhattan(&ManhattanConfig::small());
    c.bench_function("edge_covering_cycle_small_midtown", |b| {
        b.iter(|| edge_covering_cycle(&small, NodeId(0)).unwrap().edges.len());
    });
}

criterion_group!(
    benches,
    bench_sim_throughput,
    bench_protocol_events,
    bench_codec,
    bench_channel,
    bench_roadnet
);
criterion_main!(benches);
