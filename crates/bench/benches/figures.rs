//! Criterion wall-clock benches: one representative grid cell per paper
//! figure, on the reduced midtown map so `cargo bench` stays quick. The
//! full simulated-minutes series are produced by the `fig2`…`fig5`
//! binaries; these benches track the *cost of reproducing* each figure
//! cell and assert exactness on every measured run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vcount_roadnet::builders::ManhattanConfig;
use vcount_sim::{Goal, Runner, Scenario};

fn small_closed(volume: f64, seeds: usize, seed: u64) -> Scenario {
    Scenario::paper_closed(ManhattanConfig::small(), volume, seeds, seed)
}

fn small_open(volume: f64, seeds: usize, seed: u64) -> Scenario {
    Scenario::paper_open(ManhattanConfig::small(), volume, seeds, seed)
}

fn run_cell(s: &Scenario, goal: Goal) {
    let mut r = Runner::builder(s).build();
    let m = r.run(goal, s.max_time_s);
    assert_eq!(m.oracle_violations, 0, "exactness violated during bench");
    match goal {
        Goal::Constitution => assert!(m.constitution_done_s.is_some()),
        Goal::Collection => assert!(m.collection_done_s.is_some()),
    }
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    g.bench_function(
        BenchmarkId::new("fig2_constitution_closed", "v60_s1"),
        |b| {
            b.iter(|| run_cell(&small_closed(60.0, 1, 1), Goal::Constitution));
        },
    );
    g.bench_function(BenchmarkId::new("fig3_collection_closed", "v60_s1"), |b| {
        b.iter(|| run_cell(&small_closed(60.0, 1, 2), Goal::Collection));
    });
    g.bench_function(
        BenchmarkId::new("fig4_open_complete_status", "v60_s1"),
        |b| {
            b.iter(|| run_cell(&small_open(60.0, 1, 3), Goal::Constitution));
        },
    );
    g.bench_function(BenchmarkId::new("fig4_closed_25mph", "v60_s1"), |b| {
        let map = ManhattanConfig {
            speed_mph: 25.0,
            ..ManhattanConfig::small()
        };
        let s = Scenario::paper_closed(map, 60.0, 1, 4);
        b.iter(|| run_cell(&s, Goal::Constitution));
    });
    g.bench_function(BenchmarkId::new("fig5_open_collection", "v60_s1"), |b| {
        b.iter(|| run_cell(&small_open(60.0, 1, 5), Goal::Collection));
    });
    g.bench_function(
        BenchmarkId::new("fig5_open_collection_25mph", "v60_s1"),
        |b| {
            let map = ManhattanConfig {
                speed_mph: 25.0,
                ..ManhattanConfig::small()
            };
            let s = Scenario::paper_open(map, 60.0, 1, 6);
            b.iter(|| run_cell(&s, Goal::Collection));
        },
    );
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
