//! `hotpath` — the simulation hot-path throughput baseline.
//!
//! Runs the microsimulator on paper-scale grids (5×5 and 10×10, three
//! demand levels, fixed seeds) with overtake detection enabled — the
//! heaviest per-step configuration — and writes `BENCH_hotpath.json`:
//! steps/sec, events/sec, and peak vehicles per case. This file is the
//! perf trajectory of the step hot path; regenerate it after any change
//! to `Simulator::step` or the runner's delivery path.
//!
//! The `exchange…` cases drive the full engine — checkpoints, oracle, and
//! the wire-encoding Exchange message layer — so a per-step allocation
//! reintroduced into the encode/decode path shows up as a throughput drop
//! here, not just in a profiler.
//!
//! ```text
//! hotpath [--out FILE] [--steps N] [--warmup N] [--smoke]
//!         [--baseline FILE] [--guard FILE] [--tolerance F]
//! ```
//!
//! * `--out FILE`      where to write the JSON report (default
//!   `BENCH_hotpath.json` in the current directory).
//! * `--steps N`       measured steps per case (default 2000).
//! * `--warmup N`      discarded warm-up steps per case (default 300).
//! * `--smoke`         tiny 3×3 grid, one demand level — CI smoke mode.
//! * `--baseline FILE` embed a previous report as the `baseline` field,
//!   so before/after throughput lives in one committed artifact.
//! * `--guard FILE`    regression guard: compare each measured case to the
//!   same-named case in FILE and exit nonzero if throughput fell by more
//!   than the tolerance (a flagged case is re-measured up to two more
//!   times, best-of-3, to damp scheduler noise).
//! * `--tolerance F`   allowed fractional drop for `--guard` (default 0.05).

use serde::{Deserialize, Serialize};
use std::time::Instant;
use vcount_core::CheckpointConfig;
use vcount_roadnet::builders::grid;
use vcount_sim::{replay_trace, Blackout, ChaosFault, CrashFault, FaultPlan};
use vcount_sim::{MapSpec, PatrolSpec, Runner, Scenario, SeedSpec, TransportMode};
use vcount_sim::{
    ObservationBatch, ObservationSource, RunManager, ServiceConfig, ServiceRequest, SimulatorSource,
};
use vcount_traffic::{Demand, SimConfig, Simulator};
use vcount_v2x::ChannelKind;

/// One measured (grid × demand) configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Case {
    /// Case label, e.g. `grid10x10_v60`.
    name: String,
    /// Grid columns.
    cols: usize,
    /// Grid rows.
    rows: usize,
    /// Traffic volume, percent of the daily average.
    demand_pct: f64,
    /// Traffic RNG seed.
    seed: u64,
    /// Measured steps (after warm-up).
    steps: u64,
    /// Wall-clock seconds for the measured steps.
    wall_s: f64,
    /// Simulation steps per wall-clock second.
    steps_per_sec: f64,
    /// Traffic events emitted during the measured steps.
    events: u64,
    /// Traffic events per wall-clock second.
    events_per_sec: f64,
    /// Peak vehicles simultaneously inside during the measured steps.
    peak_vehicles: usize,
    /// Worker shards driving the case (`0` for legacy unsharded cases —
    /// equivalent to 1; the sharded `…_sN` family records it explicitly).
    #[serde(default)]
    shards: usize,
}

/// The committed artifact: current cases plus an optional embedded
/// baseline from a previous run (before/after in one file).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Report {
    /// Schema tag for forward compatibility.
    schema: String,
    /// Measured steps per case.
    steps_per_case: u64,
    /// Warm-up steps discarded per case.
    warmup_steps: u64,
    /// The measured cases.
    cases: Vec<Case>,
    /// A previous report's cases (e.g. pre-optimisation), if provided.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    baseline: Option<Box<Report>>,
}

const SCHEMA: &str = "vcount-hotpath-bench/v1";

#[allow(clippy::too_many_arguments)]
fn run_case(
    name: &str,
    cols: usize,
    rows: usize,
    demand_pct: f64,
    seed: u64,
    warmup: u64,
    steps: u64,
    shards: usize,
) -> Case {
    let net = grid(cols, rows, 150.0, 2, 10.0);
    let cfg = SimConfig {
        detect_overtakes: true,
        speed_factor_range: (0.5, 1.0),
        seed,
        ..Default::default()
    };
    let mut sim = Simulator::new(net, cfg, Demand::at_volume(demand_pct));
    sim.set_detect_shards(shards);
    for _ in 0..warmup {
        sim.step();
    }
    let mut events = 0u64;
    let mut peak = 0usize;
    let start = Instant::now();
    for _ in 0..steps {
        events += sim.step().len() as u64;
        peak = peak.max(sim.civilian_population());
    }
    let wall_s = start.elapsed().as_secs_f64();
    Case {
        name: name.to_string(),
        cols,
        rows,
        demand_pct,
        seed,
        steps,
        wall_s,
        steps_per_sec: steps as f64 / wall_s.max(1e-12),
        events,
        events_per_sec: events as f64 / wall_s.max(1e-12),
        peak_vehicles: peak,
        shards,
    }
}

/// The fixed fault plan of the `…_faults` bench cases: a mid-run crash
/// with recovery, a short regional blackout, and a chaos window — so the
/// fault layer's per-step cost (image refreshes, window checks, chaos
/// draws) is measured on the same grid as the fault-free engine case.
fn bench_fault_plan() -> FaultPlan {
    FaultPlan {
        seed: 7,
        crashes: vec![CrashFault {
            node: 4,
            at_s: 60.0,
            recover_s: 120.0,
        }],
        blackouts: vec![Blackout {
            nodes: vec![1, 2],
            from_s: 30.0,
            until_s: 90.0,
        }],
        chaos: Some(ChaosFault {
            from_s: 0.0,
            until_s: 150.0,
            duplicate_p: 0.2,
            delay_p: 0.2,
            max_delay_s: 10.0,
            reorder_p: 0.2,
        }),
        image_every_s: 30.0,
    }
}

/// Like [`run_case`], but drives the full engine — one checkpoint per
/// intersection, the lossy paper channel, and every message wire-encoded
/// through the Exchange — instead of the bare simulator. `events` counts
/// protocol events; `peak_vehicles` is still the traffic peak. With
/// `faults`, the engine additionally runs the fault-injection layer.
#[allow(clippy::too_many_arguments)]
fn run_exchange_case(
    name: &str,
    cols: usize,
    rows: usize,
    demand_pct: f64,
    seed: u64,
    warmup: u64,
    steps: u64,
    faults: Option<FaultPlan>,
    shards: usize,
    fanout: bool,
) -> Case {
    let scenario = if fanout {
        fanout_scenario(cols, demand_pct, seed)
    } else {
        engine_scenario(cols, rows, demand_pct, seed)
    };
    let mut builder = Runner::builder(&scenario).shards(shards);
    if let Some(plan) = faults {
        builder = builder.faults(plan);
    }
    let mut runner = builder.build();
    for _ in 0..warmup {
        runner.step();
    }
    let events_before = runner.telemetry().events_total();
    let mut peak = 0usize;
    let start = Instant::now();
    for _ in 0..steps {
        runner.step();
        peak = peak.max(runner.simulator().civilian_population());
    }
    let wall_s = start.elapsed().as_secs_f64();
    let events = runner.telemetry().events_total() - events_before;
    Case {
        name: name.to_string(),
        cols,
        rows,
        demand_pct,
        seed,
        steps,
        wall_s,
        steps_per_sec: steps as f64 / wall_s.max(1e-12),
        events,
        events_per_sec: events as f64 / wall_s.max(1e-12),
        peak_vehicles: peak,
        shards,
    }
}

/// The engine scenario shared by the `exchange…` and `actions_replay…`
/// cases.
fn engine_scenario(cols: usize, rows: usize, demand_pct: f64, seed: u64) -> Scenario {
    Scenario {
        map: MapSpec::Grid {
            cols,
            rows,
            spacing_m: 150.0,
            lanes: 2,
            speed_mps: 10.0,
        },
        closed: true,
        sim: SimConfig {
            detect_overtakes: true,
            speed_factor_range: (0.5, 1.0),
            seed,
            ..Default::default()
        },
        demand: Demand::at_volume(demand_pct),
        protocol: CheckpointConfig::default(),
        channel: ChannelKind::PAPER,
        seeds: SeedSpec::Explicit(vec![0]),
        transport: Default::default(),
        patrol: Default::default(),
        max_time_s: f64::INFINITY,
    }
}

/// The engine scenario, but with a finite time horizon: the service case
/// ships its scenarios over the wire as JSON, and `serde_json` renders
/// non-finite floats as `null` — an infinite `max_time_s` would be
/// rejected at the trust boundary as a malformed request.
fn service_scenario(cols: usize, rows: usize, demand_pct: f64, seed: u64) -> Scenario {
    Scenario {
        max_time_s: 1.0e9,
        ..engine_scenario(cols, rows, demand_pct, seed)
    }
}

/// The message-plane stress scenario behind the `fanout…` case: a
/// directed ring (`cols` nodes, the canonical patrol-cycle map) with
/// overtake detection off (the traffic step shrinks to pure movement),
/// *every* announce and report forced through the directional relay
/// (`RelayOnly`), and a dense patrol fleet whose status snapshots — the
/// largest wire message, growing toward one entry per checkpoint — are
/// re-encoded and re-radioed at every stop. The per-step cost is
/// dominated by the Exchange (encode/enqueue/deliver/decode), which is
/// exactly the path the zero-copy plane optimises: roughly two thirds of
/// the wall clock is message-plane work, versus a few percent in the
/// `exchange…` grid cases.
fn fanout_scenario(nodes: usize, demand_pct: f64, seed: u64) -> Scenario {
    Scenario {
        map: MapSpec::DirectedRing {
            nodes,
            spacing_m: 100.0,
            speed_mps: 10.0,
        },
        closed: true,
        sim: SimConfig {
            detect_overtakes: false,
            speed_factor_range: (0.5, 1.0),
            seed,
            ..Default::default()
        },
        demand: Demand::at_volume(demand_pct),
        protocol: CheckpointConfig::default(),
        channel: ChannelKind::PAPER,
        seeds: SeedSpec::Explicit(vec![0]),
        transport: TransportMode::RelayOnly {
            relay_speed_mps: 50.0,
        },
        patrol: PatrolSpec { cars: 120 },
        max_time_s: f64::INFINITY,
    }
}

/// The `vcountd` service hot path under concurrent tenancy: `runs`
/// independent tenants of the same grid (different seeds) fed round-robin
/// through [`RunManager::handle_line`] — the exact wire path: request
/// JSON parsed, batch validated at the trust boundary, ingested, and
/// every response (streamed event lines included) re-serialized. A tenant
/// that reaches its goal is Finished and replaced by a fresh Start with
/// the next seed (tenant turnover), so the daemon does real protocol work
/// for the entire measured window. `steps` counts requests handled;
/// `events` counts event lines emitted; so `steps_per_sec` is service
/// requests/sec and `events_per_sec` is the daemon's event-line
/// throughput under multi-tenant load.
#[allow(clippy::too_many_arguments)]
fn run_service_case(
    name: &str,
    cols: usize,
    rows: usize,
    demand_pct: f64,
    seed: u64,
    warmup: u64,
    steps: u64,
    runs: usize,
) -> Case {
    struct ServiceBench {
        mgr: RunManager,
        sources: Vec<SimulatorSource>,
        batch: ObservationBatch,
        out: Vec<vcount_sim::ServiceResponse>,
        cols: usize,
        rows: usize,
        demand_pct: f64,
        next_seed: u64,
    }
    impl ServiceBench {
        fn send(&mut self, req: &ServiceRequest) -> (u64, bool) {
            let line = serde_json::to_string(req).expect("request serializes");
            self.out.clear();
            self.mgr.handle_line(&line, &mut self.out);
            let mut events = 0u64;
            let mut done = false;
            for resp in &self.out {
                // Responses are re-serialized as `serve_stream` would; the
                // black_box keeps the encoder on the clock.
                let json = serde_json::to_string(resp).expect("response serializes");
                std::hint::black_box(json.len());
                match resp {
                    vcount_sim::ServiceResponse::Event { .. } => events += 1,
                    vcount_sim::ServiceResponse::Accepted { done: d, .. } => done = *d,
                    vcount_sim::ServiceResponse::Error { message, .. } => {
                        panic!("service bench hit an error: {message}")
                    }
                    _ => {}
                }
            }
            (events, done)
        }

        /// Replaces tenant `i` with a fresh run on the next seed.
        fn recycle(&mut self, i: usize) -> u64 {
            let scen = service_scenario(self.cols, self.rows, self.demand_pct, self.next_seed);
            self.next_seed += 1;
            let (finish_events, _) = self.send(&ServiceRequest::Finish {
                run: format!("r{i}"),
                truth: self.sources[i].truth(),
            });
            let (start_events, _) = self.send(&ServiceRequest::Start {
                run: format!("r{i}"),
                scenario: Box::new(scen.clone()),
                goal: None,
                shards: 0,
                eager_decode: false,
                faults: None,
                trace: None,
            });
            self.sources[i] = SimulatorSource::from_scenario(&scen, 1);
            finish_events + start_events
        }

        /// One round = one Observe per tenant (plus turnover when a tenant
        /// completes). Returns (requests, event lines, traffic peak).
        fn drive(&mut self, rounds: u64) -> (u64, u64, usize) {
            let (mut requests, mut events, mut peak) = (0u64, 0u64, 0usize);
            for round in 0..rounds {
                for i in 0..self.sources.len() {
                    let mut batch = std::mem::take(&mut self.batch);
                    assert!(self.sources[i].next_batch(&mut batch));
                    let req = ServiceRequest::Observe {
                        run: format!("r{i}"),
                        batch,
                    };
                    let (new_events, done) = self.send(&req);
                    let ServiceRequest::Observe { batch, .. } = req else {
                        unreachable!()
                    };
                    self.batch = batch;
                    requests += 1;
                    events += new_events;
                    if done {
                        events += self.recycle(i);
                        requests += 2;
                    }
                    if round % 32 == 0 {
                        let sim = self.sources[i].simulator().expect("simulator source");
                        peak = peak.max(sim.civilian_population());
                    }
                }
            }
            (requests, events, peak)
        }
    }

    let mut bench = ServiceBench {
        mgr: RunManager::new(ServiceConfig::default()),
        sources: Vec::new(),
        batch: ObservationBatch::default(),
        out: Vec::new(),
        cols,
        rows,
        demand_pct,
        next_seed: seed,
    };
    for i in 0..runs {
        let scen = service_scenario(cols, rows, demand_pct, bench.next_seed);
        bench.next_seed += 1;
        bench.send(&ServiceRequest::Start {
            run: format!("r{i}"),
            scenario: Box::new(scen.clone()),
            goal: None,
            shards: 0,
            eager_decode: false,
            faults: None,
            trace: None,
        });
        bench.sources.push(SimulatorSource::from_scenario(&scen, 1));
    }
    bench.drive(warmup);
    let start = Instant::now();
    let (requests, events, peak) = bench.drive(steps);
    let wall_s = start.elapsed().as_secs_f64();
    Case {
        name: name.to_string(),
        cols,
        rows,
        demand_pct,
        seed,
        steps: requests,
        wall_s,
        steps_per_sec: requests as f64 / wall_s.max(1e-12),
        events,
        events_per_sec: events as f64 / wall_s.max(1e-12),
        peak_vehicles: peak,
        shards: 1,
    }
}

/// The machine-only replay hot path: records an action trace from
/// `warmup + steps` engine steps, then measures how fast the pure
/// machines re-apply it via [`replay_trace`]. `steps`/`events` count
/// replayed actions; throughput is actions per second.
#[allow(clippy::too_many_arguments)]
fn run_replay_case(
    name: &str,
    cols: usize,
    rows: usize,
    demand_pct: f64,
    seed: u64,
    warmup: u64,
    steps: u64,
) -> Case {
    let scenario = engine_scenario(cols, rows, demand_pct, seed);
    let mut runner = Runner::builder(&scenario).record_actions(true).build();
    for _ in 0..(warmup + steps) {
        runner.step();
    }
    let trace = runner
        .take_action_trace()
        .expect("recording was enabled at build time");
    let actions = trace.records.len().max(1) as u64;
    // Warm-up replay doubles as the correctness gate: a bench run that
    // silently diverged would be measuring the wrong thing.
    let first = replay_trace(&trace).expect("bench trace replays");
    assert!(
        first.digests_match && first.counts_match,
        "bench trace must replay byte-identically"
    );
    let reps = (50_000 / actions).clamp(3, 200);
    let mut applied = 0u64;
    let start = Instant::now();
    for _ in 0..reps {
        applied += replay_trace(&trace).expect("bench trace replays").actions;
    }
    let wall_s = start.elapsed().as_secs_f64();
    Case {
        name: name.to_string(),
        cols,
        rows,
        demand_pct,
        seed,
        steps: applied,
        wall_s,
        steps_per_sec: applied as f64 / wall_s.max(1e-12),
        events: applied,
        events_per_sec: applied as f64 / wall_s.max(1e-12),
        peak_vehicles: 0,
        shards: 1,
    }
}

/// One case description: plain simulator hot path, full engine, full
/// engine with the fixed fault plan, or machine-only action replay.
#[derive(Clone, Copy)]
struct CaseSpec {
    cols: usize,
    rows: usize,
    demand_pct: f64,
    engine: bool,
    faults: bool,
    replay: bool,
    /// Message-plane stress case (see [`fanout_scenario`]); implies
    /// `engine`.
    fanout: bool,
    /// `0` = legacy unsharded case (no name suffix, runs as 1 shard); a
    /// nonzero value names the case `…_sN` and drives N worker shards.
    shards: usize,
    /// Nonzero = `vcountd` service case: this many concurrent tenants fed
    /// round-robin through the wire path (see [`run_service_case`]).
    service_runs: usize,
}

impl CaseSpec {
    fn name(&self) -> String {
        let shard_suffix = if self.shards > 0 {
            format!("_s{}", self.shards)
        } else {
            String::new()
        };
        if self.service_runs > 0 {
            return format!(
                "service_runs{}_{}x{}_v{:.0}",
                self.service_runs, self.cols, self.rows, self.demand_pct
            );
        }
        if self.replay {
            return format!(
                "actions_replay{}x{}_v{:.0}{shard_suffix}",
                self.cols, self.rows, self.demand_pct
            );
        }
        if self.fanout {
            // A ring map: `cols` is the node count, `rows` is unused.
            return format!(
                "fanout_ring{}_v{:.0}{shard_suffix}",
                self.cols, self.demand_pct
            );
        }
        let prefix = if self.engine { "exchange" } else { "grid" };
        let suffix = if self.faults { "_faults" } else { "" };
        format!(
            "{prefix}{}x{}_v{:.0}{suffix}{shard_suffix}",
            self.cols, self.rows, self.demand_pct
        )
    }

    fn seed(&self) -> u64 {
        42 + self.cols as u64 * 1000 + self.demand_pct as u64
    }

    fn run(&self, warmup: u64, steps: u64) -> Case {
        let (name, seed) = (self.name(), self.seed());
        if self.service_runs > 0 {
            run_service_case(
                &name,
                self.cols,
                self.rows,
                self.demand_pct,
                seed,
                warmup,
                steps,
                self.service_runs,
            )
        } else if self.replay {
            run_replay_case(
                &name,
                self.cols,
                self.rows,
                self.demand_pct,
                seed,
                warmup,
                steps,
            )
        } else if self.engine || self.fanout {
            run_exchange_case(
                &name,
                self.cols,
                self.rows,
                self.demand_pct,
                seed,
                warmup,
                steps,
                self.faults.then(bench_fault_plan),
                self.shards.max(1),
                self.fanout,
            )
        } else {
            run_case(
                &name,
                self.cols,
                self.rows,
                self.demand_pct,
                seed,
                warmup,
                steps,
                self.shards.max(1),
            )
        }
    }
}

/// Compares measured cases to the same-named cases of a committed report;
/// a case below `1 - tolerance` of its reference throughput — in steps/sec
/// *or* events/sec — is re-measured (best-of-3) before being reported as a
/// regression. The events/sec gate matters for the engine cases: the
/// protocol event count is deterministic per scenario, so a drop in
/// events/sec is a pure wall-clock regression of the message plane, even
/// when steps/sec noise hides it. Returns the failing case names.
fn guard_against(
    reference: &Report,
    cases: &mut [Case],
    specs: &[CaseSpec],
    warmup: u64,
    steps: u64,
    tolerance: f64,
) -> Vec<String> {
    // Both throughput floors must hold; `None` = this attempt passed.
    fn breach(case: &Case, base: &Case, tolerance: f64) -> Option<String> {
        if case.steps_per_sec < base.steps_per_sec * (1.0 - tolerance) {
            return Some(format!(
                "{:.0} steps/s < floor {:.0}",
                case.steps_per_sec,
                base.steps_per_sec * (1.0 - tolerance)
            ));
        }
        if case.events_per_sec < base.events_per_sec * (1.0 - tolerance) {
            return Some(format!(
                "{:.0} events/s < floor {:.0}",
                case.events_per_sec,
                base.events_per_sec * (1.0 - tolerance)
            ));
        }
        None
    }
    let mut failures = Vec::new();
    for (case, spec) in cases.iter_mut().zip(specs) {
        let Some(base) = reference.cases.iter().find(|b| b.name == case.name) else {
            eprintln!("guard: no reference case named {} — skipping", case.name);
            continue;
        };
        for attempt in 0..2 {
            let Some(why) = breach(case, base, tolerance) else {
                break;
            };
            eprintln!(
                "guard: {} at {why} — re-measuring ({})...",
                case.name,
                attempt + 2
            );
            // Re-measure at no less than the committed report's length so a
            // short smoke run is not condemned by cold-start effects.
            let retry = spec.run(warmup.max(300), steps.max(base.steps));
            if retry.steps_per_sec > case.steps_per_sec {
                *case = retry;
            }
        }
        match breach(case, base, tolerance) {
            Some(why) => {
                eprintln!(
                    "guard: REGRESSION {}: {why} ({}% of committed steps/s, {}% of events/s)",
                    case.name,
                    (100.0 * case.steps_per_sec / base.steps_per_sec).round(),
                    (100.0 * case.events_per_sec / base.events_per_sec.max(1e-12)).round(),
                );
                failures.push(case.name.clone());
            }
            None => eprintln!(
                "guard: {} ok ({:.0}% of committed steps/s, {:.0}% of events/s)",
                case.name,
                100.0 * case.steps_per_sec / base.steps_per_sec,
                100.0 * case.events_per_sec / base.events_per_sec.max(1e-12),
            ),
        }
    }
    failures
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut out = "BENCH_hotpath.json".to_string();
    let mut steps = 2000u64;
    let mut warmup = 300u64;
    let mut smoke = false;
    let mut baseline_path: Option<String> = None;
    let mut guard_path: Option<String> = None;
    let mut tolerance = 0.05f64;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => {
                out = argv.get(i + 1).expect("--out needs a path").clone();
                i += 2;
            }
            "--steps" => {
                steps = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .expect("--steps needs a number");
                i += 2;
            }
            "--warmup" => {
                warmup = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .expect("--warmup needs a number");
                i += 2;
            }
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--baseline" => {
                baseline_path = Some(argv.get(i + 1).expect("--baseline needs a path").clone());
                i += 2;
            }
            "--guard" => {
                guard_path = Some(argv.get(i + 1).expect("--guard needs a path").clone());
                i += 2;
            }
            "--tolerance" => {
                tolerance = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .expect("--tolerance needs a fraction");
                i += 2;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: hotpath [--out FILE] [--steps N] [--warmup N] [--smoke] \
                     [--baseline FILE] [--guard FILE] [--tolerance F]"
                );
                std::process::exit(2);
            }
        }
    }

    // (cols, rows) × demand levels, fixed seeds: the paper-scale grids for
    // the bare simulator, plus one full-engine `exchange` case per grid.
    // Smoke mode measures the 3×3 pair only — the same names exist in the
    // committed full report, so `--guard` works in both modes.
    let mut specs: Vec<CaseSpec> = Vec::new();
    if smoke {
        steps = steps.min(300);
        warmup = warmup.min(50);
    } else {
        for &(cols, rows) in &[(5usize, 5usize), (10, 10)] {
            for &demand_pct in &[30.0, 60.0, 100.0] {
                specs.push(CaseSpec {
                    cols,
                    rows,
                    demand_pct,
                    engine: false,
                    faults: false,
                    replay: false,
                    fanout: false,
                    shards: 0,
                    service_runs: 0,
                });
            }
        }
    }
    for &(cols, rows) in if smoke {
        &[(3usize, 3usize)][..]
    } else {
        &[(3, 3), (5, 5), (10, 10)][..]
    } {
        for engine in [false, true] {
            // The 3×3 plain case exists in full mode too, purely so the
            // smoke guard has a committed reference.
            if !smoke && !engine && cols != 3 {
                continue; // already covered by the demand sweep above
            }
            specs.push(CaseSpec {
                cols,
                rows,
                demand_pct: 60.0,
                engine,
                faults: false,
                replay: false,
                fanout: false,
                shards: 0,
                service_runs: 0,
            });
        }
    }
    // The fault-injection engine case (both modes, same name, so the
    // smoke guard has a committed reference).
    specs.push(CaseSpec {
        cols: 3,
        rows: 3,
        demand_pct: 60.0,
        engine: true,
        faults: true,
        replay: false,
        fanout: false,
        shards: 0,
        service_runs: 0,
    });
    // The machine-only action-replay case (both modes, same name):
    // records a trace and measures pure-machine re-application throughput.
    specs.push(CaseSpec {
        cols: 3,
        rows: 3,
        demand_pct: 60.0,
        engine: true,
        faults: false,
        replay: true,
        fanout: false,
        shards: 0,
        service_runs: 0,
    });
    // The message-plane stress case (both modes, same name, so the smoke
    // guard has a committed reference): a 100-node patrol ring with
    // overtake detection off, every message through the relay, and 120
    // patrol cars radioing growing status snapshots — the Exchange
    // dominates the per-step cost, so this is the case the events/sec
    // guard gate protects.
    specs.push(CaseSpec {
        cols: 100,
        rows: 1,
        demand_pct: 20.0,
        engine: true,
        faults: false,
        replay: false,
        fanout: true,
        shards: 0,
        service_runs: 0,
    });
    // The `vcountd` service case (both modes, same name, so the smoke
    // guard has a committed reference): two concurrent tenants fed
    // round-robin through the wire path — JSON parse, trust-boundary
    // validation, ingest, and response serialization all on the clock.
    // This is the case the concurrent-daemon work is pinned by: a
    // regression in request handling or wire validation drops
    // requests/sec (steps) or event-line throughput (events) here.
    specs.push(CaseSpec {
        cols: 3,
        rows: 3,
        demand_pct: 60.0,
        engine: false,
        faults: false,
        replay: false,
        fanout: false,
        shards: 0,
        service_runs: 2,
    });
    // The sharded family: same grid and seed at 1/2/4 worker shards, so
    // the committed baseline records how region sharding scales (on a
    // single-core host the _s2/_s4 cases document the bookkeeping
    // overhead instead of a speedup). The small _s2 case runs in smoke
    // mode too, so CI guards the sharded code path on every push.
    specs.push(CaseSpec {
        cols: 3,
        rows: 3,
        demand_pct: 60.0,
        engine: false,
        faults: false,
        replay: false,
        fanout: false,
        shards: 2,
        service_runs: 0,
    });
    if !smoke {
        for &shards in &[1usize, 2, 4] {
            specs.push(CaseSpec {
                cols: 25,
                rows: 25,
                demand_pct: 60.0,
                engine: false,
                faults: false,
                replay: false,
                fanout: false,
                shards,
                service_runs: 0,
            });
        }
        specs.push(CaseSpec {
            cols: 10,
            rows: 10,
            demand_pct: 60.0,
            engine: true,
            faults: false,
            replay: false,
            fanout: false,
            shards: 4,
            service_runs: 0,
        });
    }

    let mut cases = Vec::new();
    for spec in &specs {
        eprintln!(
            "running {} ({steps} steps after {warmup} warm-up)...",
            spec.name()
        );
        let case = spec.run(warmup, steps);
        eprintln!(
            "  {:>10.0} steps/s  {:>12.0} events/s  peak {} vehicles",
            case.steps_per_sec, case.events_per_sec, case.peak_vehicles
        );
        cases.push(case);
    }

    let guard_failures = match &guard_path {
        Some(p) => {
            let text = std::fs::read_to_string(p).unwrap_or_else(|e| panic!("{p}: {e}"));
            let reference: Report =
                serde_json::from_str(&text).unwrap_or_else(|e| panic!("{p}: invalid report: {e}"));
            guard_against(&reference, &mut cases, &specs, warmup, steps, tolerance)
        }
        None => Vec::new(),
    };

    let baseline = baseline_path.map(|p| {
        let text = std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("{p}: {e}"));
        let mut prev: Report =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("{p}: invalid report: {e}"));
        prev.baseline = None; // one level of history, no recursion
        Box::new(prev)
    });

    let report = Report {
        schema: SCHEMA.to_string(),
        steps_per_case: steps,
        warmup_steps: warmup,
        cases,
        baseline,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").unwrap_or_else(|e| panic!("{out}: {e}"));
    eprintln!("wrote {out}");
    if !guard_failures.is_empty() {
        eprintln!(
            "throughput regression in {} case(s): {}",
            guard_failures.len(),
            guard_failures.join(", ")
        );
        std::process::exit(1);
    }
}
