//! `hotpath` — the simulation hot-path throughput baseline.
//!
//! Runs the microsimulator on paper-scale grids (5×5 and 10×10, three
//! demand levels, fixed seeds) with overtake detection enabled — the
//! heaviest per-step configuration — and writes `BENCH_hotpath.json`:
//! steps/sec, events/sec, and peak vehicles per case. This file is the
//! perf trajectory of the step hot path; regenerate it after any change
//! to `Simulator::step` or the runner's delivery path.
//!
//! ```text
//! hotpath [--out FILE] [--steps N] [--warmup N] [--smoke] [--baseline FILE]
//! ```
//!
//! * `--out FILE`      where to write the JSON report (default
//!   `BENCH_hotpath.json` in the current directory).
//! * `--steps N`       measured steps per case (default 2000).
//! * `--warmup N`      discarded warm-up steps per case (default 300).
//! * `--smoke`         tiny 3×3 grid, one demand level — CI smoke mode.
//! * `--baseline FILE` embed a previous report as the `baseline` field,
//!   so before/after throughput lives in one committed artifact.

use serde::{Deserialize, Serialize};
use std::time::Instant;
use vcount_roadnet::builders::grid;
use vcount_traffic::{Demand, SimConfig, Simulator};

/// One measured (grid × demand) configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Case {
    /// Case label, e.g. `grid10x10_v60`.
    name: String,
    /// Grid columns.
    cols: usize,
    /// Grid rows.
    rows: usize,
    /// Traffic volume, percent of the daily average.
    demand_pct: f64,
    /// Traffic RNG seed.
    seed: u64,
    /// Measured steps (after warm-up).
    steps: u64,
    /// Wall-clock seconds for the measured steps.
    wall_s: f64,
    /// Simulation steps per wall-clock second.
    steps_per_sec: f64,
    /// Traffic events emitted during the measured steps.
    events: u64,
    /// Traffic events per wall-clock second.
    events_per_sec: f64,
    /// Peak vehicles simultaneously inside during the measured steps.
    peak_vehicles: usize,
}

/// The committed artifact: current cases plus an optional embedded
/// baseline from a previous run (before/after in one file).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Report {
    /// Schema tag for forward compatibility.
    schema: String,
    /// Measured steps per case.
    steps_per_case: u64,
    /// Warm-up steps discarded per case.
    warmup_steps: u64,
    /// The measured cases.
    cases: Vec<Case>,
    /// A previous report's cases (e.g. pre-optimisation), if provided.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    baseline: Option<Box<Report>>,
}

const SCHEMA: &str = "vcount-hotpath-bench/v1";

fn run_case(
    name: &str,
    cols: usize,
    rows: usize,
    demand_pct: f64,
    seed: u64,
    warmup: u64,
    steps: u64,
) -> Case {
    let net = grid(cols, rows, 150.0, 2, 10.0);
    let cfg = SimConfig {
        detect_overtakes: true,
        speed_factor_range: (0.5, 1.0),
        seed,
        ..Default::default()
    };
    let mut sim = Simulator::new(net, cfg, Demand::at_volume(demand_pct));
    for _ in 0..warmup {
        sim.step();
    }
    let mut events = 0u64;
    let mut peak = 0usize;
    let start = Instant::now();
    for _ in 0..steps {
        events += sim.step().len() as u64;
        peak = peak.max(sim.civilian_population());
    }
    let wall_s = start.elapsed().as_secs_f64();
    Case {
        name: name.to_string(),
        cols,
        rows,
        demand_pct,
        seed,
        steps,
        wall_s,
        steps_per_sec: steps as f64 / wall_s.max(1e-12),
        events,
        events_per_sec: events as f64 / wall_s.max(1e-12),
        peak_vehicles: peak,
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut out = "BENCH_hotpath.json".to_string();
    let mut steps = 2000u64;
    let mut warmup = 300u64;
    let mut smoke = false;
    let mut baseline_path: Option<String> = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => {
                out = argv.get(i + 1).expect("--out needs a path").clone();
                i += 2;
            }
            "--steps" => {
                steps = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .expect("--steps needs a number");
                i += 2;
            }
            "--warmup" => {
                warmup = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .expect("--warmup needs a number");
                i += 2;
            }
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--baseline" => {
                baseline_path = Some(argv.get(i + 1).expect("--baseline needs a path").clone());
                i += 2;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: hotpath [--out FILE] [--steps N] [--warmup N] [--smoke] [--baseline FILE]");
                std::process::exit(2);
            }
        }
    }

    // (cols, rows) × demand levels, fixed seeds: the paper-scale grids.
    let grids: Vec<(usize, usize)> = if smoke {
        steps = steps.min(300);
        warmup = warmup.min(50);
        vec![(3, 3)]
    } else {
        vec![(5, 5), (10, 10)]
    };
    let demands: &[f64] = if smoke { &[60.0] } else { &[30.0, 60.0, 100.0] };

    let mut cases = Vec::new();
    for &(cols, rows) in &grids {
        for &demand_pct in demands {
            let seed = 42 + cols as u64 * 1000 + demand_pct as u64;
            let name = format!("grid{cols}x{rows}_v{demand_pct:.0}");
            eprintln!("running {name} ({steps} steps after {warmup} warm-up)...");
            let case = run_case(&name, cols, rows, demand_pct, seed, warmup, steps);
            eprintln!(
                "  {:>10.0} steps/s  {:>12.0} events/s  peak {} vehicles",
                case.steps_per_sec, case.events_per_sec, case.peak_vehicles
            );
            cases.push(case);
        }
    }

    let baseline = baseline_path.map(|p| {
        let text = std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("{p}: {e}"));
        let mut prev: Report =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("{p}: invalid report: {e}"));
        prev.baseline = None; // one level of history, no recursion
        Box::new(prev)
    });

    let report = Report {
        schema: SCHEMA.to_string(),
        steps_per_case: steps,
        warmup_steps: warmup,
        cases,
        baseline,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").unwrap_or_else(|e| panic!("{out}: {e}"));
    eprintln!("wrote {out}");
}
