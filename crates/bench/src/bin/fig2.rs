//! Figure 2 — elapsed time of Alg. 3 (constitution of stable local views)
//! in the **closed** midtown system, sweeping traffic volume × seed count.
//!
//! The paper's three panels are (a) maximum, (b) minimum, (c) average of
//! the per-checkpoint stabilization times; the CSV emits all three per
//! cell. Paper range: 9–30 minutes.
//!
//! Run: `cargo run --release -p vcount-bench --bin fig2`
//! (`VCOUNT_GRID=full` for the paper's full 10×10 grid.)

use vcount_bench::{
    assert_exactness, emit_panel_csv, grid_from_env, panel_range, run_panel, Panel, System,
};
use vcount_sim::Goal;

fn main() {
    let grid = grid_from_env();
    let panel = Panel {
        system: System::Closed,
        speed_mph: 15.0,
        goal: Goal::Constitution,
    };
    eprintln!(
        "fig2: closed midtown, Alg.3 constitution, {} cells x {} reps",
        grid.volumes.len() * grid.seed_counts.len(),
        grid.replicates
    );
    let results = run_panel(panel, &grid);
    emit_panel_csv("fig2", "abc", panel, &results);
    assert_exactness("fig2", &results);
    if let Some((lo, hi)) = panel_range(panel, &results) {
        println!("fig2 headline: constitution time {lo:.1}..{hi:.1} min (paper: 9..30 min)");
    }
}
