//! Figure 4 — open-system "complete status" times (Alg. 5) and the
//! speed-limit experiment:
//!
//! * (a) time to reach the complete status in the **open** midtown at
//!   15 mph (paper: similar to Fig. 2(c), slightly slower);
//! * (b) the same at 25 mph (paper: 34–40 % quicker than (a));
//! * (c) the **closed** system (Alg. 3) at 25 mph for comparison (paper:
//!   up to 58 % quicker than Fig. 2(c)).
//!
//! Run: `cargo run --release -p vcount-bench --bin fig4`

use vcount_bench::{
    assert_exactness, emit_panel_csv, grid_from_env, max_speedup_pct, mean_speedup_pct,
    panel_range, run_panel, Panel, System,
};
use vcount_sim::Goal;

fn main() {
    let grid = grid_from_env();
    let open15 = Panel {
        system: System::Open,
        speed_mph: 15.0,
        goal: Goal::Constitution,
    };
    let open25 = Panel {
        speed_mph: 25.0,
        ..open15
    };
    let closed15 = Panel {
        system: System::Closed,
        ..open15
    };
    let closed25 = Panel {
        speed_mph: 25.0,
        ..closed15
    };

    eprintln!("fig4: open/closed complete-status times at 15 vs 25 mph");
    let r_open15 = run_panel(open15, &grid);
    let r_open25 = run_panel(open25, &grid);
    let r_closed15 = run_panel(closed15, &grid);
    let r_closed25 = run_panel(closed25, &grid);

    emit_panel_csv("fig4", "a_open15", open15, &r_open15);
    emit_panel_csv("fig4", "b_open25", open25, &r_open25);
    emit_panel_csv("fig4", "c_closed25", closed25, &r_closed25);
    for (name, r) in [
        ("a_open15", &r_open15),
        ("b_open25", &r_open25),
        ("c_closed25", &r_closed25),
    ] {
        assert_exactness(&format!("fig4/{name}"), r);
    }

    if let (Some((alo, ahi)), Some((clo, chi))) = (
        panel_range(open15, &r_open15),
        panel_range(closed15, &r_closed15),
    ) {
        println!(
            "fig4(a) vs fig2(c): open {alo:.1}..{ahi:.1} min vs closed {clo:.1}..{chi:.1} min \
             (paper: open slightly slower, difference limited)"
        );
    }
    if let Some(s) = mean_speedup_pct(open15, &r_open15, open25, &r_open25) {
        println!(
            "fig4(b): 25 mph open is {s:.0}% quicker on average than 15 mph \
             (paper: 34-40% quicker)"
        );
    }
    if let Some(s) = max_speedup_pct(closed15, &r_closed15, closed25, &r_closed25) {
        println!(
            "fig4(c): 25 mph closed is up to {s:.0}% quicker than 15 mph \
             (paper: up to 58% quicker)"
        );
    }
}
