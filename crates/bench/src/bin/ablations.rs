//! Ablations over the design choices DESIGN.md §4 calls out, plus the
//! baseline comparison motivating the paper (Section II).
//!
//! 1. `adjust_mode` — net-inversion vs the paper's literal per-event
//!    overtake rule (the latter miscounts on overtake-then-re-overtake).
//! 2. `loss` — accuracy vs channel failure rate 0–60 %, with and without
//!    the Alg. 3 line-3 compensation.
//! 3. `baseline` — naive interval counting and image-recognition dedup vs
//!    the synchronized protocol, across traffic volumes.
//! 4. `transport` — vehicle-carried vs relay-only collection latency.
//!
//! Run: `cargo run --release -p vcount-bench --bin ablations`

use vcount_core::CheckpointConfig;
use vcount_roadnet::builders::ManhattanConfig;
use vcount_sim::{Goal, MapSpec, Runner, Scenario, SeedSpec, TransportMode};
use vcount_v2x::{AdjustMode, ChannelKind};

fn overtake_heavy(seed: u64, adjust_mode: AdjustMode) -> Scenario {
    let mut s = Scenario::paper_closed(ManhattanConfig::small(), 80.0, 1, seed);
    s.protocol.adjust_mode = adjust_mode;
    s.sim.detect_overtakes = adjust_mode == AdjustMode::PerEvent;
    s.sim.speed_factor_range = (0.4, 1.0); // big speed spread: many overtakes
    s.sim.lane_change_prob = 0.5;
    s
}

fn main() {
    println!("== ablation 1: overtake adjustment mode ==");
    println!("mode,seed,count_error,violations,overtake_adjustments");
    for seed in 0..4u64 {
        for mode in [AdjustMode::NetInversion, AdjustMode::PerEvent] {
            let s = overtake_heavy(seed, mode);
            let mut r = Runner::builder(&s).build();
            let m = r.run(Goal::Constitution, s.max_time_s);
            let err = m
                .global_count
                .map(|g| g - m.true_population as i64)
                .unwrap_or(i64::MIN);
            println!(
                "{mode:?},{seed},{err:+},{},{:+}",
                m.oracle_violations, m.overtake_adjustments
            );
        }
    }
    println!("(net-inversion must be exact; per-event may drift — the paper's");
    println!(" literal lines 7-8 leave a stuck -1 after overtake-then-re-overtake)\n");

    println!("== ablation 2: channel loss rate x compensation ==");
    println!("p_fail,compensated,count_error,violations,handoff_failures");
    for p in [0.0, 0.15, 0.30, 0.45, 0.60] {
        for compensate in [true, false] {
            let mut s = Scenario::paper_closed(ManhattanConfig::small(), 60.0, 1, 7);
            s.channel = ChannelKind::Bernoulli(p);
            s.protocol = CheckpointConfig {
                compensate_loss: compensate,
                ..s.protocol
            };
            let mut r = Runner::builder(&s).build();
            let m = r.run(Goal::Constitution, s.max_time_s);
            let err = m
                .global_count
                .map(|g| g - m.true_population as i64)
                .unwrap_or(i64::MIN);
            println!(
                "{p:.2},{compensate},{err:+},{},{}",
                m.oracle_violations, m.handoff_failures
            );
        }
    }
    println!("(without Alg.3 line 3, every failed handoff leaks one double-count)\n");

    println!("== ablation 3: unsynchronized baselines vs the protocol ==");
    println!("volume_pct,truth,protocol,naive_interval,class_dedup");
    for vol in [20.0, 60.0, 100.0] {
        let s = Scenario::paper_closed(ManhattanConfig::small(), vol, 1, 11);
        let mut r = Runner::builder(&s).build();
        let m = r.run(Goal::Constitution, s.max_time_s);
        println!(
            "{vol:.0},{},{},{},{}",
            m.true_population,
            m.global_count.unwrap_or(-1),
            m.baseline_naive,
            m.baseline_dedup
        );
    }
    println!("(naive double-counts by ~the revisit factor; dedup collapses look-alikes)\n");

    println!("== ablation 4: collection transport ==");
    println!("transport,collection_min,violations");
    for (name, transport) in [
        (
            "vehicle+relay",
            TransportMode::VehicleWithRelayFallback {
                relay_speed_mps: 50.0,
            },
        ),
        (
            "relay-only",
            TransportMode::RelayOnly {
                relay_speed_mps: 50.0,
            },
        ),
    ] {
        let mut s = Scenario::paper_closed(ManhattanConfig::small(), 60.0, 1, 13);
        s.transport = transport;
        s.seeds = SeedSpec::Explicit(vec![0]);
        // Keep the identical map/traffic so only the transport varies.
        s.map = MapSpec::Manhattan(ManhattanConfig {
            speed_mph: 15.0,
            ..ManhattanConfig::small()
        });
        let mut r = Runner::builder(&s).build();
        let m = r.run(Goal::Collection, s.max_time_s);
        println!(
            "{name},{:.1},{}",
            m.collection_done_s.map(|t| t / 60.0).unwrap_or(f64::NAN),
            m.oracle_violations
        );
    }
    println!("(vehicle-carried reports pay traffic latency; the directional relay");
    println!(" pays distance/speed — both collect the same exact totals)");
}
