//! Observation 6 — sink deployment cost.
//!
//! The paper notes that adding seeds speeds counting only until their
//! spanning trees evenly cover the region, and that deploying **every
//! border checkpoint as a global data sink** does not pay for itself: the
//! delay to collect the global snapshot stays considerable while the
//! deployment cost explodes. "Our results suggest the cost-effective
//! deployment with only one single sink."
//!
//! This binary reproduces that comparison on the open midtown system:
//! seed count 1, 5, 10 (random) vs the all-border deployment, reporting
//! complete-status time, collection time, and the number of sinks bought.
//!
//! Run: `cargo run --release -p vcount-bench --bin obs6`

use vcount_bench::midtown;
use vcount_sim::{Goal, Runner, Scenario, SeedSpec};

fn main() {
    println!("deployment,sinks,complete_status_min,collection_min,violations");
    let volume = 60.0;
    for (name, seeds) in [
        ("random-1", SeedSpec::Random { count: 1 }),
        ("random-5", SeedSpec::Random { count: 5 }),
        ("random-10", SeedSpec::Random { count: 10 }),
        ("all-border", SeedSpec::AllBorder),
    ] {
        let mut s = Scenario::paper_open(midtown(15.0), volume, 1, 64);
        s.seeds = seeds;
        let mut r = Runner::builder(&s).build();
        let m = r.run(Goal::Collection, s.max_time_s);
        println!(
            "{name},{},{:.1},{:.1},{}",
            r.seeds().len(),
            m.constitution_done_s.map(|t| t / 60.0).unwrap_or(f64::NAN),
            m.collection_done_s.map(|t| t / 60.0).unwrap_or(f64::NAN),
            m.oracle_violations
        );
    }
    println!();
    println!("(the paper's conclusion: the all-border deployment multiplies sink");
    println!(" cost without a proportional speed-up — a single sink is the");
    println!(" cost-effective choice)");
}
