//! Figure 3 — time until the seed(s) hold the global view (Alg. 3
//! constitution + Alg. 4 collection) in the **closed** midtown system.
//!
//! Panels (a/b/c) are max/min/avg across replicate runs of the seed
//! collection-complete time. Paper range: 20–50 minutes.
//!
//! Run: `cargo run --release -p vcount-bench --bin fig3`

use vcount_bench::{
    assert_exactness, emit_panel_csv, grid_from_env, panel_range, run_panel, Panel, System,
};
use vcount_sim::Goal;

fn main() {
    let grid = grid_from_env();
    let panel = Panel {
        system: System::Closed,
        speed_mph: 15.0,
        goal: Goal::Collection,
    };
    eprintln!(
        "fig3: closed midtown, Alg.3+4 collection, {} cells x {} reps",
        grid.volumes.len() * grid.seed_counts.len(),
        grid.replicates
    );
    let results = run_panel(panel, &grid);
    emit_panel_csv("fig3", "abc", panel, &results);
    assert_exactness("fig3", &results);
    if let Some((lo, hi)) = panel_range(panel, &results) {
        println!("fig3 headline: global-view time {lo:.1}..{hi:.1} min (paper: 20..50 min)");
    }
}
