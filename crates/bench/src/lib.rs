//! Shared harness behind the figure-regeneration binaries (`fig2`…`fig5`,
//! `ablations`) and the criterion benches.
//!
//! Every binary sweeps the paper's evaluation grid — traffic volume
//! 10–100 % × seed count 1–10 on the synthetic midtown map, 30 % lossy
//! V2X — and prints one CSV row per grid cell plus the paper-comparison
//! headlines. Environment knobs:
//!
//! * `VCOUNT_GRID=full|default|quick` — grid resolution (default:
//!   `default` = 4×4 cells; `full` = the paper's 10×10).
//! * `VCOUNT_REPS=<n>` — replicates per cell (default 2).
//! * `VCOUNT_MAP=paper|small` — midtown size (default `paper` = 12
//!   avenues × 37 streets).

#![warn(missing_docs)]

use vcount_roadnet::builders::ManhattanConfig;
use vcount_sim::{sweep, Cell, CellResult, Goal, Scenario, Summary, SweepConfig};

/// Which system (Alg. stack) a figure panel measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// Closed system, Alg. 3 (+ Alg. 4 when collecting).
    Closed,
    /// Open system, Alg. 5 (+ Alg. 4 when collecting).
    Open,
}

/// One figure panel configuration.
#[derive(Debug, Clone, Copy)]
pub struct Panel {
    /// Closed or open system.
    pub system: System,
    /// Speed limit in mph (paper: 15, and 25 for the speed-up panels).
    pub speed_mph: f64,
    /// What the elapsed time measures.
    pub goal: Goal,
}

/// The midtown map at a given speed limit, sized per `VCOUNT_MAP`.
pub fn midtown(speed_mph: f64) -> ManhattanConfig {
    let base = match std::env::var("VCOUNT_MAP").as_deref() {
        Ok("small") => ManhattanConfig::small(),
        _ => ManhattanConfig::default(),
    };
    ManhattanConfig { speed_mph, ..base }
}

/// The sweep grid per `VCOUNT_GRID` / `VCOUNT_REPS`.
pub fn grid_from_env() -> SweepConfig {
    let reps = std::env::var("VCOUNT_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    match std::env::var("VCOUNT_GRID").as_deref() {
        Ok("full") => SweepConfig::paper_grid(reps),
        Ok("quick") => SweepConfig {
            replicates: reps,
            ..SweepConfig::quick()
        },
        _ => SweepConfig {
            volumes: vec![10.0, 40.0, 70.0, 100.0],
            seed_counts: vec![1, 4, 7, 10],
            replicates: reps,
            threads: 0,
        },
    }
}

/// Builds the scenario for one grid cell of a panel.
pub fn panel_scenario(panel: Panel, cell: Cell, rep: u64) -> Scenario {
    let map = midtown(panel.speed_mph);
    let rng_seed = rep
        .wrapping_mul(1_000_003)
        .wrapping_add((cell.volume_pct as u64) << 8)
        .wrapping_add(cell.seeds as u64);
    match panel.system {
        System::Closed => Scenario::paper_closed(map, cell.volume_pct, cell.seeds, rng_seed),
        System::Open => Scenario::paper_open(map, cell.volume_pct, cell.seeds, rng_seed),
    }
}

/// Runs one panel over the grid.
pub fn run_panel(panel: Panel, grid: &SweepConfig) -> Vec<CellResult> {
    sweep(grid, panel.goal, |cell, rep| {
        panel_scenario(panel, cell, rep)
    })
}

/// The per-cell headline value of a panel: mean elapsed minutes of the
/// panel's goal metric.
pub fn cell_mean_minutes(panel: Panel, r: &CellResult) -> Option<f64> {
    let s = match panel.goal {
        Goal::Constitution => r.constitution_min,
        Goal::Collection => r.collection_min,
    };
    s.map(|s| s.mean)
}

/// Prints the CSV block for a panel: one row per cell with the
/// figure-style statistics (max/min/avg across the stated population).
pub fn emit_panel_csv(figure: &str, panel_name: &str, panel: Panel, results: &[CellResult]) {
    println!("figure,panel,volume_pct,seeds,max_min,min_min,avg_min,violations,unconverged");
    for r in results {
        let s = match panel.goal {
            Goal::Constitution => r.per_checkpoint_min,
            Goal::Collection => r.collection_min,
        }
        .unwrap_or(Summary {
            min: f64::NAN,
            max: f64::NAN,
            mean: f64::NAN,
            n: 0,
        });
        println!(
            "{figure},{panel_name},{:.0},{},{:.2},{:.2},{:.2},{},{}",
            r.cell.volume_pct, r.cell.seeds, s.max, s.min, s.mean, r.violations, r.unconverged
        );
    }
}

/// Range of the mean metric across all cells of a panel, in minutes.
pub fn panel_range(panel: Panel, results: &[CellResult]) -> Option<(f64, f64)> {
    let vals: Vec<f64> = results
        .iter()
        .filter_map(|r| cell_mean_minutes(panel, r))
        .collect();
    let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
    let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (!vals.is_empty()).then_some((min, max))
}

/// Mean speed-up of `fast` over `slow` across matching cells, as a
/// percentage time reduction (the paper's "X% quicker").
pub fn mean_speedup_pct(
    panel_slow: Panel,
    slow: &[CellResult],
    panel_fast: Panel,
    fast: &[CellResult],
) -> Option<f64> {
    let mut ratios = Vec::new();
    for (a, b) in slow.iter().zip(fast.iter()) {
        debug_assert_eq!(a.cell.volume_pct, b.cell.volume_pct);
        debug_assert_eq!(a.cell.seeds, b.cell.seeds);
        if let (Some(ta), Some(tb)) = (
            cell_mean_minutes(panel_slow, a),
            cell_mean_minutes(panel_fast, b),
        ) {
            if ta > 0.0 {
                ratios.push(100.0 * (1.0 - tb / ta));
            }
        }
    }
    (!ratios.is_empty()).then(|| ratios.iter().sum::<f64>() / ratios.len() as f64)
}

/// Maximum speed-up across cells (the paper reports "up to X% quicker").
pub fn max_speedup_pct(
    panel_slow: Panel,
    slow: &[CellResult],
    panel_fast: Panel,
    fast: &[CellResult],
) -> Option<f64> {
    let mut best: Option<f64> = None;
    for (a, b) in slow.iter().zip(fast.iter()) {
        if let (Some(ta), Some(tb)) = (
            cell_mean_minutes(panel_slow, a),
            cell_mean_minutes(panel_fast, b),
        ) {
            if ta > 0.0 {
                let s = 100.0 * (1.0 - tb / ta);
                best = Some(best.map_or(s, |b: f64| b.max(s)));
            }
        }
    }
    best
}

/// Asserts the paper's headline correctness claim over a panel's results:
/// zero oracle violations in every cell.
pub fn assert_exactness(figure: &str, results: &[CellResult]) {
    let violations: usize = results.iter().map(|r| r.violations).sum();
    assert_eq!(
        violations, 0,
        "{figure}: the paper's no-mis/double-counting claim failed"
    );
    println!(
        "{figure}: 0 oracle violations across {} cells — counting is exact",
        results.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_default_is_4x4() {
        std::env::remove_var("VCOUNT_GRID");
        let g = grid_from_env();
        assert_eq!(g.volumes.len() * g.seed_counts.len(), 16);
    }

    #[test]
    fn panel_scenarios_differ_by_system() {
        let p_open = Panel {
            system: System::Open,
            speed_mph: 15.0,
            goal: Goal::Constitution,
        };
        let p_closed = Panel {
            system: System::Closed,
            speed_mph: 15.0,
            goal: Goal::Constitution,
        };
        let cell = Cell {
            volume_pct: 50.0,
            seeds: 2,
        };
        assert!(!panel_scenario(p_open, cell, 0).closed);
        assert!(panel_scenario(p_closed, cell, 0).closed);
    }

    #[test]
    fn speedup_math() {
        // Hand-built results: slow 10 min vs fast 5 min = 50% quicker.
        let mk = |mins: f64| CellResult {
            cell: Cell {
                volume_pct: 50.0,
                seeds: 1,
            },
            constitution_min: Summary::of([mins]),
            collection_min: None,
            per_checkpoint_min: None,
            violations: 0,
            unconverged: 0,
            degraded: 0,
            telemetry: Default::default(),
            failed: None,
            runs: vec![],
        };
        let p = Panel {
            system: System::Closed,
            speed_mph: 15.0,
            goal: Goal::Constitution,
        };
        let s = mean_speedup_pct(p, &[mk(10.0)], p, &[mk(5.0)]).unwrap();
        assert!((s - 50.0).abs() < 1e-9);
        assert_eq!(max_speedup_pct(p, &[mk(10.0)], p, &[mk(5.0)]), Some(50.0));
    }
}
