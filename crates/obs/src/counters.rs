//! Run-level telemetry: event counters plus wall-clock phase timings.
//!
//! These count *protocol events* as seen by a sink. The wire-level
//! traffic counters (messages encoded, decoded, skipped without a
//! decode under the lazy payload plane, payload bytes) live with the
//! exchange that owns the messages and surface through the runner's
//! `RunTelemetry` instead.

use crate::event::{EventRecord, ProtocolEvent};
use crate::sink::EventSink;
use std::time::Duration;

/// Aggregate event counts for one run. Every field is the number of events
/// of the corresponding kind the sink saw.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Checkpoint activations (seeds included).
    pub activations: u64,
    /// Checkpoints whose counting stabilized.
    pub stabilizations: u64,
    /// Label handoff attempts.
    pub labels_emitted: u64,
    /// Acknowledged handoffs (= directions done labelling).
    pub handoff_acks: u64,
    /// Failed handoffs — each is a retry with the next vehicle.
    pub handoff_retries: u64,
    /// −1 loss compensations applied.
    pub compensations: u64,
    /// Inbound directions stopped by an arriving label.
    pub inbound_stops: u64,
    /// Phase-5 vehicle counts.
    pub vehicles_counted: u64,
    /// Finalized overtake adjustments (events, not net magnitude).
    pub overtake_adjustments: u64,
    /// Subtree reports sent toward predecessors (re-reports included).
    pub reports_sent: u64,
    /// Child reports superseded by a higher sequence number.
    pub reports_superseded: u64,
    /// Patrol status snapshots relayed to checkpoints.
    pub patrol_relays: u64,
    /// Border entries counted (+1 live interaction).
    pub border_entries: u64,
    /// Border exits counted (−1 live interaction).
    pub border_exits: u64,
    /// Injected checkpoint crashes.
    pub crashes: u64,
    /// Crashed checkpoints that rejoined from their state image.
    pub recoveries: u64,
    /// Messages dropped because their destination (or holder) was down.
    pub fault_messages_dropped: u64,
    /// Handoffs forced to fail by a regional radio blackout.
    pub blackout_failures: u64,
    /// Open segment watches closed by their origin's crash.
    pub fault_watches_dropped: u64,
}

impl Counters {
    /// Total events seen.
    pub fn total(&self) -> u64 {
        self.activations
            + self.stabilizations
            + self.labels_emitted
            + self.handoff_acks
            + self.handoff_retries
            + self.compensations
            + self.inbound_stops
            + self.vehicles_counted
            + self.overtake_adjustments
            + self.reports_sent
            + self.reports_superseded
            + self.patrol_relays
            + self.border_entries
            + self.border_exits
            + self.crashes
            + self.recoveries
            + self.fault_messages_dropped
            + self.blackout_failures
            + self.fault_watches_dropped
    }

    /// Field-wise sum, for aggregating replicates of a sweep cell.
    pub fn merge(&mut self, other: &Counters) {
        self.activations += other.activations;
        self.stabilizations += other.stabilizations;
        self.labels_emitted += other.labels_emitted;
        self.handoff_acks += other.handoff_acks;
        self.handoff_retries += other.handoff_retries;
        self.compensations += other.compensations;
        self.inbound_stops += other.inbound_stops;
        self.vehicles_counted += other.vehicles_counted;
        self.overtake_adjustments += other.overtake_adjustments;
        self.reports_sent += other.reports_sent;
        self.reports_superseded += other.reports_superseded;
        self.patrol_relays += other.patrol_relays;
        self.border_entries += other.border_entries;
        self.border_exits += other.border_exits;
        self.crashes += other.crashes;
        self.recoveries += other.recoveries;
        self.fault_messages_dropped += other.fault_messages_dropped;
        self.blackout_failures += other.blackout_failures;
        self.fault_watches_dropped += other.fault_watches_dropped;
    }
}

/// A phase of the driving loop, for wall-clock attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Advancing the traffic microsimulation.
    TrafficStep = 0,
    /// Driving checkpoint state machines from the event stream.
    Protocol = 1,
    /// Delivering due relay / patrol-carried messages.
    Relay = 2,
}

/// Number of [`Phase`] variants.
const PHASES: usize = 3;

/// Aggregates [`Counters`] from the event stream and accepts per-phase
/// wall-clock timings from the driving loop.
#[derive(Debug, Clone, Default)]
pub struct CountersSink {
    counters: Counters,
    phase_ns: [u64; PHASES],
}

impl CountersSink {
    /// An empty sink.
    pub fn new() -> Self {
        CountersSink::default()
    }

    /// The aggregated counts so far.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Adds wall-clock time spent in `phase`.
    pub fn add_phase(&mut self, phase: Phase, elapsed: Duration) {
        self.phase_ns[phase as usize] =
            self.phase_ns[phase as usize].saturating_add(elapsed.as_nanos() as u64);
    }

    /// Wall-clock seconds attributed to `phase` so far.
    pub fn phase_secs(&self, phase: Phase) -> f64 {
        self.phase_ns[phase as usize] as f64 * 1e-9
    }
}

impl EventSink for CountersSink {
    fn record(&mut self, rec: &EventRecord) {
        let c = &mut self.counters;
        match rec.event {
            ProtocolEvent::CheckpointActivated { .. } => c.activations += 1,
            ProtocolEvent::CheckpointStable { .. } => c.stabilizations += 1,
            ProtocolEvent::LabelEmitted { .. } => c.labels_emitted += 1,
            ProtocolEvent::LabelHandoffAcked { .. } => c.handoff_acks += 1,
            ProtocolEvent::LabelHandoffFailed { .. } => c.handoff_retries += 1,
            ProtocolEvent::LossCompensation { .. } => c.compensations += 1,
            ProtocolEvent::InboundStopped { .. } => c.inbound_stops += 1,
            ProtocolEvent::VehicleCounted { .. } => c.vehicles_counted += 1,
            ProtocolEvent::OvertakeAdjustment { .. } => c.overtake_adjustments += 1,
            ProtocolEvent::ReportSent { .. } => c.reports_sent += 1,
            ProtocolEvent::ReportSuperseded { .. } => c.reports_superseded += 1,
            ProtocolEvent::PatrolStatusRelay { .. } => c.patrol_relays += 1,
            ProtocolEvent::BorderEntry { .. } => c.border_entries += 1,
            ProtocolEvent::BorderExit { .. } => c.border_exits += 1,
            ProtocolEvent::CheckpointCrashed { .. } => c.crashes += 1,
            ProtocolEvent::CheckpointRecovered { .. } => c.recoveries += 1,
            ProtocolEvent::FaultMessageDropped { .. } => c.fault_messages_dropped += 1,
            ProtocolEvent::ChannelBlackout { .. } => c.blackout_failures += 1,
            ProtocolEvent::FaultWatchDropped { .. } => c.fault_watches_dropped += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(event: ProtocolEvent) -> EventRecord {
        EventRecord {
            time_s: 0.0,
            seed_epoch: 0,
            event,
        }
    }

    #[test]
    fn counts_by_kind() {
        let mut sink = CountersSink::new();
        sink.record(&rec(ProtocolEvent::LabelEmitted {
            node: 0,
            edge: 0,
            vehicle: 1,
        }));
        sink.record(&rec(ProtocolEvent::LabelHandoffFailed {
            node: 0,
            edge: 0,
            vehicle: 1,
        }));
        sink.record(&rec(ProtocolEvent::LabelEmitted {
            node: 0,
            edge: 0,
            vehicle: 2,
        }));
        sink.record(&rec(ProtocolEvent::LabelHandoffAcked {
            node: 0,
            edge: 0,
            vehicle: 2,
        }));
        let c = sink.counters();
        assert_eq!(c.labels_emitted, 2);
        assert_eq!(c.handoff_retries, 1);
        assert_eq!(c.handoff_acks, 1);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = Counters {
            reports_sent: 2,
            ..Default::default()
        };
        let b = Counters {
            reports_sent: 3,
            compensations: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.reports_sent, 5);
        assert_eq!(a.compensations, 1);
    }

    #[test]
    fn phase_timings_accumulate() {
        let mut sink = CountersSink::new();
        sink.add_phase(Phase::TrafficStep, Duration::from_millis(5));
        sink.add_phase(Phase::TrafficStep, Duration::from_millis(7));
        sink.add_phase(Phase::Relay, Duration::from_millis(1));
        assert!((sink.phase_secs(Phase::TrafficStep) - 0.012).abs() < 1e-9);
        assert!((sink.phase_secs(Phase::Relay) - 0.001).abs() < 1e-9);
        assert_eq!(sink.phase_secs(Phase::Protocol), 0.0);
    }
}
