//! Event sinks: where stamped protocol events go.

use crate::event::{EventFilter, EventRecord};
use std::collections::VecDeque;
use std::io::Write;

/// A consumer of stamped protocol events. The runner fans every record into
/// each configured sink in emission order; sinks must not assume anything
/// about batching.
pub trait EventSink {
    /// Consumes one record.
    fn record(&mut self, rec: &EventRecord);

    /// Flushes any buffered output (end of run). The default does nothing.
    fn flush(&mut self) {}
}

/// The zero-cost default: discards everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    #[inline]
    fn record(&mut self, _rec: &EventRecord) {}
}

/// Keeps the most recent `capacity` records for post-mortem inspection —
/// cheap enough to leave always-on, rich enough to reconstruct a vehicle's
/// attribution chain after an oracle violation.
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    capacity: usize,
    buf: VecDeque<EventRecord>,
}

impl RingBufferSink {
    /// A ring holding at most `capacity` records (at least 1).
    pub fn new(capacity: usize) -> Self {
        RingBufferSink {
            capacity: capacity.max(1),
            buf: VecDeque::new(),
        }
    }

    /// The retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &EventRecord> {
        self.buf.iter()
    }

    /// Records retained so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The retained records mentioning `vehicle`, oldest first — the
    /// vehicle's attribution chain as far as the ring remembers it.
    pub fn for_vehicle(&self, vehicle: u64) -> Vec<EventRecord> {
        self.buf
            .iter()
            .filter(|r| r.event.vehicle() == Some(vehicle))
            .copied()
            .collect()
    }
}

impl EventSink for RingBufferSink {
    fn record(&mut self, rec: &EventRecord) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(*rec);
    }
}

/// Streams records as JSON Lines (one object per line) to any writer,
/// optionally restricted to a set of event kinds.
pub struct JsonlSink {
    out: Box<dyn Write + Send>,
    filter: EventFilter,
    /// First write error, if any (subsequent records are dropped).
    error: Option<std::io::Error>,
    /// Flush after this many written records (0 = only on explicit `flush`).
    flush_every: usize,
    /// Records written since the last flush.
    since_flush: usize,
}

impl JsonlSink {
    /// Streams every event kind to `out`.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        JsonlSink::filtered(out, EventFilter::all())
    }

    /// Streams only kinds admitted by `filter` to `out`.
    pub fn filtered(out: Box<dyn Write + Send>, filter: EventFilter) -> Self {
        JsonlSink {
            out,
            filter,
            error: None,
            flush_every: 0,
            since_flush: 0,
        }
    }

    /// Flushes the writer after every `n` written records, so a live
    /// consumer tailing the stream (service mode, `tail -f` on a trace)
    /// sees events promptly instead of at buffer-fill boundaries.
    ///
    /// `n = 0` restores the default: flush only at end of run.
    pub fn flush_every(mut self, n: usize) -> Self {
        self.flush_every = n;
        self
    }

    /// Creates the file at `path` (truncating) and streams into it.
    pub fn to_file(path: &std::path::Path, filter: EventFilter) -> std::io::Result<Self> {
        let f = std::fs::File::create(path)?;
        Ok(JsonlSink::filtered(
            Box::new(std::io::BufWriter::new(f)),
            filter,
        ))
    }

    /// The first I/O error hit while writing, if any.
    pub fn error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("filter", &self.filter)
            .field("error", &self.error)
            .finish_non_exhaustive()
    }
}

impl EventSink for JsonlSink {
    fn record(&mut self, rec: &EventRecord) {
        if self.error.is_some() || !self.filter.allows(rec.event.kind()) {
            return;
        }
        let line = rec.to_json();
        if let Err(e) = self
            .out
            .write_all(line.as_bytes())
            .and_then(|()| self.out.write_all(b"\n"))
        {
            self.error = Some(e);
            return;
        }
        if self.flush_every > 0 {
            self.since_flush += 1;
            if self.since_flush >= self.flush_every {
                self.flush();
            }
        }
    }

    fn flush(&mut self) {
        self.since_flush = 0;
        if let Err(e) = self.out.flush() {
            self.error.get_or_insert(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, ProtocolEvent};
    use std::sync::{Arc, Mutex};

    fn rec(t: f64, vehicle: u64) -> EventRecord {
        EventRecord {
            time_s: t,
            seed_epoch: 1,
            event: ProtocolEvent::VehicleCounted {
                node: 0,
                edge: 0,
                vehicle,
            },
        }
    }

    #[test]
    fn ring_keeps_only_the_newest() {
        let mut ring = RingBufferSink::new(3);
        for i in 0..5 {
            ring.record(&rec(i as f64, i));
        }
        assert_eq!(ring.len(), 3);
        let times: Vec<f64> = ring.iter().map(|r| r.time_s).collect();
        assert_eq!(times, vec![2.0, 3.0, 4.0]);
        assert_eq!(ring.for_vehicle(3).len(), 1);
        assert!(ring.for_vehicle(0).is_empty(), "evicted");
    }

    /// A `Write` handle into shared memory, for asserting streamed output.
    #[derive(Clone)]
    struct Shared(Arc<Mutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_streams_one_object_per_line_with_filter() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let mut sink = JsonlSink::filtered(
            Box::new(Shared(buf.clone())),
            EventFilter::of([EventKind::VehicleCounted]),
        );
        sink.record(&rec(1.0, 10));
        sink.record(&EventRecord {
            time_s: 2.0,
            seed_epoch: 1,
            event: ProtocolEvent::CheckpointStable { node: 4 },
        });
        sink.record(&rec(3.0, 11));
        sink.flush();
        assert!(sink.error().is_none());
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "filtered out the stable event: {text}");
        assert!(lines[0].contains("\"vehicle\":10"));
        assert!(lines[1].contains("\"vehicle\":11"));
    }

    /// A `Write` handle that counts how often it is flushed.
    #[derive(Clone)]
    struct FlushCounter(Arc<Mutex<usize>>);

    impl Write for FlushCounter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            *self.0.lock().unwrap() += 1;
            Ok(())
        }
    }

    #[test]
    fn jsonl_flush_interval_flushes_every_n_records() {
        let flushes = Arc::new(Mutex::new(0usize));
        let mut sink = JsonlSink::new(Box::new(FlushCounter(flushes.clone()))).flush_every(3);
        for i in 0..7 {
            sink.record(&rec(i as f64, i));
        }
        // Two full groups of three; the seventh record is still buffered.
        assert_eq!(*flushes.lock().unwrap(), 2);
        sink.flush();
        assert_eq!(*flushes.lock().unwrap(), 3);
    }

    #[test]
    fn jsonl_default_flushes_only_on_demand() {
        let flushes = Arc::new(Mutex::new(0usize));
        let mut sink = JsonlSink::new(Box::new(FlushCounter(flushes.clone())));
        for i in 0..100 {
            sink.record(&rec(i as f64, i));
        }
        assert_eq!(*flushes.lock().unwrap(), 0, "default is end-of-run only");
        sink.flush();
        assert_eq!(*flushes.lock().unwrap(), 1);
    }

    #[test]
    fn null_sink_is_a_no_op() {
        let mut s = NullSink;
        s.record(&rec(0.0, 0));
        s.flush();
    }
}
