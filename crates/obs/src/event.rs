//! The protocol event taxonomy.
//!
//! Ids are primitive (`u32` checkpoints/edges, `u64` vehicles) so the crate
//! stays dependency-free; emitters convert their typed ids at the boundary.

use std::fmt;
use std::str::FromStr;

/// One observable protocol transition. See DESIGN.md §6bis for how each
/// variant maps onto the paper's algorithms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProtocolEvent {
    /// A checkpoint turned active: phase 1 at a seed, phase 3 elsewhere.
    CheckpointActivated {
        /// The checkpoint.
        node: u32,
        /// Its predecessor `p(u)` (`None` at a seed).
        pred: Option<u32>,
        /// The seed whose wave activated it.
        wave_seed: u32,
        /// Whether this is a seed activation.
        is_seed: bool,
    },
    /// Phase 6: every inbound direction of the checkpoint has stopped; the
    /// local count `c(u)` is final.
    CheckpointStable {
        /// The checkpoint.
        node: u32,
    },
    /// Phase 2 / Alg. 3: a pending label was handed to a departing vehicle
    /// (the attempt; followed by an ack or a failure).
    LabelEmitted {
        /// The labelling checkpoint.
        node: u32,
        /// The outbound direction.
        edge: u32,
        /// The carrier vehicle.
        vehicle: u64,
    },
    /// The handoff was acknowledged: exactly one label is in flight on the
    /// direction, which is done labelling.
    LabelHandoffAcked {
        /// The labelling checkpoint.
        node: u32,
        /// The outbound direction.
        edge: u32,
        /// The carrier vehicle.
        vehicle: u64,
    },
    /// The lossy exchange failed (Alg. 3 line 3); the direction stays
    /// pending and retries with the next vehicle.
    LabelHandoffFailed {
        /// The labelling checkpoint.
        node: u32,
        /// The outbound direction.
        edge: u32,
        /// The vehicle that escaped unlabelled.
        vehicle: u64,
    },
    /// The −1 compensation for a failed handoff to a vehicle the deployment
    /// counts (applied only when compensation is enabled).
    LossCompensation {
        /// The compensating checkpoint.
        node: u32,
        /// The outbound direction of the failed handoff.
        edge: u32,
        /// The escaping vehicle (it may be counted again downstream).
        vehicle: u64,
    },
    /// Phase 4: an arriving label stopped counting on an inbound direction.
    InboundStopped {
        /// The checkpoint.
        node: u32,
        /// The inbound direction that stopped.
        edge: u32,
    },
    /// Phase 5: an unlabelled matching vehicle was counted (+1 to `c(u)`).
    VehicleCounted {
        /// The counting checkpoint.
        node: u32,
        /// The inbound direction it arrived on.
        edge: u32,
        /// The counted vehicle.
        vehicle: u64,
    },
    /// Alg. 3 lines 5–8: a finalized segment watch adjusted `c(u)`.
    OvertakeAdjustment {
        /// The adjusted checkpoint.
        node: u32,
        /// Vehicles that fell behind the label after being counted (+1
        /// each).
        plus: u32,
        /// Vehicles that jumped ahead of the label uncounted (−1 each).
        minus: u32,
    },
    /// Alg. 2/4: a subtree total left for the predecessor.
    ReportSent {
        /// The reporting checkpoint.
        node: u32,
        /// The predecessor it reports to.
        to: u32,
        /// The subtree total.
        total: i64,
        /// The report's sequence number (re-reports increment it).
        seq: u32,
    },
    /// A child's earlier report was superseded by one with a higher
    /// sequence number (late loss compensation or overtake adjustment).
    ReportSuperseded {
        /// The receiving checkpoint.
        node: u32,
        /// The child whose report was replaced.
        child: u32,
        /// Sequence number of the replaced report.
        old_seq: u32,
        /// Sequence number of the replacement.
        new_seq: u32,
    },
    /// Theorem 3 integration: a patrol car relayed its status snapshot to a
    /// checkpoint.
    PatrolStatusRelay {
        /// The receiving checkpoint.
        node: u32,
        /// The patrol car.
        vehicle: u64,
        /// Checkpoints covered by the snapshot.
        observed: u32,
    },
    /// Alg. 5: +1 live interaction, a matching vehicle entered the region
    /// at an active border checkpoint.
    BorderEntry {
        /// The border checkpoint.
        node: u32,
        /// The entering vehicle.
        vehicle: u64,
    },
    /// Alg. 5: −1 live interaction, a matching vehicle left the region at
    /// an active border checkpoint.
    BorderExit {
        /// The border checkpoint.
        node: u32,
        /// The leaving vehicle.
        vehicle: u64,
    },
    /// Fault injection: a checkpoint crashed, dropping its volatile message
    /// queues and (when `state_lost`) the protocol state accrued since its
    /// last state image.
    CheckpointCrashed {
        /// The crashed checkpoint.
        node: u32,
        /// Whether the recovery image is stale (state accrued since the
        /// last image is lost).
        state_lost: bool,
    },
    /// Fault injection: a crashed checkpoint rejoined from its last state
    /// image.
    CheckpointRecovered {
        /// The recovered checkpoint.
        node: u32,
    },
    /// Fault injection: messages addressed to (or queued at) a down
    /// checkpoint were dropped.
    FaultMessageDropped {
        /// The down checkpoint.
        node: u32,
        /// How many messages were lost.
        messages: u32,
    },
    /// Fault injection: a regional radio blackout forced a handoff attempt
    /// to fail without consulting the loss model.
    ChannelBlackout {
        /// The checkpoint whose handoff was suppressed.
        node: u32,
        /// The outbound direction of the suppressed handoff.
        edge: u32,
        /// The vehicle that escaped unlabelled.
        vehicle: u64,
    },
    /// Fault injection: open segment watches originated by a crashed
    /// checkpoint were closed (their pending overtake adjustments are
    /// lost — an explicit degradation).
    FaultWatchDropped {
        /// The crashed origin checkpoint.
        node: u32,
        /// How many watches closed.
        watches: u32,
    },
}

impl ProtocolEvent {
    /// The event's kind tag.
    pub fn kind(&self) -> EventKind {
        match self {
            ProtocolEvent::CheckpointActivated { .. } => EventKind::CheckpointActivated,
            ProtocolEvent::CheckpointStable { .. } => EventKind::CheckpointStable,
            ProtocolEvent::LabelEmitted { .. } => EventKind::LabelEmitted,
            ProtocolEvent::LabelHandoffAcked { .. } => EventKind::LabelHandoffAcked,
            ProtocolEvent::LabelHandoffFailed { .. } => EventKind::LabelHandoffFailed,
            ProtocolEvent::LossCompensation { .. } => EventKind::LossCompensation,
            ProtocolEvent::InboundStopped { .. } => EventKind::InboundStopped,
            ProtocolEvent::VehicleCounted { .. } => EventKind::VehicleCounted,
            ProtocolEvent::OvertakeAdjustment { .. } => EventKind::OvertakeAdjustment,
            ProtocolEvent::ReportSent { .. } => EventKind::ReportSent,
            ProtocolEvent::ReportSuperseded { .. } => EventKind::ReportSuperseded,
            ProtocolEvent::PatrolStatusRelay { .. } => EventKind::PatrolStatusRelay,
            ProtocolEvent::BorderEntry { .. } => EventKind::BorderEntry,
            ProtocolEvent::BorderExit { .. } => EventKind::BorderExit,
            ProtocolEvent::CheckpointCrashed { .. } => EventKind::CheckpointCrashed,
            ProtocolEvent::CheckpointRecovered { .. } => EventKind::CheckpointRecovered,
            ProtocolEvent::FaultMessageDropped { .. } => EventKind::FaultMessageDropped,
            ProtocolEvent::ChannelBlackout { .. } => EventKind::ChannelBlackout,
            ProtocolEvent::FaultWatchDropped { .. } => EventKind::FaultWatchDropped,
        }
    }

    /// The checkpoint the event happened at.
    pub fn node(&self) -> u32 {
        match *self {
            ProtocolEvent::CheckpointActivated { node, .. }
            | ProtocolEvent::CheckpointStable { node }
            | ProtocolEvent::LabelEmitted { node, .. }
            | ProtocolEvent::LabelHandoffAcked { node, .. }
            | ProtocolEvent::LabelHandoffFailed { node, .. }
            | ProtocolEvent::LossCompensation { node, .. }
            | ProtocolEvent::InboundStopped { node, .. }
            | ProtocolEvent::VehicleCounted { node, .. }
            | ProtocolEvent::OvertakeAdjustment { node, .. }
            | ProtocolEvent::ReportSent { node, .. }
            | ProtocolEvent::ReportSuperseded { node, .. }
            | ProtocolEvent::PatrolStatusRelay { node, .. }
            | ProtocolEvent::BorderEntry { node, .. }
            | ProtocolEvent::BorderExit { node, .. }
            | ProtocolEvent::CheckpointCrashed { node, .. }
            | ProtocolEvent::CheckpointRecovered { node }
            | ProtocolEvent::FaultMessageDropped { node, .. }
            | ProtocolEvent::ChannelBlackout { node, .. }
            | ProtocolEvent::FaultWatchDropped { node, .. } => node,
        }
    }

    /// The vehicle involved, when the event names one.
    pub fn vehicle(&self) -> Option<u64> {
        match *self {
            ProtocolEvent::LabelEmitted { vehicle, .. }
            | ProtocolEvent::LabelHandoffAcked { vehicle, .. }
            | ProtocolEvent::LabelHandoffFailed { vehicle, .. }
            | ProtocolEvent::LossCompensation { vehicle, .. }
            | ProtocolEvent::VehicleCounted { vehicle, .. }
            | ProtocolEvent::PatrolStatusRelay { vehicle, .. }
            | ProtocolEvent::BorderEntry { vehicle, .. }
            | ProtocolEvent::BorderExit { vehicle, .. }
            | ProtocolEvent::ChannelBlackout { vehicle, .. } => Some(vehicle),
            _ => None,
        }
    }
}

/// Fieldless tag for every [`ProtocolEvent`] variant, used by trace filters
/// and counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// [`ProtocolEvent::CheckpointActivated`].
    CheckpointActivated = 0,
    /// [`ProtocolEvent::CheckpointStable`].
    CheckpointStable = 1,
    /// [`ProtocolEvent::LabelEmitted`].
    LabelEmitted = 2,
    /// [`ProtocolEvent::LabelHandoffAcked`].
    LabelHandoffAcked = 3,
    /// [`ProtocolEvent::LabelHandoffFailed`].
    LabelHandoffFailed = 4,
    /// [`ProtocolEvent::LossCompensation`].
    LossCompensation = 5,
    /// [`ProtocolEvent::InboundStopped`].
    InboundStopped = 6,
    /// [`ProtocolEvent::VehicleCounted`].
    VehicleCounted = 7,
    /// [`ProtocolEvent::OvertakeAdjustment`].
    OvertakeAdjustment = 8,
    /// [`ProtocolEvent::ReportSent`].
    ReportSent = 9,
    /// [`ProtocolEvent::ReportSuperseded`].
    ReportSuperseded = 10,
    /// [`ProtocolEvent::PatrolStatusRelay`].
    PatrolStatusRelay = 11,
    /// [`ProtocolEvent::BorderEntry`].
    BorderEntry = 12,
    /// [`ProtocolEvent::BorderExit`].
    BorderExit = 13,
    /// [`ProtocolEvent::CheckpointCrashed`].
    CheckpointCrashed = 14,
    /// [`ProtocolEvent::CheckpointRecovered`].
    CheckpointRecovered = 15,
    /// [`ProtocolEvent::FaultMessageDropped`].
    FaultMessageDropped = 16,
    /// [`ProtocolEvent::ChannelBlackout`].
    ChannelBlackout = 17,
    /// [`ProtocolEvent::FaultWatchDropped`].
    FaultWatchDropped = 18,
}

/// All kinds, in declaration order.
pub const ALL_KINDS: [EventKind; 19] = [
    EventKind::CheckpointActivated,
    EventKind::CheckpointStable,
    EventKind::LabelEmitted,
    EventKind::LabelHandoffAcked,
    EventKind::LabelHandoffFailed,
    EventKind::LossCompensation,
    EventKind::InboundStopped,
    EventKind::VehicleCounted,
    EventKind::OvertakeAdjustment,
    EventKind::ReportSent,
    EventKind::ReportSuperseded,
    EventKind::PatrolStatusRelay,
    EventKind::BorderEntry,
    EventKind::BorderExit,
    EventKind::CheckpointCrashed,
    EventKind::CheckpointRecovered,
    EventKind::FaultMessageDropped,
    EventKind::ChannelBlackout,
    EventKind::FaultWatchDropped,
];

impl EventKind {
    /// The kind's stable snake_case name (the `"kind"` field of the JSONL
    /// export and the accepted `--trace-filter` spelling).
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::CheckpointActivated => "checkpoint_activated",
            EventKind::CheckpointStable => "checkpoint_stable",
            EventKind::LabelEmitted => "label_emitted",
            EventKind::LabelHandoffAcked => "label_handoff_acked",
            EventKind::LabelHandoffFailed => "label_handoff_failed",
            EventKind::LossCompensation => "loss_compensation",
            EventKind::InboundStopped => "inbound_stopped",
            EventKind::VehicleCounted => "vehicle_counted",
            EventKind::OvertakeAdjustment => "overtake_adjustment",
            EventKind::ReportSent => "report_sent",
            EventKind::ReportSuperseded => "report_superseded",
            EventKind::PatrolStatusRelay => "patrol_status_relay",
            EventKind::BorderEntry => "border_entry",
            EventKind::BorderExit => "border_exit",
            EventKind::CheckpointCrashed => "checkpoint_crashed",
            EventKind::CheckpointRecovered => "checkpoint_recovered",
            EventKind::FaultMessageDropped => "fault_message_dropped",
            EventKind::ChannelBlackout => "channel_blackout",
            EventKind::FaultWatchDropped => "fault_watch_dropped",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for EventKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ALL_KINDS
            .into_iter()
            .find(|k| k.as_str() == s)
            .ok_or_else(|| format!("unknown event kind `{s}`"))
    }
}

/// A stamped event: what happened, when (simulated seconds), and in which
/// run (the seed epoch — the scenario's RNG seed — so merged traces from a
/// sweep stay attributable).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventRecord {
    /// Simulated time of the transition, seconds.
    pub time_s: f64,
    /// The run's RNG seed.
    pub seed_epoch: u64,
    /// The transition.
    pub event: ProtocolEvent,
}

impl EventRecord {
    /// One-line JSON encoding (no trailing newline). Hand-rolled so the
    /// crate stays dependency-free; every value is a number, boolean or a
    /// fixed snake_case string, so no escaping is needed.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut s = String::with_capacity(128);
        let _ = write!(
            s,
            "{{\"t\":{},\"epoch\":{},\"kind\":\"{}\"",
            json_f64(self.time_s),
            self.seed_epoch,
            self.event.kind()
        );
        let _ = write!(s, ",\"node\":{}", self.event.node());
        match self.event {
            ProtocolEvent::CheckpointActivated {
                pred,
                wave_seed,
                is_seed,
                ..
            } => {
                match pred {
                    Some(p) => {
                        let _ = write!(s, ",\"pred\":{p}");
                    }
                    None => s.push_str(",\"pred\":null"),
                }
                let _ = write!(s, ",\"wave_seed\":{wave_seed},\"is_seed\":{is_seed}");
            }
            ProtocolEvent::CheckpointStable { .. } => {}
            ProtocolEvent::LabelEmitted { edge, vehicle, .. }
            | ProtocolEvent::LabelHandoffAcked { edge, vehicle, .. }
            | ProtocolEvent::LabelHandoffFailed { edge, vehicle, .. }
            | ProtocolEvent::LossCompensation { edge, vehicle, .. } => {
                let _ = write!(s, ",\"edge\":{edge},\"vehicle\":{vehicle}");
            }
            ProtocolEvent::InboundStopped { edge, .. } => {
                let _ = write!(s, ",\"edge\":{edge}");
            }
            ProtocolEvent::VehicleCounted { edge, vehicle, .. } => {
                let _ = write!(s, ",\"edge\":{edge},\"vehicle\":{vehicle}");
            }
            ProtocolEvent::OvertakeAdjustment { plus, minus, .. } => {
                let _ = write!(s, ",\"plus\":{plus},\"minus\":{minus}");
            }
            ProtocolEvent::ReportSent { to, total, seq, .. } => {
                let _ = write!(s, ",\"to\":{to},\"total\":{total},\"seq\":{seq}");
            }
            ProtocolEvent::ReportSuperseded {
                child,
                old_seq,
                new_seq,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"child\":{child},\"old_seq\":{old_seq},\"new_seq\":{new_seq}"
                );
            }
            ProtocolEvent::PatrolStatusRelay {
                vehicle, observed, ..
            } => {
                let _ = write!(s, ",\"vehicle\":{vehicle},\"observed\":{observed}");
            }
            ProtocolEvent::BorderEntry { vehicle, .. }
            | ProtocolEvent::BorderExit { vehicle, .. } => {
                let _ = write!(s, ",\"vehicle\":{vehicle}");
            }
            ProtocolEvent::CheckpointCrashed { state_lost, .. } => {
                let _ = write!(s, ",\"state_lost\":{state_lost}");
            }
            ProtocolEvent::CheckpointRecovered { .. } => {}
            ProtocolEvent::FaultMessageDropped { messages, .. } => {
                let _ = write!(s, ",\"messages\":{messages}");
            }
            ProtocolEvent::ChannelBlackout { edge, vehicle, .. } => {
                let _ = write!(s, ",\"edge\":{edge},\"vehicle\":{vehicle}");
            }
            ProtocolEvent::FaultWatchDropped { watches, .. } => {
                let _ = write!(s, ",\"watches\":{watches}");
            }
        }
        s.push('}');
        s
    }
}

/// Formats an `f64` as a JSON number (non-finite values, which stamped
/// times never are, degrade to `null`).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        // `{}` prints the shortest representation that round-trips, which
        // is valid JSON for finite values.
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// A set of [`EventKind`]s, as a bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventFilter(u32);

impl EventFilter {
    /// Allows every kind.
    pub fn all() -> Self {
        EventFilter(u32::MAX)
    }

    /// Allows nothing.
    pub fn none() -> Self {
        EventFilter(0)
    }

    /// A filter allowing exactly `kinds`.
    pub fn of(kinds: impl IntoIterator<Item = EventKind>) -> Self {
        let mut f = EventFilter::none();
        for k in kinds {
            f.0 |= 1 << (k as u8);
        }
        f
    }

    /// Parses a comma-separated kind list (`"report_sent,inbound_stopped"`).
    /// An empty string means "all kinds".
    pub fn parse(spec: &str) -> Result<Self, String> {
        if spec.trim().is_empty() {
            return Ok(EventFilter::all());
        }
        let mut f = EventFilter::none();
        for part in spec.split(',') {
            let kind: EventKind = part.trim().parse()?;
            f.0 |= 1 << (kind as u8);
        }
        Ok(f)
    }

    /// Whether the filter admits `kind`.
    pub fn allows(self, kind: EventKind) -> bool {
        self.0 & (1 << (kind as u8)) != 0
    }
}

impl Default for EventFilter {
    fn default() -> Self {
        EventFilter::all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for k in ALL_KINDS {
            assert_eq!(k.as_str().parse::<EventKind>().unwrap(), k);
        }
        assert!("no_such_kind".parse::<EventKind>().is_err());
    }

    #[test]
    fn filter_parses_lists_and_rejects_typos() {
        let f = EventFilter::parse("report_sent, inbound_stopped").unwrap();
        assert!(f.allows(EventKind::ReportSent));
        assert!(f.allows(EventKind::InboundStopped));
        assert!(!f.allows(EventKind::VehicleCounted));
        assert!(EventFilter::parse("report_sent,bogus").is_err());
        assert!(EventFilter::parse("")
            .unwrap()
            .allows(EventKind::BorderExit));
    }

    #[test]
    fn filter_covers_kinds_beyond_sixteen() {
        // Fault kinds sit at bit positions 14–17; a u16 mask would silently
        // drop the last two.
        let f = EventFilter::of([EventKind::FaultMessageDropped, EventKind::ChannelBlackout]);
        assert!(f.allows(EventKind::ChannelBlackout));
        assert!(f.allows(EventKind::FaultMessageDropped));
        assert!(!f.allows(EventKind::CheckpointCrashed));
        for k in ALL_KINDS {
            assert!(EventFilter::all().allows(k));
        }
    }

    #[test]
    fn fault_events_encode_their_fields() {
        let rec = EventRecord {
            time_s: 60.0,
            seed_epoch: 3,
            event: ProtocolEvent::CheckpointCrashed {
                node: 4,
                state_lost: true,
            },
        };
        assert_eq!(
            rec.to_json(),
            "{\"t\":60,\"epoch\":3,\"kind\":\"checkpoint_crashed\",\"node\":4,\"state_lost\":true}"
        );
        let rec = EventRecord {
            time_s: 61.5,
            seed_epoch: 3,
            event: ProtocolEvent::ChannelBlackout {
                node: 2,
                edge: 7,
                vehicle: 19,
            },
        };
        assert_eq!(
            rec.to_json(),
            "{\"t\":61.5,\"epoch\":3,\"kind\":\"channel_blackout\",\"node\":2,\"edge\":7,\"vehicle\":19}"
        );
        assert_eq!(rec.event.vehicle(), Some(19));
    }

    #[test]
    fn json_lines_carry_kind_and_ids() {
        let rec = EventRecord {
            time_s: 12.5,
            seed_epoch: 7,
            event: ProtocolEvent::VehicleCounted {
                node: 3,
                edge: 9,
                vehicle: 41,
            },
        };
        let js = rec.to_json();
        assert_eq!(
            js,
            "{\"t\":12.5,\"epoch\":7,\"kind\":\"vehicle_counted\",\"node\":3,\"edge\":9,\"vehicle\":41}"
        );
    }

    #[test]
    fn json_activation_encodes_null_pred_at_seeds() {
        let rec = EventRecord {
            time_s: 0.0,
            seed_epoch: 1,
            event: ProtocolEvent::CheckpointActivated {
                node: 0,
                pred: None,
                wave_seed: 0,
                is_seed: true,
            },
        };
        assert!(rec.to_json().contains("\"pred\":null"));
        assert!(rec.to_json().contains("\"is_seed\":true"));
    }

    #[test]
    fn accessors_expose_node_and_vehicle() {
        let ev = ProtocolEvent::LabelHandoffFailed {
            node: 5,
            edge: 2,
            vehicle: 99,
        };
        assert_eq!(ev.node(), 5);
        assert_eq!(ev.vehicle(), Some(99));
        assert_eq!(ev.kind(), EventKind::LabelHandoffFailed);
        assert_eq!(ProtocolEvent::CheckpointStable { node: 1 }.vehicle(), None);
    }
}
