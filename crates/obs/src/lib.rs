//! # vcount-obs — protocol observability: structured events, sinks, telemetry
//!
//! Every paper-relevant transition of the counting protocol — activations,
//! label handoffs and their failures, direction stops, overtake
//! adjustments, loss compensations, report traffic, patrol relays, border
//! interaction — is modelled as a [`ProtocolEvent`]. The pure state machine
//! in `vcount-core` emits them alongside its transport `Command`s; the
//! runner in `vcount-sim` stamps each with simulated time and the run's
//! seed epoch (an [`EventRecord`]) and fans it into any number of
//! [`EventSink`]s.
//!
//! Shipped sinks:
//!
//! * [`NullSink`] — discards everything; the zero-cost default;
//! * [`RingBufferSink`] — keeps the last N records for post-mortems (the
//!   runner dumps a vehicle's attribution chain from one on an oracle
//!   violation);
//! * [`JsonlSink`] — streams records as JSON Lines to any writer,
//!   optionally filtered by [`EventKind`];
//! * [`CountersSink`] — aggregates run-level telemetry ([`Counters`]) plus
//!   per-phase wall-clock timings of the driving loop ([`Phase`]).
//!
//! The crate is dependency-free by design (ids are plain `u32`/`u64`, JSON
//! is hand-rolled) so it can sit below every other crate in the workspace,
//! including `vcount-core`, without widening the core's footprint.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod counters;
pub mod event;
pub mod sink;

pub use counters::{Counters, CountersSink, Phase};
pub use event::{EventFilter, EventKind, EventRecord, ProtocolEvent};
pub use sink::{EventSink, JsonlSink, NullSink, RingBufferSink};
