//! Over-the-air protocol messages and their wire codec.
//!
//! Vehicles store and forward three kinds of information (Section III-B/C):
//!
//! * the checkpoint activation [`Label`] — the "one-bit on/off information"
//!   plus the metadata our implementation needs (origin, origin's
//!   predecessor, seed) to stop the right inbound counter and to discover
//!   spanning-tree children (see DESIGN.md §4);
//! * a counting [`Report`] riding back up the spanning tree (Alg. 2/4);
//! * a [`PatrolStatus`] snapshot carried by police patrol cars (Theorem 3).
//!
//! The codec is a small hand-rolled binary format over [`bytes`] — the same
//! shape a real DSRC payload would take — with full round-trip tests.

use crate::ids::VehicleId;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use vcount_roadnet::NodeId;

/// The activation label of Alg. 1 phase 2. Exactly one label is emitted per
/// outbound direction per checkpoint activation; it rides on the first
/// vehicle joining that direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Label {
    /// The checkpoint that emitted the label.
    pub origin: NodeId,
    /// `p(origin)` at emission time (`None` at a seed). Receivers use this
    /// to learn whether they are the origin's spanning-tree parent.
    pub origin_pred: Option<NodeId>,
    /// The seed whose wave this label belongs to. With multiple seeds "all
    /// trees use the same label" — the flag is informational; receivers
    /// treat labels from all seeds identically.
    pub seed: NodeId,
}

/// A stabilized subtree count being carried from a checkpoint to its
/// predecessor (Alg. 2 phase 2 / Alg. 4 phase 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Report {
    /// Reporting checkpoint.
    pub from: NodeId,
    /// Destination: `p(from)`.
    pub to: NodeId,
    /// `c(from) + Σ_{v ∈ children(from)} subtree(v)` — may be negative
    /// transiently under lossy-handoff compensation.
    pub subtree_total: i64,
    /// Monotonic per-reporter sequence number; the destination keeps only
    /// the freshest report per child (Alg. 4 re-reporting).
    pub seq: u32,
}

/// A predecessor announcement relayed checkpoint-to-checkpoint (Alg. 2
/// phase 1 under the relay/patrol transports): `from` tells `to` that its
/// spanning-tree predecessor is `pred`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Announce {
    /// Destination checkpoint.
    pub to: NodeId,
    /// Announcing checkpoint.
    pub from: NodeId,
    /// The announced predecessor of `from` (`None` at a seed).
    pub pred: Option<NodeId>,
}

/// Checkpoint statuses observed by a patrol car along its cycle
/// (Theorem 3): for each visited checkpoint, whether it was active.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PatrolStatus {
    /// `(checkpoint, was_active)` in visit order; later entries supersede
    /// earlier ones for the same checkpoint.
    pub observations: Vec<(NodeId, bool)>,
}

impl PatrolStatus {
    /// Records an observation, superseding any earlier one for `node`.
    pub fn observe(&mut self, node: NodeId, active: bool) {
        self.observations.retain(|(n, _)| *n != node);
        self.observations.push((node, active));
    }

    /// The last observed status of `node`, if any.
    pub fn status_of(&self, node: NodeId) -> Option<bool> {
        self.observations
            .iter()
            .rev()
            .find(|(n, _)| *n == node)
            .map(|(_, a)| *a)
    }
}

/// A V2V/V2I message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Message {
    /// Activation label (checkpoint → vehicle → next checkpoint).
    Label(Label),
    /// Spanning-tree count report (checkpoint → vehicle → predecessor).
    Report(Report),
    /// Patrol status snapshot (patrol car → checkpoint).
    Patrol(PatrolStatus),
    /// Handoff acknowledgement (vehicle → checkpoint), carrying the radio
    /// identity that confirmed receipt.
    Ack {
        /// The acknowledging vehicle.
        vehicle: VehicleId,
    },
    /// Predecessor announcement (checkpoint → relay/patrol → checkpoint).
    Announce(Announce),
}

/// Errors from [`Message::decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the message was complete.
    Truncated,
    /// Unknown message tag byte.
    BadTag(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "message truncated"),
            DecodeError::BadTag(t) => write!(f, "unknown message tag {t:#04x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Wire tag of [`Message::Label`] payloads.
pub const TAG_LABEL: u8 = 1;
/// Wire tag of [`Message::Report`] payloads.
pub const TAG_REPORT: u8 = 2;
/// Wire tag of [`Message::Patrol`] payloads.
pub const TAG_PATROL: u8 = 3;
/// Wire tag of [`Message::Ack`] payloads.
pub const TAG_ACK: u8 = 4;
/// Wire tag of [`Message::Announce`] payloads.
pub const TAG_ANNOUNCE: u8 = 5;
const NODE_NONE: u32 = u32::MAX;

impl Message {
    /// Encodes the message into a fresh buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16);
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Appends the wire form of the message to `buf`. Generic over
    /// [`BufMut`] so arena-style writers (e.g. a payload slab's `Vec<u8>`
    /// slots) can encode in place without an intermediate copy.
    pub fn encode_into<B: BufMut>(&self, buf: &mut B) {
        match self {
            Message::Label(l) => {
                buf.put_u8(TAG_LABEL);
                buf.put_u32(l.origin.0);
                buf.put_u32(l.origin_pred.map_or(NODE_NONE, |n| n.0));
                buf.put_u32(l.seed.0);
            }
            Message::Report(r) => {
                buf.put_u8(TAG_REPORT);
                buf.put_u32(r.from.0);
                buf.put_u32(r.to.0);
                buf.put_i64(r.subtree_total);
                buf.put_u32(r.seq);
            }
            Message::Patrol(p) => {
                buf.put_u8(TAG_PATROL);
                buf.put_u32(p.observations.len() as u32);
                for (n, active) in &p.observations {
                    buf.put_u32(n.0);
                    buf.put_u8(u8::from(*active));
                }
            }
            Message::Ack { vehicle } => {
                buf.put_u8(TAG_ACK);
                buf.put_u64(vehicle.0);
            }
            Message::Announce(a) => {
                buf.put_u8(TAG_ANNOUNCE);
                buf.put_u32(a.to.0);
                buf.put_u32(a.from.0);
                buf.put_u32(a.pred.map_or(NODE_NONE, |n| n.0));
            }
        }
    }

    /// Decodes one message from the front of `buf`, advancing it. Generic
    /// over [`Buf`] so hot paths can decode straight from a borrowed
    /// `&[u8]` without first copying the payload into a [`Bytes`].
    pub fn decode<B: Buf>(buf: &mut B) -> Result<Message, DecodeError> {
        if buf.remaining() < 1 {
            return Err(DecodeError::Truncated);
        }
        let tag = buf.get_u8();
        match tag {
            TAG_LABEL => {
                if buf.remaining() < 12 {
                    return Err(DecodeError::Truncated);
                }
                let origin = NodeId(buf.get_u32());
                let pred_raw = buf.get_u32();
                let seed = NodeId(buf.get_u32());
                Ok(Message::Label(Label {
                    origin,
                    origin_pred: (pred_raw != NODE_NONE).then_some(NodeId(pred_raw)),
                    seed,
                }))
            }
            TAG_REPORT => {
                if buf.remaining() < 20 {
                    return Err(DecodeError::Truncated);
                }
                Ok(Message::Report(Report {
                    from: NodeId(buf.get_u32()),
                    to: NodeId(buf.get_u32()),
                    subtree_total: buf.get_i64(),
                    seq: buf.get_u32(),
                }))
            }
            TAG_PATROL => {
                if buf.remaining() < 4 {
                    return Err(DecodeError::Truncated);
                }
                let n = buf.get_u32() as usize;
                let mut observations = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    if buf.remaining() < 5 {
                        return Err(DecodeError::Truncated);
                    }
                    let node = NodeId(buf.get_u32());
                    let active = buf.get_u8() != 0;
                    observations.push((node, active));
                }
                Ok(Message::Patrol(PatrolStatus { observations }))
            }
            TAG_ACK => {
                if buf.remaining() < 8 {
                    return Err(DecodeError::Truncated);
                }
                Ok(Message::Ack {
                    vehicle: VehicleId(buf.get_u64()),
                })
            }
            TAG_ANNOUNCE => {
                if buf.remaining() < 12 {
                    return Err(DecodeError::Truncated);
                }
                let to = NodeId(buf.get_u32());
                let from = NodeId(buf.get_u32());
                let pred_raw = buf.get_u32();
                Ok(Message::Announce(Announce {
                    to,
                    from,
                    pred: (pred_raw != NODE_NONE).then_some(NodeId(pred_raw)),
                }))
            }
            other => Err(DecodeError::BadTag(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: Message) {
        let mut wire = m.encode();
        let decoded = Message::decode(&mut wire).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(wire.remaining(), 0, "trailing bytes after decode");
    }

    #[test]
    fn label_roundtrip() {
        roundtrip(Message::Label(Label {
            origin: NodeId(7),
            origin_pred: Some(NodeId(3)),
            seed: NodeId(0),
        }));
        roundtrip(Message::Label(Label {
            origin: NodeId(0),
            origin_pred: None,
            seed: NodeId(0),
        }));
    }

    #[test]
    fn report_roundtrip_with_negative_total() {
        roundtrip(Message::Report(Report {
            from: NodeId(12),
            to: NodeId(4),
            subtree_total: -3,
            seq: 17,
        }));
    }

    #[test]
    fn announce_roundtrip() {
        roundtrip(Message::Announce(Announce {
            to: NodeId(5),
            from: NodeId(9),
            pred: Some(NodeId(2)),
        }));
        roundtrip(Message::Announce(Announce {
            to: NodeId(5),
            from: NodeId(9),
            pred: None,
        }));
    }

    #[test]
    fn patrol_roundtrip() {
        let mut p = PatrolStatus::default();
        p.observe(NodeId(1), true);
        p.observe(NodeId(2), false);
        p.observe(NodeId(1), false); // supersedes
        roundtrip(Message::Patrol(p.clone()));
        assert_eq!(p.status_of(NodeId(1)), Some(false));
        assert_eq!(p.status_of(NodeId(2)), Some(false));
        assert_eq!(p.status_of(NodeId(9)), None);
        assert_eq!(p.observations.len(), 2);
    }

    #[test]
    fn ack_roundtrip() {
        roundtrip(Message::Ack {
            vehicle: VehicleId(u64::MAX),
        });
    }

    #[test]
    fn truncated_buffers_error() {
        let full = Message::Report(Report {
            from: NodeId(1),
            to: NodeId(2),
            subtree_total: 10,
            seq: 0,
        })
        .encode();
        for cut in 0..full.len() {
            let mut part = full.slice(0..cut);
            assert_eq!(Message::decode(&mut part), Err(DecodeError::Truncated));
        }
    }

    #[test]
    fn bad_tag_errors() {
        let mut buf = Bytes::from_static(&[0xEE, 0, 0, 0, 0]);
        assert_eq!(Message::decode(&mut buf), Err(DecodeError::BadTag(0xEE)));
    }

    #[test]
    fn decode_from_borrowed_slice_matches_bytes_decode() {
        let msgs = [
            Message::Label(Label {
                origin: NodeId(7),
                origin_pred: Some(NodeId(3)),
                seed: NodeId(0),
            }),
            Message::Report(Report {
                from: NodeId(12),
                to: NodeId(4),
                subtree_total: -3,
                seq: 17,
            }),
            Message::Announce(Announce {
                to: NodeId(5),
                from: NodeId(9),
                pred: None,
            }),
            Message::Ack {
                vehicle: VehicleId(42),
            },
        ];
        for m in &msgs {
            let wire = m.encode();
            let mut slice: &[u8] = wire.as_ref();
            assert_eq!(Message::decode(&mut slice).unwrap(), *m);
            assert!(slice.is_empty(), "trailing bytes after slice decode");
        }
    }

    #[test]
    fn multiple_messages_stream() {
        let mut wire = BytesMut::new();
        let a = Message::Label(Label {
            origin: NodeId(1),
            origin_pred: None,
            seed: NodeId(1),
        });
        let b = Message::Ack {
            vehicle: VehicleId(42),
        };
        a.encode_into(&mut wire);
        b.encode_into(&mut wire);
        let mut stream = wire.freeze();
        assert_eq!(Message::decode(&mut stream).unwrap(), a);
        assert_eq!(Message::decode(&mut stream).unwrap(), b);
        assert_eq!(stream.remaining(), 0);
    }
}
