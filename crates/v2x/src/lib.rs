//! # vcount-v2x — wireless communication substrate
//!
//! Everything the counting protocol needs from the VANET radio layer
//! (paper refs \[6\]–\[8\]), rebuilt from scratch:
//!
//! * [`ids`] — VANET node identity and the exterior characteristics
//!   checkpoints may observe (no VIN, no ownership data);
//! * [`message`] — the label / report / patrol payloads with a binary wire
//!   codec;
//! * [`payload`] — slab-backed payload storage and lazy decode for the
//!   zero-copy message plane;
//! * [`channel`] — loss models including the paper's 30% Bernoulli channel
//!   and ack-confirmed handoff semantics;
//! * [`collaboration`] — relative-position collaboration turning overtakes
//!   into counter adjustments (Alg. 3 lines 5–8), in both the provably
//!   correct net form and the paper's literal per-event form (ablation).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod channel;
pub mod collaboration;
pub mod ids;
pub mod message;
pub mod payload;

pub use channel::{Bernoulli, ChannelKind, GilbertElliott, Handoff, LossModel, Perfect};
pub use collaboration::{AdjustMode, Adjustment, SegmentWatch};
pub use ids::{BodyType, Brand, ClassFilter, Color, VehicleClass, VehicleId};
pub use message::{Announce, DecodeError, Label, Message, PatrolStatus, Report};
pub use payload::{LazyPayload, PayloadRef, PayloadStore};
