//! Collaborative V2V overtake accounting (the extension of Alg. 3
//! lines 5–8, built on the relative-position collaboration of ref \[8\]).
//!
//! When a labeled vehicle `L` traverses a multi-lane segment `u -> v`,
//! overtakes can reorder vehicles relative to `L`, breaking the FIFO
//! assumption the label-wave correctness rests on. The paper corrects the
//! counter at `u` per overtake. The paper notes the detection only needs to
//! complete "before the labeled vehicle reappears in the surveillance of the
//! next checkpoint" — i.e. only the *final* relative order matters. We
//! therefore support two accounting modes:
//!
//! * [`AdjustMode::NetInversion`] (default, provably correct): at `L`'s
//!   arrival, **+1** for every vehicle that departed `u` before `L` but
//!   arrives after `L` (it fell behind the frontier wave: its one pending
//!   future count — a first count for uncounted vehicles, an anticipated and
//!   already-compensated double count for counted ones — is cancelled), and
//!   **−1** for every vehicle that departed after `L` but arrives before `L`
//!   (it jumped ahead of the wave and will be double-counted downstream).
//! * [`AdjustMode::PerEvent`] (the paper's literal lines 7–8): adjust at each
//!   overtake event, +1 only when `L` overtakes an *uncounted* vehicle, −1
//!   when a *counted* vehicle overtakes `L`. This miscounts when a vehicle
//!   overtakes `L` and is later re-overtaken (net order unchanged, but a −1
//!   sticks) — the `ablation_adjust_mode` bench quantifies this.

use crate::ids::VehicleId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Overtake accounting mode (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AdjustMode {
    /// Correct net accounting from the final arrival order.
    #[default]
    NetInversion,
    /// The paper's literal per-event rule (ablation only).
    PerEvent,
}

/// The counter corrections produced by one labeled segment traversal,
/// attributed to the labelling checkpoint's counter `c(u)`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Adjustment {
    /// Vehicles contributing +1 each.
    pub plus: Vec<VehicleId>,
    /// Vehicles contributing −1 each.
    pub minus: Vec<VehicleId>,
}

impl Adjustment {
    /// Net counter delta.
    pub fn net(&self) -> i64 {
        self.plus.len() as i64 - self.minus.len() as i64
    }

    /// True when no correction is needed.
    pub fn is_empty(&self) -> bool {
        self.plus.is_empty() && self.minus.is_empty()
    }
}

/// Tracks one labeled vehicle's traversal of a directed segment and
/// produces the counter [`Adjustment`] when the label arrives.
///
/// Lifecycle (driven by the traffic simulator / real V2V collaboration):
///
/// 1. [`SegmentWatch::new`] when the label departs `u`, with a snapshot of
///    the vehicles currently on the segment ahead of the label.
/// 2. [`SegmentWatch::record_arrival`] for every (non-patrol) vehicle that
///    reaches `v` while the label is still en route.
/// 3. In [`AdjustMode::PerEvent`], overtake events are additionally fed via
///    [`SegmentWatch::label_overtakes`] / [`SegmentWatch::label_overtaken_by`].
/// 4. [`SegmentWatch::finalize`] when the label reaches `v`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SegmentWatch {
    mode: AdjustMode,
    label_vehicle: VehicleId,
    /// Vehicles ahead of the label at its departure → counted status then.
    ahead: BTreeMap<VehicleId, bool>,
    /// Vehicles that arrived at the far end before the label → counted
    /// status at arrival.
    arrived_before: BTreeMap<VehicleId, bool>,
    /// Accumulated per-event adjustments (PerEvent mode only).
    per_event: Adjustment,
}

impl SegmentWatch {
    /// Starts a watch for `label_vehicle`, which is departing with the
    /// label; `ahead` lists each vehicle currently on the segment in front
    /// of it along with its counted status.
    pub fn new(
        mode: AdjustMode,
        label_vehicle: VehicleId,
        ahead: impl IntoIterator<Item = (VehicleId, bool)>,
    ) -> Self {
        SegmentWatch {
            mode,
            label_vehicle,
            ahead: ahead.into_iter().collect(),
            arrived_before: BTreeMap::new(),
            per_event: Adjustment::default(),
        }
    }

    /// The labeled vehicle under watch.
    pub fn label_vehicle(&self) -> VehicleId {
        self.label_vehicle
    }

    /// Records that `vehicle` reached the far end of the segment before the
    /// label did.
    pub fn record_arrival(&mut self, vehicle: VehicleId, counted: bool) {
        debug_assert_ne!(vehicle, self.label_vehicle);
        self.arrived_before.insert(vehicle, counted);
    }

    /// PerEvent mode: the label overtook `vehicle` (paper line 7: +1 when
    /// the overtaken vehicle is uncounted). Ignored in NetInversion mode.
    pub fn label_overtakes(&mut self, vehicle: VehicleId, vehicle_counted: bool) {
        if self.mode == AdjustMode::PerEvent && !vehicle_counted {
            self.per_event.plus.push(vehicle);
        }
    }

    /// PerEvent mode: `vehicle` overtook the label (paper line 8: −1 when
    /// the overtaker is counted). Ignored in NetInversion mode.
    pub fn label_overtaken_by(&mut self, vehicle: VehicleId, vehicle_counted: bool) {
        if self.mode == AdjustMode::PerEvent && vehicle_counted {
            self.per_event.minus.push(vehicle);
        }
    }

    /// The label reached the far end: produce the counter adjustment.
    pub fn finalize(self) -> Adjustment {
        match self.mode {
            AdjustMode::PerEvent => self.per_event,
            AdjustMode::NetInversion => {
                let mut adj = Adjustment::default();
                // Fell behind the wave: ahead at departure, not yet arrived.
                for &v in self.ahead.keys() {
                    if !self.arrived_before.contains_key(&v) {
                        adj.plus.push(v);
                    }
                }
                // Jumped ahead of the wave: arrived early without having
                // been ahead at departure.
                for &v in self.arrived_before.keys() {
                    if !self.ahead.contains_key(&v) {
                        adj.minus.push(v);
                    }
                }
                adj
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: VehicleId = VehicleId(100);
    const A: VehicleId = VehicleId(1);
    const B: VehicleId = VehicleId(2);

    #[test]
    fn fifo_traversal_needs_no_adjustment() {
        // A ahead, arrives before the label; B departs after and arrives
        // after: order preserved.
        let mut w = SegmentWatch::new(AdjustMode::NetInversion, L, [(A, false)]);
        w.record_arrival(A, false);
        let adj = w.finalize();
        assert!(adj.is_empty());
    }

    #[test]
    fn uncounted_vehicle_falling_behind_label_gets_plus_one() {
        // Fig. 1(g): the label overtakes an uncounted vehicle.
        let w = SegmentWatch::new(AdjustMode::NetInversion, L, [(A, false)]);
        // A never arrives before the label.
        let adj = w.finalize();
        assert_eq!(adj.plus, vec![A]);
        assert!(adj.minus.is_empty());
        assert_eq!(adj.net(), 1);
    }

    #[test]
    fn counted_vehicle_jumping_ahead_gets_minus_one() {
        // Fig. 1(h): a counted vehicle from behind overtakes the label.
        let mut w = SegmentWatch::new(AdjustMode::NetInversion, L, []);
        w.record_arrival(B, true);
        let adj = w.finalize();
        assert_eq!(adj.minus, vec![B]);
        assert_eq!(adj.net(), -1);
    }

    #[test]
    fn compensated_counted_vehicle_falling_behind_also_gets_plus_one() {
        // A counted vehicle can only be ahead of a label after a failed
        // handoff (already compensated −1 at u) or an earlier overtake
        // (compensated at that segment); if the label passes it, its pending
        // future double-count is cancelled and must be restored.
        let w = SegmentWatch::new(AdjustMode::NetInversion, L, [(A, true)]);
        let adj = w.finalize();
        assert_eq!(adj.plus, vec![A]);
        assert_eq!(adj.net(), 1);
    }

    #[test]
    fn overtake_then_reovertake_nets_zero_in_net_mode() {
        // B departs after the label, overtakes it, then the label
        // re-overtakes B: final order unchanged, B arrives after the label.
        let w = SegmentWatch::new(AdjustMode::NetInversion, L, []);
        // B never recorded as arriving before the label.
        let adj = w.finalize();
        assert!(adj.is_empty());
    }

    #[test]
    fn overtake_then_reovertake_miscounts_in_per_event_mode() {
        // Same physical scenario, paper's literal per-event rule: the −1
        // from B's overtake sticks because the re-overtake of a *counted*
        // vehicle earns no +1 (line 7 requires "uncounted").
        let mut w = SegmentWatch::new(AdjustMode::PerEvent, L, []);
        w.label_overtaken_by(B, true);
        w.label_overtakes(B, true);
        let adj = w.finalize();
        assert_eq!(adj.net(), -1, "per-event rule leaves a stuck -1");
    }

    #[test]
    fn per_event_matches_net_on_simple_cases() {
        // Single overtake of an uncounted vehicle: both modes agree.
        let mut pe = SegmentWatch::new(AdjustMode::PerEvent, L, [(A, false)]);
        pe.label_overtakes(A, false);
        let net = SegmentWatch::new(AdjustMode::NetInversion, L, [(A, false)]).finalize();
        assert_eq!(pe.finalize().net(), net.net());
    }

    #[test]
    fn mixed_traffic_adjustments_compose() {
        // A (uncounted, ahead) falls behind; B (counted, behind) jumps
        // ahead; C (ahead, counted) stays ahead.
        let c = VehicleId(3);
        let mut w = SegmentWatch::new(AdjustMode::NetInversion, L, [(A, false), (c, true)]);
        w.record_arrival(c, true);
        w.record_arrival(B, true);
        let adj = w.finalize();
        assert_eq!(adj.plus, vec![A]);
        assert_eq!(adj.minus, vec![B]);
        assert_eq!(adj.net(), 0);
    }

    #[test]
    fn per_event_ignores_events_in_net_mode() {
        let mut w = SegmentWatch::new(AdjustMode::NetInversion, L, []);
        w.label_overtaken_by(B, true);
        w.label_overtakes(B, true);
        // Net mode derives everything from arrivals; events are no-ops.
        assert!(w.finalize().is_empty());
    }
}
