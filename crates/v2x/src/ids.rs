//! VANET node identity and exterior vehicle characteristics.
//!
//! Each vehicle is a node of the VANET (Section III-B). Its `VehicleId` is
//! the built-in radio identity used by the V2V/V2I exchanges — it is *not*
//! ownership data (no VIN, no registration), matching the paper's privacy
//! constraint. What checkpoints *see* is the vehicle's exterior
//! characteristics ([`VehicleClass`]): color, brand and body type, as
//! recognised by the intersection cameras (refs \[2\], \[3\]).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Radio identity of a vehicle's built-in VANET equipment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VehicleId(pub u64);

impl VehicleId {
    /// Dense index for per-vehicle arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VehicleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "veh{}", self.0)
    }
}

/// Exterior paint color as seen by checkpoint surveillance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Color {
    White,
    Black,
    Silver,
    Red,
    Blue,
    Green,
    Yellow,
}

/// Body type as seen by checkpoint surveillance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum BodyType {
    Sedan,
    Suv,
    Van,
    BoxTruck,
    Pickup,
    Bus,
    PatrolCar,
}

/// Brand badge as seen by checkpoint surveillance (a small closed set is
/// enough for the counting-by-type extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Brand {
    Apex,
    Borealis,
    Cascade,
    Dynamo,
    Everest,
}

/// Exterior characteristics of a vehicle — everything a checkpoint is
/// allowed to know about it (Section II: "only exterior characteristics of
/// the vehicle such as color, brand, and type are used").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VehicleClass {
    /// Paint color.
    pub color: Color,
    /// Brand badge.
    pub brand: Brand,
    /// Body type.
    pub body: BodyType,
}

impl VehicleClass {
    /// The paper's motivating search target: "Does anyone see that white
    /// van?" (Beltway sniper case study).
    pub const WHITE_VAN: VehicleClass = VehicleClass {
        color: Color::White,
        brand: Brand::Cascade,
        body: BodyType::Van,
    };

    /// A marked police patrol car. Patrol cars are never counted by any
    /// checkpoint but relay statuses (Theorem 3).
    pub const PATROL: VehicleClass = VehicleClass {
        color: Color::Blue,
        brand: Brand::Apex,
        body: BodyType::PatrolCar,
    };

    /// Whether this is a patrol car.
    pub fn is_patrol(&self) -> bool {
        self.body == BodyType::PatrolCar
    }
}

/// A filter over exterior characteristics, for the "counting a specified
/// type" extension. `None` fields are wildcards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ClassFilter {
    /// Match only this color (or any when `None`).
    pub color: Option<Color>,
    /// Match only this brand (or any when `None`).
    pub brand: Option<Brand>,
    /// Match only this body type (or any when `None`).
    pub body: Option<BodyType>,
}

impl ClassFilter {
    /// Matches every non-patrol vehicle — the paper's default "count all
    /// moving vehicles".
    pub const ALL: ClassFilter = ClassFilter {
        color: None,
        brand: None,
        body: None,
    };

    /// A filter for white vans of any brand.
    pub fn white_vans() -> ClassFilter {
        ClassFilter {
            color: Some(Color::White),
            brand: None,
            body: Some(BodyType::Van),
        }
    }

    /// Whether `class` passes the filter. Patrol cars never match: the
    /// paper exempts them from all counting.
    pub fn matches(&self, class: &VehicleClass) -> bool {
        if class.is_patrol() {
            return false;
        }
        self.color.is_none_or(|c| c == class.color)
            && self.brand.is_none_or(|b| b == class.brand)
            && self.body.is_none_or(|b| b == class.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_filter_matches_civilian_vehicles() {
        let sedan = VehicleClass {
            color: Color::Red,
            brand: Brand::Dynamo,
            body: BodyType::Sedan,
        };
        assert!(ClassFilter::ALL.matches(&sedan));
        assert!(ClassFilter::ALL.matches(&VehicleClass::WHITE_VAN));
    }

    #[test]
    fn patrol_cars_are_never_counted() {
        assert!(!ClassFilter::ALL.matches(&VehicleClass::PATROL));
        assert!(!ClassFilter::white_vans().matches(&VehicleClass::PATROL));
    }

    #[test]
    fn white_van_filter_is_selective() {
        let f = ClassFilter::white_vans();
        assert!(f.matches(&VehicleClass::WHITE_VAN));
        let white_sedan = VehicleClass {
            color: Color::White,
            brand: Brand::Cascade,
            body: BodyType::Sedan,
        };
        assert!(!f.matches(&white_sedan));
        let red_van = VehicleClass {
            color: Color::Red,
            brand: Brand::Cascade,
            body: BodyType::Van,
        };
        assert!(!f.matches(&red_van));
    }

    #[test]
    fn brand_wildcard_accepts_any_brand() {
        let f = ClassFilter::white_vans();
        for brand in [Brand::Apex, Brand::Borealis, Brand::Everest] {
            let van = VehicleClass {
                color: Color::White,
                brand,
                body: BodyType::Van,
            };
            assert!(f.matches(&van));
        }
    }

    #[test]
    fn exact_filter_matches_exactly_one_class() {
        let f = ClassFilter {
            color: Some(Color::Black),
            brand: Some(Brand::Apex),
            body: Some(BodyType::Suv),
        };
        let yes = VehicleClass {
            color: Color::Black,
            brand: Brand::Apex,
            body: BodyType::Suv,
        };
        let no = VehicleClass {
            color: Color::Black,
            brand: Brand::Apex,
            body: BodyType::Pickup,
        };
        assert!(f.matches(&yes));
        assert!(!f.matches(&no));
    }
}
