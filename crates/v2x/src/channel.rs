//! Lossy wireless channel models.
//!
//! The paper's simulation uses "lossy wireless communication, with a 30%
//! chance of failure". A *handoff* here is the complete checkpoint↔vehicle
//! exchange (payload plus TCP-style acknowledgement, ref \[6\]) performed
//! while the vehicle is within range of the checkpoint — it either completes
//! confirmed on both sides or fails visibly to the sender, which is what
//! lets Alg. 3 line 3 compensate (`c(u) -= 1`) and retry with the next
//! vehicle.
//!
//! Time-windowed regional blackouts are *not* a loss model: the simulator's
//! fault-injection layer (`vcount_sim::faults`) forces a handoff to fail
//! during a blackout window *before* consulting the loss model, without
//! consuming one of its RNG draws — so any [`LossModel`] composes with
//! blackouts, and a fault-free run's channel stream stays byte-identical
//! whether or not a (never-matching) blackout plan is loaded.

use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Outcome of a single handoff attempt, known to both parties.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Handoff {
    /// Payload delivered and acknowledged.
    Delivered,
    /// Exchange failed; the sender knows and will retry with the next
    /// contact.
    Failed,
}

impl Handoff {
    /// True when the payload arrived.
    pub fn delivered(self) -> bool {
        matches!(self, Handoff::Delivered)
    }
}

/// A wireless loss model: decides the fate of each handoff attempt.
pub trait LossModel {
    /// Performs one attempt using the caller's RNG stream (keeps whole-run
    /// determinism in the simulator).
    fn attempt(&self, rng: &mut dyn RngCore) -> Handoff;

    /// The long-run failure probability, for reporting.
    fn failure_rate(&self) -> f64;

    /// Opaque interior state for snapshot/resume. Memoryless models return
    /// `0`; stateful ones (e.g. [`GilbertElliott`]) encode their current
    /// state so a resumed run replays identically.
    fn save_state(&self) -> u64 {
        0
    }

    /// Restores interior state captured by [`LossModel::save_state`].
    fn restore_state(&self, _state: u64) {}
}

/// The ideal channel of the simple road model (Alg. 1): every exchange
/// succeeds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Perfect;

impl LossModel for Perfect {
    fn attempt(&self, _rng: &mut dyn RngCore) -> Handoff {
        Handoff::Delivered
    }

    fn failure_rate(&self) -> f64 {
        0.0
    }
}

/// Independent Bernoulli failures with probability `p_fail` — the paper's
/// evaluation model at `p_fail = 0.3`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bernoulli {
    p_fail: f64,
}

impl Bernoulli {
    /// The paper's evaluation setting: 30% chance of failure.
    pub const PAPER: Bernoulli = Bernoulli { p_fail: 0.3 };

    /// Creates a channel failing with probability `p_fail ∈ [0, 1]`.
    pub fn new(p_fail: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_fail), "p_fail must be in [0,1]");
        Bernoulli { p_fail }
    }
}

impl LossModel for Bernoulli {
    fn attempt(&self, rng: &mut dyn RngCore) -> Handoff {
        // Draw a uniform f64 in [0,1) from the raw stream; avoids requiring
        // `Rng` (not dyn-compatible) on the trait.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if u < self.p_fail {
            Handoff::Failed
        } else {
            Handoff::Delivered
        }
    }

    fn failure_rate(&self) -> f64 {
        self.p_fail
    }
}

/// Burst-loss channel (Gilbert–Elliott style): alternates between a good
/// state (failure `p_good`) and a bad state (failure `p_bad`). Used by the
/// loss ablation to show the protocol tolerates correlated failures, which
/// real urban radio exhibits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GilbertElliott {
    /// Failure probability in the good state.
    pub p_good: f64,
    /// Failure probability in the bad state.
    pub p_bad: f64,
    /// Probability of switching good → bad per attempt.
    pub p_g2b: f64,
    /// Probability of switching bad → good per attempt.
    pub p_b2g: f64,
    state_bad: std::cell::Cell<bool>,
}

impl GilbertElliott {
    /// Creates a burst channel starting in the good state.
    pub fn new(p_good: f64, p_bad: f64, p_g2b: f64, p_b2g: f64) -> Self {
        for p in [p_good, p_bad, p_g2b, p_b2g] {
            assert!((0.0..=1.0).contains(&p));
        }
        GilbertElliott {
            p_good,
            p_bad,
            p_g2b,
            p_b2g,
            state_bad: std::cell::Cell::new(false),
        }
    }

    fn draw(rng: &mut dyn RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl LossModel for GilbertElliott {
    fn attempt(&self, rng: &mut dyn RngCore) -> Handoff {
        let bad = self.state_bad.get();
        // State transition first, then loss draw in the new state.
        let flip = Self::draw(rng);
        let bad = if bad {
            flip >= self.p_b2g
        } else {
            flip < self.p_g2b
        };
        self.state_bad.set(bad);
        let p = if bad { self.p_bad } else { self.p_good };
        if Self::draw(rng) < p {
            Handoff::Failed
        } else {
            Handoff::Delivered
        }
    }

    fn failure_rate(&self) -> f64 {
        // Stationary mix of the two states.
        let denom = self.p_g2b + self.p_b2g;
        if denom == 0.0 {
            return self.p_good;
        }
        let frac_bad = self.p_g2b / denom;
        frac_bad * self.p_bad + (1.0 - frac_bad) * self.p_good
    }

    fn save_state(&self) -> u64 {
        u64::from(self.state_bad.get())
    }

    fn restore_state(&self, state: u64) {
        self.state_bad.set(state != 0);
    }
}

/// Boxed loss model selection, serializable for scenario configs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChannelKind {
    /// No losses (simple road model).
    Perfect,
    /// Independent failures with this probability.
    Bernoulli(f64),
    /// Correlated burst losses (Gilbert–Elliott): `(p_good, p_bad, p_g2b,
    /// p_b2g)`. Urban radio fades in bursts; the protocol's compensation
    /// must tolerate runs of consecutive failures, not just independent
    /// ones.
    Burst {
        /// Failure probability in the good state.
        p_good: f64,
        /// Failure probability in the bad state.
        p_bad: f64,
        /// Good → bad transition probability per attempt.
        p_g2b: f64,
        /// Bad → good transition probability per attempt.
        p_b2g: f64,
    },
}

impl ChannelKind {
    /// Instantiates the loss model.
    pub fn build(self) -> Box<dyn LossModel + Send> {
        match self {
            ChannelKind::Perfect => Box::new(Perfect),
            ChannelKind::Bernoulli(p) => Box::new(Bernoulli::new(p)),
            ChannelKind::Burst {
                p_good,
                p_bad,
                p_g2b,
                p_b2g,
            } => Box::new(GilbertElliott::new(p_good, p_bad, p_g2b, p_b2g)),
        }
    }

    /// The paper's evaluation channel: 30% Bernoulli loss.
    pub const PAPER: ChannelKind = ChannelKind::Bernoulli(0.3);

    /// A harsh burst channel with the same ~30% long-run loss as the
    /// paper's, concentrated into fades.
    pub const BURSTY: ChannelKind = ChannelKind::Burst {
        p_good: 0.05,
        p_bad: 0.8,
        p_g2b: 0.1,
        p_b2g: 0.2,
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn perfect_never_fails() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(Perfect.attempt(&mut rng).delivered());
        }
    }

    #[test]
    fn bernoulli_matches_requested_rate() {
        let mut rng = StdRng::seed_from_u64(2);
        let ch = Bernoulli::new(0.3);
        let n = 200_000;
        let fails = (0..n).filter(|_| !ch.attempt(&mut rng).delivered()).count();
        let rate = fails as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "observed failure rate {rate}");
        assert_eq!(ch.failure_rate(), 0.3);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        let always = Bernoulli::new(1.0);
        let never = Bernoulli::new(0.0);
        for _ in 0..100 {
            assert!(!always.attempt(&mut rng).delivered());
            assert!(never.attempt(&mut rng).delivered());
        }
    }

    #[test]
    #[should_panic(expected = "p_fail")]
    fn bernoulli_rejects_bad_probability() {
        let _ = Bernoulli::new(1.5);
    }

    #[test]
    fn gilbert_elliott_long_run_rate() {
        let mut rng = StdRng::seed_from_u64(4);
        let ch = GilbertElliott::new(0.05, 0.8, 0.1, 0.3);
        let n = 300_000;
        let fails = (0..n).filter(|_| !ch.attempt(&mut rng).delivered()).count();
        let rate = fails as f64 / n as f64;
        let expected = ch.failure_rate();
        assert!(
            (rate - expected).abs() < 0.02,
            "observed {rate}, stationary {expected}"
        );
    }

    #[test]
    fn channel_kind_builds_expected_models() {
        let mut rng = StdRng::seed_from_u64(5);
        let perfect = ChannelKind::Perfect.build();
        assert!(perfect.attempt(&mut rng).delivered());
        let paper = ChannelKind::PAPER.build();
        assert_eq!(paper.failure_rate(), 0.3);
        let bursty = ChannelKind::BURSTY.build();
        let expected = 0.1 / (0.1 + 0.2) * 0.8 + 0.2 / (0.1 + 0.2) * 0.05;
        assert!((bursty.failure_rate() - expected).abs() < 1e-9);
    }

    #[test]
    fn gilbert_elliott_state_survives_save_restore() {
        let ch = GilbertElliott::new(0.05, 0.8, 0.5, 0.1);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..37 {
            let _ = ch.attempt(&mut rng);
        }
        let saved = ch.save_state();
        let mut rng_a = StdRng::seed_from_u64(7);
        let tail_a: Vec<bool> = (0..64)
            .map(|_| ch.attempt(&mut rng_a).delivered())
            .collect();
        // A fresh channel resumed from the saved state replays the tail.
        let fresh = GilbertElliott::new(0.05, 0.8, 0.5, 0.1);
        fresh.restore_state(saved);
        let mut rng_b = StdRng::seed_from_u64(7);
        let tail_b: Vec<bool> = (0..64)
            .map(|_| fresh.attempt(&mut rng_b).delivered())
            .collect();
        assert_eq!(tail_a, tail_b);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let ch = Bernoulli::new(0.5);
        let seq = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..64)
                .map(|_| ch.attempt(&mut rng).delivered())
                .collect::<Vec<_>>()
        };
        assert_eq!(seq(9), seq(9));
        assert_ne!(seq(9), seq(10));
    }
}
