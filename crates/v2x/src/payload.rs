//! Slab-backed storage for in-flight wire payloads.
//!
//! The exchange used to keep every queued message as an owned `Vec<u8>`,
//! which meant one heap allocation (and one copy out of the encode
//! scratch) per message sent — on the hottest path of the message plane.
//! A [`PayloadStore`] replaces that with a slab of reusable byte slots:
//! encoding writes straight into a recycled slot's `Vec<u8>` (capacity is
//! retained across messages, so the steady state allocates nothing), and
//! queues hold copyable [`PayloadRef`] keys instead of owned buffers.
//!
//! Refs are generation-checked: freeing a slot bumps its generation, so a
//! stale ref (use-after-free, double-free, or an aliasing bug where two
//! queues claim one slot) panics instead of silently reading another
//! message's bytes. The store is deliberately not serializable — snapshot
//! code resolves refs to owned bytes and re-interns them on restore.
//!
//! [`LazyPayload`] is the read side: a borrowed view of a stored payload
//! that decodes only when actually consumed, so a recipient that drops a
//! message (crashed checkpoint, duplicate) never pays the decode.

use crate::message::{DecodeError, Message};

/// A generation-checked key into a [`PayloadStore`] slot.
///
/// Cheap to copy and store in queues; resolving it after the payload was
/// freed panics (the generation no longer matches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PayloadRef {
    slot: u32,
    gen: u32,
}

/// A slab of reusable payload buffers. See the module docs.
#[derive(Debug, Default)]
pub struct PayloadStore {
    /// Slot buffers; freed slots keep their capacity for reuse.
    slots: Vec<Vec<u8>>,
    /// Current generation per slot; bumped on free.
    gens: Vec<u32>,
    /// Indices of free slots.
    free: Vec<u32>,
}

impl PayloadStore {
    /// An empty store.
    pub fn new() -> Self {
        PayloadStore::default()
    }

    /// Number of live (allocated, not freed) payloads.
    pub fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Total slots ever grown (live + free). A steady-state workload
    /// plateaus here: inserts reuse freed slots instead of growing.
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Claims a slot (recycled if possible) and fills it via `fill`,
    /// which appends into a cleared `Vec<u8>` that keeps its previous
    /// capacity — the steady-state insert allocates nothing.
    pub fn insert_with(&mut self, fill: impl FnOnce(&mut Vec<u8>)) -> PayloadRef {
        let slot = match self.free.pop() {
            Some(i) => i as usize,
            None => {
                self.slots.push(Vec::new());
                self.gens.push(0);
                self.slots.len() - 1
            }
        };
        self.slots[slot].clear();
        fill(&mut self.slots[slot]);
        PayloadRef {
            slot: slot as u32,
            gen: self.gens[slot],
        }
    }

    /// Stores a copy of `bytes` (restore/interning path).
    pub fn insert(&mut self, bytes: &[u8]) -> PayloadRef {
        self.insert_with(|buf| buf.extend_from_slice(bytes))
    }

    /// Byte-copies a live payload into a fresh slot (chaos duplication).
    /// The copy is independent: freeing one ref never invalidates the
    /// other, which a shared-slot alias would.
    pub fn duplicate(&mut self, r: PayloadRef) -> PayloadRef {
        self.check(r);
        let dst = match self.free.pop() {
            Some(i) => i as usize,
            None => {
                self.slots.push(Vec::new());
                self.gens.push(0);
                self.slots.len() - 1
            }
        };
        let src = r.slot as usize;
        debug_assert_ne!(src, dst, "a live ref cannot point at a free slot");
        // Split borrow: copy src's bytes into dst without cloning through
        // a temporary.
        let (a, b) = if src < dst {
            let (lo, hi) = self.slots.split_at_mut(dst);
            (&lo[src], &mut hi[0])
        } else {
            let (lo, hi) = self.slots.split_at_mut(src);
            (&hi[0] as &Vec<u8>, &mut lo[dst])
        };
        b.clear();
        b.extend_from_slice(a);
        PayloadRef {
            slot: dst as u32,
            gen: self.gens[dst],
        }
    }

    /// The stored bytes behind `r`. Panics on a stale ref.
    pub fn get(&self, r: PayloadRef) -> &[u8] {
        self.check(r);
        &self.slots[r.slot as usize]
    }

    /// A lazily-decodable view of the payload behind `r`.
    pub fn lazy(&self, r: PayloadRef) -> LazyPayload<'_> {
        LazyPayload { bytes: self.get(r) }
    }

    /// Releases the slot behind `r` for reuse, invalidating the ref (and
    /// any accidental copies of it — the generation bumps).
    pub fn free(&mut self, r: PayloadRef) {
        self.check(r);
        let slot = r.slot as usize;
        self.gens[slot] = self.gens[slot].wrapping_add(1);
        self.slots[slot].clear();
        self.free.push(r.slot);
    }

    fn check(&self, r: PayloadRef) {
        let gen = self
            .gens
            .get(r.slot as usize)
            .unwrap_or_else(|| panic!("payload ref {r:?} outside the store"));
        assert_eq!(
            *gen, r.gen,
            "stale payload ref {r:?} (freed slot reused or double-free)"
        );
    }
}

/// A borrowed, not-yet-decoded payload. Decoding happens only when the
/// consumer calls [`LazyPayload::decode`]; recipients that drop the
/// message (crashed checkpoint, duplicate suppression) inspect at most
/// the tag byte and never pay the decode.
#[derive(Debug, Clone, Copy)]
pub struct LazyPayload<'a> {
    bytes: &'a [u8],
}

impl<'a> LazyPayload<'a> {
    /// A lazy view over raw wire bytes (store-independent constructor).
    pub fn from_bytes(bytes: &'a [u8]) -> Self {
        LazyPayload { bytes }
    }

    /// The wire tag byte, without decoding the body.
    pub fn tag(&self) -> Option<u8> {
        self.bytes.first().copied()
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the payload is empty (never true for a valid message).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The raw wire bytes.
    pub fn bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// Decodes the full message — the consumption point.
    pub fn decode(self) -> Result<Message, DecodeError> {
        let mut buf = self.bytes;
        let msg = Message::decode(&mut buf)?;
        debug_assert!(buf.is_empty(), "trailing bytes after payload decode");
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_free_round_trip() {
        let mut store = PayloadStore::new();
        let a = store.insert(b"alpha");
        let b = store.insert(b"beta");
        assert_eq!(store.get(a), b"alpha");
        assert_eq!(store.get(b), b"beta");
        assert_eq!(store.live(), 2);
        store.free(a);
        assert_eq!(store.live(), 1);
        assert_eq!(store.get(b), b"beta");
    }

    #[test]
    fn slots_are_recycled_without_growth() {
        let mut store = PayloadStore::new();
        let a = store.insert(b"first");
        store.free(a);
        let b = store.insert(b"second");
        assert_eq!(store.slots(), 1, "freed slot must be reused");
        assert_eq!(store.get(b), b"second");
    }

    #[test]
    #[should_panic(expected = "stale payload ref")]
    fn stale_ref_after_free_panics() {
        let mut store = PayloadStore::new();
        let a = store.insert(b"gone");
        store.free(a);
        let _ = store.insert(b"new tenant");
        let _ = store.get(a);
    }

    #[test]
    #[should_panic(expected = "stale payload ref")]
    fn double_free_panics() {
        let mut store = PayloadStore::new();
        let a = store.insert(b"once");
        store.free(a);
        store.free(a);
    }

    #[test]
    fn duplicate_is_an_independent_copy() {
        let mut store = PayloadStore::new();
        let a = store.insert(b"payload");
        let b = store.duplicate(a);
        assert_ne!(a, b);
        store.free(a);
        assert_eq!(store.get(b), b"payload", "copy must survive the original");
    }

    #[test]
    fn lazy_view_exposes_tag_without_decoding() {
        use crate::{Label, Message};
        use vcount_roadnet::NodeId;
        let msg = Message::Label(Label {
            origin: NodeId(3),
            origin_pred: None,
            seed: NodeId(0),
        });
        let mut store = PayloadStore::new();
        let r = store.insert_with(|buf| msg.encode_into(buf));
        let lazy = store.lazy(r);
        assert_eq!(lazy.tag(), Some(crate::message::TAG_LABEL));
        assert_eq!(lazy.decode().unwrap(), msg);
    }
}
