//! Property tests of the wire codec, the slab payload arena, and the
//! loss models.

use bytes::{Buf, BytesMut};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vcount_roadnet::NodeId;
use vcount_v2x::{
    Announce, Bernoulli, DecodeError, Label, LossModel, Message, PatrolStatus, PayloadRef,
    PayloadStore, Report, VehicleId,
};

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (
            any::<u32>(),
            proptest::option::of(any::<u32>()),
            any::<u32>()
        )
            .prop_map(|(o, p, s)| Message::Label(Label {
                origin: NodeId(o),
                // u32::MAX encodes None on the wire; keep ids below it.
                origin_pred: p.map(|v| NodeId(v % (u32::MAX - 1))),
                seed: NodeId(s % (u32::MAX - 1)),
            })),
        (any::<u32>(), any::<u32>(), any::<i64>(), any::<u32>()).prop_map(|(f, t, c, q)| {
            Message::Report(Report {
                from: NodeId(f),
                to: NodeId(t),
                subtree_total: c,
                seq: q,
            })
        }),
        proptest::collection::vec((any::<u32>(), any::<bool>()), 0..20).prop_map(|obs| {
            let mut p = PatrolStatus::default();
            for (n, a) in obs {
                p.observe(NodeId(n), a);
            }
            Message::Patrol(p)
        }),
        any::<u64>().prop_map(|v| Message::Ack {
            vehicle: VehicleId(v)
        }),
        (
            any::<u32>(),
            any::<u32>(),
            proptest::option::of(any::<u32>())
        )
            .prop_map(|(t, f, p)| Message::Announce(Announce {
                to: NodeId(t),
                from: NodeId(f),
                // u32::MAX encodes None on the wire; keep ids below it.
                pred: p.map(|v| NodeId(v % (u32::MAX - 1))),
            })),
    ]
}

proptest! {
    /// Every message round-trips through the wire format losslessly and
    /// consumes exactly its own bytes.
    #[test]
    fn roundtrip(m in arb_message()) {
        // Labels with origin == u32::MAX would collide with the None
        // sentinel; the protocol never allocates that id.
        if let Message::Label(l) = &m {
            prop_assume!(l.origin.0 != u32::MAX);
        }
        let mut wire = m.encode();
        let back = Message::decode(&mut wire).unwrap();
        prop_assert_eq!(back, m);
        prop_assert_eq!(wire.remaining(), 0);
    }

    /// Concatenated messages decode in order (streaming).
    #[test]
    fn streaming(ms in proptest::collection::vec(arb_message(), 1..8)) {
        for m in &ms {
            if let Message::Label(l) = m {
                prop_assume!(l.origin.0 != u32::MAX);
            }
        }
        let mut buf = BytesMut::new();
        for m in &ms {
            m.encode_into(&mut buf);
        }
        let mut wire = buf.freeze();
        for m in &ms {
            prop_assert_eq!(&Message::decode(&mut wire).unwrap(), m);
        }
        prop_assert_eq!(wire.remaining(), 0);
    }

    /// Arbitrary byte soup never panics the decoder: it either yields a
    /// message or a clean error.
    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut wire = bytes::Bytes::from(bytes);
        let _ = Message::decode(&mut wire);
    }

    /// Adversarial hardening: every strict prefix of a valid encoding is a
    /// clean `Truncated` error — never a panic, never an over-read.
    #[test]
    fn truncation_always_clean_error(m in arb_message()) {
        if let Message::Label(l) = &m {
            prop_assume!(l.origin.0 != u32::MAX);
        }
        let full = m.encode();
        for cut in 0..full.len() {
            let mut part = full.slice(0..cut);
            prop_assert_eq!(Message::decode(&mut part), Err(DecodeError::Truncated));
        }
    }

    /// Adversarial hardening: corrupting the tag byte to anything outside
    /// the known tag set yields `BadTag`, never a panic.
    #[test]
    fn tag_corruption_always_bad_tag(m in arb_message(), bad in any::<u8>()) {
        prop_assume!(!(1..=5).contains(&bad));
        let full = m.encode();
        let mut bytes = full.to_vec();
        bytes[0] = bad;
        let mut wire = bytes::Bytes::from(bytes);
        prop_assert_eq!(Message::decode(&mut wire), Err(DecodeError::BadTag(bad)));
    }

    /// Adversarial hardening: single bit flips anywhere in a valid encoding
    /// never panic and never make the decoder read past the buffer. A flip
    /// may still decode (e.g. inside an id field) — that is fine; what must
    /// hold is memory safety and bounded consumption.
    #[test]
    fn bit_flips_never_panic_or_overread(m in arb_message(), pos in any::<u16>(), bit in 0u8..8) {
        let full = m.encode();
        let mut bytes = full.to_vec();
        let idx = pos as usize % bytes.len();
        bytes[idx] ^= 1 << bit;
        let len = bytes.len();
        let mut wire = bytes::Bytes::from(bytes);
        let res = Message::decode(&mut wire);
        if res.is_ok() {
            prop_assert!(wire.remaining() <= len);
        }
    }

    /// Bernoulli failure frequency tracks the configured probability.
    #[test]
    fn bernoulli_rate(p in 0.0f64..=1.0, seed in any::<u64>()) {
        let ch = Bernoulli::new(p);
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 4000;
        let fails = (0..n).filter(|_| !ch.attempt(&mut rng).delivered()).count();
        let rate = fails as f64 / n as f64;
        prop_assert!((rate - p).abs() < 0.05, "p={p} observed={rate}");
    }

    /// Arena encodes are indistinguishable from owned encodes: a message
    /// sequence written into one shared [`PayloadStore`] yields, per ref,
    /// exactly the bytes `encode()` would have produced, and the lazy
    /// view round-trips every message without an intermediate copy.
    #[test]
    fn arena_encode_matches_owned_encode(ms in proptest::collection::vec(arb_message(), 1..24)) {
        for m in &ms {
            if let Message::Label(l) = m {
                prop_assume!(l.origin.0 != u32::MAX);
            }
        }
        let mut store = PayloadStore::new();
        let refs: Vec<PayloadRef> = ms
            .iter()
            .map(|m| store.insert_with(|buf| m.encode_into(buf)))
            .collect();
        for (m, &r) in ms.iter().zip(&refs) {
            let owned = m.encode();
            prop_assert_eq!(store.get(r), &owned[..]);
            let lazy = store.lazy(r);
            prop_assert_eq!(lazy.len(), owned.len());
            prop_assert_eq!(lazy.decode().unwrap(), m.clone());
        }
        for r in refs {
            store.free(r);
        }
        prop_assert_eq!(store.live(), 0);
    }

    /// No aliasing: a live slot's bytes never change while unrelated
    /// payloads are appended, freed, and recycled around it.
    #[test]
    fn arena_slices_survive_unrelated_churn(
        pinned in proptest::collection::vec(arb_message(), 1..12),
        churn in proptest::collection::vec((arb_message(), any::<bool>()), 1..64),
    ) {
        for m in pinned.iter().chain(churn.iter().map(|(m, _)| m)) {
            if let Message::Label(l) = m {
                prop_assume!(l.origin.0 != u32::MAX);
            }
        }
        let mut store = PayloadStore::new();
        let refs: Vec<PayloadRef> = pinned
            .iter()
            .map(|m| store.insert_with(|buf| m.encode_into(buf)))
            .collect();
        let baseline: Vec<Vec<u8>> = refs.iter().map(|&r| store.get(r).to_vec()).collect();

        // Unrelated churn: every insert may later be freed (recycling its
        // slot for a subsequent insert) — the pinned refs are never touched.
        let mut transient: Vec<PayloadRef> = Vec::new();
        for (m, drop_one) in &churn {
            transient.push(store.insert_with(|buf| m.encode_into(buf)));
            if *drop_one && transient.len() > 1 {
                let r = transient.swap_remove(0);
                store.free(r);
            }
        }

        for ((m, &r), bytes) in pinned.iter().zip(&refs).zip(&baseline) {
            prop_assert_eq!(store.get(r), &bytes[..], "pinned slot mutated by unrelated churn");
            prop_assert_eq!(store.lazy(r).decode().unwrap(), m.clone());
        }
    }

    /// `duplicate` is an independent copy: freeing and recycling the
    /// source slot leaves the duplicate's bytes intact.
    #[test]
    fn arena_duplicates_outlive_source_recycling(m in arb_message(), other in arb_message()) {
        for msg in [&m, &other] {
            if let Message::Label(l) = msg {
                prop_assume!(l.origin.0 != u32::MAX);
            }
        }
        let mut store = PayloadStore::new();
        let src = store.insert_with(|buf| m.encode_into(buf));
        let dup = store.duplicate(src);
        let bytes = store.get(dup).to_vec();

        store.free(src);
        let recycled = store.insert_with(|buf| other.encode_into(buf));

        prop_assert_eq!(store.get(dup), &bytes[..], "duplicate aliased its source slot");
        prop_assert_eq!(store.lazy(dup).decode().unwrap(), m.clone());
        store.free(dup);
        store.free(recycled);
    }
}
